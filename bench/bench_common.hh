/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 *
 * Scale knobs default to values that keep every bench comfortably
 * runnable on a laptop; set GEO_BENCH_FULL=1 in the environment to run
 * at the paper's scale (12,000-entry training windows, 200 epochs,
 * hundreds of workload runs).
 */

#ifndef GEO_BENCH_COMMON_HH
#define GEO_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

namespace geo {
namespace bench {

/** True when GEO_BENCH_FULL=1: run at the paper's full scale. */
inline bool
fullScale()
{
    const char *env = std::getenv("GEO_BENCH_FULL");
    return env != nullptr && std::string(env) == "1";
}

/** Integer knob with reduced/full defaults and an env override. */
inline size_t
knob(const char *env_name, size_t reduced, size_t full)
{
    if (const char *env = std::getenv(env_name))
        return static_cast<size_t>(std::stoull(env));
    return fullScale() ? full : reduced;
}

/** Print the standard bench header. */
inline void
header(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== Geomancy reproduction: " << what << " ===\n";
    std::cout << "Paper reference: " << paper_ref << "\n";
    std::cout << "Scale: " << (fullScale() ? "FULL (paper)" : "reduced")
              << "  (set GEO_BENCH_FULL=1 for paper scale)\n\n";
}

/** Format bytes/s as GB/s with 2 decimals. */
inline std::string
gbps(double bytes_per_second)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", bytes_per_second / 1e9);
    return buf;
}

} // namespace bench
} // namespace geo

#endif // GEO_BENCH_COMMON_HH
