/**
 * @file
 * Regenerates Fig. 4: Pearson correlation between raw EOS access-log
 * features and measured throughput, with the paper's six chosen
 * features flagged.
 *
 * Expected shape (paper Section V-D): transfer sizes (rb, wb) and the
 * open/close timestamps land on the positive side; read/write times
 * (rt, wt) are strongly negative; file/filesystem IDs and security
 * fields sit near zero.
 */

#include <iostream>

#include "bench_common.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/feature_select.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    bench::header("Fig. 4 - feature/throughput correlation",
                  "Section V-D, Fig. 4");

    size_t records = bench::knob("GEO_TRACE_RECORDS", 30000, 200000);
    trace::EosTraceConfig config;
    trace::EosTraceGenerator generator(config);
    std::vector<trace::AccessRecord> trace_records =
        generator.generate(records);
    std::cout << "Synthetic EOS trace: " << trace_records.size()
              << " records over " << config.deviceCount
              << " storage devices\n\n";

    std::vector<trace::FeatureCorrelation> correlations =
        trace::correlateFeatures(trace_records);

    TextTable table("Correlation with throughput (sorted descending)");
    table.setHeader({"feature", "pearson r", "chosen (paper Z=6)"});
    for (const trace::FeatureCorrelation &fc : correlations) {
        table.addRow({fc.name, TextTable::num(fc.correlation, 4),
                      fc.chosen ? "YES" : ""});
    }
    table.print(std::cout);

    // Shape checks against the paper's narrative.
    auto r_of = [&](const std::string &name) {
        for (const auto &fc : correlations)
            if (fc.name == name)
                return fc.correlation;
        return 0.0;
    };
    std::cout << "\nShape checks vs paper:\n";
    std::cout << "  rb positively correlated:      "
              << (r_of("rb") > 0.05 ? "OK" : "MISMATCH") << "\n";
    std::cout << "  rt strongly negative:          "
              << (r_of("rt") < -0.05 ? "OK" : "MISMATCH") << "\n";
    std::cout << "  fid near zero (|r| < 0.1):     "
              << (std::abs(r_of("fid")) < 0.1 ? "OK" : "MISMATCH")
              << "\n";
    return 0;
}
