/**
 * @file
 * The CERN EOS configuration of the model search (paper Sections V-G
 * and VIII): the same architecture family trained on EOS-style trace
 * data with 13 input metrics instead of the live system's 6.
 *
 * Reproduced claims: training with more features costs more time
 * (the paper reports 23.1 s train / 48.2 ms predict at Z = 13 vs
 * ~25 s / ~50 ms at Z = 6 on its hardware), and the same architecture
 * family transfers between the two feature sets.
 */

#include <chrono>
#include <iostream>

#include "bench_common.hh"
#include "nn/model_zoo.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/feature_matrix.hh"
#include "trace/feature_select.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    bench::header("EOS model search (Z = 13)",
                  "Sections V-G and VIII (CERN configuration)");

    const size_t records = bench::knob("GEO_ENTRIES", 6000, 20000);
    const size_t epochs = bench::knob("GEO_EPOCHS", 30, 200);

    trace::EosTraceGenerator generator({});
    std::vector<trace::AccessRecord> trace_records =
        generator.generate(records);
    std::cout << "Synthetic EOS trace: " << trace_records.size()
              << " records, " << trace::cernFeatureSet().size()
              << " features, " << epochs << " epochs\n\n";

    trace::PrepareOptions options;
    options.smoothingWindow = 32;
    trace::PreparedData prepared = trace::prepareDataset(
        trace_records, trace::cernFeatureSet(), options);
    nn::DataSplit split = nn::chronologicalSplit(prepared.dataset);

    TextTable table("Dense family on the EOS trace (Z = 13)");
    table.setHeader({"Model", "Test error (%)", "Training (s)",
                     "Prediction (ms)"});
    for (int number : {1, 4, 6, 11}) {
        Rng rng(3000 + static_cast<uint64_t>(number));
        nn::Sequential model = nn::buildModel(number, 13, rng);
        nn::SgdOptimizer opt(0.05, 5.0);
        nn::TrainOptions train_options;
        train_options.epochs = epochs;
        train_options.shuffle = true;
        nn::TrainResult result =
            model.train(split.train, split.validation, opt,
                        train_options);
        if (result.diverged || model.looksDiverged(split.test)) {
            table.addRow({std::to_string(number), "Diverged",
                          TextTable::num(result.seconds, 2), "-"});
            continue;
        }
        auto t0 = std::chrono::steady_clock::now();
        nn::Matrix predictions = model.predict(split.test.inputs);
        auto t1 = std::chrono::steady_clock::now();
        double predict_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();

        std::vector<double> pred, target;
        for (size_t r = 0; r < split.test.size(); ++r) {
            pred.push_back(
                prepared.denormalizeTarget(predictions.at(r, 0)));
            target.push_back(prepared.denormalizeTarget(
                split.test.targets.at(r, 0)));
        }
        table.addRow({std::to_string(number),
                      TextTable::meanStd(
                          meanAbsoluteRelativeError(pred, target),
                          stddevAbsoluteRelativeError(pred, target)),
                      TextTable::num(result.seconds, 2),
                      TextTable::num(predict_ms, 1)});
        std::cerr << "scored model " << number << "\n";
    }
    table.print(std::cout);

    // The feature-width scaling claim: Z = 13 training costs more
    // than Z = 6 on identical data volumes.
    auto epoch_seconds = [&](size_t z) {
        Rng rng(123);
        nn::Sequential model = nn::buildModel(1, z, rng);
        nn::Dataset data;
        data.inputs = nn::Matrix(2048, z);
        data.inputs.fillNormal(rng, 0.3);
        data.targets = nn::Matrix(2048, 1, 0.5);
        nn::SgdOptimizer opt(0.01);
        nn::TrainOptions one_epoch;
        one_epoch.epochs = 3;
        return model.train(data, {}, opt, one_epoch).seconds / 3.0;
    };
    double z6 = epoch_seconds(6);
    double z13 = epoch_seconds(13);
    std::cout << "\nEpoch cost scaling: Z=6 "
              << TextTable::num(z6 * 1000.0, 1) << " ms vs Z=13 "
              << TextTable::num(z13 * 1000.0, 1) << " ms per epoch ("
              << TextTable::num(z13 / z6, 1)
              << "x; paper trains both in comparable tens of seconds "
                 "on GPU)\n";
    std::cout << "Shape check - wider features cost more: "
              << (z13 > z6 ? "OK" : "MISMATCH") << "\n";
    return 0;
}
