/**
 * @file
 * Fault-recovery experiment (beyond the paper, "Fig. 7"): one of the
 * mounts of the initial even spread first degrades (a RAID rebuild at
 * ~45% bandwidth), then dies outright mid-experiment. The paper only
 * ever runs Geomancy on a healthy Bluesky node; this harness measures
 * what the learned layout buys when the hardware turns hostile:
 *
 *  - the tuned layout has usually *already drained* the slow victim
 *    mount for performance reasons — optimization doubles as fault
 *    avoidance, while the static spread keeps 1/6 of its files there;
 *  - the degradation window is the warning shot for any stragglers:
 *    the measured mean on the sick mount collapses and the model
 *    evacuates them while the data is still reachable;
 *  - after the kill, accesses to stranded files fail with zero
 *    throughput, so whatever was not evacuated is lost performance;
 *  - the resilient control path (retry/backoff, circuit breaker,
 *    offline-aware action checking) keeps the pipeline from wedging
 *    on the dead mount.
 *
 * Reported per policy: healthy / degraded / post-kill phase means,
 * post-kill steady state, throughput retained, and time-to-recover
 * (accesses after the kill until the smoothed series climbs back to
 * 90% of the policy's own healthy mean; "never" when it stays down).
 */

#include <iostream>
#include <memory>

#include "experiment_common.hh"
#include "storage/fault_injector.hh"
#include "util/ascii_chart.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace {

/** Everything measured for one policy under the fault scenario. */
struct FaultScenarioResult
{
    std::string name;
    geo::core::ExperimentResult result;
    double healthyMean = 0.0;  ///< before the degradation
    double degradedMean = 0.0; ///< degradation window
    double postKillMean = 0.0; ///< whole post-kill phase
    double steadyMean = 0.0;   ///< last quarter of the post-kill phase
    double killTime = 0.0;     ///< sim seconds of the outage
    /** Accesses after the kill until 90% of healthyMean (SIZE_MAX
     *  when the series never got back there). */
    size_t recoverAccesses = 0;
    uint64_t abortedMoves = 0;
    int64_t faultEvents = 0;   ///< ReplayDB rows (Geomancy only)
    int64_t moveAttempts = 0;  ///< ReplayDB rows (Geomancy only)
    size_t movesOntoDeadAfterKill = 0; ///< must stay 0 (Geomancy only)
};

} // namespace

int
main()
{
    using namespace geo;
    bench::BenchObservability observability;
    bench::header("Fig. 7 - surviving a degrading, then dying mount",
                  "fault-injection extension (paper runs healthy only)");

    core::ExperimentConfig config = bench::benchExperimentConfig();
    config.measuredRuns = bench::knob("GEO_FIG7_RUNS", 120, 300);
    const size_t degrade_run = config.measuredRuns / 3;
    const size_t kill_run = 2 * config.measuredRuns / 3;
    const uint64_t master_seed = bench::knob("GEO_FIG7_SEED", 7, 7);

    auto run_scenario = [&](bench::PolicyKind kind,
                            const std::string &label) {
        bench::ExperimentSetup setup;
        setup.system = storage::makeBlueskySystem(master_seed);
        setup.workload = std::make_unique<workload::Belle2Workload>(
            *setup.system);
        switch (kind) {
          case bench::PolicyKind::GeomancyDynamic: {
            core::GeomancyConfig gconfig = bench::benchGeomancyConfig();
            // The full resilient pipeline: scheduler with the circuit
            // breaker (gap checking off so evacuation of a busy mount
            // is not starved) and chunked, retried migrations.
            gconfig.useScheduler = true;
            gconfig.scheduler.checkGaps = false;
            gconfig.scheduler.fileCooldownSeconds = 30.0;
            setup.geomancy = std::make_unique<core::Geomancy>(
                *setup.system, setup.workload->files(), gconfig);
            setup.policy = std::make_unique<core::GeomancyDynamicPolicy>(
                *setup.geomancy);
            break;
          }
          case bench::PolicyKind::Lru:
            setup.policy = std::make_unique<core::LruPolicy>();
            break;
          default:
            setup.policy = std::make_unique<core::NoOpPolicy>();
            break;
        }

        // The injector's stream is threaded off the master seed, so a
        // re-run of the bench replays the identical fault history.
        storage::FaultInjectorConfig fconfig;
        uint64_t seed_state = master_seed;
        fconfig.seed = splitmix64(seed_state);
        storage::FaultInjector injector(*setup.system, fconfig);
        setup.system->attachFaultInjector(&injector);
        if (setup.geomancy) {
            core::ReplayDb &db = setup.geomancy->replayDb();
            injector.onTransition([&db](const storage::FaultEvent &ev,
                                        bool active, double now) {
                core::FaultEventRecord rec;
                rec.timestamp = now;
                rec.device = ev.device;
                rec.kind = static_cast<int>(ev.kind);
                rec.active = active;
                rec.magnitude = ev.magnitude;
                db.insertFaultEvent(rec);
            });
        }

        // The victim is a slow mount the even initial spread uses:
        // the interesting question is what each policy did with the
        // files that started there.
        const storage::DeviceId victim =
            setup.system->deviceByName("var");
        FaultScenarioResult scenario;
        scenario.name = label;

        core::ExperimentRunner runner(*setup.system, *setup.workload,
                                      *setup.policy, config);
        runner.setRunHook([&](size_t run) {
            double now = setup.system->clock().now();
            if (run == degrade_run) {
                storage::FaultEvent ev;
                ev.device = victim;
                ev.kind = storage::FaultKind::Degradation;
                ev.start = now;
                ev.duration = 0.0; // the rebuild never finishes
                ev.magnitude = 0.45;
                injector.addEvent(ev);
            } else if (run == kill_run) {
                storage::FaultEvent ev;
                ev.device = victim;
                ev.kind = storage::FaultKind::Outage;
                ev.start = now;
                ev.duration = 0.0; // dead for good
                injector.addEvent(ev);
                scenario.killTime = now;
            }
        });
        scenario.result = runner.run();

        // Phase means on the access axis (phases are proportional to
        // run numbers, as in the Fig. 6 harness).
        const std::vector<double> &series =
            scenario.result.throughputSeries;
        size_t n = series.size();
        size_t degrade_at = n * degrade_run / config.measuredRuns;
        size_t kill_at = n * kill_run / config.measuredRuns;
        StatAccumulator healthy, degraded, post, steady;
        for (size_t i = 0; i < n; ++i) {
            if (i < degrade_at) {
                if (i >= degrade_at / 2) // skip the learning transient
                    healthy.add(series[i]);
            } else if (i < kill_at) {
                degraded.add(series[i]);
            } else {
                post.add(series[i]);
                if (i >= n - (n - kill_at) / 4)
                    steady.add(series[i]);
            }
        }
        scenario.healthyMean = healthy.mean();
        scenario.degradedMean = degraded.mean();
        scenario.postKillMean = post.mean();
        scenario.steadyMean = steady.mean();

        // Time-to-recover: accesses after the kill until the smoothed
        // series first climbs back to 90% of the policy's own healthy
        // mean. A policy whose files are stranded on the dead mount
        // never gets back there.
        std::vector<double> smoothed =
            scenario.result.smoothedSeries(config.seriesWindow);
        scenario.recoverAccesses = SIZE_MAX;
        for (size_t i = kill_at; i < smoothed.size(); ++i) {
            if (smoothed[i] >= 0.9 * scenario.healthyMean) {
                scenario.recoverAccesses = i - kill_at;
                break;
            }
        }

        scenario.abortedMoves = setup.system->abortedMoveCount();
        if (setup.geomancy) {
            core::ReplayDb &db = setup.geomancy->replayDb();
            scenario.faultEvents = db.faultEventCount();
            scenario.moveAttempts = db.moveAttemptCount();
            for (const core::MovementRecord &move :
                 db.recentMovements(100000)) {
                if (move.timestamp > scenario.killTime &&
                    move.toDevice == victim)
                    ++scenario.movesOntoDeadAfterKill;
            }
        }
        std::cerr << "finished " << label << "\n";
        return scenario;
    };

    FaultScenarioResult geomancy = run_scenario(
        bench::PolicyKind::GeomancyDynamic, "Geomancy (resilient)");
    FaultScenarioResult lru =
        run_scenario(bench::PolicyKind::Lru, "LRU");
    FaultScenarioResult stat =
        run_scenario(bench::PolicyKind::NoOp, "static layout");

    TextTable table("Throughput through the fault timeline (GB/s)");
    table.setHeader({"Phase", "Geomancy", "LRU", "static"});
    auto row = [&](const std::string &phase, double g, double l,
                   double s) {
        table.addRow({phase, bench::gbps(g), bench::gbps(l),
                      bench::gbps(s)});
    };
    row("healthy", geomancy.healthyMean, lru.healthyMean,
        stat.healthyMean);
    row("mount degraded (45% bw)", geomancy.degradedMean,
        lru.degradedMean, stat.degradedMean);
    row("mount dead (whole phase)", geomancy.postKillMean,
        lru.postKillMean, stat.postKillMean);
    row("mount dead (steady state)", geomancy.steadyMean,
        lru.steadyMean, stat.steadyMean);
    table.print(std::cout);

    TextTable recovery("Recovery metrics");
    recovery.setHeader({"Metric", "Geomancy", "LRU", "static"});
    auto fmt_recover = [](size_t accesses) {
        return accesses == SIZE_MAX ? std::string("never")
                                    : std::to_string(accesses);
    };
    recovery.addRow({"throughput retained vs healthy (%)",
                     TextTable::num(100.0 * geomancy.steadyMean /
                                    geomancy.healthyMean, 1),
                     TextTable::num(100.0 * lru.steadyMean /
                                    lru.healthyMean, 1),
                     TextTable::num(100.0 * stat.steadyMean /
                                    stat.healthyMean, 1)});
    recovery.addRow({"time to recover (accesses)",
                     fmt_recover(geomancy.recoverAccesses),
                     fmt_recover(lru.recoverAccesses),
                     fmt_recover(stat.recoverAccesses)});
    recovery.addRow({"migrations aborted by faults",
                     std::to_string(geomancy.abortedMoves),
                     std::to_string(lru.abortedMoves),
                     std::to_string(stat.abortedMoves)});
    recovery.print(std::cout);

    std::cout << "\nGeomancy ReplayDB forensic trail: "
              << geomancy.faultEvents << " fault transitions, "
              << geomancy.moveAttempts << " migration attempts logged\n";

    // Scheduler admission accounting, read from the metric registry.
    // Only the Geomancy scenario owns a scheduler, so these counters
    // are entirely its doing.
    auto &registry = util::MetricRegistry::global();
    auto count = [&registry](const char *name) {
        return std::to_string(registry.counterValue(name));
    };
    TextTable sched("Scheduler admission (Geomancy, metric registry)");
    sched.setHeader({"Counter", "Count"});
    sched.addRow({"moves admitted", count("scheduler.admitted")});
    sched.addRow({"skipped: file cooldown",
                  count("scheduler.rejected_cooldown")});
    sched.addRow({"skipped: gap check", count("scheduler.rejected_gap")});
    sched.addRow({"skipped: circuit breaker",
                  count("scheduler.rejected_breaker")});
    sched.addRow({"breaker trips", count("scheduler.breaker_trips")});
    sched.addRow({"breaker probes", count("scheduler.breaker_probes")});
    sched.addRow({"retries executed", count("control.retries")});
    sched.addRow({"moves abandoned", count("control.moves_abandoned")});
    sched.print(std::cout);

    std::cout << "\nThroughput (GB/s; ^ marks degradation, then the "
                 "kill):\n";
    auto to_gb = [](std::vector<double> series) {
        for (double &v : series)
            v /= 1e9;
        return series;
    };
    size_t n = geomancy.result.throughputSeries.size();
    AsciiChartOptions chart;
    chart.height = 14;
    chart.marks = {n * degrade_run / config.measuredRuns / 500,
                   n * kill_run / config.measuredRuns / 500};
    std::cout << asciiChartMulti(
        {{"Geomancy (resilient)",
          to_gb(geomancy.result.bucketedSeries(500))},
         {"LRU", to_gb(lru.result.bucketedSeries(500))},
         {"static layout", to_gb(stat.result.bucketedSeries(500))}},
        chart);

    std::cout << "\nShape checks:\n";
    bool beats_static = geomancy.steadyMean > stat.steadyMean;
    std::cout << "  Geomancy steady state beats static:    "
              << (beats_static ? "OK" : "MISMATCH") << " ("
              << bench::gbps(geomancy.steadyMean) << " vs "
              << bench::gbps(stat.steadyMean) << " GB/s)\n";
    bool no_dead_moves = geomancy.movesOntoDeadAfterKill == 0;
    std::cout << "  no move onto the dead mount post-kill: "
              << (no_dead_moves ? "OK" : "MISMATCH") << " ("
              << geomancy.movesOntoDeadAfterKill << " violations)\n";
    // The static spread definitely has files on the sick mount, so
    // its series must show the rebuild window.
    bool dip_visible = stat.degradedMean < stat.healthyMean;
    std::cout << "  degradation visible before the kill:   "
              << (dip_visible ? "OK" : "MISMATCH") << "\n";
    bool trail_present =
        geomancy.faultEvents >= 2 && geomancy.moveAttempts > 0;
    std::cout << "  fault + attempt trail in the ReplayDB: "
              << (trail_present ? "OK" : "MISMATCH") << "\n";
    return beats_static && no_dead_moves ? 0 : 1;
}
