/**
 * @file
 * Shared setup for the live-system experiment harnesses (Figs. 5a/5b/6
 * and Table IV): builds identical fresh Bluesky systems per policy so
 * every policy faces the same workload and contention dynamics.
 */

#ifndef GEO_BENCH_EXPERIMENT_COMMON_HH
#define GEO_BENCH_EXPERIMENT_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "util/metrics.hh"
#include "util/trace_event.hh"
#include "workload/belle2.hh"

namespace geo {
namespace bench {

/**
 * Opt-in observability for the bench harnesses, driven by environment
 * variables so the default runs stay untouched (fig5a byte-equality):
 *
 *   GEO_TRACE_OUT=FILE    collect a Chrome trace of the run
 *   GEO_METRICS_OUT=FILE  dump the metric registry as JSON at exit
 *
 * Construct one at the top of main(); the destructor writes the files.
 */
class BenchObservability
{
  public:
    BenchObservability()
    {
        if (const char *path = std::getenv("GEO_TRACE_OUT")) {
            tracePath_ = path;
            util::TraceCollector::global().enable();
        }
        if (const char *path = std::getenv("GEO_METRICS_OUT"))
            metricsPath_ = path;
        util::MetricRegistry::global().reset();
    }

    ~BenchObservability()
    {
        if (!tracePath_.empty()) {
            util::TraceCollector &collector =
                util::TraceCollector::global();
            collector.disable();
            if (collector.writeJsonFile(tracePath_))
                std::fprintf(stderr, "trace written to %s\n",
                             tracePath_.c_str());
        }
        if (!metricsPath_.empty() &&
            util::MetricRegistry::global().writeJsonFile(metricsPath_))
            std::fprintf(stderr, "metrics written to %s\n",
                         metricsPath_.c_str());
    }

  private:
    std::string tracePath_;
    std::string metricsPath_;
};

/** The policies the paper's experiments compare. */
enum class PolicyKind {
    NoOp,
    Lru,
    Mru,
    Lfu,
    RandomStatic,
    RandomDynamic,
    GeomancyStatic,
    GeomancyDynamic,
    SingleMount,
};

/** Everything one policy run owns. */
struct ExperimentSetup
{
    std::unique_ptr<storage::StorageSystem> system;
    std::unique_ptr<workload::Belle2Workload> workload;
    std::unique_ptr<core::Geomancy> geomancy; ///< only for Geomancy runs
    std::unique_ptr<core::PlacementPolicy> policy;
};

/** Geomancy configuration scaled by the bench knobs. */
inline core::GeomancyConfig
benchGeomancyConfig()
{
    core::GeomancyConfig config;
    config.drl.epochs = knob("GEO_DRL_EPOCHS", 20, 60);
    config.daemon.windowPerDevice = knob("GEO_DRL_WINDOW", 2000, 2000);
    config.minHistory = 500;
    return config;
}

/** Experiment phases scaled by the bench knobs (paper: 300 runs). */
inline core::ExperimentConfig
benchExperimentConfig()
{
    core::ExperimentConfig config;
    config.warmupRuns = knob("GEO_WARMUP_RUNS", 6, 25);
    config.measuredRuns = knob("GEO_MEASURED_RUNS", 100, 300);
    config.cadence = 5; // Geomancy moves data every five runs
    return config;
}

/**
 * Build a fresh system + workload + policy. Every setup with the same
 * `seed` sees identical external traffic and workload randomness, so
 * policy comparisons are apples-to-apples.
 */
inline ExperimentSetup
makeSetup(PolicyKind kind, uint64_t seed = 7,
          storage::DeviceId single_mount = 0,
          const std::vector<storage::DeviceConfig> *device_configs =
              nullptr)
{
    ExperimentSetup setup;
    if (device_configs) {
        setup.system = std::make_unique<storage::StorageSystem>();
        for (const storage::DeviceConfig &config : *device_configs)
            setup.system->addDevice(config);
    } else {
        setup.system = storage::makeBlueskySystem(seed);
    }
    setup.workload =
        std::make_unique<workload::Belle2Workload>(*setup.system);

    switch (kind) {
      case PolicyKind::NoOp:
        setup.policy = std::make_unique<core::NoOpPolicy>();
        break;
      case PolicyKind::Lru:
        setup.policy = std::make_unique<core::LruPolicy>();
        break;
      case PolicyKind::Mru:
        setup.policy = std::make_unique<core::MruPolicy>();
        break;
      case PolicyKind::Lfu:
        setup.policy = std::make_unique<core::LfuPolicy>();
        break;
      case PolicyKind::RandomStatic:
        setup.policy = std::make_unique<core::RandomPolicy>(false);
        break;
      case PolicyKind::RandomDynamic:
        setup.policy = std::make_unique<core::RandomPolicy>(true);
        break;
      case PolicyKind::GeomancyStatic:
        setup.geomancy = std::make_unique<core::Geomancy>(
            *setup.system, setup.workload->files(),
            benchGeomancyConfig());
        setup.policy =
            std::make_unique<core::GeomancyStaticPolicy>(*setup.geomancy);
        break;
      case PolicyKind::GeomancyDynamic:
        setup.geomancy = std::make_unique<core::Geomancy>(
            *setup.system, setup.workload->files(),
            benchGeomancyConfig());
        setup.policy =
            std::make_unique<core::GeomancyDynamicPolicy>(*setup.geomancy);
        break;
      case PolicyKind::SingleMount:
        setup.policy =
            std::make_unique<core::SingleMountPolicy>(single_mount);
        break;
    }
    return setup;
}

/** Run one policy end to end. */
inline core::ExperimentResult
runPolicy(PolicyKind kind, uint64_t seed = 7,
          storage::DeviceId single_mount = 0,
          const std::vector<storage::DeviceConfig> *device_configs =
              nullptr)
{
    ExperimentSetup setup =
        makeSetup(kind, seed, single_mount, device_configs);
    core::ExperimentRunner runner(*setup.system, *setup.workload,
                                  *setup.policy, benchExperimentConfig());
    return runner.run();
}

} // namespace bench
} // namespace geo

#endif // GEO_BENCH_EXPERIMENT_COMMON_HH
