/**
 * @file
 * Regenerates Fig. 5b (experiment 2): Geomancy dynamic vs the static
 * baselines - random static placement and a single frozen Geomancy
 * prediction ("manual tuning").
 *
 * Expected shape (paper Section VII): Geomancy dynamic beats random
 * static by ~24% and Geomancy static by ~30% over 16,000 accesses;
 * static layouts show larger peaks and valleys because they cannot
 * react to contention shifts.
 */

#include <iostream>

#include "experiment_common.hh"
#include "util/ascii_chart.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    bench::BenchObservability observability;
    using bench::PolicyKind;
    bench::header("Fig. 5b - Geomancy vs static placements",
                  "Section VII, Fig. 5b (experiment 2)");

    // Experiment 2 runs during a period where even the RAID-5 mount
    // sees long heavy external episodes ("contention on each storage
    // storage device changes", Section VII) — the regime in which a
    // frozen layout, however good at creation time, goes stale.
    std::vector<storage::DeviceConfig> configs =
        storage::blueskyDeviceConfigs(7);
    configs[0].traffic.burstProbability = 0.25;
    configs[0].traffic.burstMagnitude = 8.0;
    configs[0].traffic.burstSeconds = 180.0;

    core::ExperimentResult geomancy =
        bench::runPolicy(PolicyKind::GeomancyDynamic, 7, 0, &configs);
    std::cerr << "finished Geomancy dynamic\n";
    core::ExperimentResult random_static =
        bench::runPolicy(PolicyKind::RandomStatic, 7, 0, &configs);
    std::cerr << "finished random static\n";

    // Geomancy static follows the paper's protocol: its single
    // prediction is trained on ~10,000 performance metrics gathered
    // during a *random dynamic* phase, then frozen and applied to the
    // later measurement period ("a simulation of manually tuning data
    // layouts"). The staleness of that one-shot layout is the point of
    // the comparison.
    core::ExperimentResult geomancy_static;
    {
        bench::ExperimentSetup setup =
            bench::makeSetup(PolicyKind::GeomancyStatic, 7, 0, &configs);
        Rng shuffle_rng(99);
        size_t pre_runs = bench::knob("GEO_STATIC_PRETRAIN_RUNS", 15, 30);
        for (size_t run = 0; run < pre_runs; ++run) {
            setup.workload->executeRun();
            if ((run + 1) % 5 == 0) {
                for (storage::FileId file : setup.workload->files()) {
                    storage::DeviceId target = static_cast<
                        storage::DeviceId>(shuffle_rng.uniformInt(
                        0,
                        static_cast<int64_t>(
                            setup.system->deviceCount()) -
                            1));
                    setup.system->moveFile(file, target);
                }
            }
        }
        core::ExperimentRunner runner(*setup.system, *setup.workload,
                                      *setup.policy,
                                      bench::benchExperimentConfig());
        geomancy_static = runner.run();
    }
    std::cerr << "finished Geomancy static\n";

    TextTable table("Average workload throughput per policy");
    table.setHeader({"Policy", "Avg throughput (GB/s)",
                     "stddev of 500-access buckets"});
    auto bucket_stddev = [](const core::ExperimentResult &result) {
        StatAccumulator acc;
        for (double v : result.bucketedSeries(500))
            acc.add(v);
        return acc.stddev() / 1e9;
    };
    for (const auto *result :
         {&geomancy, &random_static, &geomancy_static}) {
        table.addRow({result->policyName,
                      bench::gbps(result->averageThroughput),
                      TextTable::num(bucket_stddev(*result), 3)});
    }
    table.print(std::cout);

    double vs_random =
        (geomancy.averageThroughput / random_static.averageThroughput -
         1.0) *
        100.0;
    double vs_static =
        (geomancy.averageThroughput / geomancy_static.averageThroughput -
         1.0) *
        100.0;
    std::cout << "\nGeomancy dynamic vs random static:   "
              << TextTable::num(vs_random, 1)
              << "%  (paper: ~24%)\n";
    std::cout << "Geomancy dynamic vs Geomancy static: "
              << TextTable::num(vs_static, 1)
              << "%  (paper: ~30%)\n";

    std::cout << "\nThroughput over time (GB/s, one point per 500 "
                 "accesses):\n";
    auto to_gb = [](std::vector<double> series) {
        for (double &v : series)
            v /= 1e9;
        return series;
    };
    AsciiChartOptions chart;
    chart.height = 14;
    std::cout << asciiChartMulti(
        {{"Geomancy dynamic", to_gb(geomancy.bucketedSeries(500))},
         {"random static", to_gb(random_static.bucketedSeries(500))},
         {"Geomancy static", to_gb(geomancy_static.bucketedSeries(500))}},
        chart);
    return 0;
}
