/**
 * @file
 * Fleet scale-out experiment (beyond the paper, "Fig. 10"): aggregate
 * optimizer throughput and decision-cycle latency of the shard
 * coordinator at 1/2/4(/8) shards over one shared substrate, against
 * the monolithic single-optimizer baseline.
 *
 * The workload is the BELLE II suite multiplied by a tenant count
 * (independent per-tenant seeds), partitioned over the shards by
 * stable hash. The 1-shard coordinator *is* the monolith — same code
 * path, no observe filter, no window scaling — so the comparison is
 * apples to apples. With N shards each decision cycle trains on ~1/N
 * of the fleet-wide telemetry window and scores ~1/N of the files, so
 * aggregate optimizer throughput (decision cycles completed per second
 * of optimizer wall time, workload execution excluded) should approach
 * N times the monolith's. The gate requires >= 2x at 4 shards.
 *
 * Invariants checked every round:
 *  - the cross-shard admission budget holds: no device is ever touched
 *    by more than maxMovesPerDevicePerRound admitted migrations in one
 *    round (as source or target);
 *  - the full pipeline cut (coordinator saveState) is digested per
 *    round; a same-seed twin of the 4-shard scenario must reproduce
 *    every round digest and the final checkpoint CRC byte-for-byte.
 *
 * GEO_FIG10_ROUNDS / GEO_FIG10_TENANTS override the scale (defaults
 * 6 rounds x 8 tenants reduced, 10 x 24 at GEO_BENCH_FULL=1).
 * Exits nonzero if the speedup gate, the budget invariant or the twin
 * digest check fails.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/shard_coordinator.hh"
#include "experiment_common.hh"
#include "storage/bluesky.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/state_io.hh"
#include "util/table.hh"
#include "workload/belle2.hh"

namespace {

using namespace geo;

struct ScaleConfig
{
    size_t shards = 1;
    size_t tenants = 8;
    size_t rounds = 6;
    size_t cadence = 2; ///< workload runs between coordinator rounds
    uint64_t seed = 7;
    size_t epochs = 3;
};

struct ScaleResult
{
    size_t shards = 0;
    size_t cycles = 0;          ///< decision cycles completed
    double optimizerSeconds = 0.0;
    double cyclesPerSec = 0.0;
    double meanCycleMs = 0.0;
    size_t applied = 0;
    uint64_t denied = 0;
    size_t peakDeviceMoves = 0;
    bool budgetOk = true;
    std::string digestLog;      ///< one CRC line per round
    uint32_t finalCrc = 0;      ///< CRC of the final checkpoint payload
};

ScaleResult
runScale(const ScaleConfig &sc)
{
    auto system = storage::makeBlueskySystem(sc.seed);
    workload::Belle2Config wcfg;
    wcfg.tenantCount = sc.tenants;
    workload::Belle2Workload workload(*system, wcfg);

    core::ShardCoordinatorConfig ccfg;
    ccfg.shardCount = sc.shards;
    ccfg.base.drl.epochs = sc.epochs;
    // Fleet-sized telemetry budget: the monolith pulls the full
    // window every cycle; scaleBudgets divides it across shards so the
    // fleet-wide budget stays constant.
    ccfg.base.daemon.windowPerDevice = 2000;
    ccfg.base.minHistory = 400;
    ccfg.base.sanityWindow = 4000;
    ccfg.maxMovesPerDevicePerRound = 4;
    core::ShardCoordinator coordinator(*system, workload.files(), ccfg);

    // Run-up so the first round already has telemetry to train on.
    for (size_t i = 0; i < 2; ++i)
        workload.executeRun();

    ScaleResult res;
    res.shards = sc.shards;
    for (size_t round = 1; round <= sc.rounds; ++round) {
        for (size_t r = 0; r < sc.cadence; ++r)
            workload.executeRun();

        auto began = std::chrono::steady_clock::now();
        std::vector<core::CycleReport> reports = coordinator.runRound();
        res.optimizerSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - began)
                .count();

        res.cycles += reports.size();
        for (const core::CycleReport &report : reports)
            res.applied += report.moves.applied;
        for (storage::DeviceId d = 0; d < system->deviceCount(); ++d) {
            const core::DeviceRoundUsage &usage =
                coordinator.roundUsage(d);
            if (ccfg.maxMovesPerDevicePerRound > 0 &&
                usage.moves > ccfg.maxMovesPerDevicePerRound) {
                warn("fig10[%zu shards, round %zu]: device %u saw %zu "
                     "admitted moves (budget %zu)",
                     sc.shards, round, (unsigned)d, usage.moves,
                     ccfg.maxMovesPerDevicePerRound);
                res.budgetOk = false;
            }
        }

        // Per-round digest of the full pipeline cut (every shard's
        // engine weights, RNG streams, retry queues, the system).
        std::ostringstream os;
        util::StateWriter w(os);
        coordinator.saveState(w);
        std::string payload = os.str();
        char line[64];
        std::snprintf(line, sizeof line, "%zu %08x\n", round,
                      util::crc32(payload));
        res.digestLog += line;
        if (round == sc.rounds)
            res.finalCrc = util::crc32(payload);
    }

    res.denied = coordinator.movesDenied();
    res.peakDeviceMoves = coordinator.peakDeviceMoves();
    if (res.optimizerSeconds > 0.0)
        res.cyclesPerSec =
            static_cast<double>(res.cycles) / res.optimizerSeconds;
    if (res.cycles > 0)
        res.meanCycleMs = res.optimizerSeconds * 1000.0 /
                          static_cast<double>(res.cycles);
    return res;
}

} // namespace

int
main()
{
    bench::BenchObservability observability;
    bench::header("Fig. 10 - fleet scale-out (shard coordinator)",
                  "multi-tenant extension (beyond the paper)");

    ScaleConfig base;
    base.rounds = bench::knob("GEO_FIG10_ROUNDS", 6, 10);
    base.tenants = bench::knob("GEO_FIG10_TENANTS", 8, 24);
    base.epochs = bench::knob("GEO_DRL_EPOCHS", 3, 20);

    std::vector<size_t> counts = {1, 2, 4};
    if (bench::fullScale())
        counts.push_back(8);

    auto &registry = util::MetricRegistry::global();
    std::vector<ScaleResult> results;
    for (size_t shards : counts) {
        ScaleConfig sc = base;
        sc.shards = shards;
        inform("fig10: measuring %zu shard%s (%zu tenants, %zu rounds)",
               shards, shards == 1 ? "" : "s", sc.tenants, sc.rounds);
        results.push_back(runScale(sc));
    }

    // Same-seed twin of the 4-shard scenario: every round digest and
    // the final checkpoint CRC must reproduce byte-for-byte.
    ScaleConfig twin_cfg = base;
    twin_cfg.shards = 4;
    inform("fig10: same-seed twin of the 4-shard scenario");
    ScaleResult twin = runScale(twin_cfg);
    const ScaleResult *four = nullptr;
    for (const ScaleResult &r : results)
        if (r.shards == 4)
            four = &r;
    if (!four)
        fatal("fig10: no 4-shard scenario ran");
    bool twin_identical = twin.digestLog == four->digestLog &&
                          twin.finalCrc == four->finalCrc;

    const ScaleResult &mono = results.front();
    double speedup4 = mono.cyclesPerSec > 0.0
                          ? four->cyclesPerSec / mono.cyclesPerSec
                          : 0.0;
    bool budgets_ok = true;
    for (const ScaleResult &r : results)
        budgets_ok = budgets_ok && r.budgetOk;
    budgets_ok = budgets_ok && twin.budgetOk;

    TextTable table("Fig. 10: aggregate optimizer throughput vs shards");
    table.setHeader({"shards", "cycles", "optimizer s", "cycles/s",
                     "mean cycle ms", "vs monolith", "applied",
                     "denied", "peak dev moves"});
    for (const ScaleResult &r : results) {
        double speedup = mono.cyclesPerSec > 0.0
                             ? r.cyclesPerSec / mono.cyclesPerSec
                             : 0.0;
        table.addRow({std::to_string(r.shards),
                      std::to_string(r.cycles),
                      TextTable::num(r.optimizerSeconds, 2),
                      TextTable::num(r.cyclesPerSec, 2),
                      TextTable::num(r.meanCycleMs, 1),
                      TextTable::num(speedup, 2) + "x",
                      std::to_string(r.applied),
                      std::to_string(r.denied),
                      std::to_string(r.peakDeviceMoves)});
        std::string prefix =
            "fig10.shards" + std::to_string(r.shards) + ".";
        registry.gauge(prefix + "cycles_per_sec").set(r.cyclesPerSec);
        registry.gauge(prefix + "mean_cycle_ms").set(r.meanCycleMs);
        registry.gauge(prefix + "applied")
            .set(static_cast<double>(r.applied));
        registry.gauge(prefix + "denied")
            .set(static_cast<double>(r.denied));
        registry.gauge(prefix + "peak_device_moves")
            .set(static_cast<double>(r.peakDeviceMoves));
    }
    table.print(std::cout);

    registry.gauge("fig10.scenarios")
        .set(static_cast<double>(results.size()));
    registry.gauge("fig10.speedup_4v1").set(speedup4);
    registry.gauge("fig10.twin_identical")
        .set(twin_identical ? 1.0 : 0.0);
    registry.gauge("fig10.budget_ok").set(budgets_ok ? 1.0 : 0.0);

    std::printf("\n4-shard aggregate optimizer throughput: %.2fx the "
                "monolith (gate: >= 2x)\n", speedup4);
    std::printf("per-device admission budgets: %s\n",
                budgets_ok ? "never exceeded" : "EXCEEDED");
    std::printf("same-seed twin (4 shards): %s\n",
                twin_identical ? "byte-identical digests and "
                                 "checkpoint CRC"
                               : "DIVERGED");

    bool pass = speedup4 >= 2.0 && budgets_ok && twin_identical;
    if (!pass)
        std::printf("\nFAIL: scale-out gate not met\n");
    return pass ? 0 : 1;
}
