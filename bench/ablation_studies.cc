/**
 * @file
 * Ablations of Geomancy's design decisions (DESIGN.md Section 4):
 *
 *  A. exploration rate (0 vs the paper's 10%-of-runs ~ 0.41/cycle);
 *  B. decision cadence (move every 1 / 5 / 20 runs — the paper found
 *     5 best: more often pays too much transfer overhead, less often
 *     makes placements stale);
 *  C. MAE-based prediction adjustment on/off (paper Section V-G);
 *  D. action-checker safeguards: measured-throughput sanity veto and
 *     the per-target move cap, evaluated under a contention shift
 *     (the regime where they matter);
 *  E. ReplayDB smoothing method (moving average vs none vs cumulative
 *     average — the paper argues the cumulative average erases the
 *     short-term dips that signal slowdowns).
 */

#include <iostream>

#include "experiment_common.hh"
#include "model_search_common.hh"
#include "util/table.hh"
#include "workload/interference.hh"

namespace {

using namespace geo;

/** Run Geomancy dynamic with a custom config and cadence. */
core::ExperimentResult
runGeomancy(const core::GeomancyConfig &gconfig, size_t cadence,
            size_t measured_runs, bool disturb = false)
{
    std::unique_ptr<storage::StorageSystem> system;
    if (disturb) {
        // The Fig. 6 period conditions (degraded RAID-5, quiet
        // Lustre): the regime where reacting to the disturbance has
        // real headroom, hence where these knobs can matter at all.
        std::vector<storage::DeviceConfig> configs =
            storage::blueskyDeviceConfigs(7);
        configs[0].readBandwidth = 4.8e9;
        configs[1].traffic.baseLoad = 0.2;
        configs[1].traffic.diurnalAmplitude = 0.4;
        configs[1].traffic.burstProbability = 0.06;
        configs[1].traffic.burstMagnitude = 2.0;
        system = std::make_unique<storage::StorageSystem>();
        for (const storage::DeviceConfig &config : configs)
            system->addDevice(config);
    } else {
        system = storage::makeBlueskySystem();
    }
    workload::Belle2Workload workload(*system);
    core::Geomancy geomancy(*system, workload.files(), gconfig);
    core::GeomancyDynamicPolicy policy(geomancy);

    core::ExperimentConfig config = bench::benchExperimentConfig();
    config.cadence = cadence;
    config.measuredRuns = measured_runs;

    core::ExperimentRunner runner(*system, workload, policy, config);
    std::unique_ptr<workload::InterferenceWorkload> other;
    if (disturb) {
        storage::DeviceId file0 = system->deviceByName("file0");
        other = std::make_unique<workload::InterferenceWorkload>(
            *system, workload::InterferenceWorkload::defaultConfig(),
            std::vector<storage::DeviceId>{file0});
        size_t start = measured_runs / 3;
        runner.setRunHook([&, start](size_t run) {
            if (run < start)
                return;
            for (int burst = 0; burst < 4; ++burst)
                other->executeRunConcurrent();
        });
    }
    return runner.run();
}

} // namespace

int
main()
{
    using namespace geo;
    bench::BenchObservability observability;
    bench::header("Ablation studies", "DESIGN.md Section 4");
    const size_t runs = bench::knob("GEO_ABLATION_RUNS", 50, 150);

    // ---- A. exploration rate -------------------------------------------
    {
        TextTable table("A. exploration rate (under a contention shift)");
        table.setHeader({"explorationRate", "avg throughput (GB/s)",
                         "files moved"});
        const std::vector<double> rates = {0.0, 0.41};
        std::vector<std::future<core::ExperimentResult>> ran;
        for (double rate : rates) {
            core::GeomancyConfig config = bench::benchGeomancyConfig();
            config.explorationRate = rate;
            ran.push_back(util::ThreadPool::global().submit(
                [config, runs]() {
                    return runGeomancy(config, 5, runs, /*disturb=*/true);
                }));
        }
        for (size_t i = 0; i < rates.size(); ++i) {
            core::ExperimentResult result = ran[i].get();
            table.addRow({TextTable::num(rates[i], 2),
                          bench::gbps(result.averageThroughput),
                          std::to_string(result.filesMoved)});
            std::cerr << "A: rate " << rates[i] << " done\n";
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- B. decision cadence -------------------------------------------
    {
        TextTable table("B. decision cadence (runs between moves)");
        table.setHeader({"cadence", "avg throughput (GB/s)",
                         "files moved", "GB moved"});
        const std::vector<size_t> cadences = {1, 5, 20};
        std::vector<std::future<core::ExperimentResult>> ran;
        for (size_t cadence : cadences) {
            ran.push_back(util::ThreadPool::global().submit(
                [cadence, runs]() {
                    return runGeomancy(bench::benchGeomancyConfig(),
                                       cadence, runs);
                }));
        }
        for (size_t i = 0; i < cadences.size(); ++i) {
            core::ExperimentResult result = ran[i].get();
            table.addRow({std::to_string(cadences[i]),
                          bench::gbps(result.averageThroughput),
                          std::to_string(result.filesMoved),
                          TextTable::num(
                              static_cast<double>(result.bytesMoved) /
                                  1e9,
                              1)});
            std::cerr << "B: cadence " << cadences[i] << " done\n";
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- C. MAE prediction adjustment ------------------------------------
    {
        TextTable table("C. MAE-based prediction adjustment (Sec. V-G)");
        table.setHeader({"adjustWithMae", "model-1 test error (%)"});
        bench::Telemetry telemetry = bench::collectTelemetry(40);
        std::vector<core::PerfRecord> people = telemetry.perDevice[2];
        for (bool adjust : {true, false}) {
            // Score through the engine so the adjustment path runs.
            core::ReplayDb db;
            core::DaemonConfig dconfig;
            dconfig.smoothingWindow = 16;
            core::InterfaceDaemon daemon(db, dconfig);
            daemon.receiveBatch(people);
            core::DrlConfig econfig;
            econfig.epochs = 30;
            econfig.adjustWithMae = adjust;
            core::DrlEngine engine(econfig);
            core::RetrainStats stats =
                engine.retrain(daemon.buildTrainingBatch({2}));
            if (!stats.trained) {
                table.addRow({adjust ? "on" : "off", "(not trained)"});
                continue;
            }
            // Apply the Sec. V-G adjustment to the held-out test
            // slice of the same batch and compare the error with the
            // raw predictions (RetrainStats reports the raw error).
            core::TrainingBatch batch = daemon.buildTrainingBatch({2});
            nn::DataSplit split = nn::chronologicalSplit(batch.dataset);
            nn::Matrix raw = engine.model().predict(split.test.inputs);
            std::vector<double> pred, target;
            for (size_t r = 0; r < split.test.size(); ++r) {
                double p = batch.denormalizeTarget(raw.at(r, 0));
                p += engine.adjustSign() * engine.maeFraction() * p;
                pred.push_back(std::max(0.0, p));
                target.push_back(batch.denormalizeTarget(
                    split.test.targets.at(r, 0)));
            }
            table.addRow({adjust ? "on" : "off",
                          TextTable::num(
                              meanAbsoluteRelativeError(pred, target),
                              2)});
            std::cerr << "C: adjust " << adjust << " done\n";
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- D. action-checker safeguards ------------------------------------
    {
        TextTable table(
            "D. checker safeguards under a contention shift");
        table.setHeader({"sanity veto", "per-target cap",
                         "avg throughput (GB/s)"});
        struct Case
        {
            size_t sanity;
            size_t cap;
        };
        const std::vector<Case> cases = {
            {4000, 3}, {0, 3}, {4000, 0}, {0, 0}};
        std::vector<std::future<core::ExperimentResult>> ran;
        for (const Case &c : cases) {
            core::GeomancyConfig config = bench::benchGeomancyConfig();
            config.sanityWindow = c.sanity;
            config.checker.maxMovesPerTarget = c.cap;
            ran.push_back(util::ThreadPool::global().submit(
                [config, runs]() {
                    return runGeomancy(config, 5, runs, /*disturb=*/true);
                }));
        }
        for (size_t i = 0; i < cases.size(); ++i) {
            const Case &c = cases[i];
            core::ExperimentResult result = ran[i].get();
            table.addRow({c.sanity ? "on" : "off",
                          c.cap ? "on" : "off",
                          bench::gbps(result.averageThroughput)});
            std::cerr << "D: sanity " << c.sanity << " cap " << c.cap
                      << " done\n";
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- E. smoothing method ---------------------------------------------
    {
        TextTable table("E. ReplayDB smoothing (model-1 test error)");
        table.setHeader({"method", "error (%)"});
        bench::Telemetry telemetry = bench::collectTelemetry(40);
        std::vector<core::PerfRecord> people = telemetry.perDevice[2];
        struct Method
        {
            const char *name;
            size_t window; ///< 1 = none; 0 = cumulative sentinel
        };
        for (const Method &m : {Method{"none", 1},
                                Method{"moving average (32)", 32},
                                Method{"moving average (8)", 8}}) {
            setenv("GEO_SMOOTH", std::to_string(m.window).c_str(), 1);
            bench::ModelScore score =
                bench::scoreModelAveraged(1, people, 30, 900, 3);
            table.addRow({m.name,
                          score.diverged
                              ? "Diverged"
                              : TextTable::meanStd(
                                    score.meanAbsRelError,
                                    score.stddevAbsRelError)});
            std::cerr << "E: " << m.name << " done\n";
        }
        unsetenv("GEO_SMOOTH");
        table.print(std::cout);
    }

    std::cout
        << "\nReading the results: cadence 20 is stale (paper agrees); "
           "in our substrate migration overhead is cheaper than on the "
           "real Bluesky, so cadence 1 is not punished as the paper "
           "observed. Smoothing (Sec. V-E) is load-bearing for model "
           "quality. The safeguard and exploration rows quantify the "
           "contention-shift regime of Fig. 6.\n";
    return 0;
}
