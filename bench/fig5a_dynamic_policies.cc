/**
 * @file
 * Regenerates Fig. 5a (experiment 1): Geomancy dynamic vs the dynamic
 * heuristics (LRU, MRU, LFU, random dynamic) on the live system.
 *
 * Expected shape (paper Section VII): Geomancy's average throughput
 * beats every heuristic by at least ~11%, LFU comes closest (paper:
 * 4.46 GB/s vs Geomancy's 4.98 GB/s), and Geomancy moves only small
 * subsets of files (1-14) at each decision point.
 */

#include <future>
#include <iostream>
#include <iterator>
#include <vector>

#include "bench_common.hh"
#include "experiment_common.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

int
main()
{
    using namespace geo;
    bench::BenchObservability observability;
    using bench::PolicyKind;
    bench::header("Fig. 5a - Geomancy vs dynamic placement policies",
                  "Section VII, Fig. 5a (experiment 1)");

    struct Row
    {
        PolicyKind kind;
        const char *label;
    };
    const Row rows[] = {
        {PolicyKind::GeomancyDynamic, "Geomancy dynamic"},
        {PolicyKind::Lfu, "LFU"},
        {PolicyKind::Lru, "LRU"},
        {PolicyKind::Mru, "MRU"},
        {PolicyKind::RandomDynamic, "random dynamic"},
    };

    TextTable table("Average workload throughput per policy");
    table.setHeader({"Policy", "Avg throughput (GB/s)", "accesses",
                     "files moved", "GB moved"});

    // Every (policy, trial) pair is an independent deterministic
    // simulation, so they all fan out across the pool; rows aggregate
    // and print in fixed policy order. GEO_TRIALS=1 (the default)
    // reproduces the paper run seed-for-seed; higher values average
    // the throughput over extra seeds.
    const size_t trials = bench::knob("GEO_TRIALS", 1, 1);
    util::ThreadPool &pool = util::ThreadPool::global();
    std::vector<std::vector<std::future<core::ExperimentResult>>> runs;
    for (const Row &row : rows) {
        std::vector<std::future<core::ExperimentResult>> per_policy;
        per_policy.reserve(trials);
        for (size_t t = 0; t < trials; ++t) {
            PolicyKind kind = row.kind;
            uint64_t seed = 7 + t * 101;
            per_policy.push_back(pool.submit(
                [kind, seed]() { return bench::runPolicy(kind, seed); }));
        }
        runs.push_back(std::move(per_policy));
    }

    double geomancy_avg = 0.0, best_heuristic = 0.0;
    std::string best_heuristic_name;
    std::vector<core::MoveEvent> geomancy_moves;
    for (size_t r = 0; r < std::size(rows); ++r) {
        const Row &row = rows[r];
        // Counts and move events come from the first (paper) seed;
        // extra trials only refine the throughput average.
        core::ExperimentResult result = runs[r][0].get();
        double mean_throughput = result.averageThroughput;
        for (size_t t = 1; t < trials; ++t)
            mean_throughput += runs[r][t].get().averageThroughput;
        mean_throughput /= static_cast<double>(trials);
        table.addRow({row.label, bench::gbps(mean_throughput),
                      std::to_string(result.totalAccesses),
                      std::to_string(result.filesMoved),
                      TextTable::num(
                          static_cast<double>(result.bytesMoved) / 1e9,
                          2)});
        if (row.kind == PolicyKind::GeomancyDynamic) {
            geomancy_avg = mean_throughput;
            geomancy_moves = result.moveEvents;
        } else if (mean_throughput > best_heuristic) {
            best_heuristic = mean_throughput;
            best_heuristic_name = row.label;
        }
        std::cerr << "finished " << row.label << "\n";
    }
    if (trials > 1)
        std::cout << "(throughput averaged over " << trials
                  << " seeds per policy)\n";
    table.print(std::cout);

    std::cout << "\nFile movements by Geomancy (the Fig. 5 bars):\n";
    for (const core::MoveEvent &event : geomancy_moves) {
        std::cout << "  access " << event.accessNumber << ": "
                  << event.filesMoved << " file(s) moved\n";
    }

    double gain = (geomancy_avg / best_heuristic - 1.0) * 100.0;
    std::cout << "\nGeomancy vs best heuristic (" << best_heuristic_name
              << "): " << TextTable::num(gain, 1)
              << "% (paper reports >= 11%, LFU closest)\n";
    bool small_moves = true;
    for (const core::MoveEvent &event : geomancy_moves)
        small_moves = small_moves && event.filesMoved <= 14;
    std::cout << "Moves per decision <= 14: "
              << (small_moves ? "OK" : "MISMATCH") << "\n";
    return 0;
}
