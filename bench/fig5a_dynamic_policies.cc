/**
 * @file
 * Regenerates Fig. 5a (experiment 1): Geomancy dynamic vs the dynamic
 * heuristics (LRU, MRU, LFU, random dynamic) on the live system.
 *
 * Expected shape (paper Section VII): Geomancy's average throughput
 * beats every heuristic by at least ~11%, LFU comes closest (paper:
 * 4.46 GB/s vs Geomancy's 4.98 GB/s), and Geomancy moves only small
 * subsets of files (1-14) at each decision point.
 */

#include <iostream>

#include "experiment_common.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    using bench::PolicyKind;
    bench::header("Fig. 5a - Geomancy vs dynamic placement policies",
                  "Section VII, Fig. 5a (experiment 1)");

    struct Row
    {
        PolicyKind kind;
        const char *label;
    };
    const Row rows[] = {
        {PolicyKind::GeomancyDynamic, "Geomancy dynamic"},
        {PolicyKind::Lfu, "LFU"},
        {PolicyKind::Lru, "LRU"},
        {PolicyKind::Mru, "MRU"},
        {PolicyKind::RandomDynamic, "random dynamic"},
    };

    TextTable table("Average workload throughput per policy");
    table.setHeader({"Policy", "Avg throughput (GB/s)", "accesses",
                     "files moved", "GB moved"});
    double geomancy_avg = 0.0, best_heuristic = 0.0;
    std::string best_heuristic_name;
    std::vector<core::MoveEvent> geomancy_moves;
    for (const Row &row : rows) {
        core::ExperimentResult result = bench::runPolicy(row.kind);
        table.addRow({row.label, bench::gbps(result.averageThroughput),
                      std::to_string(result.totalAccesses),
                      std::to_string(result.filesMoved),
                      TextTable::num(
                          static_cast<double>(result.bytesMoved) / 1e9,
                          2)});
        if (row.kind == PolicyKind::GeomancyDynamic) {
            geomancy_avg = result.averageThroughput;
            geomancy_moves = result.moveEvents;
        } else if (result.averageThroughput > best_heuristic) {
            best_heuristic = result.averageThroughput;
            best_heuristic_name = row.label;
        }
        std::cerr << "finished " << row.label << "\n";
    }
    table.print(std::cout);

    std::cout << "\nFile movements by Geomancy (the Fig. 5 bars):\n";
    for (const core::MoveEvent &event : geomancy_moves) {
        std::cout << "  access " << event.accessNumber << ": "
                  << event.filesMoved << " file(s) moved\n";
    }

    double gain = (geomancy_avg / best_heuristic - 1.0) * 100.0;
    std::cout << "\nGeomancy vs best heuristic (" << best_heuristic_name
              << "): " << TextTable::num(gain, 1)
              << "% (paper reports >= 11%, LFU closest)\n";
    bool small_moves = true;
    for (const core::MoveEvent &event : geomancy_moves)
        small_moves = small_moves && event.filesMoved <= 14;
    std::cout << "Moves per decision <= 14: "
              << (small_moves ? "OK" : "MISMATCH") << "\n";
    return 0;
}
