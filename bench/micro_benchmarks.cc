/**
 * @file
 * google-benchmark micro-benchmarks for the overhead claims of
 * Sections V-E and VIII: neural-network training/prediction cost per
 * layer type and feature width, ReplayDB insert/query throughput,
 * storage-simulator access cost, path encoding and smoothing.
 */

#include <benchmark/benchmark.h>

#include "core/interface_daemon.hh"
#include "core/replay_db.hh"
#include "nn/model_zoo.hh"
#include "storage/bluesky.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/path_encoder.hh"
#include "util/logging.hh"
#include "util/smoothing.hh"

namespace geo {
namespace {

// --- Neural network -----------------------------------------------------

/** Forward pass of Table I model `number` (arg 0) at batch 64. */
void
BM_ModelPredict(benchmark::State &state)
{
    int number = static_cast<int>(state.range(0));
    Rng rng(1);
    nn::Sequential model = nn::buildModel(number, 6, rng);
    nn::Matrix inputs(64, model.inputSize());
    inputs.fillNormal(rng, 0.3);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(inputs));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ModelPredict)->Arg(1)->Arg(6)->Arg(12)->Arg(18);

/** Single candidate-batch prediction: one row per Bluesky mount. */
void
BM_CandidateScoring(benchmark::State &state)
{
    Rng rng(2);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::Matrix inputs(6, 6); // 6 candidate locations
    inputs.fillNormal(rng, 0.3);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(inputs));
}
BENCHMARK(BM_CandidateScoring);

/** One SGD training step of model 1 at batch 64. */
void
BM_ModelTrainStep(benchmark::State &state)
{
    Rng rng(3);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::Matrix inputs(64, 6);
    inputs.fillNormal(rng, 0.3);
    nn::Matrix targets(64, 1, 0.5);
    nn::SgdOptimizer opt(0.01);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.trainBatch(inputs, targets, opt));
}
BENCHMARK(BM_ModelTrainStep);

/** Full-epoch cost scaling with feature width Z (arg 0). */
void
BM_TrainEpochByZ(benchmark::State &state)
{
    size_t z = static_cast<size_t>(state.range(0));
    Rng rng(4);
    nn::Sequential model = nn::buildModel(1, z, rng);
    nn::Dataset data;
    data.inputs = nn::Matrix(512, z);
    data.inputs.fillNormal(rng, 0.3);
    data.targets = nn::Matrix(512, 1, 0.5);
    nn::SgdOptimizer opt(0.01);
    nn::TrainOptions options;
    options.epochs = 1;
    options.batchSize = 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.train(data, {}, opt, options));
}
BENCHMARK(BM_TrainEpochByZ)->Arg(6)->Arg(13);

// --- ReplayDB ------------------------------------------------------------

core::PerfRecord
sampleRecord(uint64_t i)
{
    core::PerfRecord rec;
    rec.file = i % 24;
    rec.device = static_cast<storage::DeviceId>(i % 6);
    rec.rb = 1000000;
    rec.ots = static_cast<int64_t>(i);
    rec.cts = static_cast<int64_t>(i) + 1;
    rec.throughput = 1e9;
    return rec;
}

void
BM_ReplayDbInsert(benchmark::State &state)
{
    core::ReplayDb db;
    uint64_t i = 0;
    for (auto _ : state)
        db.insertAccess(sampleRecord(i++));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReplayDbInsert);

void
BM_ReplayDbBatchInsert(benchmark::State &state)
{
    core::ReplayDb db;
    std::vector<core::PerfRecord> batch;
    for (uint64_t i = 0; i < 32; ++i)
        batch.push_back(sampleRecord(i));
    for (auto _ : state)
        db.insertAccesses(batch);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ReplayDbBatchInsert);

void
BM_ReplayDbWindowQuery(benchmark::State &state)
{
    core::ReplayDb db;
    std::vector<core::PerfRecord> batch;
    for (uint64_t i = 0; i < 20000; ++i)
        batch.push_back(sampleRecord(i));
    db.insertAccesses(batch);
    for (auto _ : state)
        benchmark::DoNotOptimize(db.recentAccessesForDevice(2, 2000));
}
BENCHMARK(BM_ReplayDbWindowQuery);

/** Full training-batch preparation (the Interface Daemon pipeline). */
void
BM_TrainingBatchBuild(benchmark::State &state)
{
    core::ReplayDb db;
    core::InterfaceDaemon daemon(db);
    std::vector<core::PerfRecord> batch;
    for (uint64_t i = 0; i < 12000; ++i)
        batch.push_back(sampleRecord(i));
    db.insertAccesses(batch);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            daemon.buildTrainingBatch({0, 1, 2, 3, 4, 5}));
}
BENCHMARK(BM_TrainingBatchBuild);

// --- Storage simulator ----------------------------------------------------

void
BM_StorageAccess(benchmark::State &state)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 100 << 20, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(system->access(file, 10 << 20, true));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StorageAccess);

void
BM_StorageMigration(benchmark::State &state)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 100 << 20, 0);
    storage::DeviceId target = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(system->moveFile(file, target));
        target = target == 1 ? 2 : 1;
    }
}
BENCHMARK(BM_StorageMigration);

// --- Trace utilities --------------------------------------------------------

void
BM_PathEncode(benchmark::State &state)
{
    trace::PathEncoder encoder;
    std::vector<std::string> paths;
    for (int i = 0; i < 256; ++i)
        paths.push_back(strprintf("eos/pool%d/run%03d/data%05d.root",
                                  i % 4, i % 24, i));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.encode(paths[i % paths.size()]));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PathEncode);

void
BM_EosTraceGeneration(benchmark::State &state)
{
    trace::EosTraceGenerator gen({});
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.generate(1000));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1000);
}
BENCHMARK(BM_EosTraceGeneration);

void
BM_MovingAverage(benchmark::State &state)
{
    std::vector<double> series(12000);
    Rng rng(5);
    for (double &v : series)
        v = rng.uniform();
    for (auto _ : state)
        benchmark::DoNotOptimize(movingAverage(series, 8));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            12000);
}
BENCHMARK(BM_MovingAverage);

} // namespace
} // namespace geo
