/**
 * @file
 * google-benchmark micro-benchmarks for the overhead claims of
 * Sections V-E and VIII: neural-network training/prediction cost per
 * layer type and feature width, ReplayDB insert/query throughput,
 * storage-simulator access cost, path encoding and smoothing.
 *
 * The binary also runs a structured perf suite (tracked baseline)
 * before the google micros and writes it to BENCH_perf.json:
 * naive-vs-fast GEMM (packed register-blocked kernel), training-path
 * timings (steady-state epoch, full retrain, arena alloc count),
 * scalar-vs-batched candidate scoring, one full Geomancy decision
 * cycle, model-search scaling over 1/2/4 workers, and
 * metric-primitive overhead (counter/histogram ns per op).
 * Knobs: GEO_PERF_OUT (output path), GEO_PERF_QUICK=1
 * (small sizes), GEO_SKIP_PERF=1 / GEO_SKIP_MICRO=1 (skip a half).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/decision_ledger.hh"
#include "core/geomancy.hh"
#include "core/interface_daemon.hh"
#include "core/replay_db.hh"
#include "model_search_common.hh"
#include "nn/model_zoo.hh"
#include "storage/bluesky.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/path_encoder.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/smoothing.hh"
#include "util/thread_pool.hh"
#include "workload/belle2.hh"

namespace geo {
namespace {

// --- Neural network -----------------------------------------------------

/** Forward pass of Table I model `number` (arg 0) at batch 64. */
void
BM_ModelPredict(benchmark::State &state)
{
    int number = static_cast<int>(state.range(0));
    Rng rng(1);
    nn::Sequential model = nn::buildModel(number, 6, rng);
    nn::Matrix inputs(64, model.inputSize());
    inputs.fillNormal(rng, 0.3);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(inputs));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ModelPredict)->Arg(1)->Arg(6)->Arg(12)->Arg(18);

/** Single candidate-batch prediction: one row per Bluesky mount. */
void
BM_CandidateScoring(benchmark::State &state)
{
    Rng rng(2);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::Matrix inputs(6, 6); // 6 candidate locations
    inputs.fillNormal(rng, 0.3);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(inputs));
}
BENCHMARK(BM_CandidateScoring);

/** One SGD training step of model 1 at batch 64. */
void
BM_ModelTrainStep(benchmark::State &state)
{
    Rng rng(3);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::Matrix inputs(64, 6);
    inputs.fillNormal(rng, 0.3);
    nn::Matrix targets(64, 1, 0.5);
    nn::SgdOptimizer opt(0.01);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.trainBatch(inputs, targets, opt));
}
BENCHMARK(BM_ModelTrainStep);

/** Full-epoch cost scaling with feature width Z (arg 0). */
void
BM_TrainEpochByZ(benchmark::State &state)
{
    size_t z = static_cast<size_t>(state.range(0));
    Rng rng(4);
    nn::Sequential model = nn::buildModel(1, z, rng);
    nn::Dataset data;
    data.inputs = nn::Matrix(512, z);
    data.inputs.fillNormal(rng, 0.3);
    data.targets = nn::Matrix(512, 1, 0.5);
    nn::SgdOptimizer opt(0.01);
    nn::TrainOptions options;
    options.epochs = 1;
    options.batchSize = 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.train(data, {}, opt, options));
}
BENCHMARK(BM_TrainEpochByZ)->Arg(6)->Arg(13);

/** One full epoch of model 1 with the DrlEngine's SGD configuration
 *  (the steady-state retrain inner loop). */
void
BM_TrainEpoch(benchmark::State &state)
{
    Rng rng(5);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::Dataset data;
    data.inputs = nn::Matrix(512, 6);
    data.inputs.fillNormal(rng, 0.3);
    data.targets = nn::Matrix(512, 1, 0.5);
    nn::SgdOptimizer opt(0.05, 5.0);
    nn::TrainOptions options;
    options.epochs = 1;
    options.batchSize = 32;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.train(data, {}, opt, options));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_TrainEpoch);

// --- ReplayDB ------------------------------------------------------------

core::PerfRecord
sampleRecord(uint64_t i)
{
    core::PerfRecord rec;
    rec.file = i % 24;
    rec.device = static_cast<storage::DeviceId>(i % 6);
    rec.rb = 1000000;
    rec.ots = static_cast<int64_t>(i);
    rec.cts = static_cast<int64_t>(i) + 1;
    rec.throughput = 1e9;
    return rec;
}

void
BM_ReplayDbInsert(benchmark::State &state)
{
    core::ReplayDb db;
    uint64_t i = 0;
    for (auto _ : state)
        db.insertAccess(sampleRecord(i++));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReplayDbInsert);

void
BM_ReplayDbBatchInsert(benchmark::State &state)
{
    core::ReplayDb db;
    std::vector<core::PerfRecord> batch;
    for (uint64_t i = 0; i < 32; ++i)
        batch.push_back(sampleRecord(i));
    for (auto _ : state)
        db.insertAccesses(batch);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_ReplayDbBatchInsert);

/**
 * Cost of recording one representative decision cycle into the audit
 * ledger: 24 candidates scored over 6 devices, one prediction row, one
 * migration outcome and the end-of-cycle summary, atomic flush
 * included. This is the whole per-cycle overhead a `--ledger-out` run
 * adds to the pipeline; compare against full_cycle.cycle_ms in
 * BENCH_perf.json (the <2 % budget is asserted by the perf suite's
 * ledger_overhead section).
 */
void
BM_LedgerOverhead(benchmark::State &state)
{
    const std::string path = "bm-ledger-overhead.ndjson";
    auto ledger = std::make_unique<core::DecisionLedger>(path);
    std::vector<double> features{425082.0, 0.0, 28.9, 28.9, 0.0, 0.0};
    std::vector<core::LedgerScore> scores;
    std::vector<std::pair<storage::DeviceId, std::pair<double, uint64_t>>>
        by_device;
    for (storage::DeviceId d = 0; d < 6; ++d) {
        scores.push_back({d, 1e9 + 1e7 * d, static_cast<int>(d) + 1});
        by_device.push_back({d, {9.5e8, 24}});
    }
    core::AppliedMove move;
    move.file = 3;
    move.to = 1;
    uint64_t cycle = 0;
    for (auto _ : state) {
        ++cycle;
        // Bound the accumulated file at a mid-length run's size; the
        // atomic flush rewrites the whole ledger, so growth is part of
        // the real per-cycle cost up to that horizon.
        if (cycle % 64 == 0)
            ledger = std::make_unique<core::DecisionLedger>(path);
        ledger->beginCycle(cycle, static_cast<double>(cycle) * 60.0,
                           false, false);
        ledger->recordPhase("monitor", 0.002, 0.05);
        ledger->recordPhase("train", 0.02, 0.2);
        for (storage::FileId file = 0; file < 24; ++file)
            ledger->recordCandidate(file, 0, features, scores,
                                    file == 3 ? "selected" : "stay_put",
                                    1, 0.2, false, file == 3);
        ledger->recordPrediction(static_cast<int64_t>(cycle) * 700,
                                 by_device);
        ledger->recordOutcome(move);
        ledger->endCycle({});
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    std::remove(path.c_str());
}
BENCHMARK(BM_LedgerOverhead);

void
BM_ReplayDbWindowQuery(benchmark::State &state)
{
    core::ReplayDb db;
    std::vector<core::PerfRecord> batch;
    for (uint64_t i = 0; i < 20000; ++i)
        batch.push_back(sampleRecord(i));
    db.insertAccesses(batch);
    for (auto _ : state)
        benchmark::DoNotOptimize(db.recentAccessesForDevice(2, 2000));
}
BENCHMARK(BM_ReplayDbWindowQuery);

/** Full training-batch preparation (the Interface Daemon pipeline). */
void
BM_TrainingBatchBuild(benchmark::State &state)
{
    core::ReplayDb db;
    core::InterfaceDaemon daemon(db);
    std::vector<core::PerfRecord> batch;
    for (uint64_t i = 0; i < 12000; ++i)
        batch.push_back(sampleRecord(i));
    db.insertAccesses(batch);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            daemon.buildTrainingBatch({0, 1, 2, 3, 4, 5}));
}
BENCHMARK(BM_TrainingBatchBuild);

// --- Storage simulator ----------------------------------------------------

void
BM_StorageAccess(benchmark::State &state)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 100 << 20, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(system->access(file, 10 << 20, true));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StorageAccess);

void
BM_StorageMigration(benchmark::State &state)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 100 << 20, 0);
    storage::DeviceId target = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(system->moveFile(file, target));
        target = target == 1 ? 2 : 1;
    }
}
BENCHMARK(BM_StorageMigration);

// --- Trace utilities --------------------------------------------------------

void
BM_PathEncode(benchmark::State &state)
{
    trace::PathEncoder encoder;
    std::vector<std::string> paths;
    for (int i = 0; i < 256; ++i)
        paths.push_back(strprintf("eos/pool%d/run%03d/data%05d.root",
                                  i % 4, i % 24, i));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.encode(paths[i % paths.size()]));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PathEncode);

void
BM_EosTraceGeneration(benchmark::State &state)
{
    trace::EosTraceGenerator gen({});
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.generate(1000));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1000);
}
BENCHMARK(BM_EosTraceGeneration);

/**
 * Cost of one counter increment + one histogram record — the pair the
 * instrumented hot paths pay per event.  Keeps the observability layer
 * honest about its "negligible overhead" claim.
 */
void
BM_MetricsOverhead(benchmark::State &state)
{
    util::MetricRegistry registry;
    util::Counter &counter = registry.counter("bench.events");
    util::Histogram &histogram = registry.histogram("bench.latency");
    double value = 0.125;
    for (auto _ : state) {
        counter.inc();
        histogram.record(value);
        value += 0.001;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsOverhead);

void
BM_MovingAverage(benchmark::State &state)
{
    std::vector<double> series(12000);
    Rng rng(5);
    for (double &v : series)
        v = rng.uniform();
    for (auto _ : state)
        benchmark::DoNotOptimize(movingAverage(series, 8));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            12000);
}
BENCHMARK(BM_MovingAverage);

// --- Tracked perf baseline (BENCH_perf.json) ------------------------------

/** Best-of-`reps` wall-clock milliseconds of `fn()`. */
template <typename F>
double
bestMillis(F &&fn, int reps)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (ms < best)
            best = ms;
    }
    return best;
}

/** Synthetic telemetry with enough variance to train on. */
std::vector<core::PerfRecord>
syntheticRecords(size_t count)
{
    Rng rng(11);
    std::vector<core::PerfRecord> records;
    records.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        core::PerfRecord rec = sampleRecord(i);
        rec.rb = 500000 + static_cast<int64_t>(rng.uniform(0.0, 1e6));
        rec.throughput = 4e8 + 2e8 * static_cast<double>(i % 6) +
                         rng.uniform(0.0, 1e8);
        records.push_back(rec);
    }
    return records;
}

/** DrlEngine::retrain end to end: split, epochs, divergence probe. */
void
BM_FullRetrain(benchmark::State &state)
{
    std::vector<core::PerfRecord> records = syntheticRecords(2000);
    core::ReplayDb db;
    core::InterfaceDaemon daemon(db);
    daemon.receiveBatch(records);
    core::DrlConfig config;
    config.epochs = static_cast<size_t>(state.range(0));
    core::DrlEngine engine(config);
    auto batch = daemon.buildTrainingBatch({0, 1, 2, 3, 4, 5});
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.retrain(batch));
}
BENCHMARK(BM_FullRetrain)->Arg(5)->Arg(40);

struct GemmResult
{
    size_t m, k, n;
    double naiveMs = 0.0;
    double fastMs = 0.0;
};

GemmResult
timeGemm(size_t m, size_t k, size_t n, int reps)
{
    Rng rng(21);
    nn::Matrix a(m, k), b(k, n);
    a.fillNormal(rng, 0.5);
    b.fillNormal(rng, 0.5);
    GemmResult r{m, k, n, 1e300, 1e300};
    nn::Matrix out;
    // Interleave the two measurements: back-to-back best-of blocks
    // are biased by clock/cache drift on shared hosts.
    for (int rep = 0; rep < reps; ++rep) {
        r.naiveMs = std::min(
            r.naiveMs, bestMillis([&]() { out = a.matmulNaive(b); }, 1));
        // Production path: shape plan picks plain-ikj or the packed
        // register-blocked kernel; pool-parallel above the flops
        // threshold (on a 1-core host this stays serial).
        r.fastMs = std::min(
            r.fastMs, bestMillis([&]() { a.matmulInto(b, out); }, 1));
    }
    return r;
}

struct TrainTimings
{
    double epochMs = 0.0;
    double retrainMs = 0.0;
    size_t retrainEpochs = 0;
    uint64_t steadyAllocs = 0;
};

/**
 * Tracked training-path timings: one steady-state epoch of the
 * winning model, a full DrlEngine::retrain, and the number of Matrix
 * buffer acquisitions across steady-state epochs (must stay 0 — the
 * scratch arena is sized by the warm-up epoch).
 */
TrainTimings
timeTrain(bool quick)
{
    TrainTimings t;

    Rng rng(33);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::Dataset data;
    data.inputs = nn::Matrix(512, 6);
    data.inputs.fillNormal(rng, 0.3);
    data.targets = nn::Matrix(512, 1);
    data.targets.fillNormal(rng, 0.5);
    nn::SgdOptimizer opt(0.05, 5.0);
    nn::TrainOptions options;
    options.epochs = 1;
    options.batchSize = 32;
    model.train(data, {}, opt, options); // sizes the arena
    t.epochMs = 1e300;
    for (int rep = 0; rep < (quick ? 3 : 5); ++rep)
        t.epochMs = std::min(t.epochMs, bestMillis([&]() {
            model.train(data, {}, opt, options);
        }, 1));
    const uint64_t before = nn::Matrix::allocationCount();
    options.epochs = 3;
    model.train(data, {}, opt, options);
    t.steadyAllocs = nn::Matrix::allocationCount() - before;

    std::vector<core::PerfRecord> records = syntheticRecords(2000);
    core::ReplayDb db;
    core::InterfaceDaemon daemon(db);
    daemon.receiveBatch(records);
    core::DrlConfig config;
    config.epochs = quick ? 5 : 40;
    t.retrainEpochs = config.epochs;
    core::DrlEngine engine(config);
    auto batch = daemon.buildTrainingBatch({0, 1, 2, 3, 4, 5});
    engine.retrain(batch); // warm caches and arena
    t.retrainMs = 1e300;
    for (int rep = 0; rep < (quick ? 2 : 3); ++rep)
        t.retrainMs = std::min(
            t.retrainMs, bestMillis([&]() { engine.retrain(batch); }, 1));
    return t;
}

struct ScoringResult
{
    size_t files = 0;
    size_t devices = 0;
    double scalarMs = 0.0;
    double batchedMs = 0.0;
    bool bitwiseEqual = true;
    bool trained = false;
};

ScoringResult
timeCandidateScoring(bool quick)
{
    ScoringResult result;
    std::vector<core::PerfRecord> records = syntheticRecords(2000);
    core::ReplayDb db;
    core::InterfaceDaemon daemon(db);
    daemon.receiveBatch(records);
    core::DrlConfig config;
    config.epochs = quick ? 5 : 20;
    core::DrlEngine engine(config);
    std::vector<storage::DeviceId> devices = {0, 1, 2, 3, 4, 5};
    core::RetrainStats stats =
        engine.retrain(daemon.buildTrainingBatch(devices));
    result.trained = stats.trained && !stats.diverged && engine.ready();
    if (!result.trained)
        return result;

    // One "latest record" per simulated file, as a decision cycle sees.
    std::vector<core::PerfRecord> files(records.end() - 24,
                                        records.end());
    result.files = files.size();
    result.devices = devices.size();

    // Interleaved best-of (see timeGemm for why).
    std::vector<double> scalar;
    std::vector<std::vector<core::CandidateScore>> batched;
    result.scalarMs = 1e300;
    result.batchedMs = 1e300;
    for (int rep = 0; rep < (quick ? 3 : 5); ++rep) {
        result.scalarMs = std::min(
            result.scalarMs,
            bestMillis(
                [&]() {
                    scalar.clear();
                    for (const core::PerfRecord &rec : files)
                        for (storage::DeviceId device : devices)
                            scalar.push_back(engine.predictThroughput(
                                rec.featuresAt(device)));
                },
                1));
        result.batchedMs = std::min(
            result.batchedMs,
            bestMillis(
                [&]() { batched = engine.scoreLocations(files, devices); },
                1));
    }

    size_t flat = 0;
    for (const auto &per_file : batched)
        for (const core::CandidateScore &score : per_file)
            result.bitwiseEqual =
                result.bitwiseEqual &&
                score.predictedThroughput == scalar[flat++];
    return result;
}

struct CycleResult
{
    double cycleMs = 0.0;
    double predictMs = 0.0;
    bool acted = false;
};

CycleResult
timeFullCycle(bool quick)
{
    auto system = storage::makeBlueskySystem(7);
    workload::Belle2Workload workload(*system);
    core::GeomancyConfig config;
    config.drl.epochs = quick ? 5 : 20;
    config.explorationRate = 0.0; // force the scoring path
    core::Geomancy geomancy(*system, workload.files(), config);
    for (size_t run = 0; run < (quick ? 6u : 20u); ++run)
        workload.executeRun();

    CycleResult result;
    auto t0 = std::chrono::steady_clock::now();
    core::CycleReport report = geomancy.runCycle();
    auto t1 = std::chrono::steady_clock::now();
    result.cycleMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.predictMs = geomancy.engine().lastPredictionMillis();
    result.acted = report.acted;
    return result;
}

struct ScalingResult
{
    size_t workers = 0;
    double seconds = 0.0;
};

std::vector<ScalingResult>
timeModelSearchScaling(bool quick)
{
    std::vector<core::PerfRecord> records = syntheticRecords(2000);
    const size_t epochs = quick ? 5 : 20;
    std::vector<ScalingResult> results;
    for (size_t workers : {1u, 2u, 4u}) {
        util::ThreadPool pool(workers);
        auto t0 = std::chrono::steady_clock::now();
        bench::scoreModelAveraged(1, records, epochs, 424, 4, &pool);
        auto t1 = std::chrono::steady_clock::now();
        results.push_back(
            {workers, std::chrono::duration<double>(t1 - t0).count()});
    }
    return results;
}

struct OverheadResult
{
    double counterNs = 0.0;
    double histogramNs = 0.0;
    double plainLoopNs = 0.0;
};

/**
 * Tracked ns/op of the metric primitives against an arithmetic-only
 * loop of the same trip count, so regressions in the relaxed-atomic
 * paths show up in BENCH_perf.json diffs.
 */
OverheadResult
timeMetricsOverhead(bool quick)
{
    const size_t iters = quick ? 2000000 : 8000000;
    const int reps = quick ? 3 : 5;
    util::MetricRegistry registry;
    util::Counter &counter = registry.counter("bench.events");
    util::Histogram &histogram = registry.histogram("bench.latency");

    OverheadResult result;
    uint64_t sink = 0;
    result.plainLoopNs = bestMillis(
                             [&]() {
                                 for (size_t i = 0; i < iters; ++i)
                                     sink += i * 31 + 7;
                             },
                             reps) *
                         1e6 / static_cast<double>(iters);
    benchmark::DoNotOptimize(sink);
    result.counterNs = bestMillis(
                           [&]() {
                               for (size_t i = 0; i < iters; ++i)
                                   counter.inc();
                           },
                           reps) *
                       1e6 / static_cast<double>(iters);
    result.histogramNs =
        bestMillis(
            [&]() {
                for (size_t i = 0; i < iters; ++i)
                    histogram.record(static_cast<double>(i & 1023) + 1.0);
            },
            reps) *
        1e6 / static_cast<double>(iters);
    benchmark::DoNotOptimize(counter.value());
    return result;
}

struct LedgerOverheadResult
{
    double withMs = 0.0;    ///< best-of mean cycle ms, ledger attached
    double withoutMs = 0.0; ///< best-of mean cycle ms, no ledger
    double overheadFrac = 0.0;
    uint64_t rows = 0; ///< ledger rows the instrumented run produced
};

/** Process CPU milliseconds; immune to scheduler and I/O-wait noise. */
double
cpuMillis()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
}

/**
 * End-to-end decision-cycle cost with and without the audit ledger
 * attached: two same-seed pipelines do identical decision work (the
 * ledger is recording-only), so the delta is pure ledger overhead —
 * row serialization plus the per-cycle atomic flush. Measured in
 * process CPU time with interleaved best-of repetitions, since the
 * overhead budget (overhead_frac < 0.02) is far below wall-clock
 * jitter on a shared machine.
 */
LedgerOverheadResult
timeLedgerOverhead(bool quick)
{
    const size_t cycles = quick ? 4 : 8;
    const int reps = quick ? 4 : 5;
    const std::string path = "perf-ledger-overhead.ndjson";

    LedgerOverheadResult result;
    auto timeOne = [&](bool with_ledger) {
        auto system = storage::makeBlueskySystem(7);
        workload::Belle2Workload workload(*system);
        core::GeomancyConfig config;
        config.drl.epochs = quick ? 5 : 20;
        config.explorationRate = 0.0;
        core::Geomancy geomancy(*system, workload.files(), config);
        if (with_ledger)
            geomancy.attachLedger(path);
        double total = 0.0;
        for (size_t c = 0; c < cycles; ++c) {
            for (size_t run = 0; run < 3; ++run)
                workload.executeRun();
            double t0 = cpuMillis();
            geomancy.runCycle();
            total += cpuMillis() - t0;
        }
        if (with_ledger)
            result.rows = geomancy.ledger()->rowsWritten();
        return total / static_cast<double>(cycles);
    };

    timeOne(false); // warmup: page in code paths and the allocator
    double best_with = 0.0, best_without = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        // Alternate which pipeline runs first: in-process drift
        // (allocator growth, cache state) slows whichever run comes
        // second, and a fixed order would bias the comparison.
        bool ledger_first = (rep % 2) != 0;
        double first_ms = timeOne(ledger_first);
        double second_ms = timeOne(!ledger_first);
        double with_ms = ledger_first ? first_ms : second_ms;
        double without_ms = ledger_first ? second_ms : first_ms;
        if (rep == 0 || without_ms < best_without)
            best_without = without_ms;
        if (rep == 0 || with_ms < best_with)
            best_with = with_ms;
    }
    std::remove(path.c_str());
    result.withMs = best_with;
    result.withoutMs = best_without;
    result.overheadFrac =
        best_without > 0.0 ? (best_with - best_without) / best_without
                           : 0.0;
    return result;
}

/** Run the tracked perf suite and write BENCH_perf.json. */
void
runPerfSuite()
{
    const bool quick = std::getenv("GEO_PERF_QUICK") != nullptr;
    const char *out_env = std::getenv("GEO_PERF_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_perf.json";

    std::vector<GemmResult> gemm;
    const int reps = quick ? 3 : 5;
    if (quick) {
        gemm.push_back(timeGemm(32, 32, 32, reps));
        gemm.push_back(timeGemm(64, 64, 64, reps));
        gemm.push_back(timeGemm(128, 128, 128, reps));
    } else {
        gemm.push_back(timeGemm(64, 64, 64, reps));
        gemm.push_back(timeGemm(128, 128, 128, reps));
        gemm.push_back(timeGemm(256, 256, 256, reps));
        gemm.push_back(timeGemm(512, 64, 512, reps));
    }
    std::fprintf(stderr, "perf: gemm done\n");
    TrainTimings train = timeTrain(quick);
    std::fprintf(stderr, "perf: train done\n");
    ScoringResult scoring = timeCandidateScoring(quick);
    std::fprintf(stderr, "perf: candidate scoring done\n");
    CycleResult cycle = timeFullCycle(quick);
    std::fprintf(stderr, "perf: full cycle done\n");
    std::vector<ScalingResult> scaling = timeModelSearchScaling(quick);
    std::fprintf(stderr, "perf: model-search scaling done\n");
    OverheadResult overhead = timeMetricsOverhead(quick);
    std::fprintf(stderr, "perf: metrics overhead done\n");
    LedgerOverheadResult ledger = timeLedgerOverhead(quick);
    std::fprintf(stderr, "perf: ledger overhead done\n");

    std::ofstream out(out_path);
    if (!out)
        panic("runPerfSuite: cannot write %s", out_path.c_str());
    out << "{\n";
    out << "  \"schema\": \"geo-perf-2\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"threads\": " << util::ThreadPool::global().workerCount()
        << ",\n";
    // Scaling numbers are meaningless on a single hardware thread;
    // perf_diff.py uses this to skip model_search_scaling deltas there.
    out << "  \"hw_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"gemm\": [\n";
    for (size_t i = 0; i < gemm.size(); ++i) {
        const GemmResult &g = gemm[i];
        out << "    {\"m\": " << g.m << ", \"k\": " << g.k
            << ", \"n\": " << g.n << ", \"naive_ms\": " << g.naiveMs
            << ", \"fast_ms\": " << g.fastMs << ", \"speedup\": "
            << (g.fastMs > 0.0 ? g.naiveMs / g.fastMs : 0.0) << "}"
            << (i + 1 < gemm.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"train\": {\"epoch_ms\": " << train.epochMs
        << ", \"retrain_ms\": " << train.retrainMs
        << ", \"retrain_epochs\": " << train.retrainEpochs
        << ", \"steady_state_allocs\": " << train.steadyAllocs << "},\n";
    out << "  \"candidate_scoring\": {\"files\": " << scoring.files
        << ", \"devices\": " << scoring.devices
        << ", \"trained\": " << (scoring.trained ? "true" : "false")
        << ", \"scalar_ms\": " << scoring.scalarMs
        << ", \"batched_ms\": " << scoring.batchedMs << ", \"speedup\": "
        << (scoring.batchedMs > 0.0 ? scoring.scalarMs / scoring.batchedMs
                                    : 0.0)
        << ", \"bitwise_equal\": "
        << (scoring.bitwiseEqual ? "true" : "false") << "},\n";
    out << "  \"full_cycle\": {\"cycle_ms\": " << cycle.cycleMs
        << ", \"predict_ms\": " << cycle.predictMs << "},\n";
    out << "  \"model_search_scaling\": [\n";
    for (size_t i = 0; i < scaling.size(); ++i) {
        const ScalingResult &s = scaling[i];
        out << "    {\"workers\": " << s.workers << ", \"seconds\": "
            << s.seconds << ", \"speedup\": "
            << (s.seconds > 0.0 ? scaling[0].seconds / s.seconds : 0.0)
            << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"metrics_overhead\": {\"counter_ns\": " << overhead.counterNs
        << ", \"histogram_ns\": " << overhead.histogramNs
        << ", \"plain_loop_ns\": " << overhead.plainLoopNs << "},\n";
    out << "  \"ledger_overhead\": {\"with_ms\": " << ledger.withMs
        << ", \"without_ms\": " << ledger.withoutMs
        << ", \"overhead_frac\": " << ledger.overheadFrac
        << ", \"rows\": " << ledger.rows << "}\n";
    out << "}\n";
    std::fprintf(stderr, "perf: wrote %s\n", out_path.c_str());
}

} // namespace
} // namespace geo

int
main(int argc, char **argv)
{
    if (std::getenv("GEO_SKIP_PERF") == nullptr)
        geo::runPerfSuite();
    if (std::getenv("GEO_SKIP_MICRO") != nullptr)
        return 0;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
