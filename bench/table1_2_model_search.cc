/**
 * @file
 * Regenerates Tables I and II: the 23-architecture model search.
 *
 * Table I is the architecture list (printed verbatim from the zoo);
 * Table II scores every architecture on the `people` mount telemetry:
 * mean +/- stddev of the absolute relative error, training time and
 * prediction time, with divergent models flagged as in the paper.
 *
 * Expected shape: model 1 (16Z/8Z/4Z dense ReLU + linear) among the
 * best error/latency trade-offs; deeper dense stacks (6, 7) accurate
 * but slower; recurrent models noticeably slower at prediction; some
 * architectures diverge outright.
 */

#include <iostream>

#include "bench_common.hh"
#include "model_search_common.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    bench::header("Tables I & II - model search on the people mount",
                  "Section V-G, Tables I and II");

    const size_t target_entries =
        bench::knob("GEO_ENTRIES", 3000, 12000);
    const size_t epochs = bench::knob("GEO_EPOCHS", 30, 200);

    // Collect telemetry until the people mount has enough samples.
    size_t runs = 20;
    bench::Telemetry telemetry;
    std::vector<core::PerfRecord> people;
    for (int attempt = 0; attempt < 6; ++attempt) {
        telemetry = bench::collectTelemetry(runs);
        storage::DeviceId people_id = 2; // Bluesky order: people is #2
        people = telemetry.perDevice[people_id];
        if (people.size() >= target_entries)
            break;
        runs *= 2;
    }
    if (people.size() > target_entries)
        people.resize(target_entries);
    std::cout << "Telemetry: " << people.size()
              << " accesses on the people mount, " << epochs
              << " training epochs, 60/20/20 chronological split\n\n";

    TextTable table1("Table I: model architectures (Z = 6)");
    table1.setHeader({"Model", "Components"});
    for (const nn::ModelSpec &spec :
         nn::allModelSpecs(core::kLiveFeatureCount)) {
        table1.addRow({"Model " + std::to_string(spec.number),
                       spec.components});
    }
    table1.print(std::cout);
    std::cout << "\n";

    TextTable table2(
        "Table II: prediction error / training time / prediction time");
    table2.setHeader({"Model", "Mean abs rel error (%)", "Training (s)",
                      "Prediction (ms)"});
    double best_error = 1e18;
    int best_model = 0;
    // Fan the 23 architectures out across the pool; each task's seed
    // trials run inline on its worker, so results stay deterministic
    // and rows print in model order regardless of completion order.
    const size_t seeds = bench::knob("GEO_SEEDS", 3, 5);
    util::ThreadPool &pool = util::ThreadPool::global();
    std::vector<std::future<bench::ModelScore>> scored;
    scored.reserve(nn::kModelZooSize);
    for (int number = 1; number <= nn::kModelZooSize; ++number) {
        scored.push_back(pool.submit([number, &people, epochs, seeds]() {
            return bench::scoreModelAveraged(
                number, people, epochs,
                1000 + static_cast<uint64_t>(number), seeds);
        }));
    }
    for (int number = 1; number <= nn::kModelZooSize; ++number) {
        bench::ModelScore score = scored[number - 1].get();
        if (score.diverged) {
            table2.addRow({std::to_string(number), "Diverged",
                           TextTable::num(score.trainSeconds, 3), "-"});
        } else {
            table2.addRow({std::to_string(number),
                           TextTable::meanStd(score.meanAbsRelError,
                                              score.stddevAbsRelError),
                           TextTable::num(score.trainSeconds, 3),
                           TextTable::num(score.predictMillis, 1)});
            if (score.meanAbsRelError < best_error) {
                best_error = score.meanAbsRelError;
                best_model = number;
            }
        }
        std::cerr << "scored model " << number << "/23\r";
    }
    std::cerr << "\n";
    table2.print(std::cout);

    std::cout << "\nBest test error: model " << best_model << " ("
              << TextTable::num(best_error, 2)
              << "%). The paper selects model 1 for its balance of "
                 "accuracy, stability across mounts and low "
                 "training/prediction time.\n";
    return 0;
}
