/**
 * @file
 * Chaos-soak experiment (beyond the paper, "Fig. 9"): run the full
 * Geomancy pipeline for hundreds of decision cycles under a seeded
 * randomized fault schedule that composes every injector the testbed
 * has — transient I/O errors, bandwidth degradation, outages, corrupt
 * telemetry, stale telemetry and clock skew — plus a deterministic
 * mid-soak telemetry "storm" hot enough to trip the guardrails into
 * safe mode and back out again.
 *
 * After every cycle the harness asserts the pipeline invariants that
 * must hold no matter what the chaos schedule did:
 *
 *  - the file layout is consistent (every file on a valid device, the
 *    per-device placement counts sum to the file count, no device
 *    over capacity);
 *  - the serialized pipeline state is finite (no NaN/Inf anywhere in
 *    the snapshot, which covers the DRL weights and scalers);
 *  - the ReplayDB watermark and the guardrail admit/quarantine
 *    counters are monotone;
 *  - the quarantine ring respects its capacity bound;
 *  - a cycle that *starts* in safe mode moves no files (frozen
 *    layout) — probes may train but never migrate;
 *  - the simulated clock never runs backwards.
 *
 * Determinism is checked end to end: each cycle's full snapshot is
 * digested (CRC-32) into a per-cycle log, a second same-seed run must
 * produce a byte-identical log, and two crash scenarios (kill at
 * after-train in normal mode, kill at after-commit inside the
 * safe-mode window) must — after a supervised restart from the latest
 * checkpoint — converge to exactly the reference digests. Foreground
 * migrations (backgroundMoves = false) make the migrate-phase deadline
 * real: big move batches overrun the budget and are deferred.
 *
 * GEO_FIG9_CYCLES overrides the soak length (default 200 cycles,
 * 400 at GEO_BENCH_FULL=1; tools/bench_smoke.sh uses 50).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/checkpoint.hh"
#include "core/geomancy.hh"
#include "experiment_common.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "util/crc32.hh"
#include "util/flight_recorder.hh"
#include "util/fs_atomic.hh"
#include "util/logging.hh"
#include "util/state_io.hh"
#include "util/supervise.hh"
#include "util/table.hh"
#include "workload/belle2.hh"

namespace {

using namespace geo;

/** Cycles of the deterministic corrupt-telemetry storm. */
constexpr uint64_t kStormCycles = 5;

/** One soak run inside a forked child. */
struct Scenario
{
    std::string dir;        ///< checkpoint directory
    std::string digestPath; ///< per-cycle CRC-32 log (append, flushed)
    std::string statsPath;  ///< end-of-run stats
    storage::CrashPoint crash = storage::CrashPoint::None;
    uint64_t crashCycle = 0;
    uint64_t cycles = 200;
    uint64_t seed = 7;
    size_t epochs = 3;
};

/** First cycle of the storm window (needs a little run-up history). */
uint64_t
stormStart(const Scenario &sc)
{
    return std::max<uint64_t>(6, sc.cycles / 3);
}

/** Per-cycle chaos seed: decouples every cycle's draws from every
 *  other's, so a resumed run replays future cycles without having to
 *  restore a generator cursor. */
uint64_t
cycleSeed(uint64_t seed, uint64_t cycle)
{
    uint64_t s = seed * 0x9E3779B97F4A7C15ULL + cycle + 1;
    return splitmix64(s);
}

/**
 * Draw this cycle's randomized fault episodes. Episode durations are
 * scaled by the previous cycle's simulated span so they stretch over
 * roughly one to a few cycles regardless of workload pacing.
 */
std::vector<storage::FaultEvent>
drawChaos(const Scenario &sc, uint64_t cycle, double now, double span)
{
    std::vector<storage::FaultEvent> events;
    Rng rng(cycleSeed(sc.seed, cycle));
    if (!rng.chance(0.30))
        return events;
    storage::FaultEvent e;
    e.device = static_cast<storage::DeviceId>(rng.uniformInt(0, 5));
    e.start = now;
    e.duration = span * rng.uniform(0.5, 3.0) + 2.0;
    switch (rng.uniformInt(0, 5)) {
      case 0:
        e.kind = storage::FaultKind::TransientErrors;
        e.magnitude = rng.uniform(0.05, 0.35);
        break;
      case 1:
        e.kind = storage::FaultKind::Degradation;
        e.magnitude = rng.uniform(0.3, 0.9);
        break;
      case 2:
        e.kind = storage::FaultKind::Outage;
        e.duration = span * rng.uniform(0.2, 0.8) + 1.0;
        e.magnitude = 0.0;
        break;
      case 3:
        e.kind = storage::FaultKind::CorruptTelemetry;
        e.magnitude = rng.uniform(0.2, 0.9);
        break;
      case 4:
        // Past the 300 s staleness window, so the Stale reason fires.
        e.kind = storage::FaultKind::StaleTelemetry;
        e.magnitude = rng.uniform(400.0, 1500.0);
        break;
      default:
        // Past the 120 s future-skew window: the Future reason fires.
        e.kind = storage::FaultKind::ClockSkew;
        e.magnitude = rng.uniform(200.0, 900.0);
        break;
    }
    events.push_back(e);
    return events;
}

/** The storm: corrupt nearly all telemetry on every device, hot
 *  enough that consecutive quarantine floods trip safe mode. */
std::vector<storage::FaultEvent>
drawStorm(double now, double span)
{
    std::vector<storage::FaultEvent> events;
    for (storage::DeviceId d = 0; d < 6; ++d) {
        storage::FaultEvent e;
        e.device = d;
        e.kind = storage::FaultKind::CorruptTelemetry;
        e.start = now;
        e.duration = span * 1.5 + 5.0;
        e.magnitude = 0.97;
        events.push_back(e);
    }
    return events;
}

/** The harness's own checkpoint section. Written *first* so a resume
 *  can rebuild the injector's event schedule before the injector's own
 *  per-event flags are restored. */
void
saveHarness(util::StateWriter &w, uint64_t cycles_done, double span,
            const std::vector<storage::FaultEvent> &events)
{
    w.u64("fig9.cycles_done", cycles_done);
    w.f64("fig9.last_span", span);
    w.u64("fig9.events", events.size());
    for (const storage::FaultEvent &e : events) {
        w.u64("fig9.ev.device", e.device);
        w.u64("fig9.ev.kind", static_cast<uint64_t>(e.kind));
        w.f64("fig9.ev.start", e.start);
        w.f64("fig9.ev.duration", e.duration);
        w.f64("fig9.ev.magnitude", e.magnitude);
    }
}

bool
loadHarness(util::StateReader &r, uint64_t &cycles_done, double &span,
            std::vector<storage::FaultEvent> &events)
{
    cycles_done = r.u64("fig9.cycles_done");
    span = r.f64("fig9.last_span");
    uint64_t count = r.u64("fig9.events");
    if (!r.ok())
        return false;
    events.clear();
    for (uint64_t i = 0; i < count; ++i) {
        storage::FaultEvent e;
        e.device =
            static_cast<storage::DeviceId>(r.u64("fig9.ev.device"));
        e.kind = static_cast<storage::FaultKind>(r.u64("fig9.ev.kind"));
        e.start = r.f64("fig9.ev.start");
        e.duration = r.f64("fig9.ev.duration");
        e.magnitude = r.f64("fig9.ev.magnitude");
        events.push_back(e);
    }
    return r.ok();
}

/** Monotone counters carried across cycles for the invariant checks. */
struct SoakCursor
{
    core::ReplayDbWatermark watermark;
    uint64_t admitted = 0;
    uint64_t quarantined = 0;
    double clock = 0.0;
};

void
checkInvariants(const Scenario &sc, uint64_t cycle,
                storage::StorageSystem &system, core::Geomancy &geomancy,
                const std::string &payload, SoakCursor &prev,
                bool was_safe, const std::map<storage::FileId,
                storage::DeviceId> &layout_before,
                uint64_t moves_before)
{
    // Layout consistency.
    size_t placed = 0;
    for (size_t count : system.filesPerDevice())
        placed += count;
    if (placed != system.fileCount())
        fatal("fig9[c%llu]: %zu files placed, %zu exist",
              (unsigned long long)cycle, placed, system.fileCount());
    for (storage::FileId id : system.fileIds())
        if (system.location(id) >= system.deviceCount())
            fatal("fig9[c%llu]: file %llu on invalid device",
                  (unsigned long long)cycle, (unsigned long long)id);
    for (storage::DeviceId d = 0; d < system.deviceCount(); ++d)
        if (system.device(d).usedBytes() > system.device(d).capacityBytes())
            fatal("fig9[c%llu]: device %u over capacity",
                  (unsigned long long)cycle, (unsigned)d);

    // Finite pipeline state: the snapshot carries every weight and
    // scaler as a hexfloat token, so a NaN/Inf anywhere surfaces here.
    for (const char *bad : {" nan", " -nan", " inf", " -inf"})
        if (payload.find(bad) != std::string::npos)
            fatal("fig9[c%llu]: non-finite value in the snapshot (%s)",
                  (unsigned long long)cycle, bad + 1);

    // Monotone progress counters.
    core::ReplayDbWatermark mark = geomancy.replayDb().watermark();
    if (mark.accesses < prev.watermark.accesses ||
        mark.movements < prev.watermark.movements ||
        mark.moveAttempts < prev.watermark.moveAttempts ||
        mark.faultEvents < prev.watermark.faultEvents)
        fatal("fig9[c%llu]: ReplayDB watermark went backwards",
              (unsigned long long)cycle);
    core::Guardrails &guardrails = geomancy.guardrails();
    if (guardrails.admitted() < prev.admitted ||
        guardrails.quarantined() < prev.quarantined)
        fatal("fig9[c%llu]: guardrail counters went backwards",
              (unsigned long long)cycle);
    if (guardrails.quarantine().size() >
        guardrails.config().quarantineCapacity)
        fatal("fig9[c%llu]: quarantine ring over capacity",
              (unsigned long long)cycle);
    if (system.clock().now() < prev.clock)
        fatal("fig9[c%llu]: simulated clock ran backwards",
              (unsigned long long)cycle);

    // Frozen layout: a cycle that started in safe mode may not move
    // anything (probes train; nobody migrates).
    if (was_safe) {
        if (system.migrationCount() != moves_before)
            fatal("fig9[c%llu]: migration in safe mode",
                  (unsigned long long)cycle);
        if (system.layout() != layout_before)
            fatal("fig9[c%llu]: layout changed in safe mode",
                  (unsigned long long)cycle);
    }

    prev.watermark = mark;
    prev.admitted = guardrails.admitted();
    prev.quarantined = guardrails.quarantined();
    prev.clock = system.clock().now();
    (void)sc;
}

/**
 * The child body: drive the pipeline cycle by cycle under the chaos
 * schedule, checkpoint after every cycle, append each cycle's snapshot
 * digest to the log. On `resume` it restores the newest valid snapshot
 * (rebuilding the injector schedule from the harness section first);
 * with a crash armed it never returns.
 */
int
runScenario(const Scenario &sc, int attempt, bool resume)
{
    util::MetricRegistry::global().reset();
    util::FlightRecorder::global().clear();
    util::FlightRecorder::global().setDumpDir(sc.dir);
    std::error_code ec;
    std::filesystem::create_directories(sc.dir, ec);
    core::CheckpointManagerConfig mconfig;
    mconfig.dir = sc.dir;
    core::CheckpointManager manager(mconfig);
    std::string db_path = sc.dir + "/replay.db";
    std::string ledger_path = sc.dir + "/ledger.ndjson";
    if (!resume) {
        manager.clear();
        for (const char *suffix : {"", "-journal", "-wal", "-shm"})
            std::filesystem::remove(db_path + suffix, ec);
        std::filesystem::remove(sc.digestPath, ec);
        std::filesystem::remove(ledger_path, ec);
    }

    // Foreground migrations: moves advance the simulated clock, so the
    // migrate-phase deadline exerts real pressure on big batches.
    storage::SystemConfig scfg;
    scfg.backgroundMoves = false;
    storage::StorageSystem system(scfg);
    for (const storage::DeviceConfig &dc :
         storage::blueskyDeviceConfigs(sc.seed))
        system.addDevice(dc);
    workload::Belle2Workload workload(system);

    storage::FaultInjector injector(system, {sc.seed * 1000003 + 13, {}});
    system.attachFaultInjector(&injector);
    if (sc.crash != storage::CrashPoint::None && attempt == 0 && !resume)
        injector.armCrash(sc.crash, sc.crashCycle);

    core::GeomancyConfig gconfig;
    gconfig.drl.epochs = sc.epochs;
    gconfig.daemon.windowPerDevice = 256;
    gconfig.minHistory = 300;
    // Tight-but-real windows so the injected faults actually cross the
    // guardrail thresholds; the migrate budget makes overruns possible.
    gconfig.guardrails.maxRecordAgeSeconds = 300.0;
    gconfig.guardrails.maxFutureSkewSeconds = 120.0;
    gconfig.guardrails.migrateBudgetSeconds = 0.5;
    core::Geomancy geomancy(system, workload.files(), gconfig, db_path);
    geomancy.attachLedger(ledger_path);

    uint64_t cycles_done = 0;
    double span = 0.0;
    std::vector<storage::FaultEvent> events;

    if (resume) {
        core::CheckpointHeader header;
        std::string payload, path;
        if (!manager.loadLatest(header, payload, &path))
            fatal("fig9: resume requested but no valid snapshot in %s",
                  sc.dir.c_str());
        std::istringstream is(payload);
        util::StateReader r(is);
        if (!loadHarness(r, cycles_done, span, events))
            fatal("fig9: harness section of %s rejected: %s",
                  path.c_str(), r.error().c_str());
        // Rebuild the schedule before the injector restores its
        // per-event active flags (they are parallel arrays).
        for (const storage::FaultEvent &e : events)
            injector.addEvent(e);
        geomancy.loadState(r);
        injector.loadState(r);
        workload.loadState(r);
        if (!r.ok())
            fatal("fig9: checkpoint %s rejected: %s", path.c_str(),
                  r.error().c_str());
        geomancy.controlAgent().restorePending();
        inform("fig9: resumed at cycle %llu from %s",
               (unsigned long long)cycles_done, path.c_str());
    }

    std::ofstream digest_log(sc.digestPath,
                             std::ios::out | std::ios::app);
    if (!digest_log)
        fatal("fig9: cannot open %s", sc.digestPath.c_str());

    SoakCursor prev;
    prev.watermark = geomancy.replayDb().watermark();
    prev.admitted = geomancy.guardrails().admitted();
    prev.quarantined = geomancy.guardrails().quarantined();
    prev.clock = system.clock().now();

    const uint64_t storm_first = stormStart(sc);
    for (uint64_t k = cycles_done; k < sc.cycles; ++k) {
        uint64_t cycle = k + 1;
        double cycle_start = system.clock().now();
        bool was_safe = geomancy.guardrails().safeMode();
        std::map<storage::FileId, storage::DeviceId> layout_before;
        uint64_t moves_before = system.migrationCount();
        if (was_safe)
            layout_before = system.layout();

        std::vector<storage::FaultEvent> fresh;
        if (cycle >= storm_first && cycle < storm_first + kStormCycles)
            fresh = drawStorm(cycle_start, span);
        for (const storage::FaultEvent &e :
             drawChaos(sc, cycle, cycle_start, span))
            fresh.push_back(e);
        for (const storage::FaultEvent &e : fresh) {
            injector.addEvent(e);
            events.push_back(e);
        }

        workload.executeRun();
        core::CycleReport report = geomancy.runCycle();
        span = system.clock().now() - cycle_start;

        std::ostringstream os;
        util::StateWriter w(os);
        saveHarness(w, cycle, span, events);
        geomancy.saveState(w);
        injector.saveState(w);
        workload.saveState(w);
        std::string payload = os.str();

        checkInvariants(sc, cycle, system, geomancy, payload, prev,
                        was_safe, layout_before, moves_before);

        char line[128];
        std::snprintf(line, sizeof line, "%llu %08x s%d p%d h%d\n",
                      (unsigned long long)cycle, util::crc32(payload),
                      report.safeMode ? 1 : 0, report.probe ? 1 : 0,
                      report.held ? 1 : 0);
        digest_log << line << std::flush;

        if (!manager.write(cycle, payload))
            fatal("fig9: checkpoint write failed at cycle %llu",
                  (unsigned long long)cycle);
        injector.maybeCrash(storage::CrashPoint::AfterCommit);
    }

    core::Guardrails &guardrails = geomancy.guardrails();
    std::ostringstream stats;
    stats << "cycles " << sc.cycles << "\n"
          << "admitted " << guardrails.admitted() << "\n"
          << "quarantined " << guardrails.quarantined() << "\n"
          << "safe_entries " << guardrails.safeModeEntries() << "\n"
          << "safe_exits " << guardrails.safeModeExits() << "\n"
          << "overruns " << guardrails.watchdog().overruns() << "\n"
          << "moves " << system.migrationCount() << "\n";
    // Per-mount prediction-error accumulators, in the exact shape
    // `geomancy_explain --prediction-error --per-mount` recomputes
    // from the ledger file (tools/bench_smoke.sh cross-checks them).
    for (const auto &[device, stat] : geomancy.ledger()->mountErrors()) {
        char line[160];
        double n = stat.samples ? static_cast<double>(stat.samples) : 1.0;
        std::snprintf(line, sizeof line,
                      "err.dev%llu.samples %llu\n"
                      "err.dev%llu.mae %.12g\n"
                      "err.dev%llu.signed %.12g\n",
                      (unsigned long long)device,
                      (unsigned long long)stat.samples,
                      (unsigned long long)device, stat.sumAbs / n,
                      (unsigned long long)device, stat.sumSigned / n);
        stats << line;
    }
    if (!util::writeFileAtomic(sc.statsPath, stats.str()))
        return 1;
    return 0;
}

/** Read a whole file; empty string when missing. */
std::string
slurp(const std::string &path)
{
    std::string content;
    util::readFileAll(path, content);
    return content;
}

/** Parse a digest log into cycle -> line (later lines win: a crashed
 *  child may have logged a cycle whose checkpoint never became
 *  durable; the resumed child re-runs it, and re-runs must agree with
 *  the reference anyway). */
std::map<uint64_t, std::string>
parseDigests(const std::string &text)
{
    std::map<uint64_t, std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        uint64_t cycle = 0;
        if (ls >> cycle)
            out[cycle] = line;
    }
    return out;
}

double
statValue(const std::string &stats, const std::string &key)
{
    std::istringstream is(stats);
    std::string k;
    double v;
    while (is >> k >> v)
        if (k == key)
            return v;
    return 0.0;
}

} // namespace

int
main()
{
    bench::BenchObservability observability;
    bench::header("Fig. 9 - chaos soak under composed fault injection",
                  "guardrails extension (beyond the paper)");

    Scenario base;
    base.cycles = bench::knob("GEO_FIG9_CYCLES", 200, 400);
    base.epochs = bench::knob("GEO_DRL_EPOCHS", 3, 20);
    const std::string root = "fig9-work";
    std::error_code ec;
    std::filesystem::remove_all(root, ec);

    auto configure = [&](const char *name) {
        Scenario sc = base;
        sc.dir = root + "/" + name;
        sc.digestPath = root + "/" + std::string(name) + "-digests.txt";
        sc.statsPath = root + "/" + std::string(name) + "-stats.txt";
        return sc;
    };

    // Uninterrupted reference.
    Scenario ref = configure("ref");
    util::SuperviseResult sup = util::runSupervised(
        [&](int attempt, bool resume) {
            return runScenario(ref, attempt, resume);
        },
        {0});
    if (sup.exitCode != 0)
        fatal("fig9: reference run failed (exit %d)", sup.exitCode);
    std::map<uint64_t, std::string> ref_digests =
        parseDigests(slurp(ref.digestPath));
    if (ref_digests.size() != base.cycles)
        fatal("fig9: reference logged %zu of %llu cycles",
              ref_digests.size(), (unsigned long long)base.cycles);
    std::string ref_ledger = slurp(ref.dir + "/ledger.ndjson");
    if (ref_ledger.empty())
        fatal("fig9: reference run wrote no decision ledger");

    struct Row
    {
        std::string name;
        int restarts = 0;
        bool identical = false;
        bool flightDump = true; ///< only required of crash scenarios
        double safeEntries = 0.0;
        double safeExits = 0.0;
        double quarantined = 0.0;
        double overruns = 0.0;
    };
    std::vector<Row> rows;
    auto &registry = util::MetricRegistry::global();

    auto hasFlightDump = [](const std::string &dir) {
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec))
            if (entry.path().filename().string().rfind(
                    "flight-killpoint-", 0) == 0)
                return true;
        return false;
    };
    auto finishRow = [&](const Scenario &sc, const std::string &name,
                         int restarts) {
        Row row;
        row.name = name;
        row.restarts = restarts;
        row.identical =
            parseDigests(slurp(sc.digestPath)) == ref_digests &&
            slurp(sc.dir + "/ledger.ndjson") == ref_ledger;
        if (sc.crash != storage::CrashPoint::None)
            row.flightDump = hasFlightDump(sc.dir);
        std::string stats = slurp(sc.statsPath);
        row.safeEntries = statValue(stats, "safe_entries");
        row.safeExits = statValue(stats, "safe_exits");
        row.quarantined = statValue(stats, "quarantined");
        row.overruns = statValue(stats, "overruns");
        rows.push_back(row);
        registry.gauge("fig9." + name + ".identical")
            .set(row.identical ? 1.0 : 0.0);
        registry.gauge("fig9." + name + ".safe_entries")
            .set(row.safeEntries);
        registry.gauge("fig9." + name + ".quarantined")
            .set(row.quarantined);
    };
    finishRow(ref, "reference", 0);

    // Determinism twin: same seed, fresh directory, identical digests.
    {
        Scenario twin = configure("twin");
        util::SuperviseResult result = util::runSupervised(
            [&](int attempt, bool resume) {
                return runScenario(twin, attempt, resume);
            },
            {0});
        if (result.exitCode != 0)
            warn("fig9: twin run failed (exit %d)", result.exitCode);
        finishRow(twin, "same-seed-twin", 0);
    }

    // Crash in normal operation (after a retrain), supervised restart.
    {
        Scenario sc = configure("crash-train");
        sc.crash = storage::CrashPoint::AfterTrain;
        sc.crashCycle = 5;
        util::SuperviseConfig sconfig;
        sconfig.maxRestarts = 2;
        sconfig.backoffMs = 10;
        util::SuperviseResult result = util::runSupervised(
            [&](int attempt, bool resume) {
                return runScenario(sc, attempt, resume);
            },
            sconfig);
        finishRow(sc, "crash-after-train", result.restarts);
    }

    // Crash inside the safe-mode storm window: the resumed process
    // must come back *in* safe mode with the same probe schedule.
    {
        Scenario sc = configure("crash-safe");
        sc.crash = storage::CrashPoint::AfterCommit;
        sc.crashCycle = stormStart(sc) + 3;
        util::SuperviseConfig sconfig;
        sconfig.maxRestarts = 2;
        sconfig.backoffMs = 10;
        util::SuperviseResult result = util::runSupervised(
            [&](int attempt, bool resume) {
                return runScenario(sc, attempt, resume);
            },
            sconfig);
        finishRow(sc, "crash-in-safe-mode", result.restarts);
    }

    TextTable table("Fig. 9: chaos soak (" +
                    std::to_string(base.cycles) + " cycles)");
    table.setHeader({"scenario", "restarts", "digests identical",
                     "flight dump", "safe entries", "safe exits",
                     "quarantined", "overruns"});
    bool all_identical = true;
    bool all_dumped = true;
    for (const Row &row : rows) {
        all_identical = all_identical && row.identical;
        all_dumped = all_dumped && row.flightDump;
        table.addRow({row.name, std::to_string(row.restarts),
                      row.identical ? "yes" : "NO",
                      row.flightDump ? "yes" : "NO",
                      TextTable::num(row.safeEntries, 0),
                      TextTable::num(row.safeExits, 0),
                      TextTable::num(row.quarantined, 0),
                      TextTable::num(row.overruns, 0)});
    }
    table.print(std::cout);
    registry.gauge("fig9.cycles").set(static_cast<double>(base.cycles));

    const Row &reference = rows.front();
    if (reference.safeEntries < 1.0)
        warn("fig9: the storm never tripped safe mode "
             "(soak too short?)");
    std::cout << (all_identical
                      ? "\nAll runs (twin and crash/restart) reproduce "
                        "the reference digests and decision ledger "
                        "bit-for-bit.\n"
                      : "\nDIVERGENCE: at least one run differs from "
                        "the reference digests or ledger.\n");
    if (!all_dumped)
        std::cout << "MISSING: a crash scenario left no flight-recorder "
                     "dump.\n";
    return all_identical && all_dumped && reference.safeEntries >= 1.0
               ? 0
               : 1;
}
