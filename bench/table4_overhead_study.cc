/**
 * @file
 * Regenerates Table IV (experiment 3 / overhead study): the average
 * throughput and deviation of each storage point when the whole
 * workload is pinned to it, against Geomancy's mixed layout and how
 * Geomancy distributes its accesses across the mounts.
 *
 * Expected shape (paper Section VIII): file0 has the highest
 * single-mount mean *and* the highest deviation; USBtmp the lowest
 * mean; Geomancy lands between the best single mount's mean and the
 * rest by spreading load (majority share on file0) while avoiding
 * saturating it.
 */

#include <iostream>

#include "experiment_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    bench::BenchObservability observability;
    using bench::PolicyKind;
    bench::header("Table IV - per-mount pinning vs Geomancy",
                  "Section VIII, Table IV");

    TextTable table(
        "Table IV: performance and utilization of storage points");
    table.setHeader({"Storage point", "Avg throughput (GB/s)",
                     "Geomancy usage (%)"});

    // Geomancy run first: its per-device access mix is the usage column.
    core::ExperimentResult geomancy =
        bench::runPolicy(PolicyKind::GeomancyDynamic);
    std::cerr << "finished Geomancy dynamic\n";

    auto names = storage::blueskyMountNames();
    double best_single = 0.0;
    for (storage::DeviceId id = 0; id < names.size(); ++id) {
        core::ExperimentResult pinned =
            bench::runPolicy(PolicyKind::SingleMount, 7, id);
        StatAccumulator acc;
        for (double v : pinned.throughputSeries)
            acc.add(v);
        double usage =
            100.0 *
            static_cast<double>(geomancy.accessesPerDevice[id]) /
            static_cast<double>(geomancy.totalAccesses);
        table.addRow({names[id],
                      TextTable::meanStd(acc.mean() / 1e9,
                                         acc.stddev() / 1e9),
                      TextTable::num(usage, 2)});
        best_single = std::max(best_single, acc.mean());
        std::cerr << "finished single-mount " << names[id] << "\n";
    }
    {
        StatAccumulator acc;
        for (double v : geomancy.throughputSeries)
            acc.add(v);
        table.addRow({"Geomancy",
                      TextTable::meanStd(acc.mean() / 1e9,
                                         acc.stddev() / 1e9),
                      "100"});
    }
    table.print(std::cout);

    storage::DeviceId file0 = 0;
    double file0_share =
        static_cast<double>(geomancy.accessesPerDevice[file0]) /
        static_cast<double>(geomancy.totalAccesses);
    std::cout << "\nShape checks vs paper:\n";
    std::cout << "  Geomancy puts the largest share on file0: "
              << (file0_share >= 0.3 ? "OK" : "MISMATCH") << " ("
              << TextTable::num(file0_share * 100.0, 1) << "%)\n";
    std::cout << "  Geomancy mean within reach of the best single "
                 "mount: "
              << (geomancy.averageThroughput > 0.4 * best_single
                      ? "OK"
                      : "MISMATCH")
              << "\n";
    return 0;
}
