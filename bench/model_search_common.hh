/**
 * @file
 * Shared machinery for the Table I/II/III model-search harnesses:
 * telemetry collection from the simulated Bluesky node and the
 * train/evaluate loop used to score each architecture.
 */

#ifndef GEO_BENCH_MODEL_SEARCH_COMMON_HH
#define GEO_BENCH_MODEL_SEARCH_COMMON_HH

#include <chrono>
#include <future>
#include <map>
#include <vector>

#include "core/perf_record.hh"
#include "nn/model_zoo.hh"
#include "storage/bluesky.hh"
#include "trace/normalizer.hh"
#include "util/smoothing.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"
#include "workload/belle2.hh"

namespace geo {
namespace bench {

/** Telemetry: per-device performance records from a live-like run. */
struct Telemetry
{
    std::map<storage::DeviceId, std::vector<core::PerfRecord>> perDevice;
    std::vector<std::string> deviceNames;
};

/**
 * Run the BELLE II workload on a fresh Bluesky system, shuffling the
 * layout periodically so every (file, device) combination appears in
 * the telemetry, and collect one record stream per mount.
 */
inline Telemetry
collectTelemetry(size_t runs, uint64_t seed = 7)
{
    Telemetry telemetry;
    auto system = storage::makeBlueskySystem(seed);
    for (storage::DeviceId id : system->deviceIds())
        telemetry.deviceNames.push_back(system->device(id).name());

    workload::Belle2Workload workload(*system);
    system->onAccess([&](const storage::AccessObservation &obs) {
        telemetry.perDevice[obs.device].push_back(
            core::PerfRecord::fromObservation(obs));
    });

    Rng rng(seed * 13 + 1);
    for (size_t run = 0; run < runs; ++run) {
        workload.executeRun();
        if ((run + 1) % 5 == 0) {
            // Random reshuffle (the paper trains Geomancy static from
            // ~10,000 random-dynamic samples).
            for (storage::FileId file : workload.files()) {
                storage::DeviceId target =
                    static_cast<storage::DeviceId>(rng.uniformInt(
                        0,
                        static_cast<int64_t>(system->deviceCount()) - 1));
                system->moveFile(file, target);
            }
        }
    }
    return telemetry;
}

/** A normalized, optionally windowed dataset built from records. */
inline nn::Dataset
buildMountDataset(const std::vector<core::PerfRecord> &records,
                  size_t window, size_t smoothing,
                  trace::MinMaxNormalizer &target_norm)
{
    nn::Matrix features(records.size(), core::kLiveFeatureCount);
    for (size_t r = 0; r < records.size(); ++r) {
        std::vector<double> row = records[r].features();
        for (size_t c = 0; c < row.size(); ++c)
            features.at(r, c) = row[c];
    }
    // The paper smooths the ReplayDB data, not just the reward: apply
    // the same moving average to the continuous feature columns
    // (rb, wb, timestamps) so per-row correspondence is preserved.
    if (smoothing > 1) {
        for (size_t c = 0; c < 4; ++c) {
            std::vector<double> column(records.size());
            for (size_t r = 0; r < records.size(); ++r)
                column[r] = features.at(r, c);
            column = movingAverage(column, smoothing);
            for (size_t r = 0; r < records.size(); ++r)
                features.at(r, c) = column[r];
        }
    }
    std::vector<double> tp;
    tp.reserve(records.size());
    for (const core::PerfRecord &rec : records)
        tp.push_back(rec.throughput);
    if (smoothing > 1)
        tp = movingAverage(tp, smoothing);
    nn::Matrix targets(records.size(), 1);
    for (size_t r = 0; r < records.size(); ++r)
        targets.at(r, 0) = tp[r];

    trace::MinMaxNormalizer feature_norm;
    feature_norm.fit(features);
    features = feature_norm.transform(features);
    target_norm.fit(targets);
    targets = target_norm.transform(targets);

    size_t rows = records.size() - window + 1;
    nn::Dataset data;
    data.inputs = nn::Matrix(rows, core::kLiveFeatureCount * window);
    data.targets = nn::Matrix(rows, 1);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t t = 0; t < window; ++t)
            data.inputs.setBlock(r, t * core::kLiveFeatureCount,
                                 features.row(r + t));
        data.targets.at(r, 0) = targets.at(r + window - 1, 0);
    }
    return data;
}

/** Result of scoring one architecture on one mount. */
struct ModelScore
{
    bool diverged = false;
    double meanAbsRelError = 0.0;   ///< % on the test set
    double stddevAbsRelError = 0.0; ///< % on the test set
    double trainSeconds = 0.0;
    double predictMillis = 0.0;     ///< full test-set prediction
};

/**
 * Average scoreModel() over several seeds: individual SGD runs on
 * this data are noisy, and the paper's ranking claims are about the
 * architecture, not one initialization. Seed trials run as thread
 * pool tasks (`pool`, or the global pool when null) and are combined
 * in seed order, so the averages are worker-count independent.
 */
ModelScore scoreModelAveraged(int number,
                              const std::vector<core::PerfRecord> &records,
                              size_t epochs, uint64_t seed, size_t seeds,
                              util::ThreadPool *pool = nullptr);

/**
 * Train Table I model `number` on `records` and score it on the
 * held-out test split (chronological 60/20/20, as in the paper).
 */
inline ModelScore
scoreModel(int number, const std::vector<core::PerfRecord> &records,
           size_t epochs, uint64_t seed)
{
    const size_t window = nn::modelSpec(number, core::kLiveFeatureCount)
                                  .recurrent
                              ? nn::kDefaultTimesteps
                              : 1;
    size_t smoothing = 32;
    if (const char *env = std::getenv("GEO_SMOOTH"))
        smoothing = static_cast<size_t>(std::stoull(env));
    trace::MinMaxNormalizer target_norm;
    nn::Dataset data =
        buildMountDataset(records, window, smoothing, target_norm);
    nn::DataSplit split = nn::chronologicalSplit(data);

    Rng rng(seed);
    nn::Sequential model =
        nn::buildModel(number, core::kLiveFeatureCount, rng);
    // Plain SGD, as in the paper (Adam performed worse there).
    nn::SgdOptimizer optimizer(0.05, /*clip_norm=*/5.0);
    nn::TrainOptions options;
    options.epochs = epochs;
    options.batchSize = 64;
    options.shuffle = true;
    options.shuffleSeed = seed;

    ModelScore score;
    nn::TrainResult result =
        model.train(split.train, split.validation, optimizer, options);
    score.trainSeconds = result.seconds;
    if (result.diverged || model.looksDiverged(split.test)) {
        score.diverged = true;
        return score;
    }

    auto t0 = std::chrono::steady_clock::now();
    nn::Matrix predictions = model.predict(split.test.inputs);
    auto t1 = std::chrono::steady_clock::now();
    score.predictMillis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::vector<double> pred, target;
    for (size_t r = 0; r < split.test.size(); ++r) {
        pred.push_back(target_norm.inverseValue(predictions.at(r, 0), 0));
        target.push_back(
            target_norm.inverseValue(split.test.targets.at(r, 0), 0));
    }
    score.meanAbsRelError = meanAbsoluteRelativeError(pred, target);
    score.stddevAbsRelError = stddevAbsoluteRelativeError(pred, target);
    return score;
}

inline ModelScore
scoreModelAveraged(int number,
                   const std::vector<core::PerfRecord> &records,
                   size_t epochs, uint64_t seed, size_t seeds,
                   util::ThreadPool *pool)
{
    util::ThreadPool &workers =
        pool != nullptr ? *pool : util::ThreadPool::global();
    std::vector<std::future<ModelScore>> trials;
    trials.reserve(seeds);
    for (size_t s = 0; s < seeds; ++s) {
        trials.push_back(workers.submit([number, &records, epochs, seed,
                                         s]() -> ModelScore {
            return scoreModel(number, records, epochs, seed + s * 7919);
        }));
    }
    ModelScore averaged;
    size_t healthy = 0;
    for (size_t s = 0; s < seeds; ++s) {
        ModelScore one = trials[s].get();
        averaged.trainSeconds += one.trainSeconds / seeds;
        if (one.diverged)
            continue;
        ++healthy;
        averaged.meanAbsRelError += one.meanAbsRelError;
        averaged.stddevAbsRelError += one.stddevAbsRelError;
        averaged.predictMillis += one.predictMillis;
    }
    // Majority divergence marks the architecture as diverged, as the
    // paper's Table II does.
    if (healthy * 2 <= seeds) {
        averaged.diverged = true;
        return averaged;
    }
    averaged.meanAbsRelError /= static_cast<double>(healthy);
    averaged.stddevAbsRelError /= static_cast<double>(healthy);
    averaged.predictMillis /= static_cast<double>(healthy);
    return averaged;
}

} // namespace bench
} // namespace geo

#endif // GEO_BENCH_MODEL_SEARCH_COMMON_HH
