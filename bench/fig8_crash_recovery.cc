/**
 * @file
 * Crash-recovery experiment (beyond the paper, "Fig. 8"): kill the
 * Geomancy pipeline at every process-level kill point, restart it from
 * the latest checkpoint under the supervisor, and verify the resumed
 * run is *byte-identical* to the same experiment run uninterrupted.
 *
 * The scenario is the fig5a dynamic-Geomancy experiment with
 * checkpointing enabled (snapshot at the end of every measured run,
 * file-backed ReplayDB). For each kill point the harness:
 *
 *  1. forks a child that arms the crash and runs until it dies
 *     (std::_Exit, no cleanup — nothing not already durable survives);
 *  2. lets the supervisor restart it; the new child restores the
 *     newest snapshot, rewinds the ReplayDB to the checkpointed
 *     watermark and finishes the experiment;
 *  3. compares the resumed run's full per-access throughput series
 *     (hexfloat text, bit-exact) against an uninterrupted reference.
 *
 * A final scenario flips one payload byte of the newest snapshot and
 * resumes: the CRC check must reject it and fall back to the older
 * snapshot — recovery still completes, slightly further back in time.
 *
 * Reported per kill point: supervisor restarts, byte-identity of the
 * series, recovery latency (checkpoint load + ReplayDB rewind) and the
 * work the checkpoint saved (measured runs + decision cycles not
 * re-executed), mirrored into the metric registry as fig8.* gauges.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "core/geomancy.hh"
#include "core/policies.hh"
#include "experiment_common.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "util/flight_recorder.hh"
#include "util/fs_atomic.hh"
#include "util/logging.hh"
#include "util/state_io.hh"
#include "util/supervise.hh"
#include "util/table.hh"

namespace {

using namespace geo;

/** One scenario run inside a forked child. */
struct Scenario
{
    std::string dir;        ///< checkpoint directory
    std::string seriesPath; ///< hexfloat per-access series output
    std::string statsPath;  ///< recovery stats output (resume only)
    storage::CrashPoint crash = storage::CrashPoint::None;
    uint64_t crashCycle = 2;
    size_t warmup = 3;
    size_t runs = 18;
    size_t cadence = 3;
    size_t epochs = 8;
    uint64_t seed = 7;
};

/**
 * The child body: the fig5a-style experiment with checkpointing. On
 * `resume` it restores the newest valid snapshot first; with a crash
 * armed it never returns.
 */
int
runScenario(const Scenario &sc, int attempt, bool resume)
{
    util::MetricRegistry::global().reset();
    util::FlightRecorder::global().clear();
    util::FlightRecorder::global().setDumpDir(sc.dir);
    std::error_code ec;
    std::filesystem::create_directories(sc.dir, ec);
    core::CheckpointManagerConfig mconfig;
    mconfig.dir = sc.dir;
    core::CheckpointManager manager(mconfig);
    std::string db_path = sc.dir + "/replay.db";
    std::string ledger_path = sc.dir + "/ledger.ndjson";
    if (!resume) {
        manager.clear();
        for (const char *suffix : {"", "-journal", "-wal", "-shm"})
            std::filesystem::remove(db_path + suffix, ec);
        std::filesystem::remove(ledger_path, ec);
    }

    auto system = storage::makeBlueskySystem(sc.seed);
    workload::Belle2Workload workload(*system);
    // Empty schedule: the injector only provides the kill points.
    storage::FaultInjector injector(*system, {});
    system->attachFaultInjector(&injector);
    if (sc.crash != storage::CrashPoint::None && attempt == 0 && !resume)
        injector.armCrash(sc.crash, sc.crashCycle);

    core::GeomancyConfig gconfig;
    gconfig.drl.epochs = sc.epochs;
    core::Geomancy geomancy(*system, workload.files(), gconfig, db_path);
    geomancy.attachLedger(ledger_path);
    core::GeomancyDynamicPolicy policy(geomancy);

    core::ExperimentConfig config;
    config.warmupRuns = sc.warmup;
    config.measuredRuns = sc.runs;
    config.cadence = sc.cadence;
    config.seed = sc.seed * 31 + 1;
    core::ExperimentRunner runner(*system, workload, policy, config);

    auto writeSnapshot = [&](util::StateWriter &w) {
        geomancy.saveState(w);
        injector.saveState(w);
        workload.saveState(w);
        runner.saveState(w);
    };

    double restore_ms = 0.0;
    size_t runs_saved = 0, cycles_saved = 0;
    if (resume) {
        auto started = std::chrono::steady_clock::now();
        core::CheckpointHeader header;
        std::string payload, path;
        if (manager.loadLatest(header, payload, &path)) {
            std::istringstream is(payload);
            util::StateReader r(is);
            geomancy.loadState(r);
            injector.loadState(r);
            workload.loadState(r);
            runner.loadState(r);
            if (!r.ok())
                fatal("fig8: checkpoint %s rejected: %s", path.c_str(),
                      r.error().c_str());
            geomancy.controlAgent().restorePending();
            restore_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count();
            runs_saved = runner.measuredRunsDone();
            cycles_saved = geomancy.cyclesRun();
            inform("fig8: resumed from %s (%zu runs, %zu cycles saved)",
                   path.c_str(), runs_saved, cycles_saved);
        } else {
            fatal("fig8: resume requested but no valid snapshot in %s",
                  sc.dir.c_str());
        }
    }

    runner.setCheckpointHook([&](size_t done) {
        std::ostringstream os;
        util::StateWriter w(os);
        writeSnapshot(w);
        if (manager.write(done, os.str()))
            injector.maybeCrash(storage::CrashPoint::AfterCommit);
    });

    core::ExperimentResult result = runner.run();

    // The byte-identity artifact: every per-access throughput sample
    // as a hexfloat (bit-exact), plus the closing clock and average.
    std::ostringstream series;
    char buf[64];
    for (double v : result.throughputSeries) {
        std::snprintf(buf, sizeof buf, "%a\n", v);
        series << buf;
    }
    std::snprintf(buf, sizeof buf, "sim_time %a\n", system->clock().now());
    series << buf;
    std::snprintf(buf, sizeof buf, "avg %a\n", result.averageThroughput);
    series << buf;
    if (!util::writeFileAtomic(sc.seriesPath, series.str()))
        return 1;

    if (!sc.statsPath.empty() && resume) {
        std::ostringstream stats;
        stats << "restore_ms " << restore_ms << "\n"
              << "runs_saved " << runs_saved << "\n"
              << "cycles_saved " << cycles_saved << "\n";
        if (!util::writeFileAtomic(sc.statsPath, stats.str()))
            return 1;
    }
    return 0;
}

/** Read a whole file; empty string when missing. */
std::string
slurp(const std::string &path)
{
    std::string content;
    util::readFileAll(path, content);
    return content;
}

/** One key's value from a stats file written by runScenario. */
double
statValue(const std::string &stats, const std::string &key)
{
    std::istringstream is(stats);
    std::string k;
    double v;
    while (is >> k >> v) {
        if (k == key)
            return v;
    }
    return 0.0;
}

/** Did the kill point leave a flight-recorder dump in `dir`? */
bool
hasFlightDump(const std::string &dir)
{
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("flight-killpoint-", 0) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main()
{
    bench::BenchObservability observability;
    bench::header("Fig. 8 - crash + restart vs uninterrupted",
                  "checkpoint/restore extension (beyond the paper)");

    Scenario base;
    base.runs = bench::knob("GEO_FIG8_RUNS", 18, 60);
    base.epochs = bench::knob("GEO_DRL_EPOCHS", 8, 60);
    const std::string root = "fig8-work";
    std::error_code ec;
    std::filesystem::remove_all(root, ec);

    // Uninterrupted reference: same checkpoint cadence, no crash.
    Scenario ref = base;
    ref.dir = root + "/ref";
    ref.seriesPath = root + "/ref-series.txt";
    util::SuperviseResult sup = util::runSupervised(
        [&](int attempt, bool resume) {
            return runScenario(ref, attempt, resume);
        },
        {0});
    if (sup.exitCode != 0)
        fatal("fig8: reference run failed (exit %d)", sup.exitCode);
    std::string ref_series = slurp(ref.seriesPath);
    std::string ref_ledger = slurp(ref.dir + "/ledger.ndjson");
    if (ref_ledger.empty())
        fatal("fig8: reference run wrote no decision ledger");

    struct Row
    {
        std::string name;
        int restarts = 0;
        bool identical = false;
        bool flightDump = false;
        double restoreMs = 0.0;
        double runsSaved = 0.0;
        double cyclesSaved = 0.0;
    };
    std::vector<Row> rows;

    auto &registry = util::MetricRegistry::global();
    for (storage::CrashPoint point :
         {storage::CrashPoint::AfterTrain, storage::CrashPoint::AfterPropose,
          storage::CrashPoint::MidMigration,
          storage::CrashPoint::AfterCommit}) {
        Scenario sc = base;
        std::string name = storage::crashPointName(point);
        sc.dir = root + "/" + name;
        sc.seriesPath = root + "/" + name + "-series.txt";
        sc.statsPath = root + "/" + name + "-stats.txt";
        sc.crash = point;
        util::SuperviseConfig sconfig;
        sconfig.maxRestarts = 2;
        sconfig.backoffMs = 10; // keep the bench snappy
        util::SuperviseResult result = util::runSupervised(
            [&](int attempt, bool resume) {
                return runScenario(sc, attempt, resume);
            },
            sconfig);

        Row row;
        row.name = name;
        row.restarts = result.restarts;
        std::string stats = slurp(sc.statsPath);
        row.identical = result.exitCode == 0 && !ref_series.empty() &&
                        slurp(sc.seriesPath) == ref_series &&
                        slurp(sc.dir + "/ledger.ndjson") == ref_ledger;
        row.flightDump = hasFlightDump(sc.dir);
        row.restoreMs = statValue(stats, "restore_ms");
        row.runsSaved = statValue(stats, "runs_saved");
        row.cyclesSaved = statValue(stats, "cycles_saved");
        rows.push_back(row);

        registry.gauge("fig8." + row.name + ".identical")
            .set(row.identical ? 1.0 : 0.0);
        registry.gauge("fig8." + row.name + ".restore_ms")
            .set(row.restoreMs);
        registry.gauge("fig8." + row.name + ".runs_saved")
            .set(row.runsSaved);
        registry.gauge("fig8." + row.name + ".cycles_saved")
            .set(row.cyclesSaved);
    }

    // Corruption fallback: flip one payload byte of the newest
    // after-train snapshot, resume again; the CRC must reject it and
    // recovery must complete from the older snapshot.
    Row corrupt_row;
    corrupt_row.name = "corrupt-crc";
    {
        Scenario sc = base;
        sc.dir = root + "/after-train";
        sc.seriesPath = root + "/corrupt-series.txt";
        sc.statsPath = root + "/corrupt-stats.txt";
        core::CheckpointManager manager({sc.dir});
        std::vector<uint64_t> cycles = manager.availableCycles();
        if (cycles.size() >= 2) {
            std::string victim = manager.pathFor(cycles.back());
            std::string blob = slurp(victim);
            blob[blob.size() / 2] ^= 0x40; // flip a payload bit
            std::ofstream os(victim, std::ios::binary | std::ios::trunc);
            os << blob;
            os.close();
            util::SuperviseResult result = util::runSupervised(
                [&](int attempt, bool resume) {
                    (void)resume;
                    return runScenario(sc, attempt + 1, true);
                },
                {0});
            std::string stats = slurp(sc.statsPath);
            corrupt_row.restarts = 0;
            corrupt_row.identical =
                result.exitCode == 0 &&
                slurp(sc.seriesPath) == ref_series &&
                slurp(sc.dir + "/ledger.ndjson") == ref_ledger;
            corrupt_row.flightDump = hasFlightDump(sc.dir);
            corrupt_row.restoreMs = statValue(stats, "restore_ms");
            corrupt_row.runsSaved = statValue(stats, "runs_saved");
            corrupt_row.cyclesSaved = statValue(stats, "cycles_saved");
        } else {
            warn("fig8: not enough snapshots for the corruption case");
        }
        rows.push_back(corrupt_row);
        registry.gauge("fig8.corrupt_crc.identical")
            .set(corrupt_row.identical ? 1.0 : 0.0);
    }

    TextTable table("Fig. 8: crash + supervised restart vs uninterrupted");
    table.setHeader({"kill point", "restarts", "byte-identical",
                     "flight dump", "restore ms", "runs saved",
                     "cycles saved"});
    bool all_identical = true;
    bool all_dumped = true;
    for (const Row &row : rows) {
        all_identical = all_identical && row.identical;
        all_dumped = all_dumped && row.flightDump;
        table.addRow({row.name, std::to_string(row.restarts),
                      row.identical ? "yes" : "NO",
                      row.flightDump ? "yes" : "NO",
                      TextTable::num(row.restoreMs, 2),
                      TextTable::num(row.runsSaved, 0),
                      TextTable::num(row.cyclesSaved, 0)});
    }
    table.print(std::cout);
    std::cout << (all_identical
                      ? "\nAll resumed runs reproduce the uninterrupted "
                        "series and decision ledger bit-for-bit.\n"
                      : "\nDIVERGENCE: at least one resumed run differs "
                        "from the uninterrupted series or ledger.\n");
    if (!all_dumped)
        std::cout << "MISSING: a kill point left no flight-recorder "
                     "dump.\n";
    return all_identical && all_dumped ? 0 : 1;
}
