/**
 * @file
 * Regenerates Table III: model 1's prediction error on each of the six
 * Bluesky mounts.
 *
 * Expected shape (paper Section V-G): errors in the teens-to-twenties
 * of percent, with the busiest mounts (people) and the most volatile
 * one (file0) hardest to predict; average accuracy around 80%.
 */

#include <iostream>

#include "bench_common.hh"
#include "model_search_common.hh"
#include "util/table.hh"

int
main()
{
    using namespace geo;
    bench::header("Table III - model 1 error per storage point",
                  "Section V-G, Table III");

    const size_t epochs = bench::knob("GEO_EPOCHS", 30, 200);
    const size_t max_entries = bench::knob("GEO_ENTRIES", 3000, 12000);
    const size_t runs = bench::knob("GEO_RUNS", 60, 300);

    bench::Telemetry telemetry = bench::collectTelemetry(runs);

    TextTable table("Table III: model 1 absolute relative error (%)");
    table.setHeader({"Storage point", "Abs rel error (%)", "samples"});
    StatAccumulator error_means;
    for (storage::DeviceId id = 0; id < telemetry.deviceNames.size();
         ++id) {
        std::vector<core::PerfRecord> &records = telemetry.perDevice[id];
        if (records.size() > max_entries)
            records.resize(max_entries);
        if (records.size() < 200) {
            table.addRow({telemetry.deviceNames[id], "(too few samples)",
                          std::to_string(records.size())});
            continue;
        }
        bench::ModelScore score = bench::scoreModelAveraged(
            1, records, epochs, 500 + id,
            bench::knob("GEO_SEEDS", 3, 5));
        if (score.diverged) {
            table.addRow({telemetry.deviceNames[id], "Diverged",
                          std::to_string(records.size())});
            continue;
        }
        table.addRow({telemetry.deviceNames[id],
                      TextTable::meanStd(score.meanAbsRelError,
                                         score.stddevAbsRelError),
                      std::to_string(records.size())});
        error_means.add(score.meanAbsRelError);
    }
    table.print(std::cout);

    std::cout << "\nAverage accuracy over mounts: "
              << TextTable::num(100.0 - error_means.mean(), 2)
              << "% (paper reports ~81% with a worst mount of ~76%)\n";
    return 0;
}
