/**
 * @file
 * Regenerates Fig. 6 (experiment 3): a duplicate, untuned workload
 * starts mid-experiment on the same mounts; Geomancy must adapt the
 * tuned workload's layout to the changed contention landscape.
 *
 * Expected shape (paper Section VIII, Fig. 6): the tuned workload's
 * throughput dips when the interference arrives, then recovers as
 * Geomancy reacts, while the untuned duplicate stays lower.
 */

#include <future>
#include <iostream>
#include <memory>

#include "experiment_common.hh"
#include "util/ascii_chart.hh"
#include "util/thread_pool.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workload/interference.hh"

namespace {

/**
 * Wrapper that stops adapting after `freeze_after` rebalance calls —
 * the no-reaction counterfactual against which Geomancy's recovery is
 * judged.
 */
class FreezeAfterPolicy : public geo::core::PlacementPolicy
{
  public:
    FreezeAfterPolicy(geo::core::PlacementPolicy &inner,
                      size_t freeze_after)
        : inner_(inner), freezeAfter_(freeze_after)
    {
    }

    std::string name() const override
    {
        return inner_.name() + " (frozen at disturbance)";
    }

    size_t
    rebalance(geo::core::PolicyContext &context) override
    {
        if (calls_++ >= freezeAfter_)
            return 0;
        return inner_.rebalance(context);
    }

  private:
    geo::core::PlacementPolicy &inner_;
    size_t freezeAfter_;
    size_t calls_ = 0;
};

/** Scenario outcome: disturbed-phase average of the tuned workload. */
struct ScenarioResult
{
    geo::core::ExperimentResult result;
    double disturbedMean = 0.0;
    double beforeMean = 0.0;
    double dipMean = 0.0;
    double lateMean = 0.0;
};

} // namespace

int
main()
{
    using namespace geo;
    bench::BenchObservability observability;
    bench::header("Fig. 6 - adapting to a new interfering workload",
                  "Section VIII, Fig. 6 (experiment 3)");

    core::ExperimentConfig config = bench::benchExperimentConfig();
    // Adaptation takes many decision cycles; give the disturbed phase
    // room to show both the dip and the climb back.
    config.measuredRuns = bench::knob("GEO_FIG6_RUNS", 130, 300);
    const size_t start_run = config.measuredRuns / 3;

    /**
     * Run the scenario once. With `freeze` the layout stops adapting
     * at the moment the interference arrives - the counterfactual the
     * adaptive run must beat.
     */
    // Experiment-3 period conditions: the RAID-5 array is running
    // degraded (half its usual read bandwidth) and the Lustre mount is
    // in a quiet spell — the kind of shifted landscape the paper notes
    // between its experiment periods. This is what gives relocation
    // real headroom once the interferer saturates file0.
    std::vector<storage::DeviceConfig> configs =
        storage::blueskyDeviceConfigs(7);
    configs[0].readBandwidth = 4.8e9;
    configs[1].traffic.baseLoad = 0.2;
    configs[1].traffic.diurnalAmplitude = 0.4;
    configs[1].traffic.burstProbability = 0.06;
    configs[1].traffic.burstMagnitude = 2.0;

    auto run_scenario = [&](bool freeze, StatAccumulator *other_stats) {
        bench::ExperimentSetup setup = bench::makeSetup(
            bench::PolicyKind::GeomancyDynamic, 7, 0, &configs);
        storage::DeviceId file0 = setup.system->deviceByName("file0");
        // The duplicate workload's files land on the fast mount the
        // tuned data has gravitated to, changing the contention
        // landscape the model has learned.
        workload::InterferenceWorkload other(
            *setup.system,
            workload::InterferenceWorkload::defaultConfig(), {file0});

        FreezeAfterPolicy frozen(*setup.policy, start_run / config.cadence);
        core::PlacementPolicy &policy =
            freeze ? static_cast<core::PlacementPolicy &>(frozen)
                   : *setup.policy;
        core::ExperimentRunner runner(*setup.system, *setup.workload,
                                      policy, config);
        runner.setRunHook([&](size_t run) {
            if (run < start_run)
                return;
            // Four overlapping interference runs per tuned run: the
            // other user's Monte-Carlo suite saturates the fast mount.
            for (int burst = 0; burst < 4; ++burst) {
                for (const storage::AccessObservation &obs :
                     other.executeRunConcurrent()) {
                    if (other_stats)
                        other_stats->add(obs.throughput);
                }
            }
        });

        ScenarioResult scenario;
        scenario.result = runner.run();
        const auto &series = scenario.result.throughputSeries;
        size_t n = series.size();
        size_t first = n * start_run / config.measuredRuns;
        size_t tail = n - first;
        StatAccumulator before, dip, late, disturbed;
        for (size_t i = 0; i < n; ++i) {
            double v = series[i];
            if (i < first) {
                if (i >= first / 2) // skip the learning transient
                    before.add(v);
            } else {
                disturbed.add(v);
                if (i < first + tail / 4)
                    dip.add(v);
                else if (i >= n - tail / 4)
                    late.add(v);
            }
        }
        scenario.beforeMean = before.mean();
        scenario.dipMean = dip.mean();
        scenario.lateMean = late.mean();
        scenario.disturbedMean = disturbed.mean();
        return scenario;
    };

    // The adaptive run and the frozen counterfactual are independent
    // simulations over the same seed; run them concurrently.
    StatAccumulator other_stats;
    util::ThreadPool &pool = util::ThreadPool::global();
    std::future<ScenarioResult> adaptive_future = pool.submit(
        [&]() { return run_scenario(false, &other_stats); });
    std::future<ScenarioResult> frozen_future =
        pool.submit([&]() { return run_scenario(true, nullptr); });
    ScenarioResult adaptive = adaptive_future.get();
    std::cerr << "finished adaptive run\n";
    ScenarioResult frozen = frozen_future.get();
    std::cerr << "finished frozen counterfactual\n";

    TextTable table("Tuned workload throughput around the disturbance");
    table.setHeader({"Phase", "Geomancy adapting (GB/s)",
                     "layout frozen (GB/s)"});
    table.addRow({"before interference", bench::gbps(adaptive.beforeMean),
                  bench::gbps(frozen.beforeMean)});
    table.addRow({"interference arrives (dip)",
                  bench::gbps(adaptive.dipMean),
                  bench::gbps(frozen.dipMean)});
    table.addRow({"late disturbed phase", bench::gbps(adaptive.lateMean),
                  bench::gbps(frozen.lateMean)});
    table.addRow({"whole disturbed phase",
                  bench::gbps(adaptive.disturbedMean),
                  bench::gbps(frozen.disturbedMean)});
    table.print(std::cout);

    std::cout << "\nUntuned duplicate workload (the Fig. 6 blue line): "
              << bench::gbps(other_stats.mean()) << " GB/s average\n";

    std::cout << "\nTuned workload throughput (GB/s; ^ marks the "
                 "interference arrival):\n";
    auto to_gb = [](std::vector<double> series) {
        for (double &v : series)
            v /= 1e9;
        return series;
    };
    std::vector<double> adaptive_buckets =
        to_gb(adaptive.result.bucketedSeries(500));
    std::vector<double> frozen_buckets =
        to_gb(frozen.result.bucketedSeries(500));
    AsciiChartOptions chart;
    chart.height = 14;
    chart.marks = {adaptive.result.throughputSeries.size() * start_run /
                   config.measuredRuns / 500};
    std::cout << asciiChartMulti(
        {{"Geomancy adapting", adaptive_buckets},
         {"layout frozen at disturbance", frozen_buckets}},
        chart);

    std::cout << "\nShape checks vs paper:\n";
    double dip_ratio = adaptive.dipMean / adaptive.beforeMean;
    double vs_frozen =
        adaptive.disturbedMean / frozen.disturbedMean - 1.0;
    std::cout << "  throughput dips on arrival:            "
              << (dip_ratio < 1.0 ? "OK" : "MISMATCH") << " (ratio "
              << TextTable::num(dip_ratio, 2) << ")\n";
    std::cout << "  adapting beats frozen layout overall:  "
              << (vs_frozen > 0.0 ? "OK" : "MISMATCH") << " ("
              << TextTable::num(vs_frozen * 100.0, 1) << "%)\n";
    return 0;
}
