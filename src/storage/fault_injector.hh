/**
 * @file
 * Seeded, scriptable fault injection for the simulated testbed.
 *
 * The paper only ever runs Geomancy on a healthy Bluesky node; real
 * storage misbehaves. The injector drives three per-device fault
 * classes off a schedule of timed events:
 *
 *  - transient I/O errors: each access fails independently with a
 *    configured probability while the episode is active (flaky cable,
 *    controller resets);
 *  - bandwidth degradation: the device serves at a fraction of its
 *    nominal bandwidth for the duration (RAID rebuild, firmware
 *    throttling);
 *  - outages: the device is offline — every access and every migration
 *    touching it fails — for an interval or permanently (dead mount).
 *
 * The schedule is evaluated against the simulated clock: the owning
 * StorageSystem calls advanceTo() before every access and migration
 * chunk, so health transitions land exactly where the schedule puts
 * them. All randomness (the transient-error draws) comes from one
 * seeded generator, so a fault run is exactly reproducible.
 */

#ifndef GEO_STORAGE_FAULT_INJECTOR_HH
#define GEO_STORAGE_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/device.hh"
#include "util/metrics.hh"
#include "util/random.hh"
#include "util/state_io.hh"

namespace geo {
namespace storage {

class StorageSystem;
struct AccessObservation;

/** The fault classes the injector can produce.
 *
 *  The first three corrupt *reality* (the device misbehaves); the
 *  telemetry kinds corrupt only what the monitoring agents *see* —
 *  the ground-truth experiment series stays clean, which is exactly
 *  what makes them the right fuel for the quarantine layer. */
enum class FaultKind {
    TransientErrors,  ///< per-access failure probability (magnitude)
    Degradation,      ///< bandwidth scaled by magnitude in (0, 1]
    Outage,           ///< device offline; magnitude ignored
    CorruptTelemetry, ///< each observation mangled with prob. magnitude
    StaleTelemetry,   ///< observations delivered magnitude seconds late
    ClockSkew,        ///< sensor clock magnitude seconds in the future
};

/** Printable name of a fault kind. */
const char *faultKindName(FaultKind kind);

/**
 * Process-level kill points inside a decision cycle.
 *
 * Unlike the per-device fault classes above, a crash point kills the
 * whole Geomancy process (std::_Exit, no cleanup) at a well-defined
 * spot in the pipeline, so the checkpoint/restore path can be tested
 * against every phase a real crash could interrupt.
 */
enum class CrashPoint {
    None = 0,
    AfterTrain,   ///< right after the DRL engine retrained
    AfterPropose, ///< after moves were proposed and admitted
    MidMigration, ///< inside a chunked transfer, first chunk copied
    AfterCommit,  ///< right after a checkpoint was committed
};

/** Printable name of a crash point ("after-train", ...). */
const char *crashPointName(CrashPoint point);

/** Parse a crash-point name; false when `text` names none of them. */
bool parseCrashPoint(const std::string &text, CrashPoint &out);

/** One scheduled fault episode on one device. */
struct FaultEvent
{
    DeviceId device = 0;
    FaultKind kind = FaultKind::TransientErrors;
    double start = 0.0;    ///< simulated seconds
    /** Episode length in seconds; <= 0 means permanent. */
    double duration = 0.0;
    /** TransientErrors: failure probability per access in [0, 1].
     *  Degradation: bandwidth factor in (0, 1]. Outage: unused. */
    double magnitude = 0.0;

    /** Whether this event is active at time `at`. */
    bool activeAt(double at) const
    {
        return at >= start && (duration <= 0.0 || at < start + duration);
    }
};

/** Injector configuration. */
struct FaultInjectorConfig
{
    /** Seed of the transient-error draw stream. Thread this off the
     *  experiment master seed so fault runs are reproducible. */
    uint64_t seed = 99;
    std::vector<FaultEvent> schedule;
};

/**
 * Applies a fault schedule to the devices of one StorageSystem.
 */
class FaultInjector
{
  public:
    /** Callback fired when an event becomes active or inactive. */
    using TransitionHook =
        std::function<void(const FaultEvent &, bool active, double now)>;

    /**
     * @param system the system whose devices are driven (must outlive
     *        the injector; attach with StorageSystem::attachFaultInjector).
     */
    FaultInjector(StorageSystem &system, FaultInjectorConfig config = {});

    /** Add an event mid-run (the scriptable path used by benches). */
    void addEvent(const FaultEvent &event);

    /** Register a transition observer (e.g. to log into a ReplayDb). */
    void onTransition(TransitionHook hook);

    /**
     * Re-evaluate the schedule at time `now` and push the resulting
     * health state (offline flag, bandwidth factor) onto each device.
     * Called by the StorageSystem before accesses and migration chunks.
     */
    void advanceTo(double now);

    /**
     * Draw the transient-error outcome for one access on `device` at
     * the injector's current state. Consumes randomness only when an
     * error episode is active on that device.
     */
    bool shouldFailAccess(DeviceId device);

    /** Active per-access failure probability of a device. */
    double errorProbability(DeviceId device) const;

    /**
     * Apply any active telemetry faults to one observation, in place:
     * StaleTelemetry shifts its timestamps into the past, ClockSkew
     * into the future, and CorruptTelemetry mangles one field (NaN or
     * negative throughput, absurd byte counts, negative duration,
     * far-future close time) or asks the caller to deliver the record
     * twice, with per-episode probability. Randomness is consumed only
     * while a CorruptTelemetry episode is active on `obs.device`, so
     * clean runs stay byte-identical. @return true when `obs` changed.
     */
    bool mutateTelemetry(AccessObservation &obs, bool &emit_duplicate);

    /** Active per-observation corruption probability of a device. */
    double corruptProbability(DeviceId device) const;

    /** Transient failures injected so far (outages not counted). */
    uint64_t injectedFailures() const { return injectedFailures_; }

    /** Observations mangled or duplicated by CorruptTelemetry. */
    uint64_t corruptedRecords() const { return corruptedRecords_; }

    const std::vector<FaultEvent> &schedule() const { return schedule_; }

    /**
     * Arm a kill point: the process dies (exit code
     * util::kCrashExitCode, no cleanup) the first time `point` is
     * reached in decision cycle >= `cycle`. The ">=" makes arming
     * robust against cycles that skip a phase (e.g. no moves
     * proposed): the crash fires at the next opportunity.
     */
    void armCrash(CrashPoint point, uint64_t cycle);

    /** Disarm the kill point (what a supervisor does on restart). */
    void disarmCrash() { armedPoint_ = CrashPoint::None; }

    CrashPoint armedCrashPoint() const { return armedPoint_; }

    /** Tell the injector which decision cycle is running. */
    void notifyCycle(uint64_t cycle) { currentCycle_ = cycle; }

    /**
     * Kill the process if `point` is armed and due. Called by the
     * pipeline at each kill point; a no-op when disarmed.
     */
    void maybeCrash(CrashPoint point);

    /**
     * Serialize the dynamic injector state (clock cursor, error RNG,
     * per-event active flags, failure counter). The schedule and any
     * armed crash are configuration and are not saved.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    StorageSystem &system_;
    std::vector<FaultEvent> schedule_;
    std::vector<bool> wasActive_; ///< parallel to schedule_
    std::vector<TransitionHook> hooks_;
    Rng rng_;
    double now_ = 0.0;
    std::vector<double> errorProb_;   ///< per device, current state
    std::vector<double> corruptProb_; ///< per device, current state
    std::vector<double> staleShift_;  ///< seconds into the past
    std::vector<double> skewShift_;   ///< seconds into the future
    uint64_t injectedFailures_ = 0;
    uint64_t corruptedRecords_ = 0;
    util::Counter *injectedFailuresMetric_; ///< registry mirror
    util::Counter *corruptedRecordsMetric_; ///< registry mirror

    // Kill-point arming (process-local; never checkpointed).
    CrashPoint armedPoint_ = CrashPoint::None;
    uint64_t armedCycle_ = 0;
    uint64_t currentCycle_ = 0;

    void applyState(double now);
};

} // namespace storage
} // namespace geo

#endif // GEO_STORAGE_FAULT_INJECTOR_HH
