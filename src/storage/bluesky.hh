/**
 * @file
 * The Bluesky testbed preset (paper Section III, Fig. 1).
 *
 * Six mounts on one computation node:
 *  - file0:  RAID-5, fastest reads, strong read/write imbalance, and
 *            the least external traffic during the experiments;
 *  - pic:    Lustre, fast but heavily shared;
 *  - people: NFS home over 10 GbE, heavily shared with long-latency
 *            bursts from other users;
 *  - tmp:    RAID-1 scratch, moderate speed and sharing;
 *  - var:    RAID-1, slower, moderate sharing;
 *  - USBtmp: externally mounted HDD, slowest, effectively private.
 *
 * Bandwidths are calibrated so that single-mount runs of the BELLE II
 * workload land near the paper's Table IV averages (file0 ~7.6 GB/s
 * down to USBtmp ~0.6 GB/s).
 */

#ifndef GEO_STORAGE_BLUESKY_HH
#define GEO_STORAGE_BLUESKY_HH

#include <memory>

#include "storage/system.hh"

namespace geo {
namespace storage {

/** Mount names of the Bluesky preset, fastest reads first. */
const std::vector<std::string> &blueskyMountNames();

/** Device configurations of the six Bluesky mounts. */
std::vector<DeviceConfig> blueskyDeviceConfigs(uint64_t traffic_seed = 7);

/**
 * Build a StorageSystem with the six Bluesky mounts (no files yet).
 *
 * @param traffic_seed decorrelates the external-traffic processes;
 *        runs with the same seed see identical contention dynamics.
 */
std::unique_ptr<StorageSystem> makeBlueskySystem(uint64_t traffic_seed = 7);

} // namespace storage
} // namespace geo

#endif // GEO_STORAGE_BLUESKY_HH
