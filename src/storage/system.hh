/**
 * @file
 * The target storage system: devices, files, accesses and migrations.
 *
 * This is the substrate Geomancy optimizes. It exposes exactly what the
 * paper's target system exposes to Geomancy: per-access performance
 * measurements (consumed by monitoring agents) and a move-file command
 * (issued by control agents). Migrations pay a transfer cost limited by
 * source read bandwidth, destination write bandwidth and the network,
 * and load both devices while in flight, so move overhead is part of
 * every experiment (paper Sections V, VIII).
 */

#ifndef GEO_STORAGE_SYSTEM_HH
#define GEO_STORAGE_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/device.hh"
#include "util/sim_clock.hh"

namespace geo {
namespace storage {

class FaultInjector;

/** Integer id of a file within a StorageSystem. */
using FileId = uint64_t;

/** A stored file. */
struct FileObject
{
    FileId id = 0;
    std::string name;
    uint64_t sizeBytes = 0;
    DeviceId location = 0;
};

/** A completed access, as observed by a monitoring agent. */
struct AccessObservation
{
    FileId file = 0;
    DeviceId device = 0;
    uint64_t readBytes = 0;
    uint64_t writtenBytes = 0;
    double startTime = 0.0; ///< seconds
    double endTime = 0.0;   ///< seconds
    double throughput = 0.0; ///< bytes/s
    bool failed = false;     ///< the access errored (zero throughput)

    double duration() const { return endTime - startTime; }
};

/** Why a migration did not complete. */
enum class MoveFail {
    None,           ///< the move succeeded
    SameDevice,     ///< no-op: target is the current location
    NoSuchDevice,   ///< target id out of range
    NotWritable,    ///< target mount is read-only
    CapacityFull,   ///< target lacks free capacity
    SourceOffline,  ///< source device unavailable (data unreachable)
    TargetOffline,  ///< target device unavailable
    TransientFault, ///< injected I/O error aborted the transfer
};

/** Printable name of a move-failure reason. */
const char *moveFailName(MoveFail reason);

/** Whether a failure reason is fault-class (worth retrying) rather
 *  than validity-class (the request itself was invalid). */
bool moveFailRetryable(MoveFail reason);

/** Result of a file migration. */
struct MoveResult
{
    bool moved = false;      ///< false when src == dst or move invalid
    /** The move was valid but a fault aborted it mid-transfer. */
    bool failed = false;
    double seconds = 0.0;    ///< transfer duration charged to the clock
    uint64_t bytes = 0;
    /** Bytes copied before a fault aborted the transfer (the wasted
     *  work is still accounted as busy time on both devices). */
    uint64_t bytesCopied = 0;
    DeviceId from = 0;
    DeviceId to = 0;
    MoveFail reason = MoveFail::None;
};

/** System-wide configuration. */
struct SystemConfig
{
    /** Shared network bandwidth cap for migrations, bytes/s
     *  (10 Gbit Ethernet by default, as on Bluesky). */
    double networkBandwidth = 1.25e9;
    /** Whether migration time advances the global clock (foreground)
     *  or only loads the devices (background copy). The paper moves
     *  data in the background. */
    bool backgroundMoves = true;
};

/**
 * A set of devices plus a file -> device layout.
 */
class StorageSystem
{
  public:
    explicit StorageSystem(SystemConfig config = {});

    /** Add a device; returns its id (dense, starting at 0). */
    DeviceId addDevice(const DeviceConfig &config);

    size_t deviceCount() const { return devices_.size(); }
    StorageDevice &device(DeviceId id);
    const StorageDevice &device(DeviceId id) const;

    /** Device id by mount name; panics if absent. */
    DeviceId deviceByName(const std::string &name) const;

    /** All device ids. */
    std::vector<DeviceId> deviceIds() const;

    /**
     * Create a file on a device (reserves capacity).
     * @return the new file's id; panics if the device is full.
     */
    FileId addFile(const std::string &name, uint64_t size_bytes,
                   DeviceId location);

    size_t fileCount() const { return files_.size(); }
    const FileObject &file(FileId id) const;
    std::vector<FileId> fileIds() const;

    /** Current location of a file. */
    DeviceId location(FileId id) const;

    /**
     * Perform a read or write of `bytes` on a file at its current
     * location, advancing the simulated clock by the access duration.
     */
    AccessObservation access(FileId id, uint64_t bytes, bool is_read);

    /**
     * Perform an access from a *concurrent* client: the device is
     * loaded and the observation reported, but the global clock does
     * not advance (the access overlaps whatever the primary workload
     * is doing). This is how a second workload sharing the mounts is
     * modeled (paper experiment 3).
     */
    AccessObservation accessConcurrent(FileId id, uint64_t bytes,
                                       bool is_read);

    /**
     * Move a file to `target`.
     *
     * Pays size / min(src read bw, dst write bw, network bw) seconds;
     * loads both devices; advances the clock unless backgroundMoves.
     * Fails (moved = false) when the target is the current location,
     * is not writable, or lacks capacity.
     */
    MoveResult moveFile(FileId id, DeviceId target);

    /**
     * Move a file incrementally in chunks of at most `chunk_bytes`
     * (the paper's planned refinement for files under parallel
     * access). Each chunk is costed at the bandwidth in effect when
     * it starts, so contention changes mid-migration are reflected;
     * the file stays readable at the source until the last chunk.
     *
     * @return aggregate result; `seconds` sums all chunk transfers.
     */
    MoveResult moveFileChunked(FileId id, DeviceId target,
                               uint64_t chunk_bytes);

    /** Simulated clock (advanced by accesses and foreground moves). */
    SimClock &clock() { return clock_; }
    const SimClock &clock() const { return clock_; }

    /** Total bytes moved by migrations so far. */
    uint64_t migratedBytes() const { return migratedBytes_; }

    /** Number of successful migrations so far. */
    uint64_t migrationCount() const { return migrationCount_; }

    /** Migrations aborted by faults so far. */
    uint64_t abortedMoveCount() const { return abortedMoves_; }

    /** Bytes copied by migrations that were then aborted (wasted). */
    uint64_t abortedBytes() const { return abortedBytes_; }

    /**
     * Attach a fault injector: from now on the injector's schedule is
     * re-evaluated before every access and migration chunk, and its
     * transient-error stream can fail individual operations. Pass
     * nullptr to detach. The injector must outlive the attachment.
     */
    void attachFaultInjector(FaultInjector *injector);

    FaultInjector *faultInjector() { return injector_; }

    /** Register an observer called after every access. */
    void onAccess(std::function<void(const AccessObservation &)> observer);

    /** Register an observer called after every successful move. */
    void onMove(std::function<void(const MoveResult &)> observer);

    /** Layout snapshot: file id -> device id. */
    std::map<FileId, DeviceId> layout() const;

    /** Per-device count of files currently placed there. */
    std::vector<size_t> filesPerDevice() const;

    /**
     * Serialize the dynamic world state: clock, file layout, every
     * device's mutable state and the migration totals. Topology
     * (devices, files, observers, injector attachment) is not saved —
     * restore into a system built by the same construction code.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    SystemConfig config_;
    std::vector<StorageDevice> devices_;
    std::vector<FileObject> files_; ///< index = FileId
    SimClock clock_;
    FaultInjector *injector_ = nullptr;
    uint64_t migratedBytes_ = 0;
    uint64_t migrationCount_ = 0;
    uint64_t abortedMoves_ = 0;
    uint64_t abortedBytes_ = 0;
    std::vector<std::function<void(const AccessObservation &)>>
        accessObservers_;
    std::vector<std::function<void(const MoveResult &)>> moveObservers_;
};

} // namespace storage
} // namespace geo

#endif // GEO_STORAGE_SYSTEM_HH
