#include "storage/external_traffic.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace storage {

ExternalTraffic::ExternalTraffic(const ExternalTrafficConfig &config)
    : config_(config)
{
    if (config_.periodSeconds <= 0.0 || config_.burstSeconds <= 0.0)
        panic("ExternalTraffic: non-positive period or burst duration");
}

double
ExternalTraffic::hashUniform(uint64_t bucket, uint64_t salt) const
{
    uint64_t state = config_.seed ^ (bucket * 0x9e3779b97f4a7c15ULL) ^
                     (salt * 0xbf58476d1ce4e5b9ULL);
    uint64_t value = splitmix64(state);
    return static_cast<double>(value >> 11) * 0x1.0p-53;
}

double
ExternalTraffic::diurnal(double at) const
{
    double phase = 2.0 * std::numbers::pi * at / config_.periodSeconds;
    // Offset the sine so load is non-negative and peaks mid-period.
    return config_.diurnalAmplitude * 0.5 * (1.0 + std::sin(phase));
}

bool
ExternalTraffic::inBurst(double at) const
{
    uint64_t bucket = static_cast<uint64_t>(at / config_.burstSeconds);
    return hashUniform(bucket, 0xb0b) < config_.burstProbability;
}

double
ExternalTraffic::load(double at) const
{
    if (at < 0.0)
        at = 0.0;
    double total = config_.baseLoad + diurnal(at);
    if (inBurst(at))
        total += config_.burstMagnitude;
    uint64_t noise_bucket = static_cast<uint64_t>(at);
    total += config_.noiseAmplitude *
             (hashUniform(noise_bucket, 0xda7a) - 0.5) * 2.0;
    return total < 0.0 ? 0.0 : total;
}

} // namespace storage
} // namespace geo
