#include "storage/fault_injector.hh"

#include <algorithm>

#include "storage/system.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace_event.hh"

namespace geo {
namespace storage {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransientErrors:
        return "transient-errors";
      case FaultKind::Degradation:
        return "degradation";
      case FaultKind::Outage:
        return "outage";
    }
    return "unknown";
}

namespace {

void
validateEvent(const FaultEvent &event, size_t device_count)
{
    if (event.device >= device_count)
        panic("FaultInjector: event on unknown device %u", event.device);
    if (event.kind == FaultKind::TransientErrors &&
        (event.magnitude < 0.0 || event.magnitude > 1.0))
        panic("FaultInjector: error probability %f out of [0, 1]",
              event.magnitude);
    if (event.kind == FaultKind::Degradation &&
        (event.magnitude <= 0.0 || event.magnitude > 1.0))
        panic("FaultInjector: degradation factor %f out of (0, 1]",
              event.magnitude);
}

} // namespace

FaultInjector::FaultInjector(StorageSystem &system,
                             FaultInjectorConfig config)
    : system_(system), schedule_(std::move(config.schedule)),
      rng_(config.seed)
{
    for (const FaultEvent &event : schedule_)
        validateEvent(event, system_.deviceCount());
    wasActive_.assign(schedule_.size(), false);
    errorProb_.assign(system_.deviceCount(), 0.0);
    injectedFailuresMetric_ =
        &util::MetricRegistry::global().counter("faults.injected_failures");
    applyState(0.0);
}

void
FaultInjector::addEvent(const FaultEvent &event)
{
    validateEvent(event, system_.deviceCount());
    schedule_.push_back(event);
    wasActive_.push_back(false);
    applyState(now_);
}

void
FaultInjector::onTransition(TransitionHook hook)
{
    hooks_.push_back(std::move(hook));
}

void
FaultInjector::advanceTo(double now)
{
    // The schedule is evaluated against absolute sim time, so moving
    // backwards (concurrent accesses reuse the current time) is fine.
    now_ = std::max(now_, now);
    applyState(now_);
}

void
FaultInjector::applyState(double now)
{
    size_t devices = system_.deviceCount();
    if (errorProb_.size() < devices)
        errorProb_.resize(devices, 0.0);
    std::vector<double> factor(devices, 1.0);
    std::vector<bool> offline(devices, false);
    std::fill(errorProb_.begin(), errorProb_.end(), 0.0);

    for (size_t i = 0; i < schedule_.size(); ++i) {
        const FaultEvent &event = schedule_[i];
        bool active = event.activeAt(now);
        if (active != wasActive_[i]) {
            wasActive_[i] = active;
            inform("fault %s on device %u %s at t=%.1f",
                   faultKindName(event.kind), event.device,
                   active ? "begins" : "ends", now);
            util::MetricRegistry::global()
                .counter("faults.transitions")
                .inc();
            GEO_TRACE_INSTANT("fault",
                              active ? "fault_begins" : "fault_ends",
                              util::TimeDomain::Sim, now);
            for (const TransitionHook &hook : hooks_)
                hook(event, active, now);
        }
        if (!active)
            continue;
        switch (event.kind) {
          case FaultKind::TransientErrors:
            errorProb_[event.device] =
                std::max(errorProb_[event.device], event.magnitude);
            break;
          case FaultKind::Degradation:
            factor[event.device] =
                std::min(factor[event.device], event.magnitude);
            break;
          case FaultKind::Outage:
            offline[event.device] = true;
            break;
        }
    }
    for (DeviceId id = 0; id < devices; ++id) {
        StorageDevice &dev = system_.device(id);
        dev.setHealthFactor(factor[id]);
        dev.setOffline(offline[id]);
    }
}

bool
FaultInjector::shouldFailAccess(DeviceId device)
{
    if (device >= errorProb_.size())
        return false;
    double p = errorProb_[device];
    if (p <= 0.0)
        return false;
    bool fail = rng_.chance(p);
    if (fail) {
        ++injectedFailures_;
        injectedFailuresMetric_->inc();
    }
    return fail;
}

double
FaultInjector::errorProbability(DeviceId device) const
{
    return device < errorProb_.size() ? errorProb_[device] : 0.0;
}

} // namespace storage
} // namespace geo
