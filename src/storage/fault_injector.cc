#include "storage/fault_injector.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "storage/system.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/supervise.hh"
#include "util/trace_event.hh"

namespace geo {
namespace storage {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransientErrors:
        return "transient-errors";
      case FaultKind::Degradation:
        return "degradation";
      case FaultKind::Outage:
        return "outage";
      case FaultKind::CorruptTelemetry:
        return "corrupt-telemetry";
      case FaultKind::StaleTelemetry:
        return "stale-telemetry";
      case FaultKind::ClockSkew:
        return "clock-skew";
    }
    return "unknown";
}

const char *
crashPointName(CrashPoint point)
{
    switch (point) {
      case CrashPoint::None:
        return "none";
      case CrashPoint::AfterTrain:
        return "after-train";
      case CrashPoint::AfterPropose:
        return "after-propose";
      case CrashPoint::MidMigration:
        return "mid-migration";
      case CrashPoint::AfterCommit:
        return "after-commit";
    }
    return "unknown";
}

bool
parseCrashPoint(const std::string &text, CrashPoint &out)
{
    for (CrashPoint point :
         {CrashPoint::None, CrashPoint::AfterTrain,
          CrashPoint::AfterPropose, CrashPoint::MidMigration,
          CrashPoint::AfterCommit}) {
        if (text == crashPointName(point)) {
            out = point;
            return true;
        }
    }
    return false;
}

namespace {

void
validateEvent(const FaultEvent &event, size_t device_count)
{
    if (event.device >= device_count)
        panic("FaultInjector: event on unknown device %u", event.device);
    if (event.kind == FaultKind::TransientErrors &&
        (event.magnitude < 0.0 || event.magnitude > 1.0))
        panic("FaultInjector: error probability %f out of [0, 1]",
              event.magnitude);
    if (event.kind == FaultKind::Degradation &&
        (event.magnitude <= 0.0 || event.magnitude > 1.0))
        panic("FaultInjector: degradation factor %f out of (0, 1]",
              event.magnitude);
    if (event.kind == FaultKind::CorruptTelemetry &&
        (event.magnitude < 0.0 || event.magnitude > 1.0))
        panic("FaultInjector: corruption probability %f out of [0, 1]",
              event.magnitude);
    if ((event.kind == FaultKind::StaleTelemetry ||
         event.kind == FaultKind::ClockSkew) &&
        event.magnitude <= 0.0)
        panic("FaultInjector: %s shift %f must be positive",
              faultKindName(event.kind), event.magnitude);
}

} // namespace

FaultInjector::FaultInjector(StorageSystem &system,
                             FaultInjectorConfig config)
    : system_(system), schedule_(std::move(config.schedule)),
      rng_(config.seed)
{
    for (const FaultEvent &event : schedule_)
        validateEvent(event, system_.deviceCount());
    wasActive_.assign(schedule_.size(), false);
    errorProb_.assign(system_.deviceCount(), 0.0);
    corruptProb_.assign(system_.deviceCount(), 0.0);
    staleShift_.assign(system_.deviceCount(), 0.0);
    skewShift_.assign(system_.deviceCount(), 0.0);
    auto &registry = util::MetricRegistry::global();
    injectedFailuresMetric_ =
        &registry.counter("faults.injected_failures");
    corruptedRecordsMetric_ =
        &registry.counter("faults.telemetry_corrupted");
    applyState(0.0);
}

void
FaultInjector::addEvent(const FaultEvent &event)
{
    validateEvent(event, system_.deviceCount());
    schedule_.push_back(event);
    wasActive_.push_back(false);
    applyState(now_);
}

void
FaultInjector::onTransition(TransitionHook hook)
{
    hooks_.push_back(std::move(hook));
}

void
FaultInjector::advanceTo(double now)
{
    // The schedule is evaluated against absolute sim time, so moving
    // backwards (concurrent accesses reuse the current time) is fine.
    now_ = std::max(now_, now);
    applyState(now_);
}

void
FaultInjector::applyState(double now)
{
    size_t devices = system_.deviceCount();
    if (errorProb_.size() < devices)
        errorProb_.resize(devices, 0.0);
    if (corruptProb_.size() < devices)
        corruptProb_.resize(devices, 0.0);
    if (staleShift_.size() < devices)
        staleShift_.resize(devices, 0.0);
    if (skewShift_.size() < devices)
        skewShift_.resize(devices, 0.0);
    std::vector<double> factor(devices, 1.0);
    std::vector<bool> offline(devices, false);
    std::fill(errorProb_.begin(), errorProb_.end(), 0.0);
    std::fill(corruptProb_.begin(), corruptProb_.end(), 0.0);
    std::fill(staleShift_.begin(), staleShift_.end(), 0.0);
    std::fill(skewShift_.begin(), skewShift_.end(), 0.0);

    for (size_t i = 0; i < schedule_.size(); ++i) {
        const FaultEvent &event = schedule_[i];
        bool active = event.activeAt(now);
        if (active != wasActive_[i]) {
            wasActive_[i] = active;
            inform("fault %s on device %u %s at t=%.1f",
                   faultKindName(event.kind), event.device,
                   active ? "begins" : "ends", now);
            util::MetricRegistry::global()
                .counter("faults.transitions")
                .inc();
            GEO_TRACE_INSTANT("fault",
                              active ? "fault_begins" : "fault_ends",
                              util::TimeDomain::Sim, now);
            for (const TransitionHook &hook : hooks_)
                hook(event, active, now);
        }
        if (!active)
            continue;
        switch (event.kind) {
          case FaultKind::TransientErrors:
            errorProb_[event.device] =
                std::max(errorProb_[event.device], event.magnitude);
            break;
          case FaultKind::Degradation:
            factor[event.device] =
                std::min(factor[event.device], event.magnitude);
            break;
          case FaultKind::Outage:
            offline[event.device] = true;
            break;
          case FaultKind::CorruptTelemetry:
            corruptProb_[event.device] =
                std::max(corruptProb_[event.device], event.magnitude);
            break;
          case FaultKind::StaleTelemetry:
            staleShift_[event.device] =
                std::max(staleShift_[event.device], event.magnitude);
            break;
          case FaultKind::ClockSkew:
            skewShift_[event.device] =
                std::max(skewShift_[event.device], event.magnitude);
            break;
        }
    }
    for (DeviceId id = 0; id < devices; ++id) {
        StorageDevice &dev = system_.device(id);
        dev.setHealthFactor(factor[id]);
        dev.setOffline(offline[id]);
    }
}

bool
FaultInjector::shouldFailAccess(DeviceId device)
{
    if (device >= errorProb_.size())
        return false;
    double p = errorProb_[device];
    if (p <= 0.0)
        return false;
    bool fail = rng_.chance(p);
    if (fail) {
        ++injectedFailures_;
        injectedFailuresMetric_->inc();
    }
    return fail;
}

double
FaultInjector::errorProbability(DeviceId device) const
{
    return device < errorProb_.size() ? errorProb_[device] : 0.0;
}

double
FaultInjector::corruptProbability(DeviceId device) const
{
    return device < corruptProb_.size() ? corruptProb_[device] : 0.0;
}

bool
FaultInjector::mutateTelemetry(AccessObservation &obs,
                               bool &emit_duplicate)
{
    emit_duplicate = false;
    DeviceId dev = obs.device;
    if (dev >= corruptProb_.size())
        return false;
    bool mutated = false;
    // Deterministic timestamp shifts: a delayed delivery path (stale)
    // and a sensor clock running ahead of the daemon (skew). No
    // randomness consumed — purely schedule-driven.
    if (staleShift_[dev] > 0.0) {
        obs.startTime -= staleShift_[dev];
        obs.endTime -= staleShift_[dev];
        mutated = true;
    }
    if (skewShift_[dev] > 0.0) {
        obs.startTime += skewShift_[dev];
        obs.endTime += skewShift_[dev];
        mutated = true;
    }
    double p = corruptProb_[dev];
    if (p > 0.0 && rng_.chance(p)) {
        // Mangle one field per corrupted record, covering every
        // quarantine class the validator must catch.
        switch (rng_.uniformInt(0, 5)) {
          case 0: // NaN reward
            obs.throughput = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1: // negative reward
            obs.throughput = -obs.throughput - 1.0;
            break;
          case 2: // absurd byte count (feature overflow)
            obs.readBytes = 1ULL << 60;
            break;
          case 3: // close before open (negative duration)
            obs.endTime = obs.startTime - 1.0;
            break;
          case 4: // close time deep in the future
            obs.endTime = obs.startTime + 1e7;
            break;
          default: // the sensor repeats itself
            emit_duplicate = true;
            break;
        }
        ++corruptedRecords_;
        corruptedRecordsMetric_->inc();
        mutated = true;
    }
    return mutated;
}

void
FaultInjector::armCrash(CrashPoint point, uint64_t cycle)
{
    armedPoint_ = point;
    armedCycle_ = cycle;
    if (point != CrashPoint::None)
        inform("fault: crash armed at %s, cycle >= %llu",
               crashPointName(point),
               static_cast<unsigned long long>(cycle));
}

void
FaultInjector::maybeCrash(CrashPoint point)
{
    if (armedPoint_ != point || currentCycle_ < armedCycle_)
        return;
    warn("fault: injected crash at %s (cycle %llu); exiting with "
         "code %d", crashPointName(point),
         static_cast<unsigned long long>(currentCycle_),
         util::kCrashExitCode);
    // Post-mortem artifacts first: the kill point is a stand-in for a
    // real crash, and a real crash should leave the flight ring and
    // the buffered trace tail behind for diagnosis.
    util::FlightRecorder &recorder = util::FlightRecorder::global();
    recorder.record(util::FlightKind::CrashPoint, now_,
                    static_cast<uint64_t>(point), currentCycle_);
    recorder.crashDump("killpoint");
    util::TraceCollector::global().crashFlush();
    // _Exit, not exit(): a real crash runs no destructors, flushes no
    // buffers and fires no atexit hooks. Anything not already durable
    // is lost — exactly what restore must cope with.
    std::_Exit(util::kCrashExitCode);
}

void
FaultInjector::saveState(util::StateWriter &w) const
{
    w.f64("fault.now", now_);
    w.rng("fault.rng", rng_);
    w.u64("fault.injected", injectedFailures_);
    w.u64("fault.corrupted", corruptedRecords_);
    std::vector<double> active(wasActive_.size(), 0.0);
    for (size_t i = 0; i < wasActive_.size(); ++i)
        active[i] = wasActive_[i] ? 1.0 : 0.0;
    w.f64Vec("fault.was_active", active);
}

void
FaultInjector::loadState(util::StateReader &r)
{
    double now = r.f64("fault.now");
    Rng::State rng = r.rng("fault.rng");
    uint64_t injected = r.u64("fault.injected");
    uint64_t corrupted = r.u64("fault.corrupted");
    std::vector<double> active = r.f64Vec("fault.was_active");
    if (!r.ok())
        return;
    if (active.size() != schedule_.size()) {
        r.fail("fault: schedule size changed since the checkpoint");
        return;
    }
    now_ = now;
    rng_.setState(rng);
    injectedFailures_ = injected;
    corruptedRecords_ = corrupted;
    for (size_t i = 0; i < active.size(); ++i)
        wasActive_[i] = active[i] != 0.0;
    applyState(now_);
}

} // namespace storage
} // namespace geo
