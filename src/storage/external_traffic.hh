/**
 * @file
 * External (other-user) load model for a shared storage device.
 *
 * The paper's testbed is shared: the NFS home mount "can have long
 * latencies of several hours if other users run I/O heavy workloads",
 * while the RAID-5 mount "saw the least amount of external traffic".
 * This model produces a deterministic load factor as a pure function of
 * time: a diurnal sinusoid plus hash-seeded bursts plus small noise, so
 * replaying an experiment with the same seed yields identical dynamics.
 */

#ifndef GEO_STORAGE_EXTERNAL_TRAFFIC_HH
#define GEO_STORAGE_EXTERNAL_TRAFFIC_HH

#include <cstdint>

namespace geo {
namespace storage {

/** Shape of one device's external load process. */
struct ExternalTrafficConfig
{
    double baseLoad = 0.1;        ///< constant background load
    double diurnalAmplitude = 0.3;///< peak of the sinusoidal component
    double periodSeconds = 3600.0;///< cycle length (compressed "day")
    double burstProbability = 0.01; ///< per-bucket chance of a burst
    double burstMagnitude = 4.0;  ///< load added during a burst
    double burstSeconds = 30.0;   ///< burst bucket duration
    double noiseAmplitude = 0.05; ///< per-bucket uniform jitter
    uint64_t seed = 1;            ///< decorrelates devices
};

/**
 * Deterministic external-load process.
 *
 * load(t) >= 0 is the ratio of competing traffic to device capacity;
 * the device divides its bandwidth by (1 + load).
 */
class ExternalTraffic
{
  public:
    explicit ExternalTraffic(const ExternalTrafficConfig &config);

    /** Load factor at absolute time `at` (seconds). */
    double load(double at) const;

    /** The diurnal component only (used by tests and plotting). */
    double diurnal(double at) const;

    /** Whether time `at` falls in a burst bucket. */
    bool inBurst(double at) const;

    const ExternalTrafficConfig &config() const { return config_; }

  private:
    ExternalTrafficConfig config_;

    /** Deterministic uniform [0,1) for a (seed, bucket) pair. */
    double hashUniform(uint64_t bucket, uint64_t salt) const;
};

} // namespace storage
} // namespace geo

#endif // GEO_STORAGE_EXTERNAL_TRAFFIC_HH
