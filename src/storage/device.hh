/**
 * @file
 * One mounted storage device of the simulated testbed.
 *
 * Models asymmetric read/write bandwidth (the paper notes LRU struggles
 * with the RAID-5 mount's read/write imbalance), per-access fixed
 * latency, capacity accounting, external shared-user traffic, and
 * self-contention: a device that serves most of the workload (or a
 * migration) sees its effective bandwidth degrade, which is what makes
 * "cram everything onto file0" a losing strategy (paper Section VII).
 */

#ifndef GEO_STORAGE_DEVICE_HH
#define GEO_STORAGE_DEVICE_HH

#include <cstdint>
#include <string>

#include "storage/external_traffic.hh"
#include "util/state_io.hh"
#include "util/stats.hh"

namespace geo {
namespace storage {

/** Integer id of a device within a StorageSystem. */
using DeviceId = uint32_t;

/** Static description of a device. */
struct DeviceConfig
{
    std::string name;            ///< e.g. "file0"
    double readBandwidth = 1e9;  ///< bytes/s, uncontended
    double writeBandwidth = 1e9; ///< bytes/s, uncontended
    double accessLatency = 0.002;///< fixed per-access seconds
    uint64_t capacityBytes = 1ULL << 40;
    /** Self-contention time constant: how long recent busy time keeps
     *  loading the device (seconds). */
    double selfLoadTau = 20.0;
    /** Weight of self-contention in the effective-bandwidth divisor. */
    double selfLoadWeight = 1.0;
    bool writable = true;        ///< Action Checker validity input
    /** Seconds a failed access burns before the error surfaces (I/O
     *  timeout; charged to the clock like any other access). */
    double errorLatency = 0.05;
    ExternalTrafficConfig traffic;
};

/** Outcome of one simulated access on a device. */
struct DeviceAccess
{
    double duration = 0.0;   ///< seconds, including fixed latency
    double throughput = 0.0; ///< bytes/s over the whole access
    double loadFactor = 0.0; ///< total contention divisor - 1
    bool failed = false;     ///< the access errored (fault injection)
};

/**
 * A mounted storage device.
 */
class StorageDevice
{
  public:
    StorageDevice(DeviceId id, const DeviceConfig &config);

    DeviceId id() const { return id_; }
    const std::string &name() const { return config_.name; }
    const DeviceConfig &config() const { return config_; }

    uint64_t capacityBytes() const { return config_.capacityBytes; }
    uint64_t usedBytes() const { return usedBytes_; }
    uint64_t freeBytes() const;
    bool writable() const { return config_.writable; }
    void setWritable(bool writable) { config_.writable = writable; }

    /**
     * Availability state, driven by the FaultInjector (or set directly
     * by tests). An offline device fails every access and migration;
     * a health factor below 1 scales the effective bandwidth (e.g. a
     * RAID rebuild at factor 0.5 serves at half speed).
     */
    bool offline() const { return offline_; }
    bool available() const { return !offline_; }
    void setOffline(bool offline) { offline_ = offline; }
    double healthFactor() const { return healthFactor_; }
    void setHealthFactor(double factor);
    bool degraded() const { return healthFactor_ < 1.0; }

    /** External load factor at time `at`. */
    double externalLoad(double at) const;

    /** Self-contention load factor at time `at` (decayed busy time). */
    double selfLoad(double at) const;

    /**
     * Effective bandwidth for a read or write starting at `at`,
     * bytes/s: base / (1 + external + self).
     */
    double effectiveBandwidth(bool is_read, double at) const;

    /**
     * Simulate an access of `bytes` starting at `at`.
     *
     * Updates the self-contention state; the caller advances its clock
     * by the returned duration.
     */
    DeviceAccess access(uint64_t bytes, bool is_read, double at);

    /**
     * Simulate a *failed* access at `at`: burns the configured error
     * latency, delivers zero throughput, and is recorded in the stats
     * (a dying mount's measured mean collapses toward zero, which is
     * what lets placement logic learn to avoid it).
     */
    DeviceAccess failAccess(double at);

    /**
     * Account for a bulk transfer (migration traffic) occupying the
     * device for `seconds` starting at `at`, without producing an
     * access sample.
     */
    void addBusyTime(double at, double seconds);

    /** Reserve capacity for a placed file. Returns false if full. */
    bool reserve(uint64_t bytes);

    /** Release capacity of a removed file. */
    void release(uint64_t bytes);

    /** Lifetime throughput statistics of accesses on this device. */
    const StatAccumulator &throughputStats() const
    {
        return throughputStats_;
    }

    /** Number of accesses served (successful and failed). */
    uint64_t accessCount() const { return accessCount_; }

    /** Number of failed accesses (fault injection). */
    uint64_t failedAccessCount() const { return failedAccessCount_; }

    void resetStats();

    /**
     * Serialize every mutable field (usage, contention decay state,
     * stats, availability, the writable flag). Configuration is not
     * saved: a restore targets a device built from the same config.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    DeviceId id_;
    DeviceConfig config_;
    ExternalTraffic traffic_;
    uint64_t usedBytes_ = 0;

    // Decaying busy-time accumulator for self-contention.
    double busyLoad_ = 0.0;
    double lastBusyUpdate_ = 0.0;

    StatAccumulator throughputStats_;
    uint64_t accessCount_ = 0;
    uint64_t failedAccessCount_ = 0;

    // Availability state driven by the FaultInjector.
    bool offline_ = false;
    double healthFactor_ = 1.0;

    /** Decay busyLoad_ forward to time `at`. */
    void decayTo(double at);
};

} // namespace storage
} // namespace geo

#endif // GEO_STORAGE_DEVICE_HH
