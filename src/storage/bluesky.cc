#include "storage/bluesky.hh"

namespace geo {
namespace storage {

const std::vector<std::string> &
blueskyMountNames()
{
    static const std::vector<std::string> names = {
        "file0", "pic", "people", "tmp", "var", "USBtmp",
    };
    return names;
}

std::vector<DeviceConfig>
blueskyDeviceConfigs(uint64_t traffic_seed)
{
    std::vector<DeviceConfig> configs;

    // file0: RAID-5. Fast reads, parity-penalized writes, little
    // external traffic ("saw the least amount of external traffic").
    {
        DeviceConfig d;
        d.name = "file0";
        d.readBandwidth = 9.6e9;
        d.writeBandwidth = 2.4e9;
        d.accessLatency = 0.0015;
        d.selfLoadWeight = 1.0;
        d.capacityBytes = 2ULL << 40;
        d.traffic = {.baseLoad = 0.05,
                     .diurnalAmplitude = 0.25,
                     .periodSeconds = 240.0,
                     .burstProbability = 0.04,
                     .burstMagnitude = 2.0,
                     .burstSeconds = 90.0,
                     .noiseAmplitude = 0.04,
                     .seed = traffic_seed * 11 + 1};
        configs.push_back(d);
    }

    // pic: Lustre scratch. Fast, but heavily shared by other users.
    {
        DeviceConfig d;
        d.name = "pic";
        d.readBandwidth = 3.8e9;
        d.writeBandwidth = 3.0e9;
        d.accessLatency = 0.003;
        d.selfLoadWeight = 1.2;
        d.capacityBytes = 10ULL << 40;
        d.traffic = {.baseLoad = 0.35,
                     .diurnalAmplitude = 1.1,
                     .periodSeconds = 240.0,
                     .burstProbability = 0.12,
                     .burstMagnitude = 3.0,
                     .burstSeconds = 80.0,
                     .noiseAmplitude = 0.05,
                     .seed = traffic_seed * 11 + 2};
        configs.push_back(d);
    }

    // people: NFS home over 10 GbE. Heavily shared; other users can
    // stall it for long stretches.
    {
        DeviceConfig d;
        d.name = "people";
        d.readBandwidth = 3.3e9;
        d.writeBandwidth = 2.2e9;
        d.accessLatency = 0.004;
        d.selfLoadWeight = 1.2;
        d.capacityBytes = 1ULL << 40;
        d.traffic = {.baseLoad = 0.4,
                     .diurnalAmplitude = 1.3,
                     .periodSeconds = 240.0,
                     .burstProbability = 0.15,
                     .burstMagnitude = 3.5,
                     .burstSeconds = 120.0,
                     .noiseAmplitude = 0.05,
                     .seed = traffic_seed * 11 + 3};
        configs.push_back(d);
    }

    // tmp: RAID-1 scratch.
    {
        DeviceConfig d;
        d.name = "tmp";
        d.readBandwidth = 2.5e9;
        d.writeBandwidth = 1.3e9;
        d.accessLatency = 0.002;
        d.selfLoadWeight = 1.0;
        d.capacityBytes = 512ULL << 30;
        d.traffic = {.baseLoad = 0.10,
                     .diurnalAmplitude = 0.25,
                     .periodSeconds = 240.0,
                     .burstProbability = 0.05,
                     .burstMagnitude = 2.5,
                     .burstSeconds = 60.0,
                     .noiseAmplitude = 0.04,
                     .seed = traffic_seed * 11 + 4};
        configs.push_back(d);
    }

    // var: RAID-1, slower spindles.
    {
        DeviceConfig d;
        d.name = "var";
        d.readBandwidth = 1.9e9;
        d.writeBandwidth = 1.0e9;
        d.accessLatency = 0.002;
        d.selfLoadWeight = 1.0;
        d.capacityBytes = 256ULL << 30;
        d.traffic = {.baseLoad = 0.25,
                     .diurnalAmplitude = 0.7,
                     .periodSeconds = 240.0,
                     .burstProbability = 0.08,
                     .burstMagnitude = 2.5,
                     .burstSeconds = 60.0,
                     .noiseAmplitude = 0.04,
                     .seed = traffic_seed * 11 + 5};
        configs.push_back(d);
    }

    // USBtmp: externally mounted HDD. Slow but effectively private.
    {
        DeviceConfig d;
        d.name = "USBtmp";
        d.readBandwidth = 0.72e9;
        d.writeBandwidth = 0.55e9;
        d.accessLatency = 0.009;
        d.selfLoadWeight = 1.0;
        d.capacityBytes = 1ULL << 40;
        d.traffic = {.baseLoad = 0.02,
                     .diurnalAmplitude = 0.05,
                     .periodSeconds = 240.0,
                     .burstProbability = 0.01,
                     .burstMagnitude = 1.0,
                     .burstSeconds = 30.0,
                     .noiseAmplitude = 0.03,
                     .seed = traffic_seed * 11 + 6};
        configs.push_back(d);
    }

    return configs;
}

std::unique_ptr<StorageSystem>
makeBlueskySystem(uint64_t traffic_seed)
{
    auto system = std::make_unique<StorageSystem>();
    for (const DeviceConfig &config : blueskyDeviceConfigs(traffic_seed))
        system->addDevice(config);
    return system;
}

} // namespace storage
} // namespace geo
