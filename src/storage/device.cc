#include "storage/device.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace storage {

StorageDevice::StorageDevice(DeviceId id, const DeviceConfig &config)
    : id_(id), config_(config), traffic_(config.traffic)
{
    if (config_.readBandwidth <= 0.0 || config_.writeBandwidth <= 0.0)
        panic("StorageDevice %s: non-positive bandwidth",
              config_.name.c_str());
    if (config_.accessLatency < 0.0)
        panic("StorageDevice %s: negative latency", config_.name.c_str());
    if (config_.selfLoadTau <= 0.0)
        panic("StorageDevice %s: non-positive selfLoadTau",
              config_.name.c_str());
    if (config_.errorLatency < 0.0)
        panic("StorageDevice %s: negative error latency",
              config_.name.c_str());
}

void
StorageDevice::setHealthFactor(double factor)
{
    if (factor <= 0.0 || factor > 1.0)
        panic("StorageDevice %s: health factor %f out of (0, 1]",
              config_.name.c_str(), factor);
    healthFactor_ = factor;
}

uint64_t
StorageDevice::freeBytes() const
{
    return usedBytes_ >= config_.capacityBytes
               ? 0
               : config_.capacityBytes - usedBytes_;
}

double
StorageDevice::externalLoad(double at) const
{
    return traffic_.load(at);
}

void
StorageDevice::decayTo(double at)
{
    if (at <= lastBusyUpdate_)
        return;
    double dt = at - lastBusyUpdate_;
    busyLoad_ *= std::exp(-dt / config_.selfLoadTau);
    lastBusyUpdate_ = at;
}

double
StorageDevice::selfLoad(double at) const
{
    if (at <= lastBusyUpdate_)
        return busyLoad_;
    double dt = at - lastBusyUpdate_;
    return busyLoad_ * std::exp(-dt / config_.selfLoadTau);
}

double
StorageDevice::effectiveBandwidth(bool is_read, double at) const
{
    double base = is_read ? config_.readBandwidth : config_.writeBandwidth;
    double divisor = 1.0 + externalLoad(at) +
                     config_.selfLoadWeight * selfLoad(at);
    return base * healthFactor_ / divisor;
}

DeviceAccess
StorageDevice::access(uint64_t bytes, bool is_read, double at)
{
    decayTo(at);
    double bw = effectiveBandwidth(is_read, at);
    double transfer = static_cast<double>(bytes) / bw;
    DeviceAccess result;
    result.duration = config_.accessLatency + transfer;
    result.throughput = static_cast<double>(bytes) / result.duration;
    result.loadFactor = externalLoad(at) +
                        config_.selfLoadWeight * selfLoad(at);

    // The access occupies the device: feed its duration into the
    // self-contention accumulator (normalized by the time constant so
    // sustained saturation converges to a load factor near 1).
    busyLoad_ += result.duration / config_.selfLoadTau;

    throughputStats_.add(result.throughput);
    ++accessCount_;
    return result;
}

DeviceAccess
StorageDevice::failAccess(double at)
{
    decayTo(at);
    DeviceAccess result;
    result.duration = config_.errorLatency;
    result.throughput = 0.0;
    result.loadFactor = externalLoad(at) +
                        config_.selfLoadWeight * selfLoad(at);
    result.failed = true;

    // A zero-throughput sample: the measured mean of a failing device
    // collapses, which is the signal placement logic adapts to.
    throughputStats_.add(0.0);
    ++accessCount_;
    ++failedAccessCount_;
    return result;
}

void
StorageDevice::addBusyTime(double at, double seconds)
{
    if (seconds <= 0.0)
        return;
    decayTo(at);
    busyLoad_ += seconds / config_.selfLoadTau;
}

bool
StorageDevice::reserve(uint64_t bytes)
{
    if (bytes > freeBytes())
        return false;
    usedBytes_ += bytes;
    return true;
}

void
StorageDevice::release(uint64_t bytes)
{
    usedBytes_ -= std::min(usedBytes_, bytes);
}

void
StorageDevice::resetStats()
{
    throughputStats_.reset();
    accessCount_ = 0;
    failedAccessCount_ = 0;
}

void
StorageDevice::saveState(util::StateWriter &w) const
{
    w.u64("dev.used_bytes", usedBytes_);
    w.f64("dev.busy_load", busyLoad_);
    w.f64("dev.last_busy_update", lastBusyUpdate_);
    w.stat("dev.throughput", throughputStats_);
    w.u64("dev.accesses", accessCount_);
    w.u64("dev.failed_accesses", failedAccessCount_);
    w.boolean("dev.offline", offline_);
    w.f64("dev.health", healthFactor_);
    w.boolean("dev.writable", config_.writable);
}

void
StorageDevice::loadState(util::StateReader &r)
{
    uint64_t used = r.u64("dev.used_bytes");
    double busy = r.f64("dev.busy_load");
    double last_busy = r.f64("dev.last_busy_update");
    StatAccumulator::State stats = r.stat("dev.throughput");
    uint64_t accesses = r.u64("dev.accesses");
    uint64_t failed = r.u64("dev.failed_accesses");
    bool offline = r.boolean("dev.offline");
    double health = r.f64("dev.health");
    bool writable = r.boolean("dev.writable");
    if (!r.ok())
        return;
    usedBytes_ = used;
    busyLoad_ = busy;
    lastBusyUpdate_ = last_busy;
    throughputStats_.restore(stats);
    accessCount_ = accesses;
    failedAccessCount_ = failed;
    offline_ = offline;
    healthFactor_ = health;
    config_.writable = writable;
}

} // namespace storage
} // namespace geo
