#include "storage/system.hh"

#include <algorithm>

#include "storage/fault_injector.hh"
#include "util/logging.hh"

namespace geo {
namespace storage {

const char *
moveFailName(MoveFail reason)
{
    switch (reason) {
      case MoveFail::None:
        return "none";
      case MoveFail::SameDevice:
        return "same-device";
      case MoveFail::NoSuchDevice:
        return "no-such-device";
      case MoveFail::NotWritable:
        return "not-writable";
      case MoveFail::CapacityFull:
        return "capacity-full";
      case MoveFail::SourceOffline:
        return "source-offline";
      case MoveFail::TargetOffline:
        return "target-offline";
      case MoveFail::TransientFault:
        return "transient-fault";
    }
    return "unknown";
}

bool
moveFailRetryable(MoveFail reason)
{
    return reason == MoveFail::SourceOffline ||
           reason == MoveFail::TargetOffline ||
           reason == MoveFail::TransientFault;
}

StorageSystem::StorageSystem(SystemConfig config) : config_(config)
{
    if (config_.networkBandwidth <= 0.0)
        panic("StorageSystem: non-positive network bandwidth");
}

void
StorageSystem::attachFaultInjector(FaultInjector *injector)
{
    injector_ = injector;
    if (injector_)
        injector_->advanceTo(clock_.now());
}

DeviceId
StorageSystem::addDevice(const DeviceConfig &config)
{
    DeviceId id = static_cast<DeviceId>(devices_.size());
    devices_.emplace_back(id, config);
    return id;
}

StorageDevice &
StorageSystem::device(DeviceId id)
{
    if (id >= devices_.size())
        panic("device %u out of range (%zu devices)", id, devices_.size());
    return devices_[id];
}

const StorageDevice &
StorageSystem::device(DeviceId id) const
{
    if (id >= devices_.size())
        panic("device %u out of range (%zu devices)", id, devices_.size());
    return devices_[id];
}

DeviceId
StorageSystem::deviceByName(const std::string &name) const
{
    for (const StorageDevice &dev : devices_)
        if (dev.name() == name)
            return dev.id();
    panic("no device named '%s'", name.c_str());
}

std::vector<DeviceId>
StorageSystem::deviceIds() const
{
    std::vector<DeviceId> ids(devices_.size());
    for (size_t i = 0; i < devices_.size(); ++i)
        ids[i] = static_cast<DeviceId>(i);
    return ids;
}

FileId
StorageSystem::addFile(const std::string &name, uint64_t size_bytes,
                       DeviceId location)
{
    StorageDevice &dev = device(location);
    if (!dev.reserve(size_bytes))
        panic("addFile: device %s cannot hold %llu bytes",
              dev.name().c_str(),
              static_cast<unsigned long long>(size_bytes));
    FileObject file;
    file.id = files_.size();
    file.name = name;
    file.sizeBytes = size_bytes;
    file.location = location;
    files_.push_back(std::move(file));
    return files_.back().id;
}

const FileObject &
StorageSystem::file(FileId id) const
{
    if (id >= files_.size())
        panic("file %llu out of range (%zu files)",
              static_cast<unsigned long long>(id), files_.size());
    return files_[id];
}

std::vector<FileId>
StorageSystem::fileIds() const
{
    std::vector<FileId> ids(files_.size());
    for (size_t i = 0; i < files_.size(); ++i)
        ids[i] = i;
    return ids;
}

DeviceId
StorageSystem::location(FileId id) const
{
    return file(id).location;
}

AccessObservation
StorageSystem::access(FileId id, uint64_t bytes, bool is_read)
{
    const FileObject &f = file(id);
    StorageDevice &dev = device(f.location);

    double start = clock_.now();
    if (injector_)
        injector_->advanceTo(start);
    DeviceAccess result;
    if (!dev.available() ||
        (injector_ && injector_->shouldFailAccess(dev.id()))) {
        result = dev.failAccess(start);
    } else {
        result = dev.access(bytes, is_read, start);
    }
    clock_.advance(result.duration);

    AccessObservation obs;
    obs.file = id;
    obs.device = f.location;
    obs.readBytes = is_read ? bytes : 0;
    obs.writtenBytes = is_read ? 0 : bytes;
    obs.startTime = start;
    obs.endTime = clock_.now();
    obs.throughput = result.throughput;
    obs.failed = result.failed;

    for (const auto &observer : accessObservers_)
        observer(obs);
    return obs;
}

AccessObservation
StorageSystem::accessConcurrent(FileId id, uint64_t bytes, bool is_read)
{
    const FileObject &f = file(id);
    StorageDevice &dev = device(f.location);

    double start = clock_.now();
    if (injector_)
        injector_->advanceTo(start);
    DeviceAccess result;
    if (!dev.available() ||
        (injector_ && injector_->shouldFailAccess(dev.id()))) {
        result = dev.failAccess(start);
    } else {
        result = dev.access(bytes, is_read, start);
    }
    // Overlapping client: the device pays, the global clock does not.

    AccessObservation obs;
    obs.file = id;
    obs.device = f.location;
    obs.readBytes = is_read ? bytes : 0;
    obs.writtenBytes = is_read ? 0 : bytes;
    obs.startTime = start;
    obs.endTime = start + result.duration;
    obs.throughput = result.throughput;
    obs.failed = result.failed;

    for (const auto &observer : accessObservers_)
        observer(obs);
    return obs;
}

MoveResult
StorageSystem::moveFile(FileId id, DeviceId target)
{
    FileObject &f = files_.at(id);
    MoveResult result;
    result.from = f.location;
    result.to = target;
    result.bytes = f.sizeBytes;

    if (injector_)
        injector_->advanceTo(clock_.now());
    if (target >= devices_.size()) {
        warn("moveFile: target device %u does not exist", target);
        result.reason = MoveFail::NoSuchDevice;
        return result;
    }
    if (target == f.location) {
        result.reason = MoveFail::SameDevice;
        return result; // no-op, not an error
    }

    StorageDevice &src = device(f.location);
    StorageDevice &dst = device(target);
    if (!src.available()) {
        result.failed = true;
        result.reason = MoveFail::SourceOffline;
        ++abortedMoves_;
        return result;
    }
    if (!dst.available()) {
        result.failed = true;
        result.reason = MoveFail::TargetOffline;
        ++abortedMoves_;
        return result;
    }
    if (!dst.writable()) {
        warn("moveFile: device %s is not writable", dst.name().c_str());
        result.reason = MoveFail::NotWritable;
        return result;
    }
    if (!dst.reserve(f.sizeBytes)) {
        result.reason = MoveFail::CapacityFull;
        return result; // destination full
    }
    if (injector_ && (injector_->shouldFailAccess(src.id()) ||
                      injector_->shouldFailAccess(dst.id()))) {
        // The transfer errors out before any byte lands.
        dst.release(f.sizeBytes);
        result.failed = true;
        result.reason = MoveFail::TransientFault;
        ++abortedMoves_;
        return result;
    }

    double now = clock_.now();
    double bw = std::min({src.effectiveBandwidth(true, now),
                          dst.effectiveBandwidth(false, now),
                          config_.networkBandwidth});
    result.seconds = static_cast<double>(f.sizeBytes) / bw;

    // The copy occupies both devices; contention from migrations is
    // how the transfer cost shows up in workload throughput.
    src.addBusyTime(now, result.seconds);
    dst.addBusyTime(now, result.seconds);
    if (!config_.backgroundMoves)
        clock_.advance(result.seconds);

    src.release(f.sizeBytes);
    f.location = target;
    result.moved = true;
    result.bytesCopied = f.sizeBytes;
    migratedBytes_ += f.sizeBytes;
    ++migrationCount_;

    for (const auto &observer : moveObservers_)
        observer(result);
    return result;
}

MoveResult
StorageSystem::moveFileChunked(FileId id, DeviceId target,
                               uint64_t chunk_bytes)
{
    if (chunk_bytes == 0)
        panic("moveFileChunked: chunk_bytes must be >= 1");
    FileObject &f = files_.at(id);
    MoveResult result;
    result.from = f.location;
    result.to = target;
    result.bytes = f.sizeBytes;

    if (injector_)
        injector_->advanceTo(clock_.now());
    if (target >= devices_.size()) {
        warn("moveFileChunked: target device %u does not exist", target);
        result.reason = MoveFail::NoSuchDevice;
        return result;
    }
    if (target == f.location) {
        result.reason = MoveFail::SameDevice;
        return result;
    }

    StorageDevice &src = device(f.location);
    StorageDevice &dst = device(target);
    if (!src.available() || !dst.available()) {
        result.failed = true;
        result.reason = src.available() ? MoveFail::TargetOffline
                                        : MoveFail::SourceOffline;
        ++abortedMoves_;
        return result;
    }
    if (!dst.writable()) {
        warn("moveFileChunked: device %s is not writable",
             dst.name().c_str());
        result.reason = MoveFail::NotWritable;
        return result;
    }
    if (!dst.reserve(f.sizeBytes)) {
        result.reason = MoveFail::CapacityFull;
        return result;
    }

    // Each chunk is priced at the effective bandwidth when it begins,
    // so a contention episode arriving mid-move lengthens only the
    // remaining chunks — and a fault arriving mid-move aborts the
    // transfer partway, with the bytes already copied wasted (busy
    // time on both devices is still paid).
    uint64_t remaining = f.sizeBytes;
    double chunk_start = clock_.now();
    while (remaining > 0) {
        if (injector_)
            injector_->advanceTo(chunk_start);
        MoveFail abort = MoveFail::None;
        if (!src.available())
            abort = MoveFail::SourceOffline;
        else if (!dst.available())
            abort = MoveFail::TargetOffline;
        else if (injector_ && (injector_->shouldFailAccess(src.id()) ||
                               injector_->shouldFailAccess(dst.id())))
            abort = MoveFail::TransientFault;
        if (abort != MoveFail::None) {
            dst.release(f.sizeBytes);
            result.failed = true;
            result.reason = abort;
            result.bytesCopied = f.sizeBytes - remaining;
            ++abortedMoves_;
            abortedBytes_ += result.bytesCopied;
            if (!config_.backgroundMoves)
                clock_.advance(result.seconds);
            warn("moveFileChunked: move of file %llu to %s aborted "
                 "after %llu/%llu bytes (%s)",
                 static_cast<unsigned long long>(id),
                 dst.name().c_str(),
                 static_cast<unsigned long long>(result.bytesCopied),
                 static_cast<unsigned long long>(f.sizeBytes),
                 moveFailName(abort));
            return result;
        }
        uint64_t chunk = std::min(remaining, chunk_bytes);
        double bw = std::min({src.effectiveBandwidth(true, chunk_start),
                              dst.effectiveBandwidth(false, chunk_start),
                              config_.networkBandwidth});
        double seconds = static_cast<double>(chunk) / bw;
        src.addBusyTime(chunk_start, seconds);
        dst.addBusyTime(chunk_start, seconds);
        result.seconds += seconds;
        chunk_start += seconds; // chunks are sequential in time
        remaining -= chunk;
        // Kill point: die with the transfer part-done — capacity
        // reserved on the target, busy time paid, nothing logged.
        if (injector_)
            injector_->maybeCrash(CrashPoint::MidMigration);
    }
    if (!config_.backgroundMoves)
        clock_.advance(result.seconds);

    src.release(f.sizeBytes);
    f.location = target;
    result.moved = true;
    result.bytesCopied = f.sizeBytes;
    migratedBytes_ += f.sizeBytes;
    ++migrationCount_;

    for (const auto &observer : moveObservers_)
        observer(result);
    return result;
}

void
StorageSystem::onAccess(
    std::function<void(const AccessObservation &)> observer)
{
    accessObservers_.push_back(std::move(observer));
}

void
StorageSystem::onMove(std::function<void(const MoveResult &)> observer)
{
    moveObservers_.push_back(std::move(observer));
}

std::map<FileId, DeviceId>
StorageSystem::layout() const
{
    std::map<FileId, DeviceId> out;
    for (const FileObject &f : files_)
        out[f.id] = f.location;
    return out;
}

std::vector<size_t>
StorageSystem::filesPerDevice() const
{
    std::vector<size_t> counts(devices_.size(), 0);
    for (const FileObject &f : files_)
        ++counts[f.location];
    return counts;
}

void
StorageSystem::saveState(util::StateWriter &w) const
{
    w.f64("sys.clock", clock_.now());
    w.u64("sys.migrated_bytes", migratedBytes_);
    w.u64("sys.migrations", migrationCount_);
    w.u64("sys.aborted_moves", abortedMoves_);
    w.u64("sys.aborted_bytes", abortedBytes_);
    w.u64("sys.files", files_.size());
    for (const FileObject &f : files_)
        w.u64("file.location", f.location);
    w.u64("sys.devices", devices_.size());
    for (const StorageDevice &dev : devices_)
        dev.saveState(w);
}

void
StorageSystem::loadState(util::StateReader &r)
{
    double now = r.f64("sys.clock");
    uint64_t migrated = r.u64("sys.migrated_bytes");
    uint64_t migrations = r.u64("sys.migrations");
    uint64_t aborted_moves = r.u64("sys.aborted_moves");
    uint64_t aborted_bytes = r.u64("sys.aborted_bytes");
    if (r.u64("sys.files") != files_.size()) {
        r.fail("system: file count changed since the checkpoint");
        return;
    }
    std::vector<DeviceId> locations;
    locations.reserve(files_.size());
    for (size_t i = 0; i < files_.size() && r.ok(); ++i)
        locations.push_back(
            static_cast<DeviceId>(r.u64("file.location")));
    if (r.u64("sys.devices") != devices_.size()) {
        r.fail("system: device count changed since the checkpoint");
        return;
    }
    if (!r.ok())
        return;
    // Device states carry the used-bytes accounting, so restore the
    // layout first and let the device snapshots overwrite usage.
    for (size_t i = 0; i < files_.size(); ++i)
        files_[i].location = locations[i];
    for (StorageDevice &dev : devices_)
        dev.loadState(r);
    if (!r.ok())
        return;
    clock_.reset();
    clock_.advanceTo(now);
    migratedBytes_ = migrated;
    migrationCount_ = migrations;
    abortedMoves_ = aborted_moves;
    abortedBytes_ = aborted_bytes;
}

} // namespace storage
} // namespace geo
