#include "workload/trace_replay.hh"

#include <algorithm>

#include "util/logging.hh"

namespace geo {
namespace workload {

TraceReplayWorkload::TraceReplayWorkload(
    storage::StorageSystem &system,
    const std::vector<trace::AccessRecord> &records,
    const TraceReplayConfig &config)
    : system_(system), config_(config), records_(records)
{
    if (records_.empty())
        panic("TraceReplayWorkload: empty trace");
    if (system_.deviceCount() == 0)
        panic("TraceReplayWorkload: system has no devices");

    // Create files on first appearance, round-robin over devices.
    size_t next_device = 0;
    for (const trace::AccessRecord &rec : records_) {
        if (fidToFile_.count(rec.fid))
            continue;
        if (config_.maxFiles > 0 && files_.size() >= config_.maxFiles)
            continue;
        uint64_t size = std::max<uint64_t>(
            {rec.osize, rec.rb, rec.wb, 4096});
        storage::FileId file = system_.addFile(
            rec.path.empty() ? strprintf("trace/fid%llu",
                                         static_cast<unsigned long long>(
                                             rec.fid))
                             : rec.path,
            size,
            static_cast<storage::DeviceId>(next_device %
                                           system_.deviceCount()));
        ++next_device;
        fidToFile_[rec.fid] = file;
        files_.push_back(file);
    }
    lastOpenTime_ = records_.front().openTime();
}

std::vector<storage::AccessObservation>
TraceReplayWorkload::replay(size_t count)
{
    std::vector<storage::AccessObservation> observations;
    while (count > 0 && cursor_ < records_.size()) {
        const trace::AccessRecord &rec = records_[cursor_++];
        auto it = fidToFile_.find(rec.fid);
        if (it == fidToFile_.end())
            continue; // dropped by maxFiles
        if (config_.preserveTiming) {
            double gap = rec.openTime() - lastOpenTime_;
            if (gap > 0.0)
                system_.clock().advance(gap);
            lastOpenTime_ = rec.openTime();
        }
        uint64_t bytes = rec.rb + rec.wb;
        if (bytes == 0)
            bytes = 1;
        bool is_read = rec.rb >= rec.wb;
        observations.push_back(
            system_.access(it->second, bytes, is_read));
        --count;
    }
    return observations;
}

std::vector<storage::AccessObservation>
TraceReplayWorkload::replayAll()
{
    return replay(records_.size());
}

} // namespace workload
} // namespace geo
