#include "workload/interference.hh"

namespace geo {
namespace workload {

Belle2Config
InterferenceWorkload::defaultConfig()
{
    Belle2Config config;
    config.namePrefix = "belle2/other-user/evtgen";
    config.seed = 991;
    return config;
}

InterferenceWorkload::InterferenceWorkload(storage::StorageSystem &system,
                                           Belle2Config config)
    : inner_(system, config)
{
}

InterferenceWorkload::InterferenceWorkload(
    storage::StorageSystem &system, Belle2Config config,
    const std::vector<storage::DeviceId> &layout)
    : inner_(system, config, layout)
{
}

std::vector<storage::AccessObservation>
InterferenceWorkload::executeRun()
{
    return inner_.executeRun();
}

std::vector<storage::AccessObservation>
InterferenceWorkload::executeRunConcurrent()
{
    return inner_.executeRunConcurrent();
}

const std::vector<storage::FileId> &
InterferenceWorkload::files() const
{
    return inner_.files();
}

} // namespace workload
} // namespace geo
