/**
 * @file
 * The BELLE II Monte-Carlo workload emulation (paper Section IV).
 *
 * The paper's live experiment replays a suite of Monte-Carlo
 * simulations over 24 ROOT files sized 583 KB to 1.1 GB. The workload
 * is read-heavy, loops over the files sequentially, and accesses each
 * file 10-20 times in succession before moving on. One "run" of the
 * workload is one full pass over the suite (~9,000-16,000 accesses
 * correspond to a few hundred runs in the paper's experiments).
 */

#ifndef GEO_WORKLOAD_BELLE2_HH
#define GEO_WORKLOAD_BELLE2_HH

#include <string>
#include <vector>

#include "storage/system.hh"
#include "util/random.hh"
#include "util/state_io.hh"
#include "workload/access_event.hh"

namespace geo {
namespace workload {

/** Knobs of the BELLE II workload generator. */
struct Belle2Config
{
    size_t fileCount = 24;
    uint64_t minFileBytes = 583ULL * 1024;        ///< 583 KB
    uint64_t maxFileBytes = 1181116006ULL;        ///< ~1.1 GB
    size_t minRepeats = 10;  ///< successive accesses per file per run
    size_t maxRepeats = 20;
    double readFraction = 0.92;   ///< read-heavy Monte-Carlo analysis
    /** Portion of the file touched per access (fraction of size). */
    double minSpan = 0.10;
    double maxSpan = 0.60;
    std::string namePrefix = "belle2/mc/evtgen";
    uint64_t seed = 1234;
    /** Co-tenant suites sharing the substrate (fleet scale-out): each
     *  tenant owns its own `fileCount` files and an independent RNG
     *  stream (seed + t * golden ratio), so shards replay their
     *  tenants identically regardless of how many others exist. 1 =
     *  the paper's single-suite workload, byte-identical to every
     *  prior release. */
    size_t tenantCount = 1;
};

/**
 * Generator of BELLE II-style access sequences over registered files.
 */
class Belle2Workload
{
  public:
    /**
     * Create the workload's files on `system`, spread round-robin over
     * all devices (the paper's even "basic spread" starting layout).
     */
    Belle2Workload(storage::StorageSystem &system,
                   const Belle2Config &config = {});

    /**
     * Create the workload over an explicit starting layout:
     * file i goes to initial_layout[i % initial_layout.size()].
     */
    Belle2Workload(storage::StorageSystem &system,
                   const Belle2Config &config,
                   const std::vector<storage::DeviceId> &initial_layout);

    /** File ids owned by this workload, all tenants concatenated
     *  (`config.fileCount * config.tenantCount` entries). */
    const std::vector<storage::FileId> &files() const { return files_; }

    /** Tenants in the suite. */
    size_t tenantCount() const { return config_.tenantCount; }

    /** File ids of one tenant (`config.fileCount` entries). */
    std::vector<storage::FileId> tenantFiles(size_t tenant) const;

    /**
     * Generate the access sequence of one run: a full sequential pass,
     * 10-20 successive accesses per file.
     */
    std::vector<AccessEvent> nextRun();

    /**
     * Execute one run against the system, returning the observations.
     */
    std::vector<storage::AccessObservation> executeRun();

    /**
     * Execute one run as a *concurrent* client: devices are loaded
     * but the global clock does not advance (see
     * StorageSystem::accessConcurrent).
     */
    std::vector<storage::AccessObservation> executeRunConcurrent();

    /** Number of completed runs. */
    size_t runsCompleted() const { return runs_; }

    const Belle2Config &config() const { return config_; }

    /**
     * Serialize the generator cursor (RNG stream, completed runs).
     * File registration is constructor work and deterministic, so only
     * the dynamic position in the access stream is saved.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    storage::StorageSystem &system_;
    Belle2Config config_;
    Rng rng_;                     ///< tenant 0 (the legacy stream)
    std::vector<Rng> tenantRngs_; ///< tenants 1..T-1
    std::vector<storage::FileId> files_;
    size_t runs_ = 0;

    Rng &tenantRng(size_t tenant);
    void createFiles(const std::vector<storage::DeviceId> &layout);
};

} // namespace workload
} // namespace geo

#endif // GEO_WORKLOAD_BELLE2_HH
