/**
 * @file
 * Trace-replay workload: drive the simulated storage system with an
 * EOS-style access trace instead of the synthetic BELLE II generator.
 *
 * This is the bridge between the paper's two data sources: traces
 * (used offline for feature discovery and model sizing) and the live
 * system (used for the placement experiments). Replaying a trace
 * through the simulator lets Geomancy be evaluated on recorded
 * workloads a user brings along.
 */

#ifndef GEO_WORKLOAD_TRACE_REPLAY_HH
#define GEO_WORKLOAD_TRACE_REPLAY_HH

#include <map>
#include <vector>

#include "storage/system.hh"
#include "trace/access_record.hh"

namespace geo {
namespace workload {

/** Replay configuration. */
struct TraceReplayConfig
{
    /** Replay the recorded inter-access gaps by advancing the clock
     *  between accesses (true) or back-to-back (false). */
    bool preserveTiming = true;
    /** Cap on files created from the trace (0 = no cap). */
    size_t maxFiles = 0;
};

/**
 * Replays an access trace against a StorageSystem.
 *
 * Files referenced by the trace are created on demand, sized by the
 * record's open size and placed round-robin over the devices; the
 * trace's own fsid is deliberately ignored (the point of replay is to
 * let a placement policy choose locations on the simulated system).
 */
class TraceReplayWorkload
{
  public:
    /**
     * @param system target system.
     * @param records the trace, in open-time order.
     * @param config replay options.
     */
    TraceReplayWorkload(storage::StorageSystem &system,
                        const std::vector<trace::AccessRecord> &records,
                        const TraceReplayConfig &config = {});

    /** Files created for the trace (order = first appearance). */
    const std::vector<storage::FileId> &files() const { return files_; }

    /** Number of records not yet replayed. */
    size_t remaining() const { return records_.size() - cursor_; }

    bool done() const { return cursor_ >= records_.size(); }

    /**
     * Replay up to `count` accesses; returns the observations.
     * Records referencing files dropped by maxFiles are skipped.
     */
    std::vector<storage::AccessObservation> replay(size_t count);

    /** Replay everything that is left. */
    std::vector<storage::AccessObservation> replayAll();

  private:
    storage::StorageSystem &system_;
    TraceReplayConfig config_;
    std::vector<trace::AccessRecord> records_;
    std::map<uint64_t, storage::FileId> fidToFile_;
    std::vector<storage::FileId> files_;
    size_t cursor_ = 0;
    double lastOpenTime_ = 0.0;
};

} // namespace workload
} // namespace geo

#endif // GEO_WORKLOAD_TRACE_REPLAY_HH
