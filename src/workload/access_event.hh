/**
 * @file
 * One intended I/O operation of a workload.
 */

#ifndef GEO_WORKLOAD_ACCESS_EVENT_HH
#define GEO_WORKLOAD_ACCESS_EVENT_HH

#include <cstdint>

#include "storage/system.hh"

namespace geo {
namespace workload {

/** A single read or write a workload wants to perform. */
struct AccessEvent
{
    storage::FileId file = 0;
    uint64_t bytes = 0;
    bool isRead = true;
};

} // namespace workload
} // namespace geo

#endif // GEO_WORKLOAD_ACCESS_EVENT_HH
