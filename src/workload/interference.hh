/**
 * @file
 * The interference workload of experiment 3 (paper Section VI-c,
 * Fig. 6): a duplicate of the BELLE II workload over a *different* set
 * of files, sharing the same mounts. It is never tuned by Geomancy; its
 * arrival changes the contention landscape and forces the tuned
 * workload's model to adapt.
 */

#ifndef GEO_WORKLOAD_INTERFERENCE_HH
#define GEO_WORKLOAD_INTERFERENCE_HH

#include "workload/belle2.hh"

namespace geo {
namespace workload {

/**
 * An untuned duplicate workload on its own file set.
 */
class InterferenceWorkload
{
  public:
    /**
     * @param system shared target system.
     * @param config workload shape (defaults mirror BELLE II with a
     *        distinct seed and name prefix).
     */
    explicit InterferenceWorkload(storage::StorageSystem &system,
                                  Belle2Config config = defaultConfig());

    /**
     * Variant with an explicit starting layout, e.g. pinning the
     * duplicate workload onto the fast mounts the tuned workload
     * already occupies (the contention-shift scenario of Fig. 6).
     */
    InterferenceWorkload(storage::StorageSystem &system,
                         Belle2Config config,
                         const std::vector<storage::DeviceId> &layout);

    /** Default configuration: same shape, different files and seed. */
    static Belle2Config defaultConfig();

    /** Execute one run; returns the observations. */
    std::vector<storage::AccessObservation> executeRun();

    /** Execute one run overlapping the primary workload (no clock
     *  advance); this is the Fig. 6 contention model. */
    std::vector<storage::AccessObservation> executeRunConcurrent();

    const std::vector<storage::FileId> &files() const;

    size_t runsCompleted() const { return inner_.runsCompleted(); }

  private:
    Belle2Workload inner_;
};

} // namespace workload
} // namespace geo

#endif // GEO_WORKLOAD_INTERFERENCE_HH
