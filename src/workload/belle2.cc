#include "workload/belle2.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace workload {

Belle2Workload::Belle2Workload(storage::StorageSystem &system,
                               const Belle2Config &config)
    : Belle2Workload(system, config, system.deviceIds())
{
}

Belle2Workload::Belle2Workload(
    storage::StorageSystem &system, const Belle2Config &config,
    const std::vector<storage::DeviceId> &initial_layout)
    : system_(system), config_(config), rng_(config.seed)
{
    if (config_.fileCount == 0)
        panic("Belle2Workload: fileCount must be >= 1");
    if (config_.minFileBytes > config_.maxFileBytes)
        panic("Belle2Workload: min file size exceeds max");
    if (config_.minRepeats == 0 || config_.minRepeats > config_.maxRepeats)
        panic("Belle2Workload: bad repeat range [%zu, %zu]",
              config_.minRepeats, config_.maxRepeats);
    if (initial_layout.empty())
        panic("Belle2Workload: empty initial layout");
    createFiles(initial_layout);
}

void
Belle2Workload::createFiles(const std::vector<storage::DeviceId> &layout)
{
    files_.reserve(config_.fileCount);
    for (size_t i = 0; i < config_.fileCount; ++i) {
        // Log-uniform sizes span the paper's 583 KB - 1.1 GB range with
        // a realistic mix of small and large ROOT files.
        double lo = std::log(static_cast<double>(config_.minFileBytes));
        double hi = std::log(static_cast<double>(config_.maxFileBytes));
        uint64_t size =
            static_cast<uint64_t>(std::exp(rng_.uniform(lo, hi)));
        size = std::clamp(size, config_.minFileBytes, config_.maxFileBytes);
        std::string name =
            strprintf("%s/run%02zu.root", config_.namePrefix.c_str(), i);
        storage::DeviceId device = layout[i % layout.size()];
        files_.push_back(system_.addFile(name, size, device));
    }
}

std::vector<AccessEvent>
Belle2Workload::nextRun()
{
    std::vector<AccessEvent> events;
    // Sequential pass over the suite; each file is read 10-20 times in
    // succession (the looping scan the paper describes).
    for (storage::FileId file : files_) {
        size_t repeats = static_cast<size_t>(rng_.uniformInt(
            static_cast<int64_t>(config_.minRepeats),
            static_cast<int64_t>(config_.maxRepeats)));
        uint64_t size = system_.file(file).sizeBytes;
        for (size_t r = 0; r < repeats; ++r) {
            AccessEvent ev;
            ev.file = file;
            double span = rng_.uniform(config_.minSpan, config_.maxSpan);
            ev.bytes = std::max<uint64_t>(
                1, static_cast<uint64_t>(
                       span * static_cast<double>(size)));
            ev.isRead = rng_.chance(config_.readFraction);
            events.push_back(ev);
        }
    }
    return events;
}

std::vector<storage::AccessObservation>
Belle2Workload::executeRun()
{
    std::vector<storage::AccessObservation> observations;
    for (const AccessEvent &ev : nextRun())
        observations.push_back(system_.access(ev.file, ev.bytes, ev.isRead));
    ++runs_;
    return observations;
}

std::vector<storage::AccessObservation>
Belle2Workload::executeRunConcurrent()
{
    std::vector<storage::AccessObservation> observations;
    for (const AccessEvent &ev : nextRun()) {
        observations.push_back(
            system_.accessConcurrent(ev.file, ev.bytes, ev.isRead));
    }
    ++runs_;
    return observations;
}

void
Belle2Workload::saveState(util::StateWriter &w) const
{
    w.rng("belle2.rng", rng_);
    w.u64("belle2.runs", runs_);
}

void
Belle2Workload::loadState(util::StateReader &r)
{
    Rng::State rng = r.rng("belle2.rng");
    uint64_t runs = r.u64("belle2.runs");
    if (!r.ok())
        return;
    rng_.setState(rng);
    runs_ = runs;
}

} // namespace workload
} // namespace geo
