#include "workload/belle2.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace workload {

Belle2Workload::Belle2Workload(storage::StorageSystem &system,
                               const Belle2Config &config)
    : Belle2Workload(system, config, system.deviceIds())
{
}

Belle2Workload::Belle2Workload(
    storage::StorageSystem &system, const Belle2Config &config,
    const std::vector<storage::DeviceId> &initial_layout)
    : system_(system), config_(config), rng_(config.seed)
{
    if (config_.fileCount == 0)
        panic("Belle2Workload: fileCount must be >= 1");
    if (config_.minFileBytes > config_.maxFileBytes)
        panic("Belle2Workload: min file size exceeds max");
    if (config_.minRepeats == 0 || config_.minRepeats > config_.maxRepeats)
        panic("Belle2Workload: bad repeat range [%zu, %zu]",
              config_.minRepeats, config_.maxRepeats);
    if (initial_layout.empty())
        panic("Belle2Workload: empty initial layout");
    if (config_.tenantCount == 0)
        panic("Belle2Workload: tenantCount must be >= 1");
    // Independent per-tenant streams (golden-ratio increments) keep a
    // tenant's trace a pure function of (seed, tenant index): a shard
    // replays its tenants byte-identically no matter how many
    // co-tenants the fleet run added.
    tenantRngs_.reserve(config_.tenantCount - 1);
    for (size_t t = 1; t < config_.tenantCount; ++t)
        tenantRngs_.emplace_back(config_.seed +
                                 t * 0x9E3779B97F4A7C15ULL);
    createFiles(initial_layout);
}

Rng &
Belle2Workload::tenantRng(size_t tenant)
{
    return tenant == 0 ? rng_ : tenantRngs_[tenant - 1];
}

std::vector<storage::FileId>
Belle2Workload::tenantFiles(size_t tenant) const
{
    if (tenant >= config_.tenantCount)
        panic("Belle2Workload: tenant %zu out of range (%zu tenants)",
              tenant, config_.tenantCount);
    auto begin = files_.begin() +
                 static_cast<ptrdiff_t>(tenant * config_.fileCount);
    return std::vector<storage::FileId>(
        begin, begin + static_cast<ptrdiff_t>(config_.fileCount));
}

void
Belle2Workload::createFiles(const std::vector<storage::DeviceId> &layout)
{
    files_.reserve(config_.fileCount * config_.tenantCount);
    size_t global = 0;
    for (size_t t = 0; t < config_.tenantCount; ++t) {
        Rng &rng = tenantRng(t);
        for (size_t i = 0; i < config_.fileCount; ++i, ++global) {
            // Log-uniform sizes span the paper's 583 KB - 1.1 GB range
            // with a realistic mix of small and large ROOT files.
            double lo =
                std::log(static_cast<double>(config_.minFileBytes));
            double hi =
                std::log(static_cast<double>(config_.maxFileBytes));
            uint64_t size =
                static_cast<uint64_t>(std::exp(rng.uniform(lo, hi)));
            size = std::clamp(size, config_.minFileBytes,
                              config_.maxFileBytes);
            // Single-tenant keeps the historical names (and with them
            // every pinned digest); multi-tenant namespaces per tenant.
            std::string name =
                config_.tenantCount == 1
                    ? strprintf("%s/run%02zu.root",
                                config_.namePrefix.c_str(), i)
                    : strprintf("%s/t%03zu/run%02zu.root",
                                config_.namePrefix.c_str(), t, i);
            storage::DeviceId device = layout[global % layout.size()];
            files_.push_back(system_.addFile(name, size, device));
        }
    }
}

std::vector<AccessEvent>
Belle2Workload::nextRun()
{
    std::vector<AccessEvent> events;
    // Sequential pass over every tenant's suite in tenant order; each
    // file is read 10-20 times in succession (the looping scan the
    // paper describes). Each tenant consumes only its own RNG stream.
    for (size_t t = 0; t < config_.tenantCount; ++t) {
        Rng &rng = tenantRng(t);
        for (size_t i = 0; i < config_.fileCount; ++i) {
            storage::FileId file = files_[t * config_.fileCount + i];
            size_t repeats = static_cast<size_t>(rng.uniformInt(
                static_cast<int64_t>(config_.minRepeats),
                static_cast<int64_t>(config_.maxRepeats)));
            uint64_t size = system_.file(file).sizeBytes;
            for (size_t r = 0; r < repeats; ++r) {
                AccessEvent ev;
                ev.file = file;
                double span =
                    rng.uniform(config_.minSpan, config_.maxSpan);
                ev.bytes = std::max<uint64_t>(
                    1, static_cast<uint64_t>(
                           span * static_cast<double>(size)));
                ev.isRead = rng.chance(config_.readFraction);
                events.push_back(ev);
            }
        }
    }
    return events;
}

std::vector<storage::AccessObservation>
Belle2Workload::executeRun()
{
    std::vector<storage::AccessObservation> observations;
    for (const AccessEvent &ev : nextRun())
        observations.push_back(system_.access(ev.file, ev.bytes, ev.isRead));
    ++runs_;
    return observations;
}

std::vector<storage::AccessObservation>
Belle2Workload::executeRunConcurrent()
{
    std::vector<storage::AccessObservation> observations;
    for (const AccessEvent &ev : nextRun()) {
        observations.push_back(
            system_.accessConcurrent(ev.file, ev.bytes, ev.isRead));
    }
    ++runs_;
    return observations;
}

void
Belle2Workload::saveState(util::StateWriter &w) const
{
    // Tenant 0 keeps the historical keys so single-tenant checkpoints
    // stay byte-identical across releases; extra tenants append.
    w.rng("belle2.rng", rng_);
    w.u64("belle2.runs", runs_);
    for (const Rng &rng : tenantRngs_)
        w.rng("belle2.trng", rng);
}

void
Belle2Workload::loadState(util::StateReader &r)
{
    Rng::State rng = r.rng("belle2.rng");
    uint64_t runs = r.u64("belle2.runs");
    std::vector<Rng::State> tenants;
    tenants.reserve(tenantRngs_.size());
    for (size_t t = 0; t < tenantRngs_.size(); ++t)
        tenants.push_back(r.rng("belle2.trng"));
    if (!r.ok())
        return;
    rng_.setState(rng);
    for (size_t t = 0; t < tenantRngs_.size(); ++t)
        tenantRngs_[t].setState(tenants[t]);
    runs_ = runs;
}

} // namespace workload
} // namespace geo
