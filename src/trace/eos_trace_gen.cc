#include "trace/eos_trace_gen.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.hh"
#include "util/sim_clock.hh"

namespace geo {
namespace trace {

EosTraceGenerator::EosTraceGenerator(const EosTraceConfig &config)
    : config_(config), rng_(config.seed)
{
    if (config_.deviceCount == 0 || config_.fileCount == 0)
        panic("EosTraceGenerator: empty cluster configuration");

    deviceBandwidth_.reserve(config_.deviceCount);
    devicePhase_.reserve(config_.deviceCount);
    for (size_t d = 0; d < config_.deviceCount; ++d) {
        // Log-uniform spread between the min and max bandwidth, so the
        // cluster mixes slow archival and fast analysis-pool devices.
        double frac = config_.deviceCount == 1
                          ? 1.0
                          : static_cast<double>(d) /
                                static_cast<double>(config_.deviceCount - 1);
        double bw = config_.minBandwidth *
                    std::pow(config_.maxBandwidth / config_.minBandwidth,
                             frac);
        deviceBandwidth_.push_back(bw * rng_.uniform(0.8, 1.2));
        devicePhase_.push_back(rng_.uniform(0.0, 2.0 * std::numbers::pi));
    }

    files_.reserve(config_.fileCount);
    for (size_t f = 0; f < config_.fileCount; ++f) {
        FileInfo info;
        uint32_t dir = static_cast<uint32_t>(
            rng_.uniformInt(0, static_cast<int64_t>(
                                   config_.directoryCount) - 1));
        info.path = strprintf("eos/pool%u/run%03zu/data%05zu.root",
                              dir % 4, static_cast<size_t>(dir),
                              f);
        info.sizeBytes = static_cast<uint64_t>(std::max(
            4096.0, rng_.logNormal(config_.fileSizeLogMean,
                                   config_.fileSizeLogSigma)));
        info.homeDevice = static_cast<uint32_t>(rng_.uniformInt(
            0, static_cast<int64_t>(config_.deviceCount) - 1));
        info.appClass = static_cast<uint32_t>(rng_.uniformInt(0, 5));
        files_.push_back(std::move(info));
    }
}

double
EosTraceGenerator::deviceLoad(uint32_t fsid, double at) const
{
    // Diurnal cycle (86400 s period) plus a device-specific phase: the
    // shared analysis pools are busy when their user community is awake.
    double phase = 2.0 * std::numbers::pi * at / 86400.0 +
                   devicePhase_[fsid];
    double diurnal =
        config_.diurnalAmplitude * 0.5 * (1.0 + std::sin(phase));
    return diurnal;
}

const std::string &
EosTraceGenerator::filePath(uint64_t fid) const
{
    if (fid == 0 || fid > files_.size())
        panic("filePath: fid %llu out of catalog (%zu files)",
              static_cast<unsigned long long>(fid), files_.size());
    return files_[fid - 1].path;
}

std::vector<AccessRecord>
EosTraceGenerator::generate(size_t count)
{
    std::vector<AccessRecord> records;
    records.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        now_ += rng_.exponential(1.0 / config_.meanInterArrival);

        size_t file_index = static_cast<size_t>(
            rng_.uniformInt(0, static_cast<int64_t>(files_.size()) - 1));
        const FileInfo &file = files_[file_index];
        uint32_t fsid = file.homeDevice;

        AccessRecord rec;
        rec.fid = file_index + 1;
        rec.fsid = fsid + 1;
        rec.path = file.path;
        rec.td = static_cast<uint32_t>(now_ / 86400.0);
        rec.secgrps = file.appClass % 3;
        rec.secrole = static_cast<uint32_t>(rng_.uniformInt(0, 2));
        rec.secapp = file.appClass;
        rec.osize = file.sizeBytes;

        bool is_read = rng_.chance(config_.readFraction);
        double span = rng_.uniform(0.05, 1.0); // fraction of file touched
        uint64_t bytes = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   span * static_cast<double>(file.sizeBytes)));
        if (is_read) {
            rec.rb = bytes;
            rec.nrc = static_cast<uint32_t>(
                1 + bytes / (4 << 20)); // ~4 MB per read call
            rec.csize = file.sizeBytes;
        } else {
            rec.wb = bytes;
            rec.nwc = static_cast<uint32_t>(1 + bytes / (4 << 20));
            rec.csize = std::max<uint64_t>(file.sizeBytes, bytes);
        }

        double load = deviceLoad(fsid, now_);
        if (rng_.chance(config_.burstProbability))
            load += config_.burstSlowdown;
        // Writes pay a parity/replication penalty like the paper's
        // RAID-5 mount.
        double bw = deviceBandwidth_[fsid] / (1.0 + load);
        if (!is_read)
            bw *= 0.55;
        bw *= rng_.uniform(0.85, 1.15); // measurement noise

        double transfer = static_cast<double>(bytes) / bw;
        double duration = config_.openOverhead *
                              rng_.uniform(0.5, 2.0) +
                          transfer;
        if (is_read)
            rec.rt = transfer * 1000.0;
        else
            rec.wt = transfer * 1000.0;

        SplitTime open_ts = splitSeconds(now_);
        SplitTime close_ts = splitSeconds(now_ + duration);
        rec.ots = open_ts.seconds;
        rec.otms = open_ts.millis;
        rec.cts = close_ts.seconds;
        rec.ctms = close_ts.millis;

        records.push_back(std::move(rec));
    }
    return records;
}

} // namespace trace
} // namespace geo
