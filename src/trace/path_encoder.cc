#include "trace/path_encoder.hh"

#include "util/logging.hh"

namespace geo {
namespace trace {

PathEncoder::PathEncoder(uint64_t radix) : radix_(radix)
{
    if (radix_ < 2)
        panic("PathEncoder: radix must be >= 2, got %llu",
              static_cast<unsigned long long>(radix_));
}

std::vector<std::string>
PathEncoder::splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : path) {
        if (c == '/') {
            if (!current.empty()) {
                parts.push_back(std::move(current));
                current.clear();
            }
        } else {
            current += c;
        }
    }
    if (!current.empty())
        parts.push_back(std::move(current));
    return parts;
}

uint64_t
PathEncoder::encode(const std::string &path)
{
    std::vector<std::string> parts = splitPath(path);
    if (parts.empty())
        return 0;
    uint64_t code = 0;
    for (const std::string &part : parts) {
        auto [it, inserted] =
            toIndex_.try_emplace(part, toName_.size() + 1);
        if (inserted)
            toName_.push_back(part);
        uint64_t index = it->second;
        if (index >= radix_)
            panic("PathEncoder: dictionary overflowed radix %llu",
                  static_cast<unsigned long long>(radix_));
        code = code * radix_ + index;
    }
    return code;
}

uint64_t
PathEncoder::encodeReadOnly(const std::string &path) const
{
    std::vector<std::string> parts = splitPath(path);
    if (parts.empty())
        return 0;
    uint64_t code = 0;
    for (const std::string &part : parts) {
        auto it = toIndex_.find(part);
        if (it == toIndex_.end())
            return 0;
        code = code * radix_ + it->second;
    }
    return code;
}

std::string
PathEncoder::decode(uint64_t code) const
{
    if (code == 0)
        return "";
    // Peel indices off the low end; they come out deepest-level first.
    std::vector<uint64_t> indices;
    while (code > 0) {
        indices.push_back(code % radix_);
        code /= radix_;
    }
    std::string path;
    for (size_t level = indices.size(); level-- > 0;) {
        uint64_t index = indices[level];
        if (index == 0 || index > toName_.size())
            return "";
        if (!path.empty())
            path += '/';
        path += toName_[index - 1];
    }
    return path;
}

} // namespace trace
} // namespace geo
