/**
 * @file
 * One file access in the EOS log format the paper trains from.
 *
 * Every entry corresponds to one file interaction, open to close
 * (Section V-D). The field set below is the subset of the 32 EOS log
 * values the paper discusses: the six chosen features (rb, wb,
 * ots/otms, cts/ctms, fid, fsid), the strongly negatively correlated
 * read/write times it rejects, and the categorical security/application
 * fields it defers to future work.
 */

#ifndef GEO_TRACE_ACCESS_RECORD_HH
#define GEO_TRACE_ACCESS_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace geo {
namespace trace {

/**
 * An open-to-close file interaction record.
 */
struct AccessRecord
{
    uint64_t fid = 0;     ///< file ID
    uint32_t fsid = 0;    ///< file-system (storage device) ID
    std::string path;     ///< logical file path

    uint64_t rb = 0;      ///< bytes read
    uint64_t wb = 0;      ///< bytes written

    int64_t ots = 0;      ///< open timestamp, seconds part
    int64_t otms = 0;     ///< open timestamp, millisecond part
    int64_t cts = 0;      ///< close timestamp, seconds part
    int64_t ctms = 0;     ///< close timestamp, millisecond part

    double rt = 0.0;      ///< cumulative read time (ms)
    double wt = 0.0;      ///< cumulative write time (ms)
    uint32_t nrc = 0;     ///< number of read calls
    uint32_t nwc = 0;     ///< number of write calls

    uint32_t secgrps = 0; ///< client group (categorical code)
    uint32_t secrole = 0; ///< client role (categorical code)
    uint32_t secapp = 0;  ///< application identifier (categorical code)
    uint32_t td = 0;      ///< day of the access (categorical)
    uint64_t osize = 0;   ///< file size at open
    uint64_t csize = 0;   ///< file size at close

    /** Open timestamp as fractional seconds. */
    double openTime() const;

    /** Close timestamp as fractional seconds. */
    double closeTime() const;

    /** Access duration in seconds (close - open). */
    double duration() const;

    /**
     * Throughput of this access per the paper's formula (Section V-C):
     * (rb + wb) / ((cts + ctms/1000) - (ots + otms/1000)), in bytes/s.
     * Returns 0 for non-positive durations.
     */
    double throughput() const;
};

/** Names of all numeric features extractable from a record. */
std::vector<std::string> accessFeatureNames();

/**
 * Extract the named feature as a double.
 *
 * Valid names are those returned by accessFeatureNames(); unknown names
 * panic (programming error).
 */
double accessFeature(const AccessRecord &rec, const std::string &name);

/** Serialize records to CSV (header + one line per record). */
std::string recordsToCsv(const std::vector<AccessRecord> &records);

/** Parse records from CSV produced by recordsToCsv. */
std::vector<AccessRecord> recordsFromCsv(const std::string &text);

} // namespace trace
} // namespace geo

#endif // GEO_TRACE_ACCESS_RECORD_HH
