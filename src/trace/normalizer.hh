/**
 * @file
 * Min-max normalization of feature columns (paper Section V-E).
 *
 * The Interface Daemon normalizes numerical training data to [0, 1]
 * before it reaches the DRL engine. The normalizer remembers per-column
 * ranges so later batches (and predictions) can be transformed with the
 * ranges learned from the training window, and targets can be
 * denormalized back to physical throughput.
 */

#ifndef GEO_TRACE_NORMALIZER_HH
#define GEO_TRACE_NORMALIZER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/matrix.hh"

namespace geo {
namespace trace {

/**
 * Per-column min-max scaler to [0, 1].
 *
 * Constant columns map to 0.5 (no information, centered), matching the
 * convention that a feature with zero variance contributes nothing.
 *
 * Non-finite inputs are rejected, not folded: a single NaN would
 * otherwise poison the running min/max for the rest of the run (every
 * later fold against NaN stays NaN). Rejected values are counted; a
 * column that never sees a finite value keeps the (+inf, -inf) fold
 * identities and normalizes like a constant column (0.5).
 */
class MinMaxNormalizer
{
  public:
    /** Learn column ranges from `data` (finite values only). */
    void fit(const nn::Matrix &data);

    /** Widen ranges to also cover `data` (for incremental refit). */
    void update(const nn::Matrix &data);

    /** Scale columns into [0, 1]; requires fit() first. */
    nn::Matrix transform(const nn::Matrix &data) const;

    /** Inverse of transform(). */
    nn::Matrix inverseTransform(const nn::Matrix &data) const;

    /** Scalar denormalization for column `col`. */
    double inverseValue(double normalized, size_t col) const;

    /** Scalar normalization for column `col`. */
    double value(double raw, size_t col) const;

    bool fitted() const { return !mins_.empty(); }
    size_t columns() const { return mins_.size(); }
    double columnMin(size_t col) const { return mins_.at(col); }
    double columnMax(size_t col) const { return maxs_.at(col); }

    /** Non-finite inputs rejected by fit/update over this instance's
     *  lifetime (copies inherit the count at copy time). */
    uint64_t rejectedNonFinite() const { return rejectedNonFinite_; }

    /** Restore previously learned ranges (checkpoint restore). */
    void
    restore(std::vector<double> mins, std::vector<double> maxs)
    {
        mins_ = std::move(mins);
        maxs_ = std::move(maxs);
    }

  private:
    std::vector<double> mins_;
    std::vector<double> maxs_;
    uint64_t rejectedNonFinite_ = 0;
};

} // namespace trace
} // namespace geo

#endif // GEO_TRACE_NORMALIZER_HH
