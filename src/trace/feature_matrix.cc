#include "trace/feature_matrix.hh"

#include "util/logging.hh"
#include "util/smoothing.hh"

namespace geo {
namespace trace {

nn::Matrix
buildFeatureMatrix(const std::vector<AccessRecord> &records,
                   const std::vector<std::string> &features)
{
    if (records.empty() || features.empty())
        panic("buildFeatureMatrix: empty records or feature list");
    nn::Matrix out(records.size(), features.size());
    for (size_t r = 0; r < records.size(); ++r)
        for (size_t c = 0; c < features.size(); ++c)
            out.at(r, c) = accessFeature(records[r], features[c]);
    return out;
}

nn::Matrix
buildThroughputTargets(const std::vector<AccessRecord> &records)
{
    nn::Matrix out(records.size(), 1);
    for (size_t r = 0; r < records.size(); ++r)
        out.at(r, 0) = records[r].throughput();
    return out;
}

double
PreparedData::denormalizeTarget(double normalized) const
{
    if (!targetNorm.fitted())
        return normalized;
    return targetNorm.inverseValue(normalized, 0);
}

PreparedData
prepareDataset(const std::vector<AccessRecord> &records,
               const std::vector<std::string> &features,
               const PrepareOptions &options)
{
    if (options.window == 0)
        panic("prepareDataset: window must be >= 1");
    if (records.size() < options.window)
        panic("prepareDataset: %zu records < window %zu", records.size(),
              options.window);

    PreparedData prepared;

    nn::Matrix feats = buildFeatureMatrix(records, features);

    // Smooth the target series to remove outliers (Section V-E).
    std::vector<double> tp;
    tp.reserve(records.size());
    for (const AccessRecord &rec : records)
        tp.push_back(rec.throughput());
    if (options.smoothingWindow > 1)
        tp = movingAverage(tp, options.smoothingWindow);
    nn::Matrix targets(records.size(), 1);
    for (size_t r = 0; r < records.size(); ++r)
        targets.at(r, 0) = tp[r];

    if (options.normalize) {
        prepared.featureNorm.fit(feats);
        feats = prepared.featureNorm.transform(feats);
        prepared.targetNorm.fit(targets);
        targets = prepared.targetNorm.transform(targets);
    }

    size_t w = options.window;
    size_t rows = records.size() - w + 1;
    nn::Matrix inputs(rows, feats.cols() * w);
    nn::Matrix aligned(rows, 1);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t t = 0; t < w; ++t)
            inputs.setBlock(r, t * feats.cols(), feats.row(r + t));
        aligned.at(r, 0) = targets.at(r + w - 1, 0);
    }

    prepared.dataset.inputs = std::move(inputs);
    prepared.dataset.targets = std::move(aligned);
    return prepared;
}

} // namespace trace
} // namespace geo
