/**
 * @file
 * Correlation-driven feature screening (paper Section V-D, Fig. 4).
 *
 * Computes the Pearson correlation of every numeric access feature
 * against the measured throughput and ranks them. The paper selects the
 * six features that are both reasonably correlated and "commonly found
 * in scientific systems": rb, wb, open/close timestamps, fid and fsid.
 */

#ifndef GEO_TRACE_FEATURE_SELECT_HH
#define GEO_TRACE_FEATURE_SELECT_HH

#include <string>
#include <vector>

#include "trace/access_record.hh"

namespace geo {
namespace trace {

/** Correlation of one feature against throughput. */
struct FeatureCorrelation
{
    std::string name;
    double correlation = 0.0;
    bool chosen = false; ///< one of the paper's six selected features
};

/** The paper's six live-experiment features (Z = 6). */
const std::vector<std::string> &paperSelectedFeatures();

/** The wider 13-feature set used for the CERN EOS configuration. */
const std::vector<std::string> &cernFeatureSet();

/**
 * Pearson correlation of every feature vs throughput, sorted by
 * descending correlation. Features in `chosen` are flagged.
 */
std::vector<FeatureCorrelation> correlateFeatures(
    const std::vector<AccessRecord> &records,
    const std::vector<std::string> &chosen = paperSelectedFeatures());

/**
 * Select the `k` features with the largest |correlation|.
 */
std::vector<std::string> selectTopFeatures(
    const std::vector<AccessRecord> &records, size_t k);

} // namespace trace
} // namespace geo

#endif // GEO_TRACE_FEATURE_SELECT_HH
