#include "trace/feature_select.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stats.hh"

namespace geo {
namespace trace {

const std::vector<std::string> &
paperSelectedFeatures()
{
    // rb, wb, open and close timestamps, file ID and filesystem ID:
    // the six features of Section V-D (ms parts folded into the
    // fractional timestamps by the feature-matrix builder).
    static const std::vector<std::string> features = {
        "rb", "wb", "ots", "cts", "fid", "fsid",
    };
    return features;
}

const std::vector<std::string> &
cernFeatureSet()
{
    // The 13-metric configuration used when modeling the CERN EOS logs.
    static const std::vector<std::string> features = {
        "rb",   "wb",     "ots",     "otms",   "cts",  "ctms", "fid",
        "fsid", "nrc",    "nwc",     "secapp", "td",   "osize",
    };
    return features;
}

std::vector<FeatureCorrelation>
correlateFeatures(const std::vector<AccessRecord> &records,
                  const std::vector<std::string> &chosen)
{
    if (records.empty())
        panic("correlateFeatures: no records");
    std::vector<double> throughput;
    throughput.reserve(records.size());
    for (const AccessRecord &rec : records)
        throughput.push_back(rec.throughput());

    std::vector<FeatureCorrelation> result;
    for (const std::string &name : accessFeatureNames()) {
        std::vector<double> values;
        values.reserve(records.size());
        for (const AccessRecord &rec : records)
            values.push_back(accessFeature(rec, name));
        FeatureCorrelation fc;
        fc.name = name;
        fc.correlation = pearson(values, throughput);
        fc.chosen = std::find(chosen.begin(), chosen.end(), name) !=
                    chosen.end();
        result.push_back(std::move(fc));
    }
    std::sort(result.begin(), result.end(),
              [](const FeatureCorrelation &a, const FeatureCorrelation &b) {
                  return a.correlation > b.correlation;
              });
    return result;
}

std::vector<std::string>
selectTopFeatures(const std::vector<AccessRecord> &records, size_t k)
{
    std::vector<FeatureCorrelation> all =
        correlateFeatures(records, {});
    std::sort(all.begin(), all.end(),
              [](const FeatureCorrelation &a, const FeatureCorrelation &b) {
                  return std::abs(a.correlation) > std::abs(b.correlation);
              });
    std::vector<std::string> names;
    for (size_t i = 0; i < std::min(k, all.size()); ++i)
        names.push_back(all[i].name);
    return names;
}

} // namespace trace
} // namespace geo
