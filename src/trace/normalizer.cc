#include "trace/normalizer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace geo {
namespace trace {

void
MinMaxNormalizer::fit(const nn::Matrix &data)
{
    mins_.clear();
    maxs_.clear();
    update(data);
}

void
MinMaxNormalizer::update(const nn::Matrix &data)
{
    if (data.rows() == 0)
        panic("MinMaxNormalizer: empty data");
    if (mins_.empty()) {
        mins_.assign(data.cols(), 0.0);
        maxs_.assign(data.cols(), 0.0);
        for (size_t c = 0; c < data.cols(); ++c) {
            mins_[c] = data.at(0, c);
            maxs_[c] = data.at(0, c);
        }
    } else if (mins_.size() != data.cols()) {
        panic("MinMaxNormalizer: %zu columns, fitted with %zu", data.cols(),
              mins_.size());
    }
    for (size_t r = 0; r < data.rows(); ++r) {
        for (size_t c = 0; c < data.cols(); ++c) {
            mins_[c] = std::min(mins_[c], data.at(r, c));
            maxs_[c] = std::max(maxs_[c], data.at(r, c));
        }
    }
}

nn::Matrix
MinMaxNormalizer::transform(const nn::Matrix &data) const
{
    if (!fitted())
        panic("MinMaxNormalizer::transform before fit");
    if (data.cols() != mins_.size())
        panic("MinMaxNormalizer::transform: %zu columns, fitted with %zu",
              data.cols(), mins_.size());
    nn::Matrix out = data;
    for (size_t r = 0; r < data.rows(); ++r)
        for (size_t c = 0; c < data.cols(); ++c)
            out.at(r, c) = value(data.at(r, c), c);
    return out;
}

nn::Matrix
MinMaxNormalizer::inverseTransform(const nn::Matrix &data) const
{
    if (!fitted())
        panic("MinMaxNormalizer::inverseTransform before fit");
    if (data.cols() != mins_.size())
        panic("MinMaxNormalizer::inverseTransform: %zu columns, "
              "fitted with %zu", data.cols(), mins_.size());
    nn::Matrix out = data;
    for (size_t r = 0; r < data.rows(); ++r)
        for (size_t c = 0; c < data.cols(); ++c)
            out.at(r, c) = inverseValue(data.at(r, c), c);
    return out;
}

double
MinMaxNormalizer::value(double raw, size_t col) const
{
    double lo = mins_.at(col);
    double hi = maxs_.at(col);
    if (hi <= lo)
        return 0.5;
    double v = (raw - lo) / (hi - lo);
    return std::clamp(v, 0.0, 1.0);
}

double
MinMaxNormalizer::inverseValue(double normalized, size_t col) const
{
    double lo = mins_.at(col);
    double hi = maxs_.at(col);
    if (hi <= lo)
        return lo;
    return lo + normalized * (hi - lo);
}

} // namespace trace
} // namespace geo
