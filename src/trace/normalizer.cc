#include "trace/normalizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace geo {
namespace trace {

void
MinMaxNormalizer::fit(const nn::Matrix &data)
{
    mins_.clear();
    maxs_.clear();
    update(data);
}

void
MinMaxNormalizer::update(const nn::Matrix &data)
{
    if (data.rows() == 0)
        panic("MinMaxNormalizer: empty data");
    if (mins_.empty()) {
        // Seed with the fold identities so the first *finite* value of
        // each column establishes its range; folding the finite values
        // below then reproduces the plain min/max bit for bit. Seeding
        // from row 0 unconditionally (the old behavior) let a single
        // NaN poison the column range for the rest of the run: every
        // later min/max fold against NaN is NaN.
        mins_.assign(data.cols(),
                     std::numeric_limits<double>::infinity());
        maxs_.assign(data.cols(),
                     -std::numeric_limits<double>::infinity());
    } else if (mins_.size() != data.cols()) {
        panic("MinMaxNormalizer: %zu columns, fitted with %zu", data.cols(),
              mins_.size());
    }
    for (size_t r = 0; r < data.rows(); ++r) {
        for (size_t c = 0; c < data.cols(); ++c) {
            double v = data.at(r, c);
            if (!std::isfinite(v)) {
                ++rejectedNonFinite_;
                continue;
            }
            mins_[c] = std::min(mins_[c], v);
            maxs_[c] = std::max(maxs_[c], v);
        }
    }
}

nn::Matrix
MinMaxNormalizer::transform(const nn::Matrix &data) const
{
    if (!fitted())
        panic("MinMaxNormalizer::transform before fit");
    if (data.cols() != mins_.size())
        panic("MinMaxNormalizer::transform: %zu columns, fitted with %zu",
              data.cols(), mins_.size());
    nn::Matrix out = data;
    for (size_t r = 0; r < data.rows(); ++r)
        for (size_t c = 0; c < data.cols(); ++c)
            out.at(r, c) = value(data.at(r, c), c);
    return out;
}

nn::Matrix
MinMaxNormalizer::inverseTransform(const nn::Matrix &data) const
{
    if (!fitted())
        panic("MinMaxNormalizer::inverseTransform before fit");
    if (data.cols() != mins_.size())
        panic("MinMaxNormalizer::inverseTransform: %zu columns, "
              "fitted with %zu", data.cols(), mins_.size());
    nn::Matrix out = data;
    for (size_t r = 0; r < data.rows(); ++r)
        for (size_t c = 0; c < data.cols(); ++c)
            out.at(r, c) = inverseValue(data.at(r, c), c);
    return out;
}

double
MinMaxNormalizer::value(double raw, size_t col) const
{
    double lo = mins_.at(col);
    double hi = maxs_.at(col);
    if (hi <= lo)
        return 0.5;
    double v = (raw - lo) / (hi - lo);
    return std::clamp(v, 0.0, 1.0);
}

double
MinMaxNormalizer::inverseValue(double normalized, size_t col) const
{
    double lo = mins_.at(col);
    double hi = maxs_.at(col);
    if (hi <= lo)
        return lo;
    return lo + normalized * (hi - lo);
}

} // namespace trace
} // namespace geo
