/**
 * @file
 * Categorical file-path encoding (paper Section V-E).
 *
 * Each path component gets an index from a shared first-seen-order
 * dictionary, and the per-level indices are combined positionally into
 * one number, so paths sharing a prefix get numerically close codes
 * ("a sense of locality"). The paper rejects inodes (reuse hazards)
 * and hashes (no locality) for this reason; its worked example is
 * foo/bar/bat.root -> 123 with foo=1, bar=2, bat=3.
 */

#ifndef GEO_TRACE_PATH_ENCODER_HH
#define GEO_TRACE_PATH_ENCODER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace geo {
namespace trace {

/**
 * Stateful path -> numeric code encoder.
 *
 * Component indices start at 1 and are assigned in first-seen order
 * from a single dictionary shared by all levels (matching the paper's
 * example). Codes pack one level per `radix` slot, so they are
 * decodable and prefix-ordered as long as fewer than radix distinct
 * component names exist.
 */
class PathEncoder
{
  public:
    /** @param radix per-level code space (default 1000 names). */
    explicit PathEncoder(uint64_t radix = 1000);

    /**
     * Encode a path, assigning new indices for unseen components.
     * Leading/trailing/duplicate slashes are ignored.
     */
    uint64_t encode(const std::string &path);

    /**
     * Encode without mutating the dictionary.
     * @return the code, or 0 if any component is unknown.
     */
    uint64_t encodeReadOnly(const std::string &path) const;

    /** Decode a code back to a path (inverse of encode). */
    std::string decode(uint64_t code) const;

    /** Number of distinct component names seen so far. */
    size_t dictionarySize() const { return toName_.size(); }

    uint64_t radix() const { return radix_; }

    /** Split a path into components, ignoring empty ones. */
    static std::vector<std::string> splitPath(const std::string &path);

  private:
    uint64_t radix_;
    std::map<std::string, uint64_t> toIndex_;
    std::vector<std::string> toName_; ///< index-1 -> name
};

} // namespace trace
} // namespace geo

#endif // GEO_TRACE_PATH_ENCODER_HH
