#include "trace/access_record.hh"

#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace geo {
namespace trace {

double
AccessRecord::openTime() const
{
    return static_cast<double>(ots) + static_cast<double>(otms) / 1000.0;
}

double
AccessRecord::closeTime() const
{
    return static_cast<double>(cts) + static_cast<double>(ctms) / 1000.0;
}

double
AccessRecord::duration() const
{
    return closeTime() - openTime();
}

double
AccessRecord::throughput() const
{
    double dt = duration();
    if (dt <= 0.0)
        return 0.0;
    return static_cast<double>(rb + wb) / dt;
}

std::vector<std::string>
accessFeatureNames()
{
    return {"fid",  "fsid",  "rb",      "wb",      "ots",    "otms",
            "cts",  "ctms",  "rt",      "wt",      "nrc",    "nwc",
            "secgrps", "secrole", "secapp", "td",   "osize",  "csize"};
}

double
accessFeature(const AccessRecord &rec, const std::string &name)
{
    if (name == "fid")
        return static_cast<double>(rec.fid);
    if (name == "fsid")
        return static_cast<double>(rec.fsid);
    if (name == "rb")
        return static_cast<double>(rec.rb);
    if (name == "wb")
        return static_cast<double>(rec.wb);
    if (name == "ots")
        return static_cast<double>(rec.ots);
    if (name == "otms")
        return static_cast<double>(rec.otms);
    if (name == "cts")
        return static_cast<double>(rec.cts);
    if (name == "ctms")
        return static_cast<double>(rec.ctms);
    if (name == "rt")
        return rec.rt;
    if (name == "wt")
        return rec.wt;
    if (name == "nrc")
        return static_cast<double>(rec.nrc);
    if (name == "nwc")
        return static_cast<double>(rec.nwc);
    if (name == "secgrps")
        return static_cast<double>(rec.secgrps);
    if (name == "secrole")
        return static_cast<double>(rec.secrole);
    if (name == "secapp")
        return static_cast<double>(rec.secapp);
    if (name == "td")
        return static_cast<double>(rec.td);
    if (name == "osize")
        return static_cast<double>(rec.osize);
    if (name == "csize")
        return static_cast<double>(rec.csize);
    panic("accessFeature: unknown feature '%s'", name.c_str());
}

std::string
recordsToCsv(const std::vector<AccessRecord> &records)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeRow({"fid", "fsid", "path", "rb", "wb", "ots", "otms",
                     "cts", "ctms", "rt", "wt", "nrc", "nwc", "secgrps",
                     "secrole", "secapp", "td", "osize", "csize"});
    for (const AccessRecord &r : records) {
        writer.writeRow({
            std::to_string(r.fid), std::to_string(r.fsid), r.path,
            std::to_string(r.rb), std::to_string(r.wb),
            std::to_string(r.ots), std::to_string(r.otms),
            std::to_string(r.cts), std::to_string(r.ctms),
            strprintf("%.6f", r.rt), strprintf("%.6f", r.wt),
            std::to_string(r.nrc), std::to_string(r.nwc),
            std::to_string(r.secgrps), std::to_string(r.secrole),
            std::to_string(r.secapp), std::to_string(r.td),
            std::to_string(r.osize), std::to_string(r.csize),
        });
    }
    return os.str();
}

std::vector<AccessRecord>
recordsFromCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows = parseCsv(text);
    std::vector<AccessRecord> records;
    if (rows.empty())
        return records;
    constexpr size_t kColumns = 19;
    for (size_t i = 1; i < rows.size(); ++i) { // skip header
        const auto &row = rows[i];
        if (row.size() != kColumns) {
            warn("recordsFromCsv: row %zu has %zu fields, expected %zu",
                 i, row.size(), kColumns);
            continue;
        }
        AccessRecord r;
        size_t c = 0;
        r.fid = std::stoull(row[c++]);
        r.fsid = static_cast<uint32_t>(std::stoul(row[c++]));
        r.path = row[c++];
        r.rb = std::stoull(row[c++]);
        r.wb = std::stoull(row[c++]);
        r.ots = std::stoll(row[c++]);
        r.otms = std::stoll(row[c++]);
        r.cts = std::stoll(row[c++]);
        r.ctms = std::stoll(row[c++]);
        r.rt = std::stod(row[c++]);
        r.wt = std::stod(row[c++]);
        r.nrc = static_cast<uint32_t>(std::stoul(row[c++]));
        r.nwc = static_cast<uint32_t>(std::stoul(row[c++]));
        r.secgrps = static_cast<uint32_t>(std::stoul(row[c++]));
        r.secrole = static_cast<uint32_t>(std::stoul(row[c++]));
        r.secapp = static_cast<uint32_t>(std::stoul(row[c++]));
        r.td = static_cast<uint32_t>(std::stoul(row[c++]));
        r.osize = std::stoull(row[c++]);
        r.csize = std::stoull(row[c++]);
        records.push_back(std::move(r));
    }
    return records;
}

} // namespace trace
} // namespace geo
