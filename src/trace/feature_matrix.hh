/**
 * @file
 * Assembly of training matrices from access records.
 *
 * This is the Interface Daemon's data-preparation pipeline (paper
 * Section V-E): select features, smooth the target throughput with a
 * moving average, normalize everything to [0, 1], and (for recurrent
 * models) concatenate a sliding window of past accesses per row.
 */

#ifndef GEO_TRACE_FEATURE_MATRIX_HH
#define GEO_TRACE_FEATURE_MATRIX_HH

#include <string>
#include <vector>

#include "nn/dataset.hh"
#include "trace/access_record.hh"
#include "trace/normalizer.hh"

namespace geo {
namespace trace {

/** Options for dataset preparation. */
struct PrepareOptions
{
    /** Sliding-window length; 1 = plain per-access rows (dense models),
     *  > 1 = concatenated past accesses (recurrent models). */
    size_t window = 1;

    /** Moving-average window applied to the target throughput series
     *  (paper Section V-E); 1 disables smoothing. */
    size_t smoothingWindow = 8;

    /** Normalize features and targets to [0, 1]. */
    bool normalize = true;
};

/**
 * A dataset plus the normalizers needed to interpret predictions.
 */
struct PreparedData
{
    nn::Dataset dataset;
    MinMaxNormalizer featureNorm; ///< fitted over single-access columns
    MinMaxNormalizer targetNorm;  ///< fitted over the throughput column

    /** Denormalize a predicted target back to bytes/s. */
    double denormalizeTarget(double normalized) const;
};

/**
 * Raw feature matrix: one row per record, one column per feature name.
 */
nn::Matrix buildFeatureMatrix(const std::vector<AccessRecord> &records,
                              const std::vector<std::string> &features);

/** Raw throughput column (records.size() x 1). */
nn::Matrix buildThroughputTargets(const std::vector<AccessRecord> &records);

/**
 * Full pipeline: features -> smoothing -> normalization -> windowing.
 *
 * With window W, row i of the result covers records [i, i+W) and its
 * target is the (smoothed) throughput of record i+W-1; the dataset has
 * records.size() - W + 1 rows.
 */
PreparedData prepareDataset(const std::vector<AccessRecord> &records,
                            const std::vector<std::string> &features,
                            const PrepareOptions &options = {});

} // namespace trace
} // namespace geo

#endif // GEO_TRACE_FEATURE_MATRIX_HH
