/**
 * @file
 * Synthetic CERN-EOS-style access trace generator.
 *
 * The paper uses EOS production logs (not redistributable) to discover
 * which access features correlate with throughput (Fig. 4) and to size
 * the network. This generator substitutes a causal model that produces
 * the same correlation structure:
 *
 *  - each storage device (fsid) has a base bandwidth and a diurnal +
 *    bursty external load, so time-of-day correlates with throughput;
 *  - accesses pay a fixed open/close overhead, so larger transfers
 *    (rb/wb) amortize it better and correlate positively;
 *  - read/write times (rt/wt) are the duration itself, hence strongly
 *    negatively correlated with throughput;
 *  - file and filesystem IDs, security fields and the day tag are
 *    incidental, hence weakly correlated.
 */

#ifndef GEO_TRACE_EOS_TRACE_GEN_HH
#define GEO_TRACE_EOS_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/access_record.hh"
#include "util/random.hh"

namespace geo {
namespace trace {

/** Configuration of the synthetic EOS cluster. */
struct EosTraceConfig
{
    size_t deviceCount = 12;      ///< number of fsids
    size_t fileCount = 400;       ///< catalog size
    size_t directoryCount = 24;   ///< distinct path prefixes
    double meanInterArrival = 0.4;///< seconds between opens
    double readFraction = 0.85;   ///< fraction of accesses that read
    double openOverhead = 0.020;  ///< fixed per-access seconds
    double minBandwidth = 80e6;   ///< slowest device, bytes/s
    double maxBandwidth = 2.4e9;  ///< fastest device, bytes/s
    double fileSizeLogMean = 17.5;///< lognormal mu (≈ 40 MB median)
    double fileSizeLogSigma = 1.6;
    double diurnalAmplitude = 0.6;///< strength of time-of-day load
    double burstProbability = 0.02; ///< chance an access hits a burst
    double burstSlowdown = 6.0;   ///< load multiplier during a burst
    uint64_t seed = 42;
};

/**
 * Generator of EOS-style access records with realistic correlations.
 */
class EosTraceGenerator
{
  public:
    explicit EosTraceGenerator(const EosTraceConfig &config);

    /** Generate `count` records in open-time order. */
    std::vector<AccessRecord> generate(size_t count);

    /** The catalog path of file `fid` (1-based fids). */
    const std::string &filePath(uint64_t fid) const;

    const EosTraceConfig &config() const { return config_; }

  private:
    struct FileInfo
    {
        std::string path;
        uint64_t sizeBytes;
        uint32_t homeDevice; ///< fsid
        uint32_t appClass;   ///< drives secapp and access mix
    };

    EosTraceConfig config_;
    Rng rng_;
    std::vector<double> deviceBandwidth_; ///< per-fsid base bytes/s
    std::vector<double> devicePhase_;     ///< diurnal phase offset
    std::vector<FileInfo> files_;
    double now_ = 0.0;

    /** Instantaneous external load factor (>= 0) on a device. */
    double deviceLoad(uint32_t fsid, double at) const;
};

} // namespace trace
} // namespace geo

#endif // GEO_TRACE_EOS_TRACE_GEN_HH
