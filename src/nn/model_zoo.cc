#include "nn/model_zoo.hh"

#include "nn/dense_layer.hh"
#include "nn/gru_layer.hh"
#include "nn/lstm_layer.hh"
#include "nn/simple_rnn_layer.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

namespace {

/** One layer in a zoo recipe. */
struct LayerSpec
{
    enum class Kind { Dense, SimpleRnn, Lstm, Gru };
    Kind kind;
    size_t units;   ///< multiplier of Z, or absolute when zTimes == false
    bool zTimes;    ///< units is a multiple of Z
    Activation act;
};

LayerSpec
dense(size_t mult, Activation act)
{
    return {LayerSpec::Kind::Dense, mult, true, act};
}

LayerSpec
denseOut(Activation act)
{
    return {LayerSpec::Kind::Dense, 1, false, act};
}

LayerSpec
rnn(LayerSpec::Kind kind, size_t mult, Activation act)
{
    return {kind, mult, true, act};
}

/** The 23 recipes of Table I. */
std::vector<LayerSpec>
recipe(int number)
{
    using K = LayerSpec::Kind;
    const Activation relu = Activation::ReLU;
    const Activation lin = Activation::Linear;
    switch (number) {
      case 1:
        return {dense(16, relu), dense(8, relu), dense(4, relu),
                denseOut(lin)};
      case 2:
        return {dense(16, relu), dense(8, relu), denseOut(relu)};
      case 3:
        return {dense(16, relu), dense(8, relu), dense(4, relu),
                denseOut(relu)};
      case 4:
        return {dense(16, relu), dense(8, relu), denseOut(lin)};
      case 5:
        return {dense(16, lin), dense(8, lin), dense(4, lin), dense(1, lin),
                denseOut(relu)};
      case 6:
        return {dense(16, relu), dense(16, relu), dense(16, relu),
                dense(16, relu), denseOut(relu)};
      case 7:
        return {dense(16, relu), dense(16, relu), dense(16, relu),
                dense(16, relu), dense(16, relu), denseOut(relu)};
      case 8:
        // Table I prints models 8 and 9 identically; we give 8 the
        // deeper stack (5 hidden layers) to match its larger reported
        // training time.
        return {dense(1, relu), dense(1, relu), dense(1, relu),
                dense(1, relu), dense(1, relu), denseOut(relu)};
      case 9:
        return {dense(1, relu), dense(1, relu), dense(1, relu),
                dense(1, relu), denseOut(relu)};
      case 10:
        // Models 10/11 also print identically; 10 gets the extra hidden
        // layer for the same reason.
        return {dense(1, relu), dense(1, relu), denseOut(lin)};
      case 11:
        return {dense(1, relu), denseOut(lin)};
      case 12:
        return {rnn(K::Lstm, 1, relu), denseOut(lin)};
      case 13:
        return {rnn(K::Gru, 1, relu), denseOut(lin)};
      case 14:
        return {rnn(K::SimpleRnn, 1, relu), denseOut(lin)};
      case 15:
        return {rnn(K::Gru, 1, relu), dense(1, relu), denseOut(lin)};
      case 16:
        return {rnn(K::Gru, 1, relu), dense(1, relu), dense(1, relu),
                denseOut(lin)};
      case 17:
        return {rnn(K::Gru, 1, relu), dense(4, relu), dense(1, relu),
                denseOut(lin)};
      case 18:
        return {rnn(K::SimpleRnn, 1, relu), dense(4, relu), dense(1, relu),
                denseOut(lin)};
      case 19:
        return {rnn(K::SimpleRnn, 1, relu), dense(1, relu), dense(1, relu),
                dense(1, relu), denseOut(lin)};
      case 20:
        return {rnn(K::SimpleRnn, 1, relu), dense(1, relu), denseOut(lin)};
      case 21:
        return {rnn(K::Lstm, 1, relu), dense(1, relu), denseOut(lin)};
      case 22:
        return {rnn(K::Lstm, 1, relu), dense(1, relu), dense(1, relu),
                denseOut(lin)};
      case 23:
        return {rnn(K::Lstm, 1, relu), dense(4, relu), dense(1, relu),
                denseOut(lin)};
      default:
        panic("modelSpec: model number %d out of 1..%d", number,
              kModelZooSize);
    }
}

std::string
kindName(LayerSpec::Kind kind)
{
    switch (kind) {
      case LayerSpec::Kind::Dense:
        return "Dense";
      case LayerSpec::Kind::SimpleRnn:
        return "SimpleRNN";
      case LayerSpec::Kind::Lstm:
        return "LSTM";
      case LayerSpec::Kind::Gru:
        return "GRU";
    }
    panic("unknown layer kind");
}

} // namespace

ModelSpec
modelSpec(int number, size_t z)
{
    std::vector<LayerSpec> layers = recipe(number);
    ModelSpec spec;
    spec.number = number;
    spec.recurrent = layers.front().kind != LayerSpec::Kind::Dense;
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerSpec &ls = layers[i];
        size_t units = ls.zTimes ? ls.units * z : ls.units;
        if (i)
            spec.components += ", ";
        spec.components += strprintf(
            "%zu (%s) %s", units, kindName(ls.kind).c_str(),
            ls.act == Activation::ReLU ? "ReLU" : "Linear");
    }
    return spec;
}

std::vector<ModelSpec>
allModelSpecs(size_t z)
{
    std::vector<ModelSpec> specs;
    specs.reserve(kModelZooSize);
    for (int i = 1; i <= kModelZooSize; ++i)
        specs.push_back(modelSpec(i, z));
    return specs;
}

size_t
modelInputWidth(int number, size_t z, size_t timesteps)
{
    return modelSpec(number, z).recurrent ? z * timesteps : z;
}

Sequential
buildModel(int number, size_t z, Rng &rng, size_t timesteps)
{
    if (z == 0)
        panic("buildModel: z must be >= 1");
    std::vector<LayerSpec> layers = recipe(number);
    Sequential model;
    size_t width = 0; // input width of the next layer
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerSpec &ls = layers[i];
        size_t units = ls.zTimes ? ls.units * z : ls.units;
        switch (ls.kind) {
          case LayerSpec::Kind::Dense:
            if (i == 0)
                width = z;
            model.add(std::make_unique<DenseLayer>(width, units, ls.act,
                                                   rng));
            break;
          case LayerSpec::Kind::SimpleRnn:
            if (i != 0)
                panic("buildModel: recurrent layer must be first");
            model.add(std::make_unique<SimpleRnnLayer>(z, timesteps, units,
                                                       ls.act, rng));
            break;
          case LayerSpec::Kind::Lstm:
            if (i != 0)
                panic("buildModel: recurrent layer must be first");
            model.add(std::make_unique<LstmLayer>(z, timesteps, units,
                                                  ls.act, rng));
            break;
          case LayerSpec::Kind::Gru:
            if (i != 0)
                panic("buildModel: recurrent layer must be first");
            model.add(std::make_unique<GruLayer>(z, timesteps, units, ls.act,
                                                 rng));
            break;
        }
        width = units;
    }
    return model;
}

} // namespace nn
} // namespace geo
