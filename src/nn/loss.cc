#include "nn/loss.hh"

#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace nn {

namespace {

void
checkShapes(const Matrix &a, const Matrix &b, const char *who)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        panic("%s: shape mismatch %zux%zu vs %zux%zu", who, a.rows(),
              a.cols(), b.rows(), b.cols());
    if (a.size() == 0)
        panic("%s: empty batch", who);
}

} // namespace

double
MseLoss::value(const Matrix &predictions, const Matrix &targets)
{
    checkShapes(predictions, targets, "MseLoss::value");
    double total = 0.0;
    for (size_t i = 0; i < predictions.size(); ++i) {
        double d = predictions.data()[i] - targets.data()[i];
        total += d * d;
    }
    return total / static_cast<double>(predictions.size());
}

Matrix
MseLoss::gradient(const Matrix &predictions, const Matrix &targets)
{
    checkShapes(predictions, targets, "MseLoss::gradient");
    Matrix grad = predictions - targets;
    grad *= 2.0 / static_cast<double>(predictions.size());
    return grad;
}

void
MseLoss::gradientInto(const Matrix &predictions, const Matrix &targets,
                      Matrix &out)
{
    checkShapes(predictions, targets, "MseLoss::gradientInto");
    out.reshape(predictions.rows(), predictions.cols());
    const double scale = 2.0 / static_cast<double>(predictions.size());
    // Per element: subtract, then scale — the same two operations in
    // the same order as the allocating variant, so bit-identical.
    for (size_t i = 0; i < predictions.size(); ++i)
        out.data()[i] =
            (predictions.data()[i] - targets.data()[i]) * scale;
}

double
MaeLoss::value(const Matrix &predictions, const Matrix &targets)
{
    checkShapes(predictions, targets, "MaeLoss::value");
    double total = 0.0;
    for (size_t i = 0; i < predictions.size(); ++i)
        total += std::fabs(predictions.data()[i] - targets.data()[i]);
    return total / static_cast<double>(predictions.size());
}

} // namespace nn
} // namespace geo
