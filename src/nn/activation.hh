/**
 * @file
 * Activation functions for the neural-network layers.
 *
 * The paper's model zoo (Table I) uses ReLU and Linear; the recurrent
 * gates additionally need Sigmoid, and Tanh is provided for completeness
 * and ablations.
 */

#ifndef GEO_NN_ACTIVATION_HH
#define GEO_NN_ACTIVATION_HH

#include <string>

#include "nn/matrix.hh"

namespace geo {
namespace nn {

/** Supported activation functions. */
enum class Activation {
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
};

/** Short lowercase name ("relu", "linear", ...). */
std::string activationName(Activation act);

/** Parse an activation name; panics on unknown names. */
Activation activationFromName(const std::string &name);

/** Apply the activation elementwise. */
Matrix applyActivation(Activation act, const Matrix &input);

/** Apply the activation in place (no temporary matrix). */
void applyActivationInPlace(Activation act, Matrix &values);

/**
 * Elementwise derivative evaluated from the *pre-activation* values.
 *
 * For ReLU this is 1 where input > 0; the subgradient at exactly 0 is
 * taken as 0, matching the common convention.
 */
Matrix activationDerivative(Activation act, const Matrix &pre_activation);

/** activationDerivative computed into `out` (reshaped first) — the
 *  allocation-free variant used by the training hot path. */
void activationDerivativeInto(Activation act, const Matrix &pre_activation,
                              Matrix &out);

/** Scalar forms (used by the streaming predictors and tests). */
double activate(Activation act, double x);
double activateDerivative(Activation act, double x);

} // namespace nn
} // namespace geo

#endif // GEO_NN_ACTIVATION_HH
