/**
 * @file
 * Supervised datasets and the paper's 60/20/20 chronological split.
 */

#ifndef GEO_NN_DATASET_HH
#define GEO_NN_DATASET_HH

#include <cstddef>

#include "nn/matrix.hh"

namespace geo {
namespace nn {

/**
 * A supervised dataset: one input row per example, aligned targets.
 */
struct Dataset
{
    Matrix inputs;  ///< examples x features
    Matrix targets; ///< examples x outputs (usually 1)

    size_t size() const { return inputs.rows(); }
    bool empty() const { return inputs.rows() == 0; }

    /** Row slice [begin, end) of both inputs and targets. */
    Dataset slice(size_t begin, size_t end) const;
};

/**
 * Train / validation / test partition.
 */
struct DataSplit
{
    Dataset train;
    Dataset validation;
    Dataset test;
};

/**
 * Split chronologically: first `train_frac` for training, next
 * `val_frac` for validation, rest for testing. The paper uses 60/20/20
 * with no shuffling (throughput modeling is a time-series problem, so
 * training on the past and testing on the future is the honest split).
 */
DataSplit chronologicalSplit(const Dataset &data, double train_frac = 0.6,
                             double val_frac = 0.2);

} // namespace nn
} // namespace geo

#endif // GEO_NN_DATASET_HH
