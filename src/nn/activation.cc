#include "nn/activation.hh"

#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace nn {

std::string
activationName(Activation act)
{
    switch (act) {
      case Activation::Linear:
        return "linear";
      case Activation::ReLU:
        return "relu";
      case Activation::Sigmoid:
        return "sigmoid";
      case Activation::Tanh:
        return "tanh";
    }
    panic("unknown activation %d", static_cast<int>(act));
}

Activation
activationFromName(const std::string &name)
{
    if (name == "linear")
        return Activation::Linear;
    if (name == "relu")
        return Activation::ReLU;
    if (name == "sigmoid")
        return Activation::Sigmoid;
    if (name == "tanh")
        return Activation::Tanh;
    panic("unknown activation name '%s'", name.c_str());
}

double
activate(Activation act, double x)
{
    switch (act) {
      case Activation::Linear:
        return x;
      case Activation::ReLU:
        return x > 0.0 ? x : 0.0;
      case Activation::Sigmoid:
        return 1.0 / (1.0 + std::exp(-x));
      case Activation::Tanh:
        return std::tanh(x);
    }
    panic("unknown activation %d", static_cast<int>(act));
}

double
activateDerivative(Activation act, double x)
{
    switch (act) {
      case Activation::Linear:
        return 1.0;
      case Activation::ReLU:
        return x > 0.0 ? 1.0 : 0.0;
      case Activation::Sigmoid: {
        double s = 1.0 / (1.0 + std::exp(-x));
        return s * (1.0 - s);
      }
      case Activation::Tanh: {
        double t = std::tanh(x);
        return 1.0 - t * t;
      }
    }
    panic("unknown activation %d", static_cast<int>(act));
}

Matrix
applyActivation(Activation act, const Matrix &input)
{
    if (act == Activation::Linear)
        return input;
    return input.map([act](double x) { return activate(act, x); });
}

void
applyActivationInPlace(Activation act, Matrix &values)
{
    switch (act) {
      case Activation::Linear:
        return;
      case Activation::ReLU:
        for (double &x : values.data())
            x = x > 0.0 ? x : 0.0;
        return;
      case Activation::Sigmoid:
        for (double &x : values.data())
            x = 1.0 / (1.0 + std::exp(-x));
        return;
      case Activation::Tanh:
        for (double &x : values.data())
            x = std::tanh(x);
        return;
    }
    panic("unknown activation %d", static_cast<int>(act));
}

Matrix
activationDerivative(Activation act, const Matrix &pre_activation)
{
    if (act == Activation::Linear)
        return Matrix(pre_activation.rows(), pre_activation.cols(), 1.0);
    return pre_activation.map(
        [act](double x) { return activateDerivative(act, x); });
}

} // namespace nn
} // namespace geo
