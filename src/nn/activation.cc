#include "nn/activation.hh"

#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace geo {
namespace nn {

namespace {

/**
 * Two-lane vector ReLU helpers. The scalar select `x > 0 ? x : 0`
 * does not vectorize on baseline x86-64 (no blend before SSE4.1), so
 * the loop retires one branchy element per iteration. A compare mask
 * plus bitwise AND computes the identical result two lanes at a time:
 * x > 0 keeps x's bits, anything else (negatives, -0.0, NaN) yields
 * +0.0 — exactly what the scalar ternary produces.
 */
typedef double v2df __attribute__((vector_size(16), may_alias));
typedef long long v2di __attribute__((vector_size(16), may_alias));

inline void
reluInPlace(double *p, size_t n)
{
    const v2df zero = {0.0, 0.0};
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        v2df x;
        __builtin_memcpy(&x, p + i, sizeof(x));
        const v2di keep = (x > zero);
        x = (v2df)((v2di)x & keep);
        __builtin_memcpy(p + i, &x, sizeof(x));
    }
    for (; i < n; ++i)
        p[i] = p[i] > 0.0 ? p[i] : 0.0;
}

inline void
reluMaskInto(const double *src, double *dst, size_t n)
{
    const v2df zero = {0.0, 0.0};
    const v2df one = {1.0, 1.0};
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        v2df x;
        __builtin_memcpy(&x, src + i, sizeof(x));
        const v2di keep = (x > zero);
        const v2df r = (v2df)((v2di)one & keep);
        __builtin_memcpy(dst + i, &r, sizeof(r));
    }
    for (; i < n; ++i)
        dst[i] = src[i] > 0.0 ? 1.0 : 0.0;
}

} // namespace

std::string
activationName(Activation act)
{
    switch (act) {
      case Activation::Linear:
        return "linear";
      case Activation::ReLU:
        return "relu";
      case Activation::Sigmoid:
        return "sigmoid";
      case Activation::Tanh:
        return "tanh";
    }
    panic("unknown activation %d", static_cast<int>(act));
}

Activation
activationFromName(const std::string &name)
{
    if (name == "linear")
        return Activation::Linear;
    if (name == "relu")
        return Activation::ReLU;
    if (name == "sigmoid")
        return Activation::Sigmoid;
    if (name == "tanh")
        return Activation::Tanh;
    panic("unknown activation name '%s'", name.c_str());
}

double
activate(Activation act, double x)
{
    switch (act) {
      case Activation::Linear:
        return x;
      case Activation::ReLU:
        return x > 0.0 ? x : 0.0;
      case Activation::Sigmoid:
        return 1.0 / (1.0 + std::exp(-x));
      case Activation::Tanh:
        return std::tanh(x);
    }
    panic("unknown activation %d", static_cast<int>(act));
}

double
activateDerivative(Activation act, double x)
{
    switch (act) {
      case Activation::Linear:
        return 1.0;
      case Activation::ReLU:
        return x > 0.0 ? 1.0 : 0.0;
      case Activation::Sigmoid: {
        double s = 1.0 / (1.0 + std::exp(-x));
        return s * (1.0 - s);
      }
      case Activation::Tanh: {
        double t = std::tanh(x);
        return 1.0 - t * t;
      }
    }
    panic("unknown activation %d", static_cast<int>(act));
}

Matrix
applyActivation(Activation act, const Matrix &input)
{
    if (act == Activation::Linear)
        return input;
    return input.map([act](double x) { return activate(act, x); });
}

void
applyActivationInPlace(Activation act, Matrix &values)
{
    switch (act) {
      case Activation::Linear:
        return;
      case Activation::ReLU:
        reluInPlace(values.data().data(), values.size());
        return;
      case Activation::Sigmoid:
        for (double &x : values.data())
            x = 1.0 / (1.0 + std::exp(-x));
        return;
      case Activation::Tanh:
        for (double &x : values.data())
            x = std::tanh(x);
        return;
    }
    panic("unknown activation %d", static_cast<int>(act));
}

Matrix
activationDerivative(Activation act, const Matrix &pre_activation)
{
    if (act == Activation::Linear)
        return Matrix(pre_activation.rows(), pre_activation.cols(), 1.0);
    return pre_activation.map(
        [act](double x) { return activateDerivative(act, x); });
}

void
activationDerivativeInto(Activation act, const Matrix &pre_activation,
                         Matrix &out)
{
    out.reshape(pre_activation.rows(), pre_activation.cols());
    double *dst = out.data().data();
    const double *src = pre_activation.data().data();
    const size_t n = pre_activation.size();
    switch (act) {
      case Activation::Linear:
        for (size_t i = 0; i < n; ++i)
            dst[i] = 1.0;
        return;
      case Activation::ReLU:
        reluMaskInto(src, dst, n);
        return;
      case Activation::Sigmoid:
        for (size_t i = 0; i < n; ++i) {
            const double s = 1.0 / (1.0 + std::exp(-src[i]));
            dst[i] = s * (1.0 - s);
        }
        return;
      case Activation::Tanh:
        for (size_t i = 0; i < n; ++i) {
            const double t = std::tanh(src[i]);
            dst[i] = 1.0 - t * t;
        }
        return;
    }
    panic("unknown activation %d", static_cast<int>(act));
}

} // namespace nn
} // namespace geo
