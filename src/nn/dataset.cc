#include "nn/dataset.hh"

#include "util/logging.hh"

namespace geo {
namespace nn {

Dataset
Dataset::slice(size_t begin, size_t end) const
{
    if (inputs.rows() != targets.rows())
        panic("Dataset::slice: %zu inputs vs %zu targets", inputs.rows(),
              targets.rows());
    Dataset out;
    out.inputs = inputs.rowRange(begin, end);
    out.targets = targets.rowRange(begin, end);
    return out;
}

DataSplit
chronologicalSplit(const Dataset &data, double train_frac, double val_frac)
{
    if (train_frac <= 0.0 || val_frac < 0.0 ||
        train_frac + val_frac >= 1.0) {
        panic("chronologicalSplit: bad fractions %f / %f", train_frac,
              val_frac);
    }
    size_t n = data.size();
    size_t train_end = static_cast<size_t>(
        static_cast<double>(n) * train_frac);
    size_t val_end = static_cast<size_t>(
        static_cast<double>(n) * (train_frac + val_frac));
    DataSplit split;
    split.train = data.slice(0, train_end);
    split.validation = data.slice(train_end, val_end);
    split.test = data.slice(val_end, n);
    return split;
}

} // namespace nn
} // namespace geo
