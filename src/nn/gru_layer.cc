#include "nn/gru_layer.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

GruLayer::GruLayer(size_t features_per_step, size_t timesteps,
                   size_t hidden_size, Activation act, Rng &rng)
    : features_(features_per_step), timesteps_(timesteps),
      hidden_(hidden_size), act_(act)
{
    if (features_ == 0 || timesteps_ == 0 || hidden_ == 0)
        panic("GruLayer: zero dimension (%zu, %zu, %zu)", features_,
              timesteps_, hidden_);
    for (Matrix *w : {&wu_, &wr_, &wn_}) {
        *w = Matrix(features_, hidden_);
        w->fillXavierUniform(rng, features_, hidden_);
    }
    for (Matrix *r : {&ru_, &rr_, &rn_}) {
        *r = Matrix(hidden_, hidden_);
        r->fillNormal(rng, 0.5 / std::sqrt(static_cast<double>(hidden_)));
    }
    for (Matrix *b : {&bu_, &br_, &bn_})
        *b = Matrix(1, hidden_);
    for (Matrix *g : {&gradWu_, &gradWr_, &gradWn_})
        *g = Matrix(features_, hidden_);
    for (Matrix *g : {&gradRu_, &gradRr_, &gradRn_})
        *g = Matrix(hidden_, hidden_);
    for (Matrix *g : {&gradBu_, &gradBr_, &gradBn_})
        *g = Matrix(1, hidden_);
}

Matrix
GruLayer::forward(const Matrix &input, bool training)
{
    if (input.cols() != inputSize())
        panic("GruLayer::forward: input width %zu != %zu", input.cols(),
              inputSize());
    size_t batch = input.rows();
    Matrix h(batch, hidden_);
    if (training) {
        cache_.clear();
        cache_.reserve(timesteps_);
    }
    for (size_t t = 0; t < timesteps_; ++t) {
        Matrix xt = input.colRange(t * features_, (t + 1) * features_);
        Matrix u = applyActivation(
            Activation::Sigmoid,
            (xt.matmul(wu_) + h.matmul(ru_)).addRowBroadcast(bu_));
        Matrix r = applyActivation(
            Activation::Sigmoid,
            (xt.matmul(wr_) + h.matmul(rr_)).addRowBroadcast(br_));
        Matrix rh = r.hadamard(h);
        Matrix n_pre = (xt.matmul(wn_) + rh.matmul(rn_)).addRowBroadcast(bn_);
        Matrix n = applyActivation(act_, n_pre);
        // h_t = (1 - u) . h_prev + u . n
        Matrix one_minus_u = u.map([](double v) { return 1.0 - v; });
        Matrix h_next = one_minus_u.hadamard(h) + u.hadamard(n);
        if (training) {
            StepCache sc;
            sc.x = std::move(xt);
            sc.hPrev = h;
            sc.u = std::move(u);
            sc.r = std::move(r);
            sc.n = std::move(n);
            sc.nPre = std::move(n_pre);
            sc.rh = std::move(rh);
            cache_.push_back(std::move(sc));
        }
        h = std::move(h_next);
    }
    return h;
}

Matrix
GruLayer::backward(const Matrix &grad_output)
{
    if (cache_.size() != timesteps_)
        panic("GruLayer::backward without a training forward pass");
    size_t batch = grad_output.rows();
    Matrix grad_input(batch, inputSize());
    Matrix dh = grad_output;

    auto sigmoid_grad = [](const Matrix &s) {
        return s.map([](double v) { return v * (1.0 - v); });
    };

    for (size_t t = timesteps_; t-- > 0;) {
        const StepCache &sc = cache_[t];

        // h_t = (1 - u) . h_prev + u . n
        Matrix d_u = dh.hadamard(sc.n - sc.hPrev);
        Matrix d_n = dh.hadamard(sc.u);
        Matrix dh_prev =
            dh.hadamard(sc.u.map([](double v) { return 1.0 - v; }));

        Matrix d_n_pre = d_n.hadamard(activationDerivative(act_, sc.nPre));
        Matrix d_rh = d_n_pre.matmul(rn_.transposed());
        Matrix d_r = d_rh.hadamard(sc.hPrev);
        dh_prev += d_rh.hadamard(sc.r);

        Matrix d_u_pre = d_u.hadamard(sigmoid_grad(sc.u));
        Matrix d_r_pre = d_r.hadamard(sigmoid_grad(sc.r));

        Matrix x_t = sc.x.transposed();
        Matrix h_prev_t = sc.hPrev.transposed();
        gradWu_ += x_t.matmul(d_u_pre);
        gradWr_ += x_t.matmul(d_r_pre);
        gradWn_ += x_t.matmul(d_n_pre);
        gradRu_ += h_prev_t.matmul(d_u_pre);
        gradRr_ += h_prev_t.matmul(d_r_pre);
        gradRn_ += sc.rh.transposed().matmul(d_n_pre);
        gradBu_ += d_u_pre.columnSums();
        gradBr_ += d_r_pre.columnSums();
        gradBn_ += d_n_pre.columnSums();

        dh_prev += d_u_pre.matmul(ru_.transposed());
        dh_prev += d_r_pre.matmul(rr_.transposed());

        Matrix dx = d_u_pre.matmul(wu_.transposed());
        dx += d_r_pre.matmul(wr_.transposed());
        dx += d_n_pre.matmul(wn_.transposed());
        grad_input.setBlock(0, t * features_, dx);

        dh = std::move(dh_prev);
    }
    (void)batch;
    return grad_input;
}

std::vector<Matrix *>
GruLayer::parameters()
{
    return {&wu_, &wr_, &wn_, &ru_, &rr_, &rn_, &bu_, &br_, &bn_};
}

std::vector<Matrix *>
GruLayer::gradients()
{
    return {&gradWu_, &gradWr_, &gradWn_, &gradRu_, &gradRr_, &gradRn_,
            &gradBu_, &gradBr_, &gradBn_};
}

std::string
GruLayer::describe() const
{
    return strprintf("%zu (GRU) %s", hidden_, activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
