#include "nn/gru_layer.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

GruLayer::GruLayer(size_t features_per_step, size_t timesteps,
                   size_t hidden_size, Activation act, Rng &rng)
    : features_(features_per_step), timesteps_(timesteps),
      hidden_(hidden_size), act_(act)
{
    if (features_ == 0 || timesteps_ == 0 || hidden_ == 0)
        panic("GruLayer: zero dimension (%zu, %zu, %zu)", features_,
              timesteps_, hidden_);
    for (Matrix *w : {&wu_, &wr_, &wn_}) {
        *w = Matrix(features_, hidden_);
        w->fillXavierUniform(rng, features_, hidden_);
    }
    for (Matrix *r : {&ru_, &rr_, &rn_}) {
        *r = Matrix(hidden_, hidden_);
        r->fillNormal(rng, 0.5 / std::sqrt(static_cast<double>(hidden_)));
    }
    for (Matrix *b : {&bu_, &br_, &bn_})
        *b = Matrix(1, hidden_);
    for (Matrix *g : {&gradWu_, &gradWr_, &gradWn_})
        *g = Matrix(features_, hidden_);
    for (Matrix *g : {&gradRu_, &gradRr_, &gradRn_})
        *g = Matrix(hidden_, hidden_);
    for (Matrix *g : {&gradBu_, &gradBr_, &gradBn_})
        *g = Matrix(1, hidden_);
}

Matrix
GruLayer::forward(const Matrix &input, bool training)
{
    if (input.cols() != inputSize())
        panic("GruLayer::forward: input width %zu != %zu", input.cols(),
              inputSize());
    size_t batch = input.rows();
    Matrix h(batch, hidden_);
    if (training) {
        cache_.clear();
        cache_.reserve(timesteps_);
    }
    for (size_t t = 0; t < timesteps_; ++t) {
        Matrix xt = input.colRange(t * features_, (t + 1) * features_);
        // Gate pre-activations share one scratch matrix for the
        // recurrent product; bias and activation are applied in place.
        Matrix u = xt.matmul(wu_);
        h.matmulInto(ru_, gateScratch_);
        u += gateScratch_;
        u.addRowBroadcastInPlace(bu_);
        applyActivationInPlace(Activation::Sigmoid, u);

        Matrix r = xt.matmul(wr_);
        h.matmulInto(rr_, gateScratch_);
        r += gateScratch_;
        r.addRowBroadcastInPlace(br_);
        applyActivationInPlace(Activation::Sigmoid, r);

        Matrix rh = r.hadamard(h);
        Matrix n_pre = xt.matmul(wn_);
        rh.matmulInto(rn_, gateScratch_);
        n_pre += gateScratch_;
        n_pre.addRowBroadcastInPlace(bn_);
        Matrix n = n_pre;
        applyActivationInPlace(act_, n);

        // h_t = (1 - u) . h_prev + u . n, fused into one pass.
        Matrix h_next(batch, hidden_);
        for (size_t idx = 0; idx < h_next.size(); ++idx) {
            double uv = u.data()[idx];
            h_next.data()[idx] =
                (1.0 - uv) * h.data()[idx] + uv * n.data()[idx];
        }
        if (training) {
            StepCache sc;
            sc.x = std::move(xt);
            sc.hPrev = h;
            sc.u = std::move(u);
            sc.r = std::move(r);
            sc.n = std::move(n);
            sc.nPre = std::move(n_pre);
            sc.rh = std::move(rh);
            cache_.push_back(std::move(sc));
        }
        h = std::move(h_next);
    }
    return h;
}

Matrix
GruLayer::backward(const Matrix &grad_output)
{
    if (cache_.size() != timesteps_)
        panic("GruLayer::backward without a training forward pass");
    size_t batch = grad_output.rows();
    Matrix grad_input(batch, inputSize());
    Matrix dh = grad_output;

    for (size_t t = timesteps_; t-- > 0;) {
        const StepCache &sc = cache_[t];

        // h_t = (1 - u) . h_prev + u . n — the elementwise chains are
        // fused into single passes (same per-element expressions and
        // evaluation order as the unfused matrices they replace).
        Matrix d_u_pre(batch, hidden_);
        Matrix d_n_pre(batch, hidden_);
        Matrix dh_prev(batch, hidden_);
        for (size_t idx = 0; idx < dh.size(); ++idx) {
            double dhv = dh.data()[idx];
            double uv = sc.u.data()[idx];
            d_u_pre.data()[idx] =
                (dhv * (sc.n.data()[idx] - sc.hPrev.data()[idx])) *
                (uv * (1.0 - uv));
            d_n_pre.data()[idx] =
                (dhv * uv) *
                activateDerivative(act_, sc.nPre.data()[idx]);
            dh_prev.data()[idx] = dhv * (1.0 - uv);
        }

        Matrix d_rh = d_n_pre.matmulTransposed(rn_);
        Matrix d_r_pre(batch, hidden_);
        for (size_t idx = 0; idx < d_rh.size(); ++idx) {
            double rv = sc.r.data()[idx];
            d_r_pre.data()[idx] =
                (d_rh.data()[idx] * sc.hPrev.data()[idx]) *
                (rv * (1.0 - rv));
            dh_prev.data()[idx] += d_rh.data()[idx] * rv;
        }

        sc.x.transposedMatmulInto(d_u_pre, scratchW_);
        gradWu_ += scratchW_;
        sc.x.transposedMatmulInto(d_r_pre, scratchW_);
        gradWr_ += scratchW_;
        sc.x.transposedMatmulInto(d_n_pre, scratchW_);
        gradWn_ += scratchW_;
        sc.hPrev.transposedMatmulInto(d_u_pre, scratchR_);
        gradRu_ += scratchR_;
        sc.hPrev.transposedMatmulInto(d_r_pre, scratchR_);
        gradRr_ += scratchR_;
        sc.rh.transposedMatmulInto(d_n_pre, scratchR_);
        gradRn_ += scratchR_;
        gradBu_ += d_u_pre.columnSums();
        gradBr_ += d_r_pre.columnSums();
        gradBn_ += d_n_pre.columnSums();

        d_u_pre.matmulTransposedInto(ru_, scratchH_);
        dh_prev += scratchH_;
        d_r_pre.matmulTransposedInto(rr_, scratchH_);
        dh_prev += scratchH_;

        Matrix dx = d_u_pre.matmulTransposed(wu_);
        d_r_pre.matmulTransposedInto(wr_, scratchX_);
        dx += scratchX_;
        d_n_pre.matmulTransposedInto(wn_, scratchX_);
        dx += scratchX_;
        grad_input.setBlock(0, t * features_, dx);

        dh = std::move(dh_prev);
    }
    (void)batch;
    return grad_input;
}

std::vector<Matrix *>
GruLayer::parameters()
{
    return {&wu_, &wr_, &wn_, &ru_, &rr_, &rn_, &bu_, &br_, &bn_};
}

std::vector<Matrix *>
GruLayer::gradients()
{
    return {&gradWu_, &gradWr_, &gradWn_, &gradRu_, &gradRr_, &gradRn_,
            &gradBu_, &gradBr_, &gradBn_};
}

std::string
GruLayer::describe() const
{
    return strprintf("%zu (GRU) %s", hidden_, activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
