/**
 * @file
 * Abstract layer interface for the Sequential model.
 *
 * A layer owns its parameters and their gradient buffers. forward()
 * caches whatever intermediate state backward() needs, so the usual call
 * pattern is forward -> backward -> (optimizer step) -> zeroGrad.
 */

#ifndef GEO_NN_LAYER_HH
#define GEO_NN_LAYER_HH

#include <string>
#include <vector>

#include "nn/matrix.hh"

namespace geo {

class Rng;

namespace nn {

/**
 * Base class for all trainable layers.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the layer on a (batch x inputSize) matrix.
     *
     * @param input batch of row-vector inputs.
     * @param training when true, cache activations for backward().
     * @return (batch x outputSize) activations.
     */
    virtual Matrix forward(const Matrix &input, bool training) = 0;

    /**
     * Backpropagate: accumulate parameter gradients and return the
     * gradient with respect to this layer's input.
     *
     * Must be called after a forward(input, true) with a gradient of the
     * same shape as that forward's output.
     */
    virtual Matrix backward(const Matrix &grad_output) = 0;

    /**
     * forward() computed into a caller-owned buffer (reshaped by the
     * layer). Layers on the training hot path override this to avoid
     * per-call allocations; the default delegates to forward() and
     * moves the result, so overriding is optional.
     */
    virtual void
    forwardInto(const Matrix &input, bool training, Matrix &out)
    {
        out = forward(input, training);
    }

    /** backward() computed into a caller-owned gradient buffer; same
     *  contract and default-delegation as forwardInto(). */
    virtual void
    backwardInto(const Matrix &grad_output, Matrix &grad_input)
    {
        grad_input = backward(grad_output);
    }

    /** Flattened list of parameter tensors (paired with gradients()). */
    virtual std::vector<Matrix *> parameters() = 0;

    /** Gradient buffers, index-aligned with parameters(). */
    virtual std::vector<Matrix *> gradients() = 0;

    /** Expected input width. */
    virtual size_t inputSize() const = 0;

    /** Output width. */
    virtual size_t outputSize() const = 0;

    /** Human-readable description, e.g. "96 (Dense) ReLU". */
    virtual std::string describe() const = 0;

    /** Type tag used by the serializer ("dense", "lstm", ...). */
    virtual std::string typeName() const = 0;

    /** Zero all gradient buffers. */
    void
    zeroGrad()
    {
        for (Matrix *g : gradients())
            g->zero();
    }

    /** Total number of scalar parameters. */
    size_t
    parameterCount()
    {
        size_t total = 0;
        for (Matrix *p : parameters())
            total += p->size();
        return total;
    }
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_LAYER_HH
