#include "nn/serialize.hh"

#include <fstream>
#include <sstream>

#include "util/fs_atomic.hh"
#include "util/logging.hh"

namespace geo {
namespace nn {

namespace {

constexpr const char *kMagic = "geomancy-nn-v1";

/** Topology fingerprint: layer types and parameter shapes. */
std::string
fingerprint(Sequential &model)
{
    std::ostringstream os;
    for (size_t i = 0; i < model.layerCount(); ++i) {
        Layer &layer = model.layer(i);
        os << layer.typeName() << ':' << layer.inputSize() << "->"
           << layer.outputSize() << ';';
    }
    return os.str();
}

} // namespace

bool
saveWeights(Sequential &model, std::ostream &os)
{
    os << kMagic << '\n';
    os << fingerprint(model) << '\n';
    std::vector<Matrix *> params = model.parameters();
    os << params.size() << '\n';
    os.precision(17);
    for (const Matrix *p : params) {
        os << p->rows() << ' ' << p->cols();
        for (double v : p->data())
            os << ' ' << v;
        os << '\n';
    }
    return static_cast<bool>(os);
}

bool
loadWeights(Sequential &model, std::istream &is)
{
    std::string magic;
    if (!std::getline(is, magic) || magic != kMagic) {
        warn("loadWeights: bad magic '%s'", magic.c_str());
        return false;
    }
    std::string fp;
    if (!std::getline(is, fp) || fp != fingerprint(model)) {
        warn("loadWeights: topology mismatch");
        return false;
    }
    size_t count = 0;
    if (!(is >> count))
        return false;
    std::vector<Matrix *> params = model.parameters();
    if (count != params.size()) {
        warn("loadWeights: %zu tensors in file, model has %zu", count,
             params.size());
        return false;
    }
    for (Matrix *p : params) {
        size_t rows = 0, cols = 0;
        if (!(is >> rows >> cols))
            return false;
        if (rows != p->rows() || cols != p->cols()) {
            warn("loadWeights: tensor shape %zux%zu, expected %zux%zu",
                 rows, cols, p->rows(), p->cols());
            return false;
        }
        for (double &v : p->data())
            if (!(is >> v))
                return false;
    }
    return true;
}

bool
saveWeightsFile(Sequential &model, const std::string &path)
{
    // Stage in memory and publish atomically: a writer killed mid-save
    // must not leave a truncated file that loadWeightsFile half-parses.
    std::ostringstream os;
    if (!saveWeights(model, os))
        return false;
    return util::writeFileAtomic(path, os.str());
}

bool
loadWeightsFile(Sequential &model, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return false;
    return loadWeights(model, is);
}

} // namespace nn
} // namespace geo
