#include "nn/lstm_layer.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

LstmLayer::LstmLayer(size_t features_per_step, size_t timesteps,
                     size_t hidden_size, Activation act, Rng &rng)
    : features_(features_per_step), timesteps_(timesteps),
      hidden_(hidden_size), act_(act)
{
    if (features_ == 0 || timesteps_ == 0 || hidden_ == 0)
        panic("LstmLayer: zero dimension (%zu, %zu, %zu)", features_,
              timesteps_, hidden_);
    size_t in = hidden_ + features_;
    for (Matrix *w : {&wi_, &wf_, &wo_, &wg_}) {
        *w = Matrix(in, hidden_);
        w->fillXavierUniform(rng, in, hidden_);
    }
    for (Matrix *b : {&bi_, &bo_, &bg_})
        *b = Matrix(1, hidden_);
    // Standard trick: bias the forget gate open so early training does
    // not wipe the cell state.
    bf_ = Matrix(1, hidden_, 1.0);
    for (Matrix *g : {&gradWi_, &gradWf_, &gradWo_, &gradWg_})
        *g = Matrix(in, hidden_);
    for (Matrix *g : {&gradBi_, &gradBf_, &gradBo_, &gradBg_})
        *g = Matrix(1, hidden_);
}

Matrix
LstmLayer::concat(const Matrix &h_prev, const Matrix &x_t) const
{
    Matrix z(h_prev.rows(), hidden_ + features_);
    z.setBlock(0, 0, h_prev);
    z.setBlock(0, hidden_, x_t);
    return z;
}

Matrix
LstmLayer::forward(const Matrix &input, bool training)
{
    if (input.cols() != inputSize())
        panic("LstmLayer::forward: input width %zu != %zu", input.cols(),
              inputSize());
    size_t batch = input.rows();
    Matrix h(batch, hidden_);
    Matrix c(batch, hidden_);
    if (training) {
        cache_.clear();
        cache_.reserve(timesteps_);
        cachedCPrev0_ = Matrix(batch, hidden_);
    }
    for (size_t t = 0; t < timesteps_; ++t) {
        Matrix xt = input.colRange(t * features_, (t + 1) * features_);
        Matrix z = concat(h, xt);
        Matrix i = z.matmul(wi_);
        i.addRowBroadcastInPlace(bi_);
        applyActivationInPlace(Activation::Sigmoid, i);
        Matrix f = z.matmul(wf_);
        f.addRowBroadcastInPlace(bf_);
        applyActivationInPlace(Activation::Sigmoid, f);
        Matrix o = z.matmul(wo_);
        o.addRowBroadcastInPlace(bo_);
        applyActivationInPlace(Activation::Sigmoid, o);
        Matrix g_pre = z.matmul(wg_);
        g_pre.addRowBroadcastInPlace(bg_);
        Matrix g = g_pre;
        applyActivationInPlace(act_, g);
        // c_t = f . c_{t-1} + i . g, fused into one pass.
        Matrix c_next(batch, hidden_);
        for (size_t idx = 0; idx < c_next.size(); ++idx)
            c_next.data()[idx] = f.data()[idx] * c.data()[idx] +
                                 i.data()[idx] * g.data()[idx];
        Matrix c_act = c_next;
        applyActivationInPlace(act_, c_act);
        Matrix h_next = o.hadamard(c_act);
        if (training) {
            StepCache sc;
            sc.z = std::move(z);
            sc.i = i;
            sc.f = f;
            sc.o = o;
            sc.g = g;
            sc.gPre = std::move(g_pre);
            sc.c = c_next;
            sc.cAct = c_act;
            sc.cActPre = c_next;
            cache_.push_back(std::move(sc));
        }
        c = std::move(c_next);
        h = std::move(h_next);
    }
    return h;
}

Matrix
LstmLayer::backward(const Matrix &grad_output)
{
    if (cache_.size() != timesteps_)
        panic("LstmLayer::backward without a training forward pass");
    size_t batch = grad_output.rows();
    Matrix grad_input(batch, inputSize());
    Matrix dh = grad_output;
    Matrix dc(batch, hidden_);

    for (size_t t = timesteps_; t-- > 0;) {
        const StepCache &sc = cache_[t];
        const Matrix &c_prev = (t == 0) ? cachedCPrev0_ : cache_[t - 1].c;

        // h_t = o . act(c_t); c_t = f . c_{t-1} + i . g. The
        // elementwise gate chains are fused into one pass with the
        // same per-element expressions the unfused matrices computed.
        Matrix d_i_pre(batch, hidden_);
        Matrix d_f_pre(batch, hidden_);
        Matrix d_o_pre(batch, hidden_);
        Matrix d_g_pre(batch, hidden_);
        Matrix dc_prev(batch, hidden_);
        for (size_t idx = 0; idx < dh.size(); ++idx) {
            double dhv = dh.data()[idx];
            double iv = sc.i.data()[idx];
            double fv = sc.f.data()[idx];
            double ov = sc.o.data()[idx];
            double d_o = dhv * sc.cAct.data()[idx];
            dc.data()[idx] +=
                (dhv * ov) *
                activateDerivative(act_, sc.cActPre.data()[idx]);
            double dcv = dc.data()[idx];
            d_i_pre.data()[idx] =
                (dcv * sc.g.data()[idx]) * (iv * (1.0 - iv));
            d_f_pre.data()[idx] =
                (dcv * c_prev.data()[idx]) * (fv * (1.0 - fv));
            d_o_pre.data()[idx] = d_o * (ov * (1.0 - ov));
            d_g_pre.data()[idx] =
                (dcv * iv) *
                activateDerivative(act_, sc.gPre.data()[idx]);
            dc_prev.data()[idx] = dcv * fv;
        }

        sc.z.transposedMatmulInto(d_i_pre, scratchW_);
        gradWi_ += scratchW_;
        sc.z.transposedMatmulInto(d_f_pre, scratchW_);
        gradWf_ += scratchW_;
        sc.z.transposedMatmulInto(d_o_pre, scratchW_);
        gradWo_ += scratchW_;
        sc.z.transposedMatmulInto(d_g_pre, scratchW_);
        gradWg_ += scratchW_;
        gradBi_ += d_i_pre.columnSums();
        gradBf_ += d_f_pre.columnSums();
        gradBo_ += d_o_pre.columnSums();
        gradBg_ += d_g_pre.columnSums();

        Matrix dz = d_i_pre.matmulTransposed(wi_);
        d_f_pre.matmulTransposedInto(wf_, scratchZ_);
        dz += scratchZ_;
        d_o_pre.matmulTransposedInto(wo_, scratchZ_);
        dz += scratchZ_;
        d_g_pre.matmulTransposedInto(wg_, scratchZ_);
        dz += scratchZ_;

        dh = dz.colRange(0, hidden_);
        grad_input.setBlock(0, t * features_,
                            dz.colRange(hidden_, hidden_ + features_));
        dc = std::move(dc_prev);
    }
    return grad_input;
}

std::vector<Matrix *>
LstmLayer::parameters()
{
    return {&wi_, &wf_, &wo_, &wg_, &bi_, &bf_, &bo_, &bg_};
}

std::vector<Matrix *>
LstmLayer::gradients()
{
    return {&gradWi_, &gradWf_, &gradWo_, &gradWg_,
            &gradBi_, &gradBf_, &gradBo_, &gradBg_};
}

std::string
LstmLayer::describe() const
{
    return strprintf("%zu (LSTM) %s", hidden_, activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
