#include "nn/lstm_layer.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

LstmLayer::LstmLayer(size_t features_per_step, size_t timesteps,
                     size_t hidden_size, Activation act, Rng &rng)
    : features_(features_per_step), timesteps_(timesteps),
      hidden_(hidden_size), act_(act)
{
    if (features_ == 0 || timesteps_ == 0 || hidden_ == 0)
        panic("LstmLayer: zero dimension (%zu, %zu, %zu)", features_,
              timesteps_, hidden_);
    size_t in = hidden_ + features_;
    for (Matrix *w : {&wi_, &wf_, &wo_, &wg_}) {
        *w = Matrix(in, hidden_);
        w->fillXavierUniform(rng, in, hidden_);
    }
    for (Matrix *b : {&bi_, &bo_, &bg_})
        *b = Matrix(1, hidden_);
    // Standard trick: bias the forget gate open so early training does
    // not wipe the cell state.
    bf_ = Matrix(1, hidden_, 1.0);
    for (Matrix *g : {&gradWi_, &gradWf_, &gradWo_, &gradWg_})
        *g = Matrix(in, hidden_);
    for (Matrix *g : {&gradBi_, &gradBf_, &gradBo_, &gradBg_})
        *g = Matrix(1, hidden_);
}

Matrix
LstmLayer::concat(const Matrix &h_prev, const Matrix &x_t) const
{
    Matrix z(h_prev.rows(), hidden_ + features_);
    z.setBlock(0, 0, h_prev);
    z.setBlock(0, hidden_, x_t);
    return z;
}

Matrix
LstmLayer::forward(const Matrix &input, bool training)
{
    if (input.cols() != inputSize())
        panic("LstmLayer::forward: input width %zu != %zu", input.cols(),
              inputSize());
    size_t batch = input.rows();
    Matrix h(batch, hidden_);
    Matrix c(batch, hidden_);
    if (training) {
        cache_.clear();
        cache_.reserve(timesteps_);
        cachedCPrev0_ = Matrix(batch, hidden_);
    }
    for (size_t t = 0; t < timesteps_; ++t) {
        Matrix xt = input.colRange(t * features_, (t + 1) * features_);
        Matrix z = concat(h, xt);
        Matrix i = applyActivation(Activation::Sigmoid,
                                   z.matmul(wi_).addRowBroadcast(bi_));
        Matrix f = applyActivation(Activation::Sigmoid,
                                   z.matmul(wf_).addRowBroadcast(bf_));
        Matrix o = applyActivation(Activation::Sigmoid,
                                   z.matmul(wo_).addRowBroadcast(bo_));
        Matrix g_pre = z.matmul(wg_).addRowBroadcast(bg_);
        Matrix g = applyActivation(act_, g_pre);
        Matrix c_next = f.hadamard(c) + i.hadamard(g);
        Matrix c_act = applyActivation(act_, c_next);
        Matrix h_next = o.hadamard(c_act);
        if (training) {
            StepCache sc;
            sc.z = std::move(z);
            sc.i = i;
            sc.f = f;
            sc.o = o;
            sc.g = g;
            sc.gPre = std::move(g_pre);
            sc.c = c_next;
            sc.cAct = c_act;
            sc.cActPre = c_next;
            cache_.push_back(std::move(sc));
        }
        c = std::move(c_next);
        h = std::move(h_next);
    }
    return h;
}

Matrix
LstmLayer::backward(const Matrix &grad_output)
{
    if (cache_.size() != timesteps_)
        panic("LstmLayer::backward without a training forward pass");
    size_t batch = grad_output.rows();
    Matrix grad_input(batch, inputSize());
    Matrix dh = grad_output;
    Matrix dc(batch, hidden_);

    auto sigmoid_grad = [](const Matrix &s) {
        return s.map([](double v) { return v * (1.0 - v); });
    };

    for (size_t t = timesteps_; t-- > 0;) {
        const StepCache &sc = cache_[t];
        const Matrix &c_prev = (t == 0) ? cachedCPrev0_ : cache_[t - 1].c;

        // h_t = o . act(c_t)
        Matrix d_o = dh.hadamard(sc.cAct);
        dc += dh.hadamard(sc.o).hadamard(
            activationDerivative(act_, sc.cActPre));

        // c_t = f . c_{t-1} + i . g
        Matrix d_i = dc.hadamard(sc.g);
        Matrix d_g = dc.hadamard(sc.i);
        Matrix d_f = dc.hadamard(c_prev);
        Matrix dc_prev = dc.hadamard(sc.f);

        Matrix d_i_pre = d_i.hadamard(sigmoid_grad(sc.i));
        Matrix d_f_pre = d_f.hadamard(sigmoid_grad(sc.f));
        Matrix d_o_pre = d_o.hadamard(sigmoid_grad(sc.o));
        Matrix d_g_pre = d_g.hadamard(activationDerivative(act_, sc.gPre));

        Matrix z_t = sc.z.transposed();
        gradWi_ += z_t.matmul(d_i_pre);
        gradWf_ += z_t.matmul(d_f_pre);
        gradWo_ += z_t.matmul(d_o_pre);
        gradWg_ += z_t.matmul(d_g_pre);
        gradBi_ += d_i_pre.columnSums();
        gradBf_ += d_f_pre.columnSums();
        gradBo_ += d_o_pre.columnSums();
        gradBg_ += d_g_pre.columnSums();

        Matrix dz = d_i_pre.matmul(wi_.transposed());
        dz += d_f_pre.matmul(wf_.transposed());
        dz += d_o_pre.matmul(wo_.transposed());
        dz += d_g_pre.matmul(wg_.transposed());

        dh = dz.colRange(0, hidden_);
        grad_input.setBlock(0, t * features_,
                            dz.colRange(hidden_, hidden_ + features_));
        dc = std::move(dc_prev);
    }
    return grad_input;
}

std::vector<Matrix *>
LstmLayer::parameters()
{
    return {&wi_, &wf_, &wo_, &wg_, &bi_, &bf_, &bo_, &bg_};
}

std::vector<Matrix *>
LstmLayer::gradients()
{
    return {&gradWi_, &gradWf_, &gradWo_, &gradWg_,
            &gradBi_, &gradBf_, &gradBo_, &gradBg_};
}

std::string
LstmLayer::describe() const
{
    return strprintf("%zu (LSTM) %s", hidden_, activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
