#include "nn/optimizer.hh"

#include <cmath>
#include <cstddef>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace geo {
namespace nn {

void
Optimizer::saveState(util::StateWriter &w) const
{
    w.f64("opt.lr", lr_);
}

void
Optimizer::loadState(util::StateReader &r)
{
    lr_ = r.f64("opt.lr");
}

SgdOptimizer::SgdOptimizer(double lr, double clip_norm)
    : Optimizer(lr), clipNorm_(clip_norm)
{
}

void
SgdOptimizer::step(const std::vector<Matrix *> &params,
                   const std::vector<Matrix *> &grads)
{
    if (params.size() != grads.size())
        panic("SgdOptimizer::step: %zu params vs %zu grads", params.size(),
              grads.size());
    double scale = 1.0;
    if (clipNorm_ > 0.0) {
        double total = 0.0;
        for (const Matrix *g : grads) {
            double n = g->norm();
            total += n * n;
        }
        double norm = std::sqrt(total);
        if (norm > clipNorm_)
            scale = clipNorm_ / norm;
    }
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        if (p.rows() != g.rows() || p.cols() != g.cols())
            panic("SgdOptimizer::step: shape mismatch at tensor %zu", i);
        for (size_t j = 0; j < p.size(); ++j)
            p.data()[j] -= lr_ * scale * g.data()[j];
    }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2,
                             double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon)
{
}

namespace {

/** Moment-array elements below which a parallel Adam step cannot pay
 *  for its dispatch. */
constexpr size_t kAdamParallelMinElems = 32768;

} // namespace

void
AdamOptimizer::step(const std::vector<Matrix *> &params,
                    const std::vector<Matrix *> &grads)
{
    if (params.size() != grads.size())
        panic("AdamOptimizer::step: %zu params vs %zu grads", params.size(),
              grads.size());
    if (shapes_.empty() && !params.empty()) {
        size_t total = 0;
        for (const Matrix *p : params) {
            shapes_.emplace_back(p->rows(), p->cols());
            offsets_.push_back(total);
            total += p->size();
        }
        mFlat_.assign(total, 0.0);
        vFlat_.assign(total, 0.0);
    }
    if (shapes_.size() != params.size())
        panic("AdamOptimizer::step: parameter list changed size");
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    util::ThreadPool &pool = util::ThreadPool::global();
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &pm = *params[i];
        const Matrix &gm = *grads[i];
        if (pm.rows() != shapes_[i].first ||
            pm.cols() != shapes_[i].second || gm.rows() != pm.rows() ||
            gm.cols() != pm.cols())
            panic("AdamOptimizer::step: shape mismatch at tensor %zu", i);
        double *__restrict p = pm.data().data();
        const double *__restrict g = gm.data().data();
        double *__restrict m = mFlat_.data() + offsets_[i];
        double *__restrict v = vFlat_.data() + offsets_[i];
        const size_t len = pm.size();
        // Fused single pass: moment update, bias correction and the
        // parameter step per element, with the exact operation order
        // of the original per-matrix loops (store-then-read of the
        // moments replaced by equivalent locals).
        auto update = [&](size_t begin, size_t end) {
            for (size_t j = begin; j < end; ++j) {
                const double grad = g[j];
                const double mj = beta1_ * m[j] + (1.0 - beta1_) * grad;
                const double vj =
                    beta2_ * v[j] + (1.0 - beta2_) * grad * grad;
                m[j] = mj;
                v[j] = vj;
                const double mhat = mj / bias1;
                const double vhat = vj / bias2;
                p[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
            }
        };
        if (pool.workerCount() > 1 && len >= kAdamParallelMinElems) {
            // Per-element updates are independent, so chunk boundaries
            // cannot change results.
            pool.parallelFor(len, kAdamParallelMinElems / 4,
                             [&](size_t, size_t begin, size_t end) {
                                 update(begin, end);
                             });
        } else {
            update(0, len);
        }
    }
}

void
AdamOptimizer::saveState(util::StateWriter &w) const
{
    Optimizer::saveState(w);
    w.u64("adam.t", t_);
    w.u64("adam.tensors", shapes_.size());
    // Re-emit the original per-tensor record layout from the flat
    // arrays so pre-existing geo-ckpt-1 payloads stay byte-compatible.
    std::vector<double> tmp;
    for (size_t i = 0; i < shapes_.size(); ++i) {
        const auto off = static_cast<std::ptrdiff_t>(offsets_[i]);
        const auto len = static_cast<std::ptrdiff_t>(shapes_[i].first *
                                                     shapes_[i].second);
        w.u64("adam.rows", shapes_[i].first);
        w.u64("adam.cols", shapes_[i].second);
        tmp.assign(mFlat_.begin() + off, mFlat_.begin() + off + len);
        w.f64Vec("adam.m", tmp);
        tmp.assign(vFlat_.begin() + off, vFlat_.begin() + off + len);
        w.f64Vec("adam.v", tmp);
    }
}

void
AdamOptimizer::loadState(util::StateReader &r)
{
    Optimizer::loadState(r);
    t_ = r.u64("adam.t");
    size_t tensors = r.u64("adam.tensors");
    mFlat_.clear();
    vFlat_.clear();
    shapes_.clear();
    offsets_.clear();
    for (size_t i = 0; i < tensors && r.ok(); ++i) {
        size_t rows = r.u64("adam.rows");
        size_t cols = r.u64("adam.cols");
        std::vector<double> m = r.f64Vec("adam.m");
        std::vector<double> v = r.f64Vec("adam.v");
        if (!r.ok())
            break;
        if (m.size() != rows * cols || v.size() != rows * cols) {
            r.fail("adam moment tensor size mismatch");
            break;
        }
        shapes_.emplace_back(rows, cols);
        offsets_.push_back(mFlat_.size());
        mFlat_.insert(mFlat_.end(), m.begin(), m.end());
        vFlat_.insert(vFlat_.end(), v.begin(), v.end());
    }
    if (!r.ok()) {
        mFlat_.clear();
        vFlat_.clear();
        shapes_.clear();
        offsets_.clear();
        t_ = 0;
    }
}

} // namespace nn
} // namespace geo
