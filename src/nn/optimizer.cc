#include "nn/optimizer.hh"

#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace nn {

SgdOptimizer::SgdOptimizer(double lr, double clip_norm)
    : Optimizer(lr), clipNorm_(clip_norm)
{
}

void
SgdOptimizer::step(const std::vector<Matrix *> &params,
                   const std::vector<Matrix *> &grads)
{
    if (params.size() != grads.size())
        panic("SgdOptimizer::step: %zu params vs %zu grads", params.size(),
              grads.size());
    double scale = 1.0;
    if (clipNorm_ > 0.0) {
        double total = 0.0;
        for (const Matrix *g : grads) {
            double n = g->norm();
            total += n * n;
        }
        double norm = std::sqrt(total);
        if (norm > clipNorm_)
            scale = clipNorm_ / norm;
    }
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        if (p.rows() != g.rows() || p.cols() != g.cols())
            panic("SgdOptimizer::step: shape mismatch at tensor %zu", i);
        for (size_t j = 0; j < p.size(); ++j)
            p.data()[j] -= lr_ * scale * g.data()[j];
    }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2,
                             double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon)
{
}

void
AdamOptimizer::step(const std::vector<Matrix *> &params,
                    const std::vector<Matrix *> &grads)
{
    if (params.size() != grads.size())
        panic("AdamOptimizer::step: %zu params vs %zu grads", params.size(),
              grads.size());
    if (m_.empty()) {
        for (const Matrix *p : params) {
            m_.emplace_back(p->rows(), p->cols());
            v_.emplace_back(p->rows(), p->cols());
        }
    }
    if (m_.size() != params.size())
        panic("AdamOptimizer::step: parameter list changed size");
    ++t_;
    double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        Matrix &m = m_[i];
        Matrix &v = v_[i];
        for (size_t j = 0; j < p.size(); ++j) {
            double grad = g.data()[j];
            m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * grad;
            v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * grad * grad;
            double mhat = m.data()[j] / bias1;
            double vhat = v.data()[j] / bias2;
            p.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
        }
    }
}

} // namespace nn
} // namespace geo
