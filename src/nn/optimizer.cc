#include "nn/optimizer.hh"

#include <cmath>

#include "util/logging.hh"

namespace geo {
namespace nn {

void
Optimizer::saveState(util::StateWriter &w) const
{
    w.f64("opt.lr", lr_);
}

void
Optimizer::loadState(util::StateReader &r)
{
    lr_ = r.f64("opt.lr");
}

SgdOptimizer::SgdOptimizer(double lr, double clip_norm)
    : Optimizer(lr), clipNorm_(clip_norm)
{
}

void
SgdOptimizer::step(const std::vector<Matrix *> &params,
                   const std::vector<Matrix *> &grads)
{
    if (params.size() != grads.size())
        panic("SgdOptimizer::step: %zu params vs %zu grads", params.size(),
              grads.size());
    double scale = 1.0;
    if (clipNorm_ > 0.0) {
        double total = 0.0;
        for (const Matrix *g : grads) {
            double n = g->norm();
            total += n * n;
        }
        double norm = std::sqrt(total);
        if (norm > clipNorm_)
            scale = clipNorm_ / norm;
    }
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        if (p.rows() != g.rows() || p.cols() != g.cols())
            panic("SgdOptimizer::step: shape mismatch at tensor %zu", i);
        for (size_t j = 0; j < p.size(); ++j)
            p.data()[j] -= lr_ * scale * g.data()[j];
    }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2,
                             double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon)
{
}

void
AdamOptimizer::step(const std::vector<Matrix *> &params,
                    const std::vector<Matrix *> &grads)
{
    if (params.size() != grads.size())
        panic("AdamOptimizer::step: %zu params vs %zu grads", params.size(),
              grads.size());
    if (m_.empty()) {
        for (const Matrix *p : params) {
            m_.emplace_back(p->rows(), p->cols());
            v_.emplace_back(p->rows(), p->cols());
        }
    }
    if (m_.size() != params.size())
        panic("AdamOptimizer::step: parameter list changed size");
    ++t_;
    double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        Matrix &m = m_[i];
        Matrix &v = v_[i];
        for (size_t j = 0; j < p.size(); ++j) {
            double grad = g.data()[j];
            m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * grad;
            v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * grad * grad;
            double mhat = m.data()[j] / bias1;
            double vhat = v.data()[j] / bias2;
            p.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
        }
    }
}

void
AdamOptimizer::saveState(util::StateWriter &w) const
{
    Optimizer::saveState(w);
    w.u64("adam.t", t_);
    w.u64("adam.tensors", m_.size());
    for (size_t i = 0; i < m_.size(); ++i) {
        w.u64("adam.rows", m_[i].rows());
        w.u64("adam.cols", m_[i].cols());
        w.f64Vec("adam.m", m_[i].data());
        w.f64Vec("adam.v", v_[i].data());
    }
}

void
AdamOptimizer::loadState(util::StateReader &r)
{
    Optimizer::loadState(r);
    t_ = r.u64("adam.t");
    size_t tensors = r.u64("adam.tensors");
    m_.clear();
    v_.clear();
    for (size_t i = 0; i < tensors && r.ok(); ++i) {
        size_t rows = r.u64("adam.rows");
        size_t cols = r.u64("adam.cols");
        std::vector<double> m = r.f64Vec("adam.m");
        std::vector<double> v = r.f64Vec("adam.v");
        if (!r.ok())
            break;
        if (m.size() != rows * cols || v.size() != rows * cols) {
            r.fail("adam moment tensor size mismatch");
            break;
        }
        m_.emplace_back(rows, cols);
        v_.emplace_back(rows, cols);
        m_.back().data() = m;
        v_.back().data() = v;
    }
    if (!r.ok()) {
        m_.clear();
        v_.clear();
        t_ = 0;
    }
}

} // namespace nn
} // namespace geo
