/**
 * @file
 * Sequential model container with a training loop.
 *
 * This is the "DRL engine" substrate: a stack of layers trained by MSE
 * regression of access throughput. Divergence detection matches the
 * paper's Table II reporting (a model that collapses to a constant or
 * produces non-finite values is flagged as diverged).
 */

#ifndef GEO_NN_SEQUENTIAL_HH
#define GEO_NN_SEQUENTIAL_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/dataset.hh"
#include "nn/layer.hh"
#include "nn/optimizer.hh"
#include "util/watchdog.hh"

namespace geo {
namespace nn {

/** Result of a full training run. */
struct TrainResult
{
    std::vector<double> trainLoss;      ///< per-epoch training loss
    std::vector<double> validationLoss; ///< per-epoch validation loss
    bool diverged = false;              ///< non-finite loss encountered
    bool cancelled = false;             ///< cut short by a cancel token
    double seconds = 0.0;               ///< wall-clock training time
};

/** Knobs for Sequential::train. */
struct TrainOptions
{
    size_t epochs = 200;   ///< paper: 200 epochs for the model search
    size_t batchSize = 32;
    bool shuffle = false;  ///< chronological batches by default
    uint64_t shuffleSeed = 1;
    /** Stop early when validation loss has not improved for N epochs
     *  (0 disables). */
    size_t earlyStopPatience = 0;
    /** Minimum absolute validation-loss improvement that counts as
     *  progress for early stopping. */
    double earlyStopMinDelta = 0.0;
    /** Cooperative cancellation: checked at every epoch boundary; a
     *  fired token stops training and sets TrainResult::cancelled
     *  (null = never cancel). */
    const util::CancelToken *cancel = nullptr;
};

/**
 * A stack of layers applied in order.
 */
class Sequential
{
  public:
    Sequential() = default;

    // Models own their layers; moving is fine, copying is not.
    Sequential(const Sequential &) = delete;
    Sequential &operator=(const Sequential &) = delete;
    Sequential(Sequential &&) = default;
    Sequential &operator=(Sequential &&) = default;

    /** Append a layer; its input width must match the current output. */
    void add(std::unique_ptr<Layer> layer);

    size_t layerCount() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_.at(i); }
    const Layer &layer(size_t i) const { return *layers_.at(i); }

    size_t inputSize() const;
    size_t outputSize() const;

    /** Forward pass without caching (inference). */
    Matrix predict(const Matrix &inputs);

    /** predict computed into `out` via the scratch arena — no
     *  allocations once the arena is sized (inference hot path). */
    void predictInto(const Matrix &inputs, Matrix &out);

    /** Forward pass caching state for backward(). */
    Matrix forward(const Matrix &inputs);

    /** Backward pass; returns gradient w.r.t. the inputs. */
    Matrix backward(const Matrix &grad_output);

    /** All parameters across layers. */
    std::vector<Matrix *> parameters();

    /** All gradients across layers (aligned with parameters()). */
    std::vector<Matrix *> gradients();

    void zeroGrad();

    /** Total scalar parameter count. */
    size_t parameterCount();

    /**
     * Train with MSE loss.
     *
     * @param train training examples (consumed in mini-batches).
     * @param validation validation examples (may be empty).
     * @param opt optimizer (state persists across calls).
     * @param options epoch/batch configuration.
     */
    TrainResult train(const Dataset &train, const Dataset &validation,
                      Optimizer &opt, const TrainOptions &options);

    /** One gradient step on a single batch; returns the batch loss. */
    double trainBatch(const Matrix &inputs, const Matrix &targets,
                      Optimizer &opt);

    /** MSE over a dataset. */
    double evaluate(const Dataset &data);

    /** "layer, layer, ..." summary matching the paper's Table I format. */
    std::string describe() const;

    /**
     * Check for divergence per the paper: predictions on `probe` are
     * non-finite or essentially constant while targets are not.
     */
    bool looksDiverged(const Dataset &probe);

  private:
    /** Arena-backed forward pass ping-ponging fwdA_/fwdB_ (the Into
     *  kernels forbid operand/output aliasing, so layer i always reads
     *  one buffer and writes the other). Returns the final
     *  activations, which live in an arena buffer. */
    const Matrix &runForward(const Matrix &inputs, bool training);

    /** Arena-backed backward pass (bwdA_/bwdB_ ping-pong). */
    const Matrix &runBackward(const Matrix &grad_output);

    /** parameters()/gradients() pointer lists, built once per model
     *  topology (add() invalidates) so the step loop stops
     *  re-collecting them every batch. */
    const std::vector<Matrix *> &cachedParameters();
    const std::vector<Matrix *> &cachedGradients();

    std::vector<std::unique_ptr<Layer>> layers_;

    // Scratch arena for the training/inference hot paths: sized by the
    // first epoch, reused (capacity is never released) afterwards —
    // steady-state epochs allocate nothing (pinned by
    // tests/nn/test_alloc_regression.cc).
    Matrix fwdA_, fwdB_;       ///< forward activation ping-pong
    Matrix bwdA_, bwdB_;       ///< backward gradient ping-pong
    Matrix lossGrad_;          ///< MSE gradient buffer
    Matrix batchIn_, batchTgt_; ///< staged mini-batch rows

    std::vector<Matrix *> paramCache_;
    std::vector<Matrix *> gradCache_;
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_SEQUENTIAL_HH
