#include "nn/matrix.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            panic("fromRows: ragged row %zu (%zu vs %zu)", r, rows[r].size(),
                  m.cols_);
        for (size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::rowVector(const std::vector<double> &values)
{
    Matrix m(1, values.size());
    m.data_ = values;
    return m;
}

double &
Matrix::at(size_t r, size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(%zu, %zu) out of %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(%zu, %zu) out of %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    if (cols_ != other.rows_)
        panic("matmul shape mismatch: %zux%zu * %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    Matrix out(rows_, other.cols_);
    // ikj loop order: the inner loop strides contiguously through both
    // the output row and the rhs row, which matters for larger layers.
    for (size_t i = 0; i < rows_; ++i) {
        const double *lhs_row = &data_[i * cols_];
        double *out_row = &out.data_[i * other.cols_];
        for (size_t k = 0; k < cols_; ++k) {
            double lhs = lhs_row[k];
            if (lhs == 0.0)
                continue;
            const double *rhs_row = &other.data_[k * other.cols_];
            for (size_t j = 0; j < other.cols_; ++j)
                out_row[j] += lhs * rhs_row[j];
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c * rows_ + r] = data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    Matrix out = *this;
    out += other;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("operator+= shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    Matrix out = *this;
    out -= other;
    return out;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("operator-= shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("hadamard shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] *= other.data_[i];
    return out;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator*=(double scalar)
{
    for (double &v : data_)
        v *= scalar;
    return *this;
}

Matrix
Matrix::addRowBroadcast(const Matrix &rowvec) const
{
    if (rowvec.rows_ != 1 || rowvec.cols_ != cols_)
        panic("addRowBroadcast: bias is %zux%zu, need 1x%zu", rowvec.rows_,
              rowvec.cols_, cols_);
    Matrix out = *this;
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[r * cols_ + c] += rowvec.data_[c];
    return out;
}

Matrix
Matrix::columnSums() const
{
    Matrix out(1, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c] += data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::row(size_t r) const
{
    return rowRange(r, r + 1);
}

Matrix
Matrix::rowRange(size_t begin, size_t end) const
{
    if (begin > end || end > rows_)
        panic("rowRange [%zu, %zu) out of %zu rows", begin, end, rows_);
    Matrix out(end - begin, cols_);
    std::copy(data_.begin() + static_cast<long>(begin * cols_),
              data_.begin() + static_cast<long>(end * cols_),
              out.data_.begin());
    return out;
}

Matrix
Matrix::colRange(size_t begin, size_t end) const
{
    if (begin > end || end > cols_)
        panic("colRange [%zu, %zu) out of %zu cols", begin, end, cols_);
    Matrix out(rows_, end - begin);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = begin; c < end; ++c)
            out.data_[r * out.cols_ + (c - begin)] = data_[r * cols_ + c];
    return out;
}

void
Matrix::setBlock(size_t r0, size_t c0, const Matrix &block)
{
    if (r0 + block.rows_ > rows_ || c0 + block.cols_ > cols_)
        panic("setBlock %zux%zu at (%zu, %zu) overflows %zux%zu",
              block.rows_, block.cols_, r0, c0, rows_, cols_);
    for (size_t r = 0; r < block.rows_; ++r)
        for (size_t c = 0; c < block.cols_; ++c)
            data_[(r0 + r) * cols_ + (c0 + c)] =
                block.data_[r * block.cols_ + c];
}

Matrix
Matrix::map(const std::function<double(double)> &fn) const
{
    Matrix out = *this;
    for (double &v : out.data_)
        v = fn(v);
    return out;
}

void
Matrix::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

void
Matrix::fillNormal(Rng &rng, double stddev)
{
    for (double &v : data_)
        v = rng.normal(0.0, stddev);
}

void
Matrix::fillHeNormal(Rng &rng, size_t fan_in)
{
    fillNormal(rng, std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1)));
}

void
Matrix::fillXavierUniform(Rng &rng, size_t fan_in, size_t fan_out)
{
    double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (double &v : data_)
        v = rng.uniform(-limit, limit);
}

double
Matrix::norm() const
{
    double total = 0.0;
    for (double v : data_)
        total += v * v;
    return std::sqrt(total);
}

bool
Matrix::hasNonFinite() const
{
    for (double v : data_)
        if (!std::isfinite(v))
            return true;
    return false;
}

} // namespace nn
} // namespace geo
