#include "nn/matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace geo {
namespace nn {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            panic("fromRows: ragged row %zu (%zu vs %zu)", r, rows[r].size(),
                  m.cols_);
        for (size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::rowVector(const std::vector<double> &values)
{
    Matrix m(1, values.size());
    m.data_ = values;
    return m;
}

void
Matrix::panicOutOfRange(size_t r, size_t c) const
{
    panic("Matrix::at(%zu, %zu) out of %zux%zu", r, c, rows_, cols_);
}

namespace {

/** Rhs column-stripe width of the blocked matmul kernel. */
constexpr size_t kColBlock = 256;

/** Depth (k) panel height of the blocked matmul kernel. */
constexpr size_t kDepthBlock = 128;

/** Flops (2*m*k*n) below which parallel dispatch is not worth it. */
constexpr double kParallelMinFlops = 8e6;

/**
 * Blocked ikj kernel over output rows [row_begin, row_end).
 *
 * Shapes that fit one block — every layer in the model zoo — take the
 * plain ikj path. Larger shapes are blocked so a kDepthBlock x
 * kColBlock panel of `b` stays cache-resident across rows. For every
 * output element (i, j) the k index still runs 0..K-1 in ascending
 * order (j-stripes regroup independent elements; k-panels are visited
 * in ascending order and accumulate into the same out[i][j]), so the
 * result is bit-identical to the naive ikj loop.
 */
// noinline: inlining into matmulInto discards the __restrict
// qualification and the inner-loop bound spills to the stack.
__attribute__((noinline)) void
matmulRows(const double *__restrict a, const double *__restrict b,
           double *__restrict out, size_t row_begin, size_t row_end,
           size_t K, size_t N)
{
    if (N <= kColBlock && K <= kDepthBlock) {
        for (size_t i = row_begin; i < row_end; ++i) {
            const double *a_row = a + i * K;
            double *out_row = out + i * N;
            for (size_t k = 0; k < K; ++k) {
                const double lhs = a_row[k];
                if (lhs == 0.0)
                    continue;
                const double *b_row = b + k * N;
                for (size_t j = 0; j < N; ++j)
                    out_row[j] += lhs * b_row[j];
            }
        }
        return;
    }
    for (size_t jj = 0; jj < N; jj += kColBlock) {
        const size_t width = std::min(N - jj, kColBlock);
        for (size_t kk = 0; kk < K; kk += kDepthBlock) {
            const size_t k_end = std::min(K, kk + kDepthBlock);
            for (size_t i = row_begin; i < row_end; ++i) {
                const double *a_row = a + i * K;
                double *out_row = out + i * N + jj;
                for (size_t k = kk; k < k_end; ++k) {
                    const double lhs = a_row[k];
                    if (lhs == 0.0)
                        continue;
                    const double *b_row = b + k * N + jj;
                    for (size_t j = 0; j < width; ++j)
                        out_row[j] += lhs * b_row[j];
                }
            }
        }
    }
}

} // namespace

Matrix
Matrix::matmul(const Matrix &other) const
{
    Matrix out;
    matmulInto(other, out);
    return out;
}

void
Matrix::matmulInto(const Matrix &other, Matrix &out) const
{
    if (cols_ != other.rows_)
        panic("matmul shape mismatch: %zux%zu * %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    if (&out == this || &out == &other)
        panic("matmulInto: output must not alias an operand");
    out.reshape(rows_, other.cols_);
    if (rows_ == 0 || other.cols_ == 0)
        return;
    const double *a = data_.data();
    const double *b = other.data_.data();
    double *o = out.data_.data();
    const size_t K = cols_, N = other.cols_;

    util::ThreadPool &pool = util::ThreadPool::global();
    const double flops = 2.0 * static_cast<double>(rows_) *
                         static_cast<double>(K) * static_cast<double>(N);
    if (pool.workerCount() > 1 && flops >= kParallelMinFlops &&
        rows_ > 1) {
        // Rows are independent, so chunking cannot change results.
        size_t grain =
            std::max<size_t>(1, rows_ / (4 * pool.workerCount()));
        pool.parallelFor(rows_, grain,
                         [&](size_t, size_t begin, size_t end) {
                             matmulRows(a, b, o, begin, end, K, N);
                         });
    } else {
        matmulRows(a, b, o, 0, rows_, K, N);
    }
}

Matrix
Matrix::matmulNaive(const Matrix &other) const
{
    if (cols_ != other.rows_)
        panic("matmul shape mismatch: %zux%zu * %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    Matrix out(rows_, other.cols_);
    // ikj loop order: the inner loop strides contiguously through both
    // the output row and the rhs row.
    for (size_t i = 0; i < rows_; ++i) {
        const double *lhs_row = &data_[i * cols_];
        double *out_row = &out.data_[i * other.cols_];
        for (size_t k = 0; k < cols_; ++k) {
            double lhs = lhs_row[k];
            if (lhs == 0.0)
                continue;
            const double *rhs_row = &other.data_[k * other.cols_];
            for (size_t j = 0; j < other.cols_; ++j)
                out_row[j] += lhs * rhs_row[j];
        }
    }
    return out;
}

Matrix
Matrix::matmulTransposed(const Matrix &other) const
{
    Matrix out;
    matmulTransposedInto(other, out);
    return out;
}

void
Matrix::matmulTransposedInto(const Matrix &other, Matrix &out) const
{
    if (cols_ != other.cols_)
        panic("matmulTransposed shape mismatch: %zux%zu * (%zux%zu)^T",
              rows_, cols_, other.rows_, other.cols_);
    if (&out == this || &out == &other)
        panic("matmulTransposedInto: output must not alias an operand");
    out.reshape(rows_, other.rows_);
    const size_t K = cols_, N = other.rows_;
    const double *__restrict a = data_.data();
    const double *__restrict b = other.data_.data();
    double *__restrict o = out.data_.data();
    // Row-by-row dot products: both operands are read contiguously and
    // k ascends per element, matching a.matmulNaive(b.transposed())
    // bit-for-bit (including its zero-lhs skip).
    for (size_t i = 0; i < rows_; ++i) {
        const double *a_row = &a[i * K];
        double *out_row = &o[i * N];
        for (size_t j = 0; j < N; ++j) {
            const double *b_row = &b[j * K];
            double acc = 0.0;
            for (size_t k = 0; k < K; ++k) {
                const double lhs = a_row[k];
                if (lhs == 0.0)
                    continue;
                acc += lhs * b_row[k];
            }
            out_row[j] = acc;
        }
    }
}

Matrix
Matrix::transposedMatmul(const Matrix &other) const
{
    Matrix out;
    transposedMatmulInto(other, out);
    return out;
}

void
Matrix::transposedMatmulInto(const Matrix &other, Matrix &out) const
{
    if (rows_ != other.rows_)
        panic("transposedMatmul shape mismatch: (%zux%zu)^T * %zux%zu",
              rows_, cols_, other.rows_, other.cols_);
    if (&out == this || &out == &other)
        panic("transposedMatmulInto: output must not alias an operand");
    out.reshape(cols_, other.cols_);
    const size_t K = cols_, N = other.cols_;
    const double *__restrict a = data_.data();
    const double *__restrict b = other.data_.data();
    double *__restrict o = out.data_.data();
    // Accumulate rank-1 updates in ascending row order: per output
    // element the shared row index ascends exactly as in
    // transposed().matmulNaive(other).
    for (size_t i = 0; i < rows_; ++i) {
        const double *a_row = &a[i * K];
        const double *b_row = &b[i * N];
        for (size_t k = 0; k < K; ++k) {
            const double lhs = a_row[k];
            if (lhs == 0.0)
                continue;
            double *out_row = &o[k * N];
            for (size_t j = 0; j < N; ++j)
                out_row[j] += lhs * b_row[j];
        }
    }
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c * rows_ + r] = data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    Matrix out = *this;
    out += other;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("operator+= shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    Matrix out = *this;
    out -= other;
    return out;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("operator-= shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    Matrix out = *this;
    out.hadamardInPlace(other);
    return out;
}

Matrix &
Matrix::hadamardInPlace(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("hadamard shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] *= other.data_[i];
    return *this;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator*=(double scalar)
{
    for (double &v : data_)
        v *= scalar;
    return *this;
}

Matrix
Matrix::addRowBroadcast(const Matrix &rowvec) const
{
    Matrix out = *this;
    out.addRowBroadcastInPlace(rowvec);
    return out;
}

Matrix &
Matrix::addRowBroadcastInPlace(const Matrix &rowvec)
{
    if (rowvec.rows_ != 1 || rowvec.cols_ != cols_)
        panic("addRowBroadcast: bias is %zux%zu, need 1x%zu", rowvec.rows_,
              rowvec.cols_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            data_[r * cols_ + c] += rowvec.data_[c];
    return *this;
}

Matrix
Matrix::columnSums() const
{
    Matrix out(1, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c] += data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::row(size_t r) const
{
    return rowRange(r, r + 1);
}

Matrix
Matrix::rowRange(size_t begin, size_t end) const
{
    if (begin > end || end > rows_)
        panic("rowRange [%zu, %zu) out of %zu rows", begin, end, rows_);
    Matrix out(end - begin, cols_);
    std::copy(data_.begin() + static_cast<long>(begin * cols_),
              data_.begin() + static_cast<long>(end * cols_),
              out.data_.begin());
    return out;
}

Matrix
Matrix::colRange(size_t begin, size_t end) const
{
    if (begin > end || end > cols_)
        panic("colRange [%zu, %zu) out of %zu cols", begin, end, cols_);
    Matrix out(rows_, end - begin);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = begin; c < end; ++c)
            out.data_[r * out.cols_ + (c - begin)] = data_[r * cols_ + c];
    return out;
}

void
Matrix::setBlock(size_t r0, size_t c0, const Matrix &block)
{
    if (r0 + block.rows_ > rows_ || c0 + block.cols_ > cols_)
        panic("setBlock %zux%zu at (%zu, %zu) overflows %zux%zu",
              block.rows_, block.cols_, r0, c0, rows_, cols_);
    for (size_t r = 0; r < block.rows_; ++r)
        for (size_t c = 0; c < block.cols_; ++c)
            data_[(r0 + r) * cols_ + (c0 + c)] =
                block.data_[r * block.cols_ + c];
}

Matrix
Matrix::map(const std::function<double(double)> &fn) const
{
    Matrix out = *this;
    for (double &v : out.data_)
        v = fn(v);
    return out;
}

void
Matrix::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

void
Matrix::reshape(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

void
Matrix::fillNormal(Rng &rng, double stddev)
{
    for (double &v : data_)
        v = rng.normal(0.0, stddev);
}

void
Matrix::fillHeNormal(Rng &rng, size_t fan_in)
{
    fillNormal(rng, std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1)));
}

void
Matrix::fillXavierUniform(Rng &rng, size_t fan_in, size_t fan_out)
{
    double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (double &v : data_)
        v = rng.uniform(-limit, limit);
}

double
Matrix::norm() const
{
    double total = 0.0;
    for (double v : data_)
        total += v * v;
    return std::sqrt(total);
}

bool
Matrix::hasNonFinite() const
{
    for (double v : data_)
        if (!std::isfinite(v))
            return true;
    return false;
}

} // namespace nn
} // namespace geo
