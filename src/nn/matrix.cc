#include "nn/matrix.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace geo {
namespace nn {

std::atomic<uint64_t> Matrix::allocCount_{0};

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
    if (!data_.empty())
        countAllocation();
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
    if (!data_.empty())
        countAllocation();
}

Matrix::Matrix(const Matrix &other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_)
{
    if (!data_.empty())
        countAllocation();
}

Matrix &
Matrix::operator=(const Matrix &other)
{
    if (this == &other)
        return *this;
    // vector copy-assignment reuses the existing buffer when capacity
    // suffices; only a genuine regrow counts as an acquisition.
    if (other.data_.size() > data_.capacity())
        countAllocation();
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    return *this;
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            panic("fromRows: ragged row %zu (%zu vs %zu)", r, rows[r].size(),
                  m.cols_);
        for (size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::rowVector(const std::vector<double> &values)
{
    Matrix m(1, values.size());
    m.data_ = values;
    return m;
}

void
Matrix::panicOutOfRange(size_t r, size_t c) const
{
    panic("Matrix::at(%zu, %zu) out of %zux%zu", r, c, rows_, cols_);
}

namespace {

/**
 * Micro-tile width: output columns (one packed B panel). The tile is
 * one output row by sixteen columns — eight two-lane vector
 * accumulators, which is half the SSE register file and leaves room
 * for the broadcast and panel loads. Taller tiles (4 x 8 doubles =
 * all sixteen xmm registers) spill the accumulators to the stack and
 * every update round-trips through memory — measured ~1.45x slower
 * at the training shapes.
 */
constexpr size_t kMicroCols = 16;

/** Row stride of a packed panel holding w live columns: narrow tail
 * panels are zero-padded up to half or full tile width so the
 * register kernels can run on every panel. */
constexpr size_t
panelStride(size_t w)
{
    return w <= 8 ? 8 : kMicroCols;
}

/** Flops (2*m*k*n) below which parallel dispatch is not worth it. */
constexpr double kParallelMinFlops = 8e6;

/** Which product a kernel plan is being asked about. */
enum class GemmOp
{
    AB,  ///< matmul:            out(m,n) = A(m,k) * B(k,n)
    ABt, ///< matmulTransposed:  out(m,n) = A(m,k) * B(n,k)^T
    AtB, ///< transposedMatmul:  out(m,n) = A(k,m)^T * B(k,n)
};

/**
 * Shape-dependent kernel selection — the single source of truth.
 *
 * The packed register-blocked kernel pays one pass over B (and, for
 * AtB, one over A) to lay panels out contiguously, then writes each
 * output element exactly once from a register accumulator. The plain
 * loops skip that toll but re-walk the output (AB, AtB) or serialize
 * on a dot-product chain (ABt), so they win only while everything
 * fits in cache and the packing pass cannot be amortized.
 *
 * Crossovers measured on the 1-core container (GCC, -O2, best-of-25
 * per shape, packing cost charged to the packed side; speedup =
 * plain_ms / packed_ms). Shapes are m x k x n of the *output-shaped*
 * product, i.e. out is m x n and k is the depth axis. With the
 * register-resident vector tiles the packed kernel wins nearly
 * everywhere; only degenerate shapes still favor the plain loops:
 *
 *   AB   16x16x16  2.70x   48x48x48  3.85x   256x256x256  3.19x
 *        512x64x512  2.76x   64x6x338  3.05x   8x64x64  2.73x
 *        8x8x8  1.26x   64x1x64  2.82x   64x64x6  2.12x
 *        -- losers --
 *        1x64x64  0.65x   1x338x338  0.34x  (single output row
 *        cannot amortize the pack pass over B)
 *        2x338x338  0.61x   2x128x256  0.77x   3x16x4  0.56x
 *        (2-3 rows amortize packing only in a narrow band; routed
 *        plain below 4 rows, and 4..15 rows only while B stays
 *        L2-resident at k*n <= 16K doubles: 3x338x338 is 0.76x)
 *        64x64x1  0.98x   4x4x4  0.53x  (k*n < 64: tile setup
 *        dominates the whole product)
 *   ABt  1x64x64  1.28x   2x8x8  1.36x   2x64x64  2.37x
 *        64x96x4  2.77x   64x96x6  3.72x   64x1x64  5.58x
 *        48x48x48  6.67x   256x256x256  5.70x   64x338x6  3.30x
 *        (even one output row wins: the plain loop serializes on a
 *        dot-product chain per element and strides B)
 *        -- losers --
 *        64x96x1  0.62x   1x338x1  0.37x  (panel padded 1 -> 8
 *        wide, 8x pack bandwidth wasted)
 *        2x2x2  0.33x   4x16x2  0.66x   2x256x2  0.98x
 *        (n = 2-3 pays only when the a-side traffic m*k dominates
 *        the pack: 64x96x2 is 1.27x, 8x338x2 is 1.02x)
 *   AtB  4x64x96  1.72x   6x64x96  1.98x   6x2x96  1.82x
 *        24x64x4  1.47x   48x64x6  2.12x   16x16x16  2.21x
 *        256x256x256  2.78x
 *        -- losers --
 *        1x64x96  0.54x   2x64x4  0.45x   3x4x5  0.43x
 *        16x64x2  0.80x   24x64x1  0.61x   4x338x8  0.99x
 *        2x2x96 (depth 2)  0.94x  (both operands are packed, so
 *        small outputs never amortize the two passes: needs 4+ rows,
 *        4+ cols and m*n >= 64 output elements)
 */
/**
 * Calibration override: GEO_GEMM_FORCE=plain|packed pins every shape
 * to one kernel. This is how the crossover table above is measured —
 * time the same workload under both settings in the shipping binary —
 * and it is a production escape hatch if a host routes a shape badly.
 */
int
forcedKernel()
{
    static const int force = [] {
        const char *env = std::getenv("GEO_GEMM_FORCE");
        if (env == nullptr)
            return 0;
        if (std::string_view(env) == "plain")
            return 1;
        if (std::string_view(env) == "packed")
            return 2;
        return 0;
    }();
    return force;
}

bool
usePackedKernel(GemmOp op, size_t m, size_t k, size_t n)
{
    const int force = forcedKernel();
    if (force == 1)
        return false;
    if (force == 2)
        return true;
    switch (op) {
      case GemmOp::AB:
        // k*n >= 64 keeps tile setup from dominating tiny products;
        // few-row products amortize the B pack only while B stays
        // L2-resident (16K doubles = 128 KiB).
        return n >= 2 && k * n >= 64 &&
               (m >= 16 || (m >= 4 && k * n <= 16384));
      case GemmOp::ABt:
        // The plain loop serializes on one dot-product chain per
        // output element, so even one output row wins; n = 2-3 pays
        // only when the a-side traffic dwarfs the pack pass.
        return n >= 4 || (n >= 2 && m * k >= 2048);
      case GemmOp::AtB:
        // Both operands are packed here, so the output has to be
        // large enough in both directions to amortize two passes.
        return m >= 4 && n >= 4 && m * n >= 64;
    }
    return false;
}

/** Doubles needed to hold all packed panels of a K x N operand. */
size_t
packedPanelDoubles(size_t K, size_t N)
{
    const size_t panels = (N + kMicroCols - 1) / kMicroCols;
    return panels * K * kMicroCols;
}

/**
 * Per-thread panel scratch. Two independent buffers because AtB packs
 * both operands; capacity persists across calls, so steady-state
 * training loops never allocate here.
 */
std::vector<double> &
packScratchA()
{
    static thread_local std::vector<double> buf;
    return buf;
}

std::vector<double> &
packScratchB()
{
    static thread_local std::vector<double> buf;
    return buf;
}

/**
 * Pack B (depth x N row-major, row stride ldb) into kMicroCols-wide
 * column panels: panel p holds columns [p*W, p*W+w) as depth
 * contiguous rows of stride panelStride(w). Live columns are copied
 * verbatim — pad lanes are zero and are never stored by the kernels,
 * so results over the packed operand stay bitwise faithful.
 */
void
packColumnPanels(const double *__restrict b, size_t ldb, size_t depth,
                 size_t N, double *__restrict pack)
{
    for (size_t j0 = 0, p = 0; j0 < N; j0 += kMicroCols, ++p) {
        const size_t w = std::min(kMicroCols, N - j0);
        const size_t pw = panelStride(w);
        double *panel = pack + p * depth * kMicroCols;
        for (size_t k = 0; k < depth; ++k) {
            const double *src = b + k * ldb + j0;
            double *dst = panel + k * pw;
            for (size_t j = 0; j < w; ++j)
                dst[j] = src[j];
            for (size_t j = w; j < pw; ++j)
                dst[j] = 0.0;
        }
    }
}

/**
 * Pack B^T into column panels without materializing the transpose:
 * B is N x depth row-major; panel column j of the packed operand is
 * B's row (j0 + j), read contiguously along its depth axis.
 */
void
packTransposedPanels(const double *__restrict b, size_t depth, size_t N,
                     double *__restrict pack)
{
    for (size_t j0 = 0, p = 0; j0 < N; j0 += kMicroCols, ++p) {
        const size_t w = std::min(kMicroCols, N - j0);
        const size_t pw = panelStride(w);
        double *panel = pack + p * depth * kMicroCols;
        if (w < pw)
            std::fill(panel, panel + depth * pw, 0.0);
        for (size_t j = 0; j < w; ++j) {
            const double *src = b + (j0 + j) * depth;
            for (size_t k = 0; k < depth; ++k)
                panel[k * pw + j] = src[k];
        }
    }
}

/** Transpose A (rows x K) into pack (K x rows, row-major). */
void
packTransposedLhs(const double *__restrict a, size_t rows, size_t K,
                  double *__restrict pack)
{
    for (size_t i = 0; i < rows; ++i) {
        const double *src = a + i * K;
        for (size_t k = 0; k < K; ++k)
            pack[k * rows + i] = src[k];
    }
}

/**
 * Two-lane vector helpers for the micro-tiles. A scalar accumulator
 * array (`double acc[16]`) does not survive the zero-skip branch: the
 * compiler keeps the array in memory and every update round-trips
 * through the stack. Named vector locals force register allocation.
 * Lane arithmetic is the same IEEE double multiply/add the scalar
 * loop performs, in the same ascending-k order with the same zero-lhs
 * skip, so results stay bit-identical to matmulNaive (which also
 * starts from a zeroed accumulator and stores each element once).
 */
typedef double v2df __attribute__((vector_size(16), may_alias));

inline v2df
loadu2(const double *p)
{
    v2df v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeu2(double *p, v2df v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

/** 1 x kMicroCols tile with register-resident accumulators. */
inline void
microTileFull(const double *__restrict a, size_t K,
              const double *__restrict panel, double *__restrict out)
{
    static_assert(kMicroCols == 16, "accumulator count is hand-unrolled");
    v2df c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
    for (size_t k = 0; k < K; ++k) {
        const double lhs = a[k];
        if (lhs == 0.0)
            continue;
        const v2df l = {lhs, lhs};
        const double *__restrict bp = panel + k * kMicroCols;
        c0 += l * loadu2(bp);
        c1 += l * loadu2(bp + 2);
        c2 += l * loadu2(bp + 4);
        c3 += l * loadu2(bp + 6);
        c4 += l * loadu2(bp + 8);
        c5 += l * loadu2(bp + 10);
        c6 += l * loadu2(bp + 12);
        c7 += l * loadu2(bp + 14);
    }
    storeu2(out, c0);
    storeu2(out + 2, c1);
    storeu2(out + 4, c2);
    storeu2(out + 6, c3);
    storeu2(out + 8, c4);
    storeu2(out + 10, c5);
    storeu2(out + 12, c6);
    storeu2(out + 14, c7);
}

/** 1 x 8 tile over a stride-8 (padded) panel; stores w <= 8 columns.
 * Pad lanes accumulate lhs * 0.0 in their own register lane and are
 * never stored, so live columns are untouched by the padding. */
inline void
microTileHalf(const double *__restrict a, size_t K,
              const double *__restrict panel, double *__restrict out,
              size_t w)
{
    v2df c0{}, c1{}, c2{}, c3{};
    for (size_t k = 0; k < K; ++k) {
        const double lhs = a[k];
        if (lhs == 0.0)
            continue;
        const v2df l = {lhs, lhs};
        const double *__restrict bp = panel + k * 8;
        c0 += l * loadu2(bp);
        c1 += l * loadu2(bp + 2);
        c2 += l * loadu2(bp + 4);
        c3 += l * loadu2(bp + 6);
    }
    if (w == 8) {
        storeu2(out, c0);
        storeu2(out + 2, c1);
        storeu2(out + 4, c2);
        storeu2(out + 6, c3);
        return;
    }
    double t[8];
    storeu2(t, c0);
    storeu2(t + 2, c1);
    storeu2(t + 4, c2);
    storeu2(t + 6, c3);
    for (size_t j = 0; j < w; ++j)
        out[j] = t[j];
}

/** Full-width register tile with a partial store for 8 < w < 16. */
inline void
microTileFullPartial(const double *__restrict a, size_t K,
                     const double *__restrict panel,
                     double *__restrict out, size_t w)
{
    double t[kMicroCols];
    microTileFull(a, K, panel, t);
    for (size_t j = 0; j < w; ++j)
        out[j] = t[j];
}

/**
 * Register-blocked product over pre-packed column panels for output
 * rows [row_begin, row_end). `a` is the (possibly packed-transposed)
 * lhs with row stride K; `packed` holds ceil(N / W) panels from
 * packColumnPanels / packTransposedPanels. Panels are visited
 * left-to-right and rows top-down, but each output element's depth
 * walk is the full ascending 0..K-1, so ordering across tiles cannot
 * change any value.
 */
// noinline: keeps the __restrict qualification from being discarded
// when inlined into the dispatching member functions.
__attribute__((noinline)) void
gemmPackedRows(const double *__restrict a, const double *__restrict packed,
               double *__restrict out, size_t row_begin, size_t row_end,
               size_t K, size_t N)
{
    for (size_t j0 = 0, p = 0; j0 < N; j0 += kMicroCols, ++p) {
        const size_t w = std::min(kMicroCols, N - j0);
        const double *panel = packed + p * K * kMicroCols;
        if (w == kMicroCols) {
            for (size_t i = row_begin; i < row_end; ++i)
                microTileFull(a + i * K, K, panel, out + i * N + j0);
        } else if (w > 8) {
            for (size_t i = row_begin; i < row_end; ++i)
                microTileFullPartial(a + i * K, K, panel,
                                     out + i * N + j0, w);
        } else {
            for (size_t i = row_begin; i < row_end; ++i)
                microTileHalf(a + i * K, K, panel, out + i * N + j0, w);
        }
    }
}

/**
 * Plain ikj kernel over output rows [row_begin, row_end) — the
 * below-crossover path. Identical loop to matmulNaive restricted to a
 * row range.
 */
// noinline: inlining into matmulInto discards the __restrict
// qualification and the inner-loop bound spills to the stack.
__attribute__((noinline)) void
matmulRows(const double *__restrict a, const double *__restrict b,
           double *__restrict out, size_t row_begin, size_t row_end,
           size_t K, size_t N)
{
    for (size_t i = row_begin; i < row_end; ++i) {
        const double *a_row = a + i * K;
        double *out_row = out + i * N;
        for (size_t k = 0; k < K; ++k) {
            const double lhs = a_row[k];
            if (lhs == 0.0)
                continue;
            const double *b_row = b + k * N;
            for (size_t j = 0; j < N; ++j)
                out_row[j] += lhs * b_row[j];
        }
    }
}

/** Row-parallel dispatch shared by the packed and plain kernels. */
template <typename RowKernel>
void
dispatchRows(size_t rows, size_t K, size_t N, const RowKernel &kernel)
{
    util::ThreadPool &pool = util::ThreadPool::global();
    const double flops = 2.0 * static_cast<double>(rows) *
                         static_cast<double>(K) * static_cast<double>(N);
    if (pool.workerCount() > 1 && flops >= kParallelMinFlops && rows > 1) {
        // Rows are independent, so chunking cannot change results.
        size_t grain =
            std::max<size_t>(1, rows / (4 * pool.workerCount()));
        pool.parallelFor(rows, grain,
                         [&](size_t, size_t begin, size_t end) {
                             kernel(begin, end);
                         });
    } else {
        kernel(0, rows);
    }
}

} // namespace

Matrix
Matrix::matmul(const Matrix &other) const
{
    Matrix out;
    matmulInto(other, out);
    return out;
}

void
Matrix::matmulInto(const Matrix &other, Matrix &out) const
{
    if (cols_ != other.rows_)
        panic("matmul shape mismatch: %zux%zu * %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    if (&out == this || &out == &other)
        panic("matmulInto: output must not alias an operand");
    out.reshape(rows_, other.cols_);
    if (rows_ == 0 || other.cols_ == 0)
        return;
    const double *a = data_.data();
    const double *b = other.data_.data();
    double *o = out.data_.data();
    const size_t K = cols_, N = other.cols_;

    if (K > 0 && usePackedKernel(GemmOp::AB, rows_, K, N)) {
        // Pack once on the caller thread; row workers share the panels.
        std::vector<double> &pack = packScratchB();
        pack.resize(packedPanelDoubles(K, N));
        packColumnPanels(b, N, K, N, pack.data());
        const double *pk = pack.data();
        dispatchRows(rows_, K, N, [&](size_t begin, size_t end) {
            gemmPackedRows(a, pk, o, begin, end, K, N);
        });
    } else {
        dispatchRows(rows_, K, N, [&](size_t begin, size_t end) {
            matmulRows(a, b, o, begin, end, K, N);
        });
    }
}

Matrix
Matrix::matmulNaive(const Matrix &other) const
{
    if (cols_ != other.rows_)
        panic("matmul shape mismatch: %zux%zu * %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    Matrix out(rows_, other.cols_);
    // ikj loop order: the inner loop strides contiguously through both
    // the output row and the rhs row.
    for (size_t i = 0; i < rows_; ++i) {
        const double *lhs_row = &data_[i * cols_];
        double *out_row = &out.data_[i * other.cols_];
        for (size_t k = 0; k < cols_; ++k) {
            double lhs = lhs_row[k];
            if (lhs == 0.0)
                continue;
            const double *rhs_row = &other.data_[k * other.cols_];
            for (size_t j = 0; j < other.cols_; ++j)
                out_row[j] += lhs * rhs_row[j];
        }
    }
    return out;
}

Matrix
Matrix::matmulTransposed(const Matrix &other) const
{
    Matrix out;
    matmulTransposedInto(other, out);
    return out;
}

void
Matrix::matmulTransposedInto(const Matrix &other, Matrix &out) const
{
    if (cols_ != other.cols_)
        panic("matmulTransposed shape mismatch: %zux%zu * (%zux%zu)^T",
              rows_, cols_, other.rows_, other.cols_);
    if (&out == this || &out == &other)
        panic("matmulTransposedInto: output must not alias an operand");
    out.reshape(rows_, other.rows_);
    if (rows_ == 0 || other.rows_ == 0)
        return;
    const size_t K = cols_, N = other.rows_;
    const double *__restrict a = data_.data();
    const double *__restrict b = other.data_.data();
    double *__restrict o = out.data_.data();

    if (K > 0 && usePackedKernel(GemmOp::ABt, rows_, K, N)) {
        // Packing B^T into column panels turns the strided dot-product
        // walk into the same contiguous panel sweep as matmul; the
        // per-element k order (and zero-lhs skip) is unchanged.
        std::vector<double> &pack = packScratchB();
        pack.resize(packedPanelDoubles(K, N));
        packTransposedPanels(b, K, N, pack.data());
        const double *pk = pack.data();
        dispatchRows(rows_, K, N, [&](size_t begin, size_t end) {
            gemmPackedRows(a, pk, o, begin, end, K, N);
        });
        return;
    }
    // Row-by-row dot products: both operands are read contiguously and
    // k ascends per element, matching a.matmulNaive(b.transposed())
    // bit-for-bit (including its zero-lhs skip).
    for (size_t i = 0; i < rows_; ++i) {
        const double *a_row = &a[i * K];
        double *out_row = &o[i * N];
        for (size_t j = 0; j < N; ++j) {
            const double *b_row = &b[j * K];
            double acc = 0.0;
            for (size_t k = 0; k < K; ++k) {
                const double lhs = a_row[k];
                if (lhs == 0.0)
                    continue;
                acc += lhs * b_row[k];
            }
            out_row[j] = acc;
        }
    }
}

Matrix
Matrix::transposedMatmul(const Matrix &other) const
{
    Matrix out;
    transposedMatmulInto(other, out);
    return out;
}

void
Matrix::transposedMatmulInto(const Matrix &other, Matrix &out) const
{
    if (rows_ != other.rows_)
        panic("transposedMatmul shape mismatch: (%zux%zu)^T * %zux%zu",
              rows_, cols_, other.rows_, other.cols_);
    if (&out == this || &out == &other)
        panic("transposedMatmulInto: output must not alias an operand");
    out.reshape(cols_, other.cols_);
    if (cols_ == 0 || other.cols_ == 0)
        return;
    const size_t K = cols_, N = other.cols_;
    const double *__restrict a = data_.data();
    const double *__restrict b = other.data_.data();
    double *__restrict o = out.data_.data();

    if (rows_ > 0 && usePackedKernel(GemmOp::AtB, cols_, rows_, N)) {
        // Pack A^T explicitly (lhs rows must be contiguous for the
        // micro-kernel) and B into column panels; the shared row index
        // still ascends per output element exactly as in
        // transposed().matmulNaive(other), zero-lhs skip included.
        std::vector<double> &at = packScratchA();
        at.resize(rows_ * cols_);
        packTransposedLhs(a, rows_, cols_, at.data());
        std::vector<double> &pack = packScratchB();
        pack.resize(packedPanelDoubles(rows_, N));
        packColumnPanels(b, N, rows_, N, pack.data());
        const double *atp = at.data();
        const double *pk = pack.data();
        const size_t depth = rows_;
        dispatchRows(cols_, depth, N, [&](size_t begin, size_t end) {
            gemmPackedRows(atp, pk, o, begin, end, depth, N);
        });
        return;
    }
    // Accumulate rank-1 updates in ascending row order: per output
    // element the shared row index ascends exactly as in
    // transposed().matmulNaive(other).
    for (size_t i = 0; i < rows_; ++i) {
        const double *a_row = &a[i * K];
        const double *b_row = &b[i * N];
        for (size_t k = 0; k < K; ++k) {
            const double lhs = a_row[k];
            if (lhs == 0.0)
                continue;
            double *out_row = &o[k * N];
            for (size_t j = 0; j < N; ++j)
                out_row[j] += lhs * b_row[j];
        }
    }
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c * rows_ + r] = data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    Matrix out = *this;
    out += other;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("operator+= shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    Matrix out = *this;
    out -= other;
    return out;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("operator-= shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    Matrix out = *this;
    out.hadamardInPlace(other);
    return out;
}

Matrix &
Matrix::hadamardInPlace(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("hadamard shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
              other.rows_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] *= other.data_[i];
    return *this;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator*=(double scalar)
{
    for (double &v : data_)
        v *= scalar;
    return *this;
}

Matrix
Matrix::addRowBroadcast(const Matrix &rowvec) const
{
    Matrix out = *this;
    out.addRowBroadcastInPlace(rowvec);
    return out;
}

Matrix &
Matrix::addRowBroadcastInPlace(const Matrix &rowvec)
{
    if (rowvec.rows_ != 1 || rowvec.cols_ != cols_)
        panic("addRowBroadcast: bias is %zux%zu, need 1x%zu", rowvec.rows_,
              rowvec.cols_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            data_[r * cols_ + c] += rowvec.data_[c];
    return *this;
}

Matrix
Matrix::columnSums() const
{
    Matrix out(1, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c] += data_[r * cols_ + c];
    return out;
}

void
Matrix::columnSumsInto(Matrix &out) const
{
    if (&out == this)
        panic("columnSumsInto: output must not alias the source");
    out.reshape(1, cols_);
    // Same ascending-row accumulation as columnSums, so the result is
    // bit-identical to the allocating variant.
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.data_[c] += data_[r * cols_ + c];
}

Matrix
Matrix::row(size_t r) const
{
    return rowRange(r, r + 1);
}

Matrix
Matrix::rowRange(size_t begin, size_t end) const
{
    if (begin > end || end > rows_)
        panic("rowRange [%zu, %zu) out of %zu rows", begin, end, rows_);
    Matrix out(end - begin, cols_);
    std::copy(data_.begin() + static_cast<long>(begin * cols_),
              data_.begin() + static_cast<long>(end * cols_),
              out.data_.begin());
    return out;
}

Matrix
Matrix::colRange(size_t begin, size_t end) const
{
    if (begin > end || end > cols_)
        panic("colRange [%zu, %zu) out of %zu cols", begin, end, cols_);
    Matrix out(rows_, end - begin);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = begin; c < end; ++c)
            out.data_[r * out.cols_ + (c - begin)] = data_[r * cols_ + c];
    return out;
}

void
Matrix::setBlock(size_t r0, size_t c0, const Matrix &block)
{
    if (r0 + block.rows_ > rows_ || c0 + block.cols_ > cols_)
        panic("setBlock %zux%zu at (%zu, %zu) overflows %zux%zu",
              block.rows_, block.cols_, r0, c0, rows_, cols_);
    for (size_t r = 0; r < block.rows_; ++r)
        for (size_t c = 0; c < block.cols_; ++c)
            data_[(r0 + r) * cols_ + (c0 + c)] =
                block.data_[r * block.cols_ + c];
}

Matrix
Matrix::map(const std::function<double(double)> &fn) const
{
    Matrix out = *this;
    for (double &v : out.data_)
        v = fn(v);
    return out;
}

void
Matrix::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

void
Matrix::reshape(size_t rows, size_t cols)
{
    // vector::assign reuses the buffer when capacity suffices; only a
    // genuine regrow counts as an acquisition.
    if (rows * cols > data_.capacity())
        countAllocation();
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

void
Matrix::fillNormal(Rng &rng, double stddev)
{
    for (double &v : data_)
        v = rng.normal(0.0, stddev);
}

void
Matrix::fillHeNormal(Rng &rng, size_t fan_in)
{
    fillNormal(rng, std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1)));
}

void
Matrix::fillXavierUniform(Rng &rng, size_t fan_in, size_t fan_out)
{
    double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (double &v : data_)
        v = rng.uniform(-limit, limit);
}

double
Matrix::norm() const
{
    double total = 0.0;
    for (double v : data_)
        total += v * v;
    return std::sqrt(total);
}

bool
Matrix::hasNonFinite() const
{
    for (double v : data_)
        if (!std::isfinite(v))
            return true;
    return false;
}

} // namespace nn
} // namespace geo
