/**
 * @file
 * Simple (Elman) recurrent layer with full backpropagation through time.
 *
 * Recurrent layers consume a window of past accesses: the input row is
 * the concatenation of `timesteps` feature vectors of width
 * `featuresPerStep` (oldest first), and the output is the final hidden
 * state. This mirrors feeding a (timesteps, features) sequence to a
 * Keras recurrent layer and taking its last output, which is how the
 * paper's models 12-23 are constructed.
 */

#ifndef GEO_NN_SIMPLE_RNN_LAYER_HH
#define GEO_NN_SIMPLE_RNN_LAYER_HH

#include "nn/activation.hh"
#include "nn/layer.hh"

namespace geo {
namespace nn {

/**
 * Elman RNN: h_t = act(x_t Wx + h_{t-1} Wh + b), output h_T.
 */
class SimpleRnnLayer : public Layer
{
  public:
    /**
     * @param features_per_step width of each timestep's feature vector.
     * @param timesteps number of unrolled steps (input width is
     *        features_per_step * timesteps).
     * @param hidden_size number of recurrent units.
     * @param act activation (the paper uses ReLU).
     * @param rng weight initializer source.
     */
    SimpleRnnLayer(size_t features_per_step, size_t timesteps,
                   size_t hidden_size, Activation act, Rng &rng);

    Matrix forward(const Matrix &input, bool training) override;
    Matrix backward(const Matrix &grad_output) override;

    std::vector<Matrix *> parameters() override;
    std::vector<Matrix *> gradients() override;

    size_t inputSize() const override { return features_ * timesteps_; }
    size_t outputSize() const override { return hidden_; }
    std::string describe() const override;
    std::string typeName() const override { return "simple_rnn"; }

    size_t timesteps() const { return timesteps_; }
    size_t featuresPerStep() const { return features_; }

  private:
    size_t features_;
    size_t timesteps_;
    size_t hidden_;
    Activation act_;

    Matrix wx_; ///< features x hidden
    Matrix wh_; ///< hidden x hidden
    Matrix bias_; ///< 1 x hidden
    Matrix gradWx_;
    Matrix gradWh_;
    Matrix gradBias_;

    // BPTT caches: per-timestep inputs, pre-activations and hidden states.
    std::vector<Matrix> cachedInputs_;
    std::vector<Matrix> cachedPreActs_;
    std::vector<Matrix> cachedHidden_; ///< hidden_[t] = state after step t

    // Reused scratch buffer (per-step allocation churn killer).
    Matrix scratch_;
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_SIMPLE_RNN_LAYER_HH
