/**
 * @file
 * Gated Recurrent Unit layer with full backpropagation through time.
 *
 * Gates use sigmoid; the candidate transform uses the configurable
 * activation (ReLU in the paper's Table I). Windowed-input convention
 * matches SimpleRnnLayer.
 */

#ifndef GEO_NN_GRU_LAYER_HH
#define GEO_NN_GRU_LAYER_HH

#include "nn/activation.hh"
#include "nn/layer.hh"

namespace geo {
namespace nn {

/**
 * GRU per step:
 *   u = sigm(x Wu + h_{t-1} Ru + bu)          (update gate)
 *   r = sigm(x Wr + h_{t-1} Rr + br)          (reset gate)
 *   n = act(x Wn + (r . h_{t-1}) Rn + bn)     (candidate)
 *   h_t = (1 - u) . h_{t-1} + u . n
 * Output is h_T.
 */
class GruLayer : public Layer
{
  public:
    GruLayer(size_t features_per_step, size_t timesteps, size_t hidden_size,
             Activation act, Rng &rng);

    Matrix forward(const Matrix &input, bool training) override;
    Matrix backward(const Matrix &grad_output) override;

    std::vector<Matrix *> parameters() override;
    std::vector<Matrix *> gradients() override;

    size_t inputSize() const override { return features_ * timesteps_; }
    size_t outputSize() const override { return hidden_; }
    std::string describe() const override;
    std::string typeName() const override { return "gru"; }

    size_t timesteps() const { return timesteps_; }
    size_t featuresPerStep() const { return features_; }

  private:
    struct StepCache
    {
        Matrix x;     ///< input at this step
        Matrix hPrev; ///< hidden state entering this step
        Matrix u, r;  ///< gate values (post-sigmoid)
        Matrix n;     ///< candidate (post-activation)
        Matrix nPre;  ///< candidate pre-activation
        Matrix rh;    ///< r . h_prev
    };

    size_t features_;
    size_t timesteps_;
    size_t hidden_;
    Activation act_;

    Matrix wu_, wr_, wn_; ///< input weights, features x hidden
    Matrix ru_, rr_, rn_; ///< recurrent weights, hidden x hidden
    Matrix bu_, br_, bn_;
    Matrix gradWu_, gradWr_, gradWn_;
    Matrix gradRu_, gradRr_, gradRn_;
    Matrix gradBu_, gradBr_, gradBn_;

    std::vector<StepCache> cache_;

    // Reused scratch buffers (per-step allocation churn killers).
    Matrix gateScratch_; ///< batch x hidden recurrent product
    Matrix scratchW_;    ///< features x hidden weight gradient
    Matrix scratchR_;    ///< hidden x hidden recurrent gradient
    Matrix scratchH_;    ///< batch x hidden hidden-grad product
    Matrix scratchX_;    ///< batch x features input-grad product
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_GRU_LAYER_HH
