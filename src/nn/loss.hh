/**
 * @file
 * Loss functions. The DRL engine trains throughput regression with MSE.
 */

#ifndef GEO_NN_LOSS_HH
#define GEO_NN_LOSS_HH

#include "nn/matrix.hh"

namespace geo {
namespace nn {

/**
 * Mean squared error over all elements of a batch.
 */
class MseLoss
{
  public:
    /** Loss value: mean((pred - target)^2). */
    static double value(const Matrix &predictions, const Matrix &targets);

    /** Gradient of the loss with respect to the predictions. */
    static Matrix gradient(const Matrix &predictions, const Matrix &targets);

    /** gradient computed into `out` (reshaped first) — the
     *  allocation-free variant used by the training hot path. */
    static void gradientInto(const Matrix &predictions,
                             const Matrix &targets, Matrix &out);
};

/**
 * Mean absolute error (used for reporting and the paper's MAE-based
 * prediction adjustment, Section V-G).
 */
class MaeLoss
{
  public:
    static double value(const Matrix &predictions, const Matrix &targets);
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_LOSS_HH
