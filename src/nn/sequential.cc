#include "nn/sequential.hh"

#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/loss.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace geo {
namespace nn {

void
Sequential::add(std::unique_ptr<Layer> layer)
{
    if (!layer)
        panic("Sequential::add: null layer");
    if (!layers_.empty() &&
        layers_.back()->outputSize() != layer->inputSize()) {
        panic("Sequential::add: layer input %zu != previous output %zu",
              layer->inputSize(), layers_.back()->outputSize());
    }
    layers_.push_back(std::move(layer));
}

size_t
Sequential::inputSize() const
{
    if (layers_.empty())
        panic("Sequential::inputSize on empty model");
    return layers_.front()->inputSize();
}

size_t
Sequential::outputSize() const
{
    if (layers_.empty())
        panic("Sequential::outputSize on empty model");
    return layers_.back()->outputSize();
}

Matrix
Sequential::predict(const Matrix &inputs)
{
    Matrix x = inputs;
    for (auto &layer : layers_)
        x = layer->forward(x, /*training=*/false);
    return x;
}

Matrix
Sequential::forward(const Matrix &inputs)
{
    Matrix x = inputs;
    for (auto &layer : layers_)
        x = layer->forward(x, /*training=*/true);
    return x;
}

Matrix
Sequential::backward(const Matrix &grad_output)
{
    Matrix g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Matrix *>
Sequential::parameters()
{
    std::vector<Matrix *> all;
    for (auto &layer : layers_)
        for (Matrix *p : layer->parameters())
            all.push_back(p);
    return all;
}

std::vector<Matrix *>
Sequential::gradients()
{
    std::vector<Matrix *> all;
    for (auto &layer : layers_)
        for (Matrix *g : layer->gradients())
            all.push_back(g);
    return all;
}

void
Sequential::zeroGrad()
{
    for (auto &layer : layers_)
        layer->zeroGrad();
}

size_t
Sequential::parameterCount()
{
    size_t total = 0;
    for (auto &layer : layers_)
        total += layer->parameterCount();
    return total;
}

double
Sequential::trainBatch(const Matrix &inputs, const Matrix &targets,
                       Optimizer &opt)
{
    zeroGrad();
    Matrix predictions = forward(inputs);
    double loss = MseLoss::value(predictions, targets);
    backward(MseLoss::gradient(predictions, targets));
    opt.step(parameters(), gradients());
    return loss;
}

TrainResult
Sequential::train(const Dataset &train_data, const Dataset &validation,
                  Optimizer &opt, const TrainOptions &options)
{
    if (train_data.empty())
        panic("Sequential::train: empty training set");
    if (options.batchSize == 0)
        panic("Sequential::train: batchSize must be >= 1");

    TrainResult result;
    auto start = std::chrono::steady_clock::now();

    size_t n = train_data.size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(options.shuffleSeed);

    double best_val = std::numeric_limits<double>::infinity();
    size_t stale = 0;

    for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
        if (options.shuffle)
            shuffle_rng.shuffle(order);

        StatAccumulator epoch_loss;
        for (size_t begin = 0; begin < n; begin += options.batchSize) {
            size_t end = std::min(begin + options.batchSize, n);
            Matrix batch_in(end - begin, train_data.inputs.cols());
            Matrix batch_tgt(end - begin, train_data.targets.cols());
            for (size_t i = begin; i < end; ++i) {
                batch_in.setBlock(i - begin, 0,
                                  train_data.inputs.row(order[i]));
                batch_tgt.setBlock(i - begin, 0,
                                   train_data.targets.row(order[i]));
            }
            double loss = trainBatch(batch_in, batch_tgt, opt);
            if (!std::isfinite(loss)) {
                result.diverged = true;
                break;
            }
            epoch_loss.add(loss);
        }
        if (result.diverged)
            break;

        result.trainLoss.push_back(epoch_loss.mean());
        if (!validation.empty()) {
            double val = evaluate(validation);
            result.validationLoss.push_back(val);
            if (!std::isfinite(val)) {
                result.diverged = true;
                break;
            }
            if (options.earlyStopPatience > 0) {
                if (val < best_val - options.earlyStopMinDelta) {
                    best_val = val;
                    stale = 0;
                } else if (++stale >= options.earlyStopPatience) {
                    break;
                }
            }
        }
    }

    auto elapsed = std::chrono::steady_clock::now() - start;
    result.seconds =
        std::chrono::duration<double>(elapsed).count();
    return result;
}

double
Sequential::evaluate(const Dataset &data)
{
    if (data.empty())
        panic("Sequential::evaluate: empty dataset");
    return MseLoss::value(predict(data.inputs), data.targets);
}

std::string
Sequential::describe() const
{
    std::string out;
    for (size_t i = 0; i < layers_.size(); ++i) {
        if (i)
            out += ", ";
        out += layers_[i]->describe();
    }
    return out;
}

bool
Sequential::looksDiverged(const Dataset &probe)
{
    if (probe.empty())
        return false;
    Matrix predictions = predict(probe.inputs);
    if (predictions.hasNonFinite())
        return true;
    // Constant predictions against varying targets = collapsed model
    // ("the same prediction happening over and over again").
    StatAccumulator pred_stats, target_stats;
    for (double v : predictions.data())
        pred_stats.add(v);
    for (double v : probe.targets.data())
        target_stats.add(v);
    if (target_stats.stddev() <= 0.0)
        return false;
    return pred_stats.stddev() < 1e-6 * (std::fabs(pred_stats.mean()) + 1.0);
}

} // namespace nn
} // namespace geo
