#include "nn/sequential.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/loss.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace geo {
namespace nn {

void
Sequential::add(std::unique_ptr<Layer> layer)
{
    if (!layer)
        panic("Sequential::add: null layer");
    if (!layers_.empty() &&
        layers_.back()->outputSize() != layer->inputSize()) {
        panic("Sequential::add: layer input %zu != previous output %zu",
              layer->inputSize(), layers_.back()->outputSize());
    }
    layers_.push_back(std::move(layer));
    paramCache_.clear();
    gradCache_.clear();
}

size_t
Sequential::inputSize() const
{
    if (layers_.empty())
        panic("Sequential::inputSize on empty model");
    return layers_.front()->inputSize();
}

size_t
Sequential::outputSize() const
{
    if (layers_.empty())
        panic("Sequential::outputSize on empty model");
    return layers_.back()->outputSize();
}

const Matrix &
Sequential::runForward(const Matrix &inputs, bool training)
{
    const Matrix *cur = &inputs;
    Matrix *next = &fwdA_;
    for (auto &layer : layers_) {
        layer->forwardInto(*cur, training, *next);
        cur = next;
        next = (next == &fwdA_) ? &fwdB_ : &fwdA_;
    }
    return *cur;
}

const Matrix &
Sequential::runBackward(const Matrix &grad_output)
{
    const Matrix *cur = &grad_output;
    Matrix *next = &bwdA_;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        (*it)->backwardInto(*cur, *next);
        cur = next;
        next = (next == &bwdA_) ? &bwdB_ : &bwdA_;
    }
    return *cur;
}

Matrix
Sequential::predict(const Matrix &inputs)
{
    Matrix out;
    predictInto(inputs, out);
    return out;
}

void
Sequential::predictInto(const Matrix &inputs, Matrix &out)
{
    out = runForward(inputs, /*training=*/false);
}

Matrix
Sequential::forward(const Matrix &inputs)
{
    return runForward(inputs, /*training=*/true);
}

Matrix
Sequential::backward(const Matrix &grad_output)
{
    return runBackward(grad_output);
}

const std::vector<Matrix *> &
Sequential::cachedParameters()
{
    if (paramCache_.empty())
        for (auto &layer : layers_)
            for (Matrix *p : layer->parameters())
                paramCache_.push_back(p);
    return paramCache_;
}

const std::vector<Matrix *> &
Sequential::cachedGradients()
{
    if (gradCache_.empty())
        for (auto &layer : layers_)
            for (Matrix *g : layer->gradients())
                gradCache_.push_back(g);
    return gradCache_;
}

std::vector<Matrix *>
Sequential::parameters()
{
    return cachedParameters();
}

std::vector<Matrix *>
Sequential::gradients()
{
    return cachedGradients();
}

void
Sequential::zeroGrad()
{
    for (Matrix *g : cachedGradients())
        g->zero();
}

size_t
Sequential::parameterCount()
{
    size_t total = 0;
    for (auto &layer : layers_)
        total += layer->parameterCount();
    return total;
}

double
Sequential::trainBatch(const Matrix &inputs, const Matrix &targets,
                       Optimizer &opt)
{
    zeroGrad();
    const Matrix &predictions = runForward(inputs, /*training=*/true);
    double loss = MseLoss::value(predictions, targets);
    MseLoss::gradientInto(predictions, targets, lossGrad_);
    runBackward(lossGrad_);
    opt.step(cachedParameters(), cachedGradients());
    return loss;
}

TrainResult
Sequential::train(const Dataset &train_data, const Dataset &validation,
                  Optimizer &opt, const TrainOptions &options)
{
    if (train_data.empty())
        panic("Sequential::train: empty training set");
    if (options.batchSize == 0)
        panic("Sequential::train: batchSize must be >= 1");

    TrainResult result;
    result.trainLoss.reserve(options.epochs);
    if (!validation.empty())
        result.validationLoss.reserve(options.epochs);
    auto start = std::chrono::steady_clock::now();

    size_t n = train_data.size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(options.shuffleSeed);

    double best_val = std::numeric_limits<double>::infinity();
    size_t stale = 0;

    for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
        if (options.cancel && options.cancel->cancelled()) {
            result.cancelled = true;
            break;
        }
        if (options.shuffle)
            shuffle_rng.shuffle(order);

        StatAccumulator epoch_loss;
        const size_t in_w = train_data.inputs.cols();
        const size_t tgt_w = train_data.targets.cols();
        for (size_t begin = 0; begin < n; begin += options.batchSize) {
            size_t end = std::min(begin + options.batchSize, n);
            // Stage rows directly into the arena buffers — no row()
            // temporaries, no per-batch matrices.
            batchIn_.reshape(end - begin, in_w);
            batchTgt_.reshape(end - begin, tgt_w);
            for (size_t i = begin; i < end; ++i) {
                const size_t r = order[i];
                std::copy_n(&train_data.inputs.data()[r * in_w], in_w,
                            &batchIn_.data()[(i - begin) * in_w]);
                std::copy_n(&train_data.targets.data()[r * tgt_w], tgt_w,
                            &batchTgt_.data()[(i - begin) * tgt_w]);
            }
            double loss = trainBatch(batchIn_, batchTgt_, opt);
            if (!std::isfinite(loss)) {
                result.diverged = true;
                break;
            }
            epoch_loss.add(loss);
        }
        if (result.diverged)
            break;

        result.trainLoss.push_back(epoch_loss.mean());
        if (!validation.empty()) {
            double val = evaluate(validation);
            result.validationLoss.push_back(val);
            if (!std::isfinite(val)) {
                result.diverged = true;
                break;
            }
            if (options.earlyStopPatience > 0) {
                if (val < best_val - options.earlyStopMinDelta) {
                    best_val = val;
                    stale = 0;
                } else if (++stale >= options.earlyStopPatience) {
                    break;
                }
            }
        }
    }

    auto elapsed = std::chrono::steady_clock::now() - start;
    result.seconds =
        std::chrono::duration<double>(elapsed).count();
    return result;
}

double
Sequential::evaluate(const Dataset &data)
{
    if (data.empty())
        panic("Sequential::evaluate: empty dataset");
    return MseLoss::value(runForward(data.inputs, /*training=*/false),
                          data.targets);
}

std::string
Sequential::describe() const
{
    std::string out;
    for (size_t i = 0; i < layers_.size(); ++i) {
        if (i)
            out += ", ";
        out += layers_[i]->describe();
    }
    return out;
}

bool
Sequential::looksDiverged(const Dataset &probe)
{
    if (probe.empty())
        return false;
    Matrix predictions = predict(probe.inputs);
    if (predictions.hasNonFinite())
        return true;
    // Constant predictions against varying targets = collapsed model
    // ("the same prediction happening over and over again").
    StatAccumulator pred_stats, target_stats;
    for (double v : predictions.data())
        pred_stats.add(v);
    for (double v : probe.targets.data())
        target_stats.add(v);
    if (target_stats.stddev() <= 0.0)
        return false;
    return pred_stats.stddev() < 1e-6 * (std::fabs(pred_stats.mean()) + 1.0);
}

} // namespace nn
} // namespace geo
