#include "nn/dense_layer.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

DenseLayer::DenseLayer(size_t input_size, size_t output_size, Activation act,
                       Rng &rng)
    : weights_(input_size, output_size), bias_(1, output_size),
      gradWeights_(input_size, output_size), gradBias_(1, output_size),
      act_(act)
{
    if (input_size == 0 || output_size == 0)
        panic("DenseLayer: zero dimension (%zu x %zu)", input_size,
              output_size);
    if (act == Activation::ReLU)
        weights_.fillHeNormal(rng, input_size);
    else
        weights_.fillXavierUniform(rng, input_size, output_size);
}

Matrix
DenseLayer::forward(const Matrix &input, bool training)
{
    if (input.cols() != weights_.rows())
        panic("DenseLayer::forward: input width %zu != %zu", input.cols(),
              weights_.rows());
    // One allocation (the returned matrix); bias and activation are
    // applied in place instead of materializing intermediates.
    Matrix pre = input.matmul(weights_);
    pre.addRowBroadcastInPlace(bias_);
    if (training) {
        cachedInput_ = input;
        cachedPreAct_ = pre;
    }
    applyActivationInPlace(act_, pre);
    return pre;
}

Matrix
DenseLayer::backward(const Matrix &grad_output)
{
    if (cachedInput_.empty())
        panic("DenseLayer::backward without a training forward pass");
    Matrix grad_pre = activationDerivative(act_, cachedPreAct_);
    grad_pre.hadamardInPlace(grad_output);
    cachedInput_.transposedMatmulInto(grad_pre, gradScratch_);
    gradWeights_ += gradScratch_;
    gradBias_ += grad_pre.columnSums();
    return grad_pre.matmulTransposed(weights_);
}

std::vector<Matrix *>
DenseLayer::parameters()
{
    return {&weights_, &bias_};
}

std::vector<Matrix *>
DenseLayer::gradients()
{
    return {&gradWeights_, &gradBias_};
}

std::string
DenseLayer::describe() const
{
    return strprintf("%zu (Dense) %s", outputSize(),
                     activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
