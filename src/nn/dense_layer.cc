#include "nn/dense_layer.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

DenseLayer::DenseLayer(size_t input_size, size_t output_size, Activation act,
                       Rng &rng)
    : weights_(input_size, output_size), bias_(1, output_size),
      gradWeights_(input_size, output_size), gradBias_(1, output_size),
      act_(act)
{
    if (input_size == 0 || output_size == 0)
        panic("DenseLayer: zero dimension (%zu x %zu)", input_size,
              output_size);
    if (act == Activation::ReLU)
        weights_.fillHeNormal(rng, input_size);
    else
        weights_.fillXavierUniform(rng, input_size, output_size);
}

Matrix
DenseLayer::forward(const Matrix &input, bool training)
{
    Matrix out;
    forwardInto(input, training, out);
    return out;
}

Matrix
DenseLayer::backward(const Matrix &grad_output)
{
    Matrix grad_input;
    backwardInto(grad_output, grad_input);
    return grad_input;
}

void
DenseLayer::forwardInto(const Matrix &input, bool training, Matrix &out)
{
    if (input.cols() != weights_.rows())
        panic("DenseLayer::forward: input width %zu != %zu", input.cols(),
              weights_.rows());
    // Bias and activation are applied in place instead of
    // materializing intermediates; `out` is caller-owned scratch.
    input.matmulInto(weights_, out);
    out.addRowBroadcastInPlace(bias_);
    if (training) {
        cachedInput_ = input;
        cachedPreAct_ = out;
    }
    applyActivationInPlace(act_, out);
}

void
DenseLayer::backwardInto(const Matrix &grad_output, Matrix &grad_input)
{
    if (cachedInput_.empty())
        panic("DenseLayer::backward without a training forward pass");
    activationDerivativeInto(act_, cachedPreAct_, gradPreScratch_);
    gradPreScratch_.hadamardInPlace(grad_output);
    cachedInput_.transposedMatmulInto(gradPreScratch_, gradScratch_);
    gradWeights_ += gradScratch_;
    // Sum fully into scratch, then add once — accumulating directly
    // into gradBias_ would change the rounding sequence.
    gradPreScratch_.columnSumsInto(biasScratch_);
    gradBias_ += biasScratch_;
    gradPreScratch_.matmulTransposedInto(weights_, grad_input);
}

std::vector<Matrix *>
DenseLayer::parameters()
{
    return {&weights_, &bias_};
}

std::vector<Matrix *>
DenseLayer::gradients()
{
    return {&gradWeights_, &gradBias_};
}

std::string
DenseLayer::describe() const
{
    return strprintf("%zu (Dense) %s", outputSize(),
                     activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
