#include "nn/simple_rnn_layer.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace geo {
namespace nn {

SimpleRnnLayer::SimpleRnnLayer(size_t features_per_step, size_t timesteps,
                               size_t hidden_size, Activation act, Rng &rng)
    : features_(features_per_step), timesteps_(timesteps),
      hidden_(hidden_size), act_(act), wx_(features_per_step, hidden_size),
      wh_(hidden_size, hidden_size), bias_(1, hidden_size),
      gradWx_(features_per_step, hidden_size),
      gradWh_(hidden_size, hidden_size), gradBias_(1, hidden_size)
{
    if (features_ == 0 || timesteps_ == 0 || hidden_ == 0)
        panic("SimpleRnnLayer: zero dimension (%zu, %zu, %zu)", features_,
              timesteps_, hidden_);
    wx_.fillXavierUniform(rng, features_, hidden_);
    // Scaled-down recurrent weights keep ReLU recurrences from exploding.
    wh_.fillNormal(rng, 0.5 / std::sqrt(static_cast<double>(hidden_)));
}

Matrix
SimpleRnnLayer::forward(const Matrix &input, bool training)
{
    if (input.cols() != inputSize())
        panic("SimpleRnnLayer::forward: input width %zu != %zu",
              input.cols(), inputSize());
    size_t batch = input.rows();
    Matrix hidden(batch, hidden_);
    if (training) {
        cachedInputs_.clear();
        cachedPreActs_.clear();
        cachedHidden_.clear();
        cachedInputs_.reserve(timesteps_);
        cachedPreActs_.reserve(timesteps_);
        cachedHidden_.reserve(timesteps_);
    }
    for (size_t t = 0; t < timesteps_; ++t) {
        Matrix xt = input.colRange(t * features_, (t + 1) * features_);
        Matrix pre = xt.matmul(wx_);
        hidden.matmulInto(wh_, scratch_);
        pre += scratch_;
        pre.addRowBroadcastInPlace(bias_);
        hidden = pre;
        applyActivationInPlace(act_, hidden);
        if (training) {
            cachedInputs_.push_back(std::move(xt));
            cachedPreActs_.push_back(std::move(pre));
            cachedHidden_.push_back(hidden);
        }
    }
    return hidden;
}

Matrix
SimpleRnnLayer::backward(const Matrix &grad_output)
{
    if (cachedPreActs_.size() != timesteps_)
        panic("SimpleRnnLayer::backward without a training forward pass");
    size_t batch = grad_output.rows();
    Matrix grad_input(batch, inputSize());
    Matrix dh = grad_output;
    for (size_t t = timesteps_; t-- > 0;) {
        Matrix dpre = activationDerivative(act_, cachedPreActs_[t]);
        dpre.hadamardInPlace(dh);
        cachedInputs_[t].transposedMatmulInto(dpre, scratch_);
        gradWx_ += scratch_;
        Matrix h_prev = (t == 0) ? Matrix(batch, hidden_)
                                 : cachedHidden_[t - 1];
        h_prev.transposedMatmulInto(dpre, scratch_);
        gradWh_ += scratch_;
        gradBias_ += dpre.columnSums();
        grad_input.setBlock(0, t * features_,
                            dpre.matmulTransposed(wx_));
        dh = dpre.matmulTransposed(wh_);
    }
    return grad_input;
}

std::vector<Matrix *>
SimpleRnnLayer::parameters()
{
    return {&wx_, &wh_, &bias_};
}

std::vector<Matrix *>
SimpleRnnLayer::gradients()
{
    return {&gradWx_, &gradWh_, &gradBias_};
}

std::string
SimpleRnnLayer::describe() const
{
    return strprintf("%zu (SimpleRNN) %s", hidden_,
                     activationName(act_).c_str());
}

} // namespace nn
} // namespace geo
