/**
 * @file
 * Long Short-Term Memory layer with full backpropagation through time.
 *
 * Gates use sigmoid; the cell candidate and output transforms use the
 * configurable activation (ReLU in the paper's Table I entries). The
 * windowed-input convention matches SimpleRnnLayer.
 */

#ifndef GEO_NN_LSTM_LAYER_HH
#define GEO_NN_LSTM_LAYER_HH

#include "nn/activation.hh"
#include "nn/layer.hh"

namespace geo {
namespace nn {

/**
 * LSTM: i/f/o gates (sigmoid) + candidate g (act); output h_T.
 *
 * Per step, with z_t = [h_{t-1}, x_t]:
 *   i = sigm(z Wi + bi)     f = sigm(z Wf + bf)
 *   o = sigm(z Wo + bo)     g = act(z Wg + bg)
 *   c_t = f . c_{t-1} + i . g
 *   h_t = o . act(c_t)
 */
class LstmLayer : public Layer
{
  public:
    LstmLayer(size_t features_per_step, size_t timesteps, size_t hidden_size,
              Activation act, Rng &rng);

    Matrix forward(const Matrix &input, bool training) override;
    Matrix backward(const Matrix &grad_output) override;

    std::vector<Matrix *> parameters() override;
    std::vector<Matrix *> gradients() override;

    size_t inputSize() const override { return features_ * timesteps_; }
    size_t outputSize() const override { return hidden_; }
    std::string describe() const override;
    std::string typeName() const override { return "lstm"; }

    size_t timesteps() const { return timesteps_; }
    size_t featuresPerStep() const { return features_; }

  private:
    /** Per-timestep cache for BPTT. */
    struct StepCache
    {
        Matrix z;      ///< concatenated [h_prev, x_t], batch x (H + F)
        Matrix i, f, o, g; ///< post-nonlinearity gate values
        Matrix gPre;   ///< pre-activation candidate
        Matrix c;      ///< cell state after this step
        Matrix cAct;   ///< act(c)
        Matrix cActPre; ///< c (pre-activation of the cell output transform)
    };

    size_t features_;
    size_t timesteps_;
    size_t hidden_;
    Activation act_;

    // Combined-input weights: (hidden + features) x hidden per gate.
    Matrix wi_, wf_, wo_, wg_;
    Matrix bi_, bf_, bo_, bg_;
    Matrix gradWi_, gradWf_, gradWo_, gradWg_;
    Matrix gradBi_, gradBf_, gradBo_, gradBg_;

    std::vector<StepCache> cache_;
    Matrix cachedCPrev0_; ///< zero matrix kept for the t = 0 backward step

    // Reused scratch buffers (per-step allocation churn killers).
    Matrix scratchW_; ///< (hidden + features) x hidden weight gradient
    Matrix scratchZ_; ///< batch x (hidden + features) input gradient

    /** Build [h_prev | x_t]. */
    Matrix concat(const Matrix &h_prev, const Matrix &x_t) const;
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_LSTM_LAYER_HH
