/**
 * @file
 * The 23 candidate architectures of the paper's Table I.
 *
 * Z is the number of performance metrics describing one access (6 for
 * the BELLE II experiment, 13 for the CERN EOS trace). Dense-only models
 * consume the Z features of the current access; models with a recurrent
 * first layer consume a window of `timesteps` past accesses (Z features
 * each), matching the Keras sequence-input convention.
 *
 * Two Table I entries are ambiguous in the published text (models 8/9
 * and 10/11 print identical layer lists but report different results);
 * we resolve them by depth so that the reported training-time ordering
 * holds, and document this in DESIGN.md.
 */

#ifndef GEO_NN_MODEL_ZOO_HH
#define GEO_NN_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "nn/sequential.hh"

namespace geo {

class Rng;

namespace nn {

/** Number of architectures in Table I. */
constexpr int kModelZooSize = 23;

/** Default recurrent window length (accesses per sequence). */
constexpr size_t kDefaultTimesteps = 16;

/** Description of one zoo entry. */
struct ModelSpec
{
    int number = 0;            ///< 1-based Table I model number
    std::string components;    ///< layer list in the paper's notation
    bool recurrent = false;    ///< first layer is LSTM/GRU/SimpleRNN
};

/** Static description of model `number` (1..23) for feature width z. */
ModelSpec modelSpec(int number, size_t z);

/** All 23 specs. */
std::vector<ModelSpec> allModelSpecs(size_t z);

/**
 * Instantiate Table I model `number`.
 *
 * @param number 1..23.
 * @param z features per access.
 * @param rng weight initialization source.
 * @param timesteps window length for recurrent first layers.
 */
Sequential buildModel(int number, size_t z, Rng &rng,
                      size_t timesteps = kDefaultTimesteps);

/**
 * Width of the input row model `number` expects: z for dense models,
 * z * timesteps for recurrent ones.
 */
size_t modelInputWidth(int number, size_t z,
                       size_t timesteps = kDefaultTimesteps);

} // namespace nn
} // namespace geo

#endif // GEO_NN_MODEL_ZOO_HH
