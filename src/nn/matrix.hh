/**
 * @file
 * Dense row-major matrix of doubles.
 *
 * This is the numerical workhorse of the from-scratch neural-network
 * library. It intentionally supports only what the layers need: matmul,
 * transpose, elementwise arithmetic, row/column reductions and random
 * initialization. All shape violations are programming errors and panic.
 *
 * Performance notes: above measured shape crossovers (gemmPlan in
 * matrix.cc — the single source of truth), matmul and both transposed
 * products run a register-blocked micro-kernel over B panels packed
 * into contiguous column strips, and above a flop threshold the rows
 * are split across the global thread pool — every transform preserves
 * the per-element ascending-k accumulation order (and the zero-lhs
 * skip), so results are bit-identical to the naive serial loop
 * (matmulNaive, kept as the test reference). Element bounds checks are
 * compiled in only when GEO_CHECK_BOUNDS is defined (the default
 * build); GEO_NATIVE release builds drop them from the hot loops.
 *
 * Every acquisition of a fresh element buffer (constructor, copy,
 * growth in reshape/assignment) bumps a process-wide counter,
 * allocationCount(), so tests can assert that steady-state hot loops
 * stop allocating once their scratch arenas are sized.
 */

#ifndef GEO_NN_MATRIX_HH
#define GEO_NN_MATRIX_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace geo {

class Rng;

namespace nn {

/**
 * Row-major matrix of doubles with shape-checked operations.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialized. */
    Matrix(size_t rows, size_t cols);

    /** rows x cols matrix filled with `fill`. */
    Matrix(size_t rows, size_t cols, double fill);

    // Copies count buffer acquisitions (see allocationCount); moves
    // transfer the existing buffer and do not.
    Matrix(const Matrix &other);
    Matrix &operator=(const Matrix &other);
    Matrix(Matrix &&other) noexcept = default;
    Matrix &operator=(Matrix &&other) noexcept = default;

    /** Build from nested initializer data (rows of equal length). */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** A single-row matrix wrapping a vector. */
    static Matrix rowVector(const std::vector<double> &values);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double &
    at(size_t r, size_t c)
    {
#ifdef GEO_CHECK_BOUNDS
        if (r >= rows_ || c >= cols_)
            panicOutOfRange(r, c);
#endif
        return data_[r * cols_ + c];
    }

    double
    at(size_t r, size_t c) const
    {
#ifdef GEO_CHECK_BOUNDS
        if (r >= rows_ || c >= cols_)
            panicOutOfRange(r, c);
#endif
        return data_[r * cols_ + c];
    }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Matrix product this(r,k) * other(k,c) (tiled, pool-parallel). */
    Matrix matmul(const Matrix &other) const;

    /** matmul computed into `out` (reshaped and zeroed first). */
    void matmulInto(const Matrix &other, Matrix &out) const;

    /**
     * Reference serial ikj product — the oracle the tiled/parallel
     * matmul must match bit-for-bit (used by tests and benchmarks).
     */
    Matrix matmulNaive(const Matrix &other) const;

    /** Product this(r,k) * other(c,k)^T without materializing the
     *  transpose (backward-pass hot path). */
    Matrix matmulTransposed(const Matrix &other) const;
    void matmulTransposedInto(const Matrix &other, Matrix &out) const;

    /** Product this(r,k)^T * other(r,c) without materializing the
     *  transpose (weight-gradient hot path). */
    Matrix transposedMatmul(const Matrix &other) const;
    void transposedMatmulInto(const Matrix &other, Matrix &out) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Elementwise sum (shapes must match). */
    Matrix operator+(const Matrix &other) const;
    Matrix &operator+=(const Matrix &other);

    /** Elementwise difference (shapes must match). */
    Matrix operator-(const Matrix &other) const;
    Matrix &operator-=(const Matrix &other);

    /** Elementwise (Hadamard) product. */
    Matrix hadamard(const Matrix &other) const;
    Matrix &hadamardInPlace(const Matrix &other);

    /** Scalar multiply. */
    Matrix operator*(double scalar) const;
    Matrix &operator*=(double scalar);

    /** Add a 1 x cols row vector to every row (bias broadcast). */
    Matrix addRowBroadcast(const Matrix &row) const;
    Matrix &addRowBroadcastInPlace(const Matrix &row);

    /** Column-wise sums as a 1 x cols matrix. */
    Matrix columnSums() const;

    /** columnSums computed into `out` (reshaped first) — the
     *  allocation-free variant used by the training hot path. */
    void columnSumsInto(Matrix &out) const;

    /** Copy of row r as a 1 x cols matrix. */
    Matrix row(size_t r) const;

    /** Copy rows [begin, end) as an (end-begin) x cols matrix. */
    Matrix rowRange(size_t begin, size_t end) const;

    /** Copy columns [begin, end). */
    Matrix colRange(size_t begin, size_t end) const;

    /** Paste `block` so its top-left lands at (r0, c0). */
    void setBlock(size_t r0, size_t c0, const Matrix &block);

    /** Apply a scalar function to every element (returns copy). */
    Matrix map(const std::function<double(double)> &fn) const;

    /** Set every element to zero. */
    void zero();

    /** Re-shape to rows x cols, zero-filled, reusing the allocation
     *  when capacity allows (scratch-buffer workhorse). */
    void reshape(size_t rows, size_t cols);

    /** Fill with N(0, stddev) noise. */
    void fillNormal(Rng &rng, double stddev);

    /** He-normal initialization: N(0, sqrt(2 / fan_in)). */
    void fillHeNormal(Rng &rng, size_t fan_in);

    /** Xavier/Glorot-uniform initialization. */
    void fillXavierUniform(Rng &rng, size_t fan_in, size_t fan_out);

    /** Frobenius norm. */
    double norm() const;

    /** True if any element is NaN or infinite. */
    bool hasNonFinite() const;

    bool operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

    /**
     * Process-wide count of element-buffer acquisitions: non-empty
     * construction, copies, and any reshape/assignment that has to
     * grow capacity. Steady-state hot loops that reuse sized scratch
     * buffers leave this flat — tests/nn/test_alloc_regression.cc
     * pins that property for the retrain loop.
     */
    static uint64_t allocationCount()
    {
        return allocCount_.load(std::memory_order_relaxed);
    }

  private:
    [[noreturn]] void panicOutOfRange(size_t r, size_t c) const;

    static void
    countAllocation()
    {
        allocCount_.fetch_add(1, std::memory_order_relaxed);
    }

    static std::atomic<uint64_t> allocCount_;

    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_MATRIX_HH
