/**
 * @file
 * Gradient-descent optimizers.
 *
 * The paper trains all Table I models with plain SGD (it reports that
 * Adam gave worse relative error on this problem); both are provided so
 * the claim can be reproduced as an ablation.
 */

#ifndef GEO_NN_OPTIMIZER_HH
#define GEO_NN_OPTIMIZER_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hh"
#include "util/state_io.hh"

namespace geo {
namespace nn {

/**
 * Base optimizer: applies gradients to index-aligned parameter lists.
 */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Apply one update step.
     *
     * @param params parameter tensors (updated in place).
     * @param grads gradient tensors, index-aligned with params.
     */
    virtual void step(const std::vector<Matrix *> &params,
                      const std::vector<Matrix *> &grads) = 0;

    virtual std::string name() const = 0;

    /**
     * Serialize mutable optimizer state (not configuration) for
     * checkpointing. Stateless optimizers inherit the base no-op.
     */
    virtual void saveState(util::StateWriter &w) const;

    /** Restore state written by saveState on an identically-configured
     *  optimizer. */
    virtual void loadState(util::StateReader &r);

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  protected:
    explicit Optimizer(double lr) : lr_(lr) {}
    double lr_;
};

/**
 * Plain stochastic gradient descent with optional gradient clipping.
 *
 * Clipping (by global norm) keeps the ReLU recurrent models of Table I
 * from diverging instantly; models that still diverge are reported as
 * "Diverged", as in the paper.
 */
class SgdOptimizer : public Optimizer
{
  public:
    explicit SgdOptimizer(double lr = 0.01, double clip_norm = 0.0);

    void step(const std::vector<Matrix *> &params,
              const std::vector<Matrix *> &grads) override;

    std::string name() const override { return "sgd"; }

  private:
    double clipNorm_;
};

/**
 * Adam optimizer (Kingma & Ba 2015).
 *
 * The first/second moments are packed per tensor into two contiguous
 * arrays so the update is one fused pass per parameter tensor (and can
 * be row-chunked across the thread pool for very large tensors — the
 * per-element update is independent, so chunking cannot change
 * results). Checkpoints still serialize the per-tensor
 * rows/cols/m/v records of the original format, reconstructed from
 * the flat arrays, so `geo-ckpt-1` payloads round-trip unchanged.
 */
class AdamOptimizer : public Optimizer
{
  public:
    explicit AdamOptimizer(double lr = 0.001, double beta1 = 0.9,
                           double beta2 = 0.999, double epsilon = 1e-8);

    void step(const std::vector<Matrix *> &params,
              const std::vector<Matrix *> &grads) override;

    std::string name() const override { return "adam"; }

    /** Step counter and first/second moment tensors. */
    void saveState(util::StateWriter &w) const override;
    void loadState(util::StateReader &r) override;

  private:
    double beta1_;
    double beta2_;
    double epsilon_;
    size_t t_ = 0;
    // Flat-packed moments; tensor i occupies [offsets_[i],
    // offsets_[i] + rows*cols) in both arrays, in parameter-list
    // order. shapes_ keeps (rows, cols) for serialization.
    std::vector<double> mFlat_;
    std::vector<double> vFlat_;
    std::vector<std::pair<size_t, size_t>> shapes_;
    std::vector<size_t> offsets_;
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_OPTIMIZER_HH
