/**
 * @file
 * Model weight serialization.
 *
 * Weights are written as a versioned text format with a topology
 * fingerprint; loading requires a model of identical topology (build it
 * from the zoo, then load). This matches how Geomancy checkpoints its
 * DRL engine between retraining cycles.
 */

#ifndef GEO_NN_SERIALIZE_HH
#define GEO_NN_SERIALIZE_HH

#include <istream>
#include <ostream>
#include <string>

#include "nn/sequential.hh"

namespace geo {
namespace nn {

/** Write all parameters of `model` to `os`. Returns false on I/O error. */
bool saveWeights(Sequential &model, std::ostream &os);

/**
 * Load parameters into `model`.
 *
 * @return false if the stream is malformed or the topology fingerprint
 *         does not match the model.
 */
bool loadWeights(Sequential &model, std::istream &is);

/** Save to a file path. */
bool saveWeightsFile(Sequential &model, const std::string &path);

/** Load from a file path. */
bool loadWeightsFile(Sequential &model, const std::string &path);

} // namespace nn
} // namespace geo

#endif // GEO_NN_SERIALIZE_HH
