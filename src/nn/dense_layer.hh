/**
 * @file
 * Fully connected (dense) layer: y = act(x W + b).
 *
 * The paper's winning architecture (model 1) is a stack of these with
 * ReLU activations and a final linear unit.
 */

#ifndef GEO_NN_DENSE_LAYER_HH
#define GEO_NN_DENSE_LAYER_HH

#include "nn/activation.hh"
#include "nn/layer.hh"

namespace geo {
namespace nn {

/**
 * Dense layer with He-initialized weights and zero biases.
 */
class DenseLayer : public Layer
{
  public:
    /**
     * @param input_size width of input rows.
     * @param output_size number of units.
     * @param act activation function.
     * @param rng initializer source (deterministic training).
     */
    DenseLayer(size_t input_size, size_t output_size, Activation act,
               Rng &rng);

    Matrix forward(const Matrix &input, bool training) override;
    Matrix backward(const Matrix &grad_output) override;

    // Allocation-free hot-path variants (Sequential's scratch arena
    // owns `out` / `grad_input`; all intermediates live in member
    // scratch buffers sized on first use).
    void forwardInto(const Matrix &input, bool training,
                     Matrix &out) override;
    void backwardInto(const Matrix &grad_output,
                      Matrix &grad_input) override;

    std::vector<Matrix *> parameters() override;
    std::vector<Matrix *> gradients() override;

    size_t inputSize() const override { return weights_.rows(); }
    size_t outputSize() const override { return weights_.cols(); }
    std::string describe() const override;
    std::string typeName() const override { return "dense"; }

    Activation activation() const { return act_; }

    /** Direct accessors used by the serializer and tests. */
    Matrix &weights() { return weights_; }
    Matrix &bias() { return bias_; }

  private:
    Matrix weights_;    ///< input_size x output_size
    Matrix bias_;       ///< 1 x output_size
    Matrix gradWeights_;
    Matrix gradBias_;
    Activation act_;

    // forward() caches for backward().
    Matrix cachedInput_;
    Matrix cachedPreAct_;

    // Reused backward-pass scratch (kills per-batch allocations).
    Matrix gradScratch_;    ///< weight-gradient accumulator input
    Matrix gradPreScratch_; ///< activation derivative / pre-act grad
    Matrix biasScratch_;    ///< column sums for the bias gradient
};

} // namespace nn
} // namespace geo

#endif // GEO_NN_DENSE_LAYER_HH
