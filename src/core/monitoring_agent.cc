#include "core/monitoring_agent.hh"

#include "util/logging.hh"

namespace geo {
namespace core {

MonitoringAgent::MonitoringAgent(storage::DeviceId device, BatchSink sink,
                                 size_t batch_size)
    : device_(device), sink_(std::move(sink)), batchSize_(batch_size)
{
    if (!sink_)
        panic("MonitoringAgent: null sink");
    if (batchSize_ == 0)
        panic("MonitoringAgent: batch size must be >= 1");
    pending_.reserve(batchSize_);
}

void
MonitoringAgent::observe(const storage::AccessObservation &obs)
{
    if (obs.device != device_)
        return;
    pending_.push_back(PerfRecord::fromObservation(obs));
    ++observed_;
    if (pending_.size() >= batchSize_)
        flush();
}

void
MonitoringAgent::flush()
{
    if (pending_.empty())
        return;
    sink_(pending_);
    ++batches_;
    pending_.clear();
}

} // namespace core
} // namespace geo
