#include "core/monitoring_agent.hh"

#include "core/guardrails.hh"
#include "util/logging.hh"

namespace geo {
namespace core {

MonitoringAgent::MonitoringAgent(storage::DeviceId device, BatchSink sink,
                                 size_t batch_size)
    : device_(device), sink_(std::move(sink)), batchSize_(batch_size)
{
    if (!sink_)
        panic("MonitoringAgent: null sink");
    if (batchSize_ == 0)
        panic("MonitoringAgent: batch size must be >= 1");
    pending_.reserve(batchSize_);
    auto &registry = util::MetricRegistry::global();
    recordsMetric_ = &registry.counter("monitor.records_observed");
    batchesMetric_ = &registry.counter("monitor.batches_sent");
    batchSizeMetric_ = &registry.histogram("monitor.batch_size");
}

void
MonitoringAgent::observe(const storage::AccessObservation &obs)
{
    if (obs.device != device_)
        return;
    PerfRecord rec = PerfRecord::fromObservation(obs);
    ++observed_;
    recordsMetric_->inc();
    // The previous record still pending in this batch anchors the
    // duplicate check; the window intentionally resets at every flush
    // so checkpoints carry no dedup state (crash/resume identity).
    if (guardrails_ &&
        !guardrails_->admit(rec,
                            pending_.empty() ? nullptr : &pending_.back()))
        return;
    pending_.push_back(std::move(rec));
    if (pending_.size() >= batchSize_)
        flush();
}

void
MonitoringAgent::flush()
{
    if (pending_.empty())
        return;
    sink_(pending_);
    ++batches_;
    batchesMetric_->inc();
    batchSizeMetric_->record(static_cast<double>(pending_.size()));
    pending_.clear();
}

} // namespace core
} // namespace geo
