#include "core/geomancy.hh"

#include <algorithm>
#include <sstream>

#include "core/checkpoint.hh"
#include "storage/fault_injector.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/trace_event.hh"

namespace geo {
namespace core {

Geomancy::Geomancy(storage::StorageSystem &system,
                   std::vector<storage::FileId> managed_files,
                   const GeomancyConfig &config, const std::string &db_path)
    : system_(system), managedFiles_(std::move(managed_files)),
      config_(config), rng_(config.seed)
{
    if (managedFiles_.empty())
        panic("Geomancy: no managed files");
    if (config_.observeOnlyManaged)
        managedSet_.insert(managedFiles_.begin(), managedFiles_.end());
    db_ = std::make_unique<ReplayDb>(db_path);
    daemon_ = std::make_unique<InterfaceDaemon>(*db_, config_.daemon);
    engine_ = std::make_unique<DrlEngine>(config_.drl);
    checker_ = std::make_unique<ActionChecker>(system_, config_.checker);
    ControlAgentConfig control_cfg = config_.control;
    control_cfg.seed ^= config_.seed; // jitter follows the master seed
    control_ =
        std::make_unique<ControlAgent>(system_, db_.get(), control_cfg);
    guardrails_ =
        std::make_unique<Guardrails>(config_.guardrails, system_.clock());
    // Deadline enforcement is cooperative: training checks the token
    // at epoch boundaries, migration polls before every attempt.
    engine_->setCancelToken(&guardrails_->watchdog().token());
    control_->setWatchdog(&guardrails_->watchdog());
    if (config_.useScheduler) {
        scheduler_ = std::make_unique<MovementScheduler>(
            system_, *db_, config_.scheduler);
    }

    // One monitoring agent per storage device (parallel collection in
    // the paper; serialized here but architecturally identical).
    for (storage::DeviceId id : system_.deviceIds()) {
        agents_.push_back(std::make_unique<MonitoringAgent>(
            id,
            [this](const std::vector<PerfRecord> &batch) {
                daemon_->receiveBatch(batch);
            },
            config_.agentBatchSize));
        agents_.back()->setGuardrails(guardrails_.get());
    }
    // Telemetry faults mangle what the agents *see*, never what the
    // system *did* — the injector rewrites the observation in flight
    // (and may echo it, modeling a double delivery).
    system_.onAccess([this](const storage::AccessObservation &obs) {
        // Sharded: ignore co-tenant traffic so this shard's model
        // trains only on files it manages (monolithic runs keep the
        // whole-substrate view).
        if (!managedSet_.empty() && managedSet_.count(obs.file) == 0)
            return;
        storage::AccessObservation seen = obs;
        bool emit_duplicate = false;
        if (storage::FaultInjector *injector = system_.faultInjector())
            injector->mutateTelemetry(seen, emit_duplicate);
        for (auto &agent : agents_)
            agent->observe(seen);
        if (emit_duplicate)
            for (auto &agent : agents_)
                agent->observe(seen);
    });

    auto &registry = util::MetricRegistry::global();
    cyclesMetric_ = &registry.counter("geomancy.cycles");
    cyclesExploredMetric_ = &registry.counter("geomancy.cycles_explored");
    cyclesSkippedMetric_ = &registry.counter("geomancy.cycles_skipped");
    movesProposedMetric_ = &registry.counter("geomancy.moves_proposed");
    sanityVetoMetric_ = &registry.counter("geomancy.sanity_vetoes");
    registry.setHelp("geomancy.cycles",
                     "Decision cycles completed by the pipeline");
    registry.setHelp("geomancy.cycles_explored",
                     "Cycles that took a random exploration move "
                     "instead of the model's choice");
    registry.setHelp("geomancy.cycles_skipped",
                     "Cycles that proposed no move (history too thin "
                     "or every candidate vetoed)");
    registry.setHelp("geomancy.moves_proposed",
                     "Candidate migrations that passed the Action "
                     "Checker and were handed to the control agent");
    registry.setHelp("geomancy.sanity_vetoes",
                     "Moves vetoed because the destination mount "
                     "measured slower than the source right now");
}

void
Geomancy::flushAgents()
{
    for (auto &agent : agents_)
        agent->flush();
}

void
Geomancy::attachLedger(const std::string &path)
{
    ledger_ = std::make_unique<DecisionLedger>(path);
}

double
Geomancy::phaseBudget(const char *phase) const
{
    const GuardrailsConfig &cfg = config_.guardrails;
    if (!cfg.enabled)
        return 0.0;
    if (std::string(phase) == "monitor")
        return cfg.monitorBudgetSeconds;
    if (std::string(phase) == "train")
        return cfg.trainBudgetSeconds;
    if (std::string(phase) == "propose")
        return cfg.proposeBudgetSeconds;
    if (std::string(phase) == "migrate")
        return cfg.migrateBudgetSeconds;
    return 0.0;
}

void
Geomancy::enterPhase(const char *phase, int index)
{
    double now = system_.clock().now();
    guardrails_->beginPhase(phase, now);
    util::FlightRecorder::global().record(
        util::FlightKind::PhaseBegin, now, cycles_,
        static_cast<uint64_t>(index));
}

void
Geomancy::leavePhase(const char *phase, int index, double began)
{
    double now = system_.clock().now();
    guardrails_->endPhase(now);
    util::FlightRecorder::global().record(
        util::FlightKind::PhaseEnd, now, cycles_,
        static_cast<uint64_t>(index));
    if (ledger_)
        ledger_->recordPhase(phase, now - began, phaseBudget(phase));
}

std::vector<CheckedMove>
Geomancy::proposeMoves()
{
    // Measured recent per-device throughput for the sanity veto.
    std::map<storage::DeviceId, double> measured;
    if (config_.sanityWindow > 0) {
        for (const auto &[device, mean] :
             db_->deviceThroughput(config_.sanityWindow)) {
            measured[device] = mean;
        }
    }

    // Gather every scorable file's latest access, then score all
    // (file, candidate) pairs in a single forward pass.
    std::vector<storage::DeviceId> devices = system_.deviceIds();
    std::vector<storage::FileId> scorable;
    std::vector<PerfRecord> latests;
    scorable.reserve(managedFiles_.size());
    latests.reserve(managedFiles_.size());
    for (storage::FileId file : managedFiles_) {
        PerfRecord latest;
        if (!db_->latestAccessForFile(file, latest))
            continue; // never accessed yet, nothing to reason from
        scorable.push_back(file);
        latests.push_back(std::move(latest));
    }
    std::vector<std::vector<CandidateScore>> all_scores;
    if (!latests.empty())
        all_scores = engine_->scoreLocations(latests, devices);

    const bool lower_better = engine_->lowerIsBetter();
    // Ledger: per-device mean of every candidate prediction this
    // cycle, pinned to the accesses watermark so the realized window
    // starts exactly where the prediction was made.
    std::map<storage::DeviceId, std::pair<double, uint64_t>> predicted;
    if (ledger_) {
        for (const auto &scores : all_scores) {
            for (const CandidateScore &s : scores) {
                auto &acc = predicted[s.device];
                acc.first += s.predictedThroughput;
                ++acc.second;
            }
        }
        for (auto &[device, acc] : predicted)
            if (acc.second > 0)
                acc.first /= static_cast<double>(acc.second);
    }

    std::vector<CheckedMove> moves;
    for (size_t i = 0; i < scorable.size(); ++i) {
        storage::FileId file = scorable[i];
        MoveVeto veto = MoveVeto::None;
        std::optional<CheckedMove> move = checker_->selectMove(
            file, all_scores[i], rng_, lower_better, &veto);
        const char *verdict = moveVetoName(veto);
        bool kept = move.has_value();
        if (move && !move->random && config_.sanityWindow > 0) {
            auto from_it = measured.find(move->from);
            auto to_it = measured.find(move->to);
            // Veto moves toward a device that is measurably slower
            // right now; destinations without recent samples pass
            // (moving there is how Geomancy learns about them).
            if (from_it != measured.end() && to_it != measured.end() &&
                to_it->second < from_it->second) {
                sanityVetoMetric_->inc();
                verdict = "sanity";
                kept = false;
            }
        }
        if (ledger_) {
            // Orientation-aware ranks over this file's scores.
            std::vector<LedgerScore> ranked;
            ranked.reserve(all_scores[i].size());
            for (const CandidateScore &s : all_scores[i])
                ranked.push_back({s.device, s.predictedThroughput, 1});
            for (LedgerScore &a : ranked)
                for (const LedgerScore &b : ranked)
                    if (lower_better ? b.predicted < a.predicted
                                     : b.predicted > a.predicted)
                        ++a.rank;
            ledger_->recordCandidate(
                file, system_.location(file), latests[i].features(),
                ranked, verdict, move ? move->to : 0,
                move ? move->predictedGain : 0.0,
                move ? move->random : false, kept);
        }
        if (kept)
            moves.push_back(*move);
    }
    if (ledger_ && !predicted.empty()) {
        std::vector<std::pair<storage::DeviceId,
                              std::pair<double, uint64_t>>>
            by_device(predicted.begin(), predicted.end());
        ledger_->recordPrediction(db_->watermark().accesses, by_device);
    }
    return checker_->capMoves(std::move(moves));
}

std::vector<CheckedMove>
Geomancy::explorationMoves()
{
    // Pick a few random managed files and move each somewhere random;
    // this keeps the availability map fresh and teaches the model the
    // movement/performance relation (Section V-H).
    std::vector<storage::FileId> shuffled = managedFiles_;
    rng_.shuffle(shuffled);
    std::vector<CheckedMove> moves;
    for (storage::FileId file : shuffled) {
        if (moves.size() >= config_.explorationMoves)
            break;
        std::optional<CheckedMove> move = checker_->randomMove(file, rng_);
        if (move) {
            if (ledger_)
                ledger_->recordExploration(move->file, move->from,
                                           move->to);
            moves.push_back(*move);
        }
    }
    return moves;
}

CycleReport
Geomancy::runCycle()
{
    GEO_SPAN("cycle", "cycle");
    GEO_TRACE_INSTANT("cycle", "decision_cycle", util::TimeDomain::Sim,
                      system_.clock().now());
    CycleReport report;
    ++cycles_;
    cyclesMetric_->inc();
    storage::FaultInjector *injector = system_.faultInjector();
    if (injector)
        injector->notifyCycle(cycles_);

    // The quarantine window for this cycle covers everything observed
    // since the previous cycle ended; the reset happens below, after
    // the evidence is captured.
    bool probe = guardrails_->probeDue(cycles_);
    report.probe = probe;
    report.safeMode = guardrails_->safeMode();
    if (ledger_) {
        ledger_->beginCycle(cycles_, system_.clock().now(),
                            guardrails_->safeMode(), probe);
    }
    runCycleBody(report, probe, injector);

    CycleEvidence evidence;
    evidence.cycle = cycles_;
    evidence.probe = probe;
    evidence.overrun = guardrails_->cycleOverrun();
    evidence.flood = guardrails_->quarantineFlood();
    evidence.diverged =
        report.retrain.diverged || report.retrain.cancelled;
    evidence.trained = report.retrain.trained && !report.retrain.diverged &&
                       !report.retrain.cancelled;
    evidence.held = report.held;
    GuardrailTransition transition = guardrails_->observeCycle(evidence);
    if (transition == GuardrailTransition::Entered) {
        // Freeze the layout at last-known-good: drain the retry queue
        // so no deferred migration fires while frozen.
        control_->abandonPending();
    }
    report.safeMode = guardrails_->safeMode();
    if (ledger_) {
        if (transition == GuardrailTransition::Entered)
            ledger_->recordTransition("safe_enter");
        else if (transition == GuardrailTransition::Exited)
            ledger_->recordTransition("safe_exit");
        LedgerCycleSummary summary;
        summary.acted = report.acted;
        summary.explored = report.explored;
        summary.skipped = report.skipped;
        summary.held = report.held;
        summary.safeMode = report.safeMode;
        summary.probe = report.probe;
        summary.trained = report.retrain.trained;
        summary.diverged = report.retrain.diverged;
        summary.cancelled = report.retrain.cancelled;
        summary.maeFraction = report.retrain.meanAbsRelError;
        summary.proposed = report.proposedMoves;
        summary.applied = report.moves.applied;
        summary.failed = report.moves.failed;
        summary.abandoned = report.moves.abandoned;
        summary.cancelledMoves = report.moves.cancelled;
        // Deltas of checkpointed cumulative counters, not the
        // in-process per-cycle ones: those recount only the re-ingested
        // tail after a crash/rewind/resume and would break the ledger's
        // byte-for-byte replay guarantee.
        summary.admitted = ledger_->advanceCumulative(
            0, static_cast<uint64_t>(db_->watermark().accesses));
        summary.quarantined =
            ledger_->advanceCumulative(1, guardrails_->quarantined());
        summary.overrun = guardrails_->cycleOverrun();
        ledger_->endCycle(summary);
    }
    guardrails_->beginCycle();
    return report;
}

void
Geomancy::runCycleBody(CycleReport &report, bool probe,
                       storage::FaultInjector *injector)
{
    double began = system_.clock().now();
    enterPhase("monitor", 0);
    {
        GEO_SPAN("cycle", "monitor");
        flushAgents();
    }
    leavePhase("monitor", 0, began);
    // The freshly flushed window closes the loop on any outstanding
    // prediction: join realized per-mount throughput against it.
    if (ledger_)
        ledger_->resolveRealized(*db_);

    // Safe mode: the layout is frozen. Telemetry keeps flowing (the
    // flush above) and probe cycles additionally retrain to test
    // health, but nothing proposes or migrates until a healthy probe
    // exits the mode.
    if (guardrails_->safeMode() && !probe) {
        report.skipped = true;
        cyclesSkippedMetric_->inc();
        return;
    }

    if (db_->accessCount() <
        static_cast<int64_t>(config_.minHistory)) {
        report.skipped = true;
        cyclesSkippedMetric_->inc();
        return;
    }

    began = system_.clock().now();
    enterPhase("train", 1);
    {
        GEO_SPAN("cycle", "train");
        TrainingBatch batch =
            daemon_->buildTrainingBatch(system_.deviceIds());
        report.retrain = engine_->retrain(batch);
    }
    leavePhase("train", 1, began);
    if (injector)
        injector->maybeCrash(storage::CrashPoint::AfterTrain);
    if (!report.retrain.trained || report.retrain.diverged ||
        report.retrain.cancelled) {
        report.skipped = true;
        cyclesSkippedMetric_->inc();
        return;
    }

    if (guardrails_->safeMode())
        return; // probe cycle: health is judged from the evidence

    // Quarantine starvation: some telemetry was rejected and too
    // little survived to trust a decision — hold the current layout.
    if (guardrails_->holdLayout()) {
        report.held = true;
        report.skipped = true;
        cyclesSkippedMetric_->inc();
        util::FlightRecorder::global().record(
            util::FlightKind::LayoutHold, system_.clock().now(),
            cycles_, guardrails_->cycleAdmitted(),
            guardrails_->cycleQuarantined());
        warn("geomancy: cycle %zu holding layout (%zu admitted, %zu "
             "quarantined)",
             cycles_, guardrails_->cycleAdmitted(),
             guardrails_->cycleQuarantined());
        return;
    }

    std::vector<CheckedMove> moves;
    began = system_.clock().now();
    enterPhase("propose", 2);
    {
        GEO_SPAN("cycle", "propose");
        if (rng_.chance(config_.explorationRate)) {
            report.explored = true;
            cyclesExploredMetric_->inc();
            moves = explorationMoves();
        } else {
            moves = proposeMoves();
        }
        report.proposedMoves = moves.size();
        movesProposedMetric_->add(moves.size());
        if (scheduler_) {
            moves = scheduler_->admitAll(std::move(moves),
                                         system_.clock().now());
        }
    }
    leavePhase("propose", 2, began);
    if (injector)
        injector->maybeCrash(storage::CrashPoint::AfterPropose);
    if (moves.empty() && control_->pendingRetries() == 0)
        return;

    began = system_.clock().now();
    enterPhase("migrate", 3);
    {
        GEO_SPAN("cycle", "migrate");
        std::vector<MoveRequest> requests;
        requests.reserve(moves.size());
        for (const CheckedMove &move : moves)
            requests.push_back({move.file, move.to});
        report.moves = control_->apply(requests);
    }
    leavePhase("migrate", 3, began);
    report.acted = report.moves.applied > 0;
    if (ledger_) {
        for (const AppliedMove &fate : report.moves.outcomes)
            ledger_->recordOutcome(fate);
    }

    // Let the scheduler's circuit breaker learn from move fates:
    // successes close a target's breaker, fault-class failures count
    // toward opening it.
    if (scheduler_) {
        double move_now = system_.clock().now();
        for (const AppliedMove &fate : report.moves.outcomes) {
            if (fate.outcome == AttemptOutcome::Applied)
                scheduler_->recordMoveOutcome(fate.to, true, move_now);
            else if (fate.outcome != AttemptOutcome::Skipped &&
                     storage::moveFailRetryable(fate.reason))
                scheduler_->recordMoveOutcome(fate.to, false, move_now);
        }
    }
}

void
Geomancy::saveState(util::StateWriter &w)
{
    // Drain the agents' partial batches into the ReplayDB so the
    // watermark below covers every observation made before the cut;
    // otherwise sub-batch observations would silently vanish in a
    // crash. Neutral for determinism as long as the uninterrupted
    // reference run checkpoints at the same cadence.
    flushAgents();
    // World first: a restore must re-establish the clock and layout
    // before the pipeline components interpret their own cursors.
    system_.saveState(w);
    w.u64("geo.cycles", cycles_);
    w.rng("geo.rng", rng_);
    daemon_->saveState(w);
    engine_->saveState(w);
    control_->saveState(w);
    w.boolean("geo.has_scheduler", scheduler_ != nullptr);
    if (scheduler_)
        scheduler_->saveState(w);
    // Ledger cursor: a restore truncates the audit trail back to this
    // cut so replayed cycles re-append byte-identical rows.
    w.boolean("geo.has_ledger", ledger_ != nullptr);
    if (ledger_)
        ledger_->saveState(w);
    // Guardrails: a crash in safe mode must resume in safe mode with
    // the same probe schedule.
    guardrails_->saveState(w);
    // ReplayDB watermark: rows past these ids were appended after the
    // cut (by the crashed process) and are rewound on restore so the
    // replayed cycles insert byte-identical history.
    ReplayDbWatermark wm = db_->watermark();
    w.u64("geo.db_accesses", static_cast<uint64_t>(wm.accesses));
    w.u64("geo.db_movements", static_cast<uint64_t>(wm.movements));
    w.u64("geo.db_attempts", static_cast<uint64_t>(wm.moveAttempts));
    w.u64("geo.db_faults", static_cast<uint64_t>(wm.faultEvents));
}

void
Geomancy::loadState(util::StateReader &r)
{
    system_.loadState(r);
    uint64_t cycles = r.u64("geo.cycles");
    Rng::State rng = r.rng("geo.rng");
    daemon_->loadState(r);
    engine_->loadState(r);
    control_->loadState(r);
    bool hasScheduler = r.boolean("geo.has_scheduler");
    if (r.ok() && hasScheduler != (scheduler_ != nullptr)) {
        r.fail("geomancy: scheduler config changed since the checkpoint");
        return;
    }
    if (scheduler_ && r.ok())
        scheduler_->loadState(r);
    bool hasLedger = r.boolean("geo.has_ledger");
    if (r.ok() && hasLedger != (ledger_ != nullptr)) {
        r.fail("geomancy: ledger config changed since the checkpoint");
        return;
    }
    if (ledger_ && r.ok())
        ledger_->loadState(r);
    if (r.ok())
        guardrails_->loadState(r);
    ReplayDbWatermark wm;
    wm.accesses = static_cast<int64_t>(r.u64("geo.db_accesses"));
    wm.movements = static_cast<int64_t>(r.u64("geo.db_movements"));
    wm.moveAttempts = static_cast<int64_t>(r.u64("geo.db_attempts"));
    wm.faultEvents = static_cast<int64_t>(r.u64("geo.db_faults"));
    if (!r.ok())
        return;
    cycles_ = cycles;
    rng_.setState(rng);
    db_->rewindTo(wm);
}

bool
Geomancy::restore(const std::string &path)
{
    CheckpointHeader header;
    std::string payload;
    if (!CheckpointManager::read(path, header, payload))
        return false;
    std::istringstream is(payload);
    util::StateReader r(is);
    loadState(r);
    if (!r.ok()) {
        warn("Geomancy::restore: %s rejected: %s", path.c_str(),
             r.error().c_str());
        return false;
    }
    // Safety net: reconcile the pending queue against the attempt log.
    // Idempotent, so it is harmless when the snapshot carried the queue.
    control_->restorePending();
    util::FlightRecorder::global().record(util::FlightKind::Restore,
                                          system_.clock().now(),
                                          cycles_);
    inform("Geomancy::restore: resumed at cycle %llu from %s",
           static_cast<unsigned long long>(cycles_), path.c_str());
    return true;
}

std::vector<MoveRequest>
Geomancy::predictLayout()
{
    flushAgents();
    TrainingBatch batch =
        daemon_->buildTrainingBatch(system_.deviceIds());
    RetrainStats stats = engine_->retrain(batch);
    if (!stats.trained || stats.diverged) {
        warn("Geomancy::predictLayout: model not usable "
             "(trained=%d diverged=%d)", stats.trained, stats.diverged);
        return {};
    }
    std::vector<MoveRequest> requests;
    for (const CheckedMove &move : proposeMoves())
        requests.push_back({move.file, move.to});
    return requests;
}

} // namespace core
} // namespace geo
