#include "core/guardrails.hh"

#include <cmath>
#include <cstring>
#include <string>

#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/trace_event.hh"

namespace geo {
namespace core {

const char *
quarantineReasonName(QuarantineReason reason)
{
    switch (reason) {
    case QuarantineReason::NonFinite:
        return "non_finite";
    case QuarantineReason::NegativeThroughput:
        return "negative_throughput";
    case QuarantineReason::BadDuration:
        return "bad_duration";
    case QuarantineReason::OutOfRange:
        return "out_of_range";
    case QuarantineReason::Future:
        return "future";
    case QuarantineReason::Stale:
        return "stale";
    case QuarantineReason::Duplicate:
        return "duplicate";
    }
    return "unknown";
}

Guardrails::Guardrails(const GuardrailsConfig &config, const SimClock &clock)
    : config_(config), clock_(clock)
{
    auto &registry = util::MetricRegistry::global();
    admittedMetric_ = &registry.counter("guardrails.admitted");
    quarantinedMetric_ = &registry.counter("guardrails.quarantined");
    for (size_t i = 0; i < kQuarantineReasonCount; ++i) {
        std::string name = "guardrails.quarantine.";
        name += quarantineReasonName(static_cast<QuarantineReason>(i));
        reasonMetrics_[i] = &registry.counter(name);
    }
    holdsMetric_ = &registry.counter("guardrails.holds");
    entriesMetric_ = &registry.counter("guardrails.safe_mode_entries");
    exitsMetric_ = &registry.counter("guardrails.safe_mode_exits");
    probesMetric_ = &registry.counter("guardrails.probe_cycles");
    safeCyclesMetric_ = &registry.counter("guardrails.safe_mode_cycles");
    safeModeGauge_ = &registry.gauge("guardrails.safe_mode");
    backoffGauge_ = &registry.gauge("guardrails.backoff_level");
}

bool
Guardrails::checkOnly(const PerfRecord &rec, const PerfRecord *prev,
                      QuarantineReason &reason) const
{
    if (!config_.enabled)
        return false;
    double open_t = static_cast<double>(rec.ots) +
                    static_cast<double>(rec.otms) / 1000.0;
    double close_t = static_cast<double>(rec.cts) +
                     static_cast<double>(rec.ctms) / 1000.0;
    double now = clock_.now();

    if (!std::isfinite(rec.throughput)) {
        reason = QuarantineReason::NonFinite;
        return true;
    }
    if (rec.throughput < 0.0) {
        reason = QuarantineReason::NegativeThroughput;
        return true;
    }
    if (close_t < open_t) {
        reason = QuarantineReason::BadDuration;
        return true;
    }
    if (rec.throughput > config_.maxThroughput ||
        rec.rb > config_.maxAccessBytes || rec.wb > config_.maxAccessBytes) {
        reason = QuarantineReason::OutOfRange;
        return true;
    }
    if (close_t > now + config_.maxFutureSkewSeconds) {
        reason = QuarantineReason::Future;
        return true;
    }
    if (close_t < now - config_.maxRecordAgeSeconds) {
        reason = QuarantineReason::Stale;
        return true;
    }
    if (prev && prev->file == rec.file && prev->device == rec.device &&
        prev->rb == rec.rb && prev->wb == rec.wb && prev->ots == rec.ots &&
        prev->otms == rec.otms && prev->cts == rec.cts &&
        prev->ctms == rec.ctms && prev->throughput == rec.throughput &&
        prev->failed == rec.failed) {
        reason = QuarantineReason::Duplicate;
        return true;
    }
    return false;
}

bool
Guardrails::admit(const PerfRecord &rec, const PerfRecord *prev)
{
    QuarantineReason reason;
    if (checkOnly(rec, prev, reason)) {
        quarantineRecord(rec, reason);
        return false;
    }
    ++admitted_;
    ++cycleAdmitted_;
    admittedMetric_->inc();
    return true;
}

void
Guardrails::quarantineRecord(const PerfRecord &rec, QuarantineReason reason)
{
    QuarantinedRecord entry;
    entry.record = rec;
    entry.reason = reason;
    entry.quarantinedAt = clock_.now();
    quarantine_.push_back(entry);
    while (quarantine_.size() > config_.quarantineCapacity)
        quarantine_.pop_front();
    ++quarantined_;
    ++cycleQuarantined_;
    ++perReason_[static_cast<size_t>(reason)];
    quarantinedMetric_->inc();
    util::FlightRecorder::global().record(
        util::FlightKind::QuarantineReject, entry.quarantinedAt,
        static_cast<uint64_t>(reason), rec.device);
    reasonMetrics_[static_cast<size_t>(reason)]->inc();
}

void
Guardrails::beginCycle()
{
    cycleAdmitted_ = 0;
    cycleQuarantined_ = 0;
    cycleOverrun_ = false;
}

bool
Guardrails::holdLayout() const
{
    return config_.enabled && cycleQuarantined_ > 0 &&
           cycleAdmitted_ < config_.minAdmittedPerCycle;
}

bool
Guardrails::quarantineFlood() const
{
    return config_.enabled &&
           cycleQuarantined_ >= config_.floodMinQuarantined &&
           cycleQuarantined_ > cycleAdmitted_;
}

double
Guardrails::phaseBudget(const char *phase) const
{
    if (std::strcmp(phase, "monitor") == 0)
        return config_.monitorBudgetSeconds;
    if (std::strcmp(phase, "train") == 0)
        return config_.trainBudgetSeconds;
    if (std::strcmp(phase, "propose") == 0)
        return config_.proposeBudgetSeconds;
    if (std::strcmp(phase, "migrate") == 0)
        return config_.migrateBudgetSeconds;
    return 0.0;
}

void
Guardrails::beginPhase(const char *phase, double now)
{
    double budget = config_.enabled ? phaseBudget(phase) : 0.0;
    watchdog_.beginPhase(phase, now, budget);
}

void
Guardrails::endPhase(double now)
{
    if (watchdog_.poll(now))
        cycleOverrun_ = true;
    watchdog_.endPhase();
}

bool
Guardrails::probeDue(uint64_t cycle) const
{
    return safeMode_ && cycle >= nextProbeCycle_;
}

uint64_t
Guardrails::probeBackoffCycles() const
{
    uint64_t wait = config_.probeBackoffBase;
    for (uint64_t i = 0; i < backoffLevel_; ++i) {
        wait *= config_.probeBackoffMultiplier;
        if (wait >= config_.probeBackoffMax)
            return config_.probeBackoffMax;
    }
    return wait < config_.probeBackoffMax ? wait : config_.probeBackoffMax;
}

void
Guardrails::enterSafeMode(uint64_t cycle)
{
    safeMode_ = true;
    enteredCycle_ = cycle;
    backoffLevel_ = 0;
    nextProbeCycle_ = cycle + probeBackoffCycles();
    overrunStreak_ = 0;
    floodStreak_ = 0;
    divergenceStreak_ = 0;
    ++safeModeEntries_;
    entriesMetric_->inc();
    safeModeGauge_->set(1.0);
    backoffGauge_->set(0.0);
    warn("guardrails: entering SAFE MODE at cycle %llu (layout frozen, "
         "first probe at cycle %llu)",
         (unsigned long long)cycle, (unsigned long long)nextProbeCycle_);
    GEO_TRACE_INSTANT("guardrails", "safe_mode_enter", util::TimeDomain::Sim,
                      clock_.now());
    // Safe-mode entry is exactly the moment an operator wants the
    // recent event history: leave a post-mortem artifact now.
    util::FlightRecorder &recorder = util::FlightRecorder::global();
    recorder.record(util::FlightKind::SafeModeEnter, clock_.now(), cycle);
    recorder.crashDump("safe-mode");
}

void
Guardrails::exitSafeMode(uint64_t cycle)
{
    safeMode_ = false;
    backoffLevel_ = 0;
    nextProbeCycle_ = 0;
    overrunStreak_ = 0;
    floodStreak_ = 0;
    divergenceStreak_ = 0;
    ++safeModeExits_;
    exitsMetric_->inc();
    safeModeGauge_->set(0.0);
    backoffGauge_->set(0.0);
    util::FlightRecorder::global().record(
        util::FlightKind::SafeModeExit, clock_.now(), cycle);
    inform("guardrails: healthy probe, leaving safe mode at cycle %llu "
           "(entered at %llu)",
           (unsigned long long)cycle, (unsigned long long)enteredCycle_);
    GEO_TRACE_INSTANT("guardrails", "safe_mode_exit", util::TimeDomain::Sim,
                      clock_.now());
}

bool
Guardrails::tripSafeMode(uint64_t cycle)
{
    if (!config_.enabled || safeMode_)
        return false;
    enterSafeMode(cycle);
    return true;
}

GuardrailTransition
Guardrails::observeCycle(const CycleEvidence &evidence)
{
    if (!config_.enabled)
        return GuardrailTransition::None;
    if (evidence.held) {
        ++holds_;
        holdsMetric_->inc();
    }

    if (!safeMode_) {
        overrunStreak_ = evidence.overrun ? overrunStreak_ + 1 : 0;
        floodStreak_ = evidence.flood ? floodStreak_ + 1 : 0;
        divergenceStreak_ = evidence.diverged ? divergenceStreak_ + 1 : 0;
        if (overrunStreak_ >= config_.overrunTripThreshold ||
            floodStreak_ >= config_.floodTripThreshold ||
            divergenceStreak_ >= config_.divergenceTripThreshold) {
            enterSafeMode(evidence.cycle);
            return GuardrailTransition::Entered;
        }
        return GuardrailTransition::None;
    }

    ++safeModeCycles_;
    safeCyclesMetric_->inc();
    if (!evidence.probe)
        return GuardrailTransition::None;

    ++probeCycles_;
    probesMetric_->inc();
    bool healthy = evidence.trained && !evidence.diverged &&
                   !evidence.flood && !evidence.overrun && !evidence.held;
    if (healthy) {
        exitSafeMode(evidence.cycle);
        return GuardrailTransition::Exited;
    }
    ++backoffLevel_;
    backoffGauge_->set(static_cast<double>(backoffLevel_));
    nextProbeCycle_ = evidence.cycle + probeBackoffCycles();
    warn("guardrails: probe at cycle %llu unhealthy, next probe at "
         "cycle %llu (backoff level %llu)",
         (unsigned long long)evidence.cycle,
         (unsigned long long)nextProbeCycle_,
         (unsigned long long)backoffLevel_);
    return GuardrailTransition::None;
}

void
Guardrails::saveState(util::StateWriter &w) const
{
    w.boolean("grd.safe_mode", safeMode_);
    w.u64("grd.overrun_streak", overrunStreak_);
    w.u64("grd.flood_streak", floodStreak_);
    w.u64("grd.div_streak", divergenceStreak_);
    w.u64("grd.backoff_level", backoffLevel_);
    w.u64("grd.next_probe", nextProbeCycle_);
    w.u64("grd.entered_cycle", enteredCycle_);
    w.u64("grd.entries", safeModeEntries_);
    w.u64("grd.exits", safeModeExits_);
    w.u64("grd.probe_cycles", probeCycles_);
    w.u64("grd.safe_cycles", safeModeCycles_);
    w.u64("grd.holds", holds_);
    w.u64("grd.admitted", admitted_);
    w.u64("grd.quarantined", quarantined_);
    for (size_t i = 0; i < kQuarantineReasonCount; ++i)
        w.u64("grd.reason", perReason_[i]);
    w.u64("grd.overruns", watchdog_.overruns());
}

void
Guardrails::loadState(util::StateReader &r)
{
    bool safe = r.boolean("grd.safe_mode");
    uint64_t overrun_streak = r.u64("grd.overrun_streak");
    uint64_t flood_streak = r.u64("grd.flood_streak");
    uint64_t div_streak = r.u64("grd.div_streak");
    uint64_t backoff = r.u64("grd.backoff_level");
    uint64_t next_probe = r.u64("grd.next_probe");
    uint64_t entered = r.u64("grd.entered_cycle");
    uint64_t entries = r.u64("grd.entries");
    uint64_t exits = r.u64("grd.exits");
    uint64_t probes = r.u64("grd.probe_cycles");
    uint64_t safe_cycles = r.u64("grd.safe_cycles");
    uint64_t holds = r.u64("grd.holds");
    uint64_t admitted = r.u64("grd.admitted");
    uint64_t quarantined = r.u64("grd.quarantined");
    uint64_t per_reason[kQuarantineReasonCount];
    for (size_t i = 0; i < kQuarantineReasonCount; ++i)
        per_reason[i] = r.u64("grd.reason");
    uint64_t overruns = r.u64("grd.overruns");
    if (!r.ok())
        return;
    safeMode_ = safe;
    overrunStreak_ = overrun_streak;
    floodStreak_ = flood_streak;
    divergenceStreak_ = div_streak;
    backoffLevel_ = backoff;
    nextProbeCycle_ = next_probe;
    enteredCycle_ = entered;
    safeModeEntries_ = entries;
    safeModeExits_ = exits;
    probeCycles_ = probes;
    safeModeCycles_ = safe_cycles;
    holds_ = holds;
    admitted_ = admitted;
    quarantined_ = quarantined;
    for (size_t i = 0; i < kQuarantineReasonCount; ++i)
        perReason_[i] = per_reason[i];
    watchdog_.setOverruns(overruns);
    quarantine_.clear();
    cycleAdmitted_ = 0;
    cycleQuarantined_ = 0;
    cycleOverrun_ = false;
    safeModeGauge_->set(safeMode_ ? 1.0 : 0.0);
    backoffGauge_->set(static_cast<double>(backoffLevel_));
    if (safeMode_)
        inform("guardrails: restored into safe mode (entered at cycle "
               "%llu, next probe at %llu)",
               (unsigned long long)enteredCycle_,
               (unsigned long long)nextProbeCycle_);
}

} // namespace core
} // namespace geo
