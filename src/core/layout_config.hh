/**
 * @file
 * The layout configuration file (paper Sections V-F and VI).
 *
 * The paper's workload "requests the current locations of the files
 * from a configuration file that Geomancy configures after any data
 * movement", and Geomancy refreshes the list of potential storage
 * points "saved as a configuration file" before predicting. This
 * class is that file: a persistent snapshot of the file -> device
 * layout plus the available (writable) mounts, written by Geomancy's
 * side and readable by any client.
 */

#ifndef GEO_CORE_LAYOUT_CONFIG_HH
#define GEO_CORE_LAYOUT_CONFIG_HH

#include <map>
#include <string>
#include <vector>

#include "storage/system.hh"

namespace geo {
namespace core {

/**
 * Persistent layout snapshot.
 */
class LayoutConfig
{
  public:
    LayoutConfig() = default;

    /** Capture the current layout and mount availability. */
    static LayoutConfig capture(const storage::StorageSystem &system);

    /** Location of a file; panics if the file is unknown. */
    storage::DeviceId location(storage::FileId file) const;

    /** Whether the snapshot knows this file. */
    bool knows(storage::FileId file) const;

    /** Devices that were writable when captured (the candidate set
     *  predictions are constrained to, Section V-F). */
    const std::vector<storage::DeviceId> &availableDevices() const
    {
        return available_;
    }

    size_t fileCount() const { return layout_.size(); }

    /** Serialize to the on-disk text format. */
    std::string serialize() const;

    /** Parse the on-disk format. @return false on malformed input. */
    bool parse(const std::string &text);

    /** Write to a file. @return false on I/O error. */
    bool save(const std::string &path) const;

    /** Read from a file. @return false on I/O or parse error. */
    bool load(const std::string &path);

    bool operator==(const LayoutConfig &other) const = default;

  private:
    std::map<storage::FileId, storage::DeviceId> layout_;
    std::vector<storage::DeviceId> available_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_LAYOUT_CONFIG_HH
