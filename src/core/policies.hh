/**
 * @file
 * Data-placement policies: Geomancy and the paper's baselines.
 *
 * Experiment 1 compares Geomancy dynamic against heuristics inspired
 * by caching algorithms (LRU, MRU, LFU) and random placement;
 * experiment 2 adds the static baselines (random static and a single
 * frozen Geomancy prediction). Each policy applies its own moves to
 * the target system so migration costs are accounted identically.
 */

#ifndef GEO_CORE_POLICIES_HH
#define GEO_CORE_POLICIES_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/geomancy.hh"
#include "core/shard_coordinator.hh"
#include "storage/system.hh"
#include "util/random.hh"

namespace geo {
namespace core {

/** Per-file usage statistics maintained by the experiment runner. */
struct FileUsage
{
    uint64_t accessCount = 0;
    uint64_t lastAccessIndex = 0; ///< global access number of last use
    double lastAccessTime = 0.0;
};

/** Everything a placement policy may consult. */
struct PolicyContext
{
    storage::StorageSystem &system;
    const std::vector<storage::FileId> &files;
    const std::map<storage::FileId, FileUsage> &usage;
    /** Devices ordered fastest first by measured mean throughput
     *  (falling back to instantaneous bandwidth when unmeasured). */
    const std::vector<storage::DeviceId> &devicesFastestFirst;
    Rng &rng;
};

/**
 * Base class of all placement policies.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Display name, e.g. "LFU" or "Geomancy dynamic". */
    virtual std::string name() const = 0;

    /**
     * Rearrange data as the policy deems best, applying moves directly
     * to the target system.
     *
     * @return number of files actually moved.
     */
    virtual size_t rebalance(PolicyContext &context) = 0;

    /** Dynamic policies are re-run during the workload; static ones
     *  only once before it starts. */
    virtual bool isDynamic() const { return true; }
};

/**
 * Group files by an ordering and spread the groups across devices
 * (shared machinery of LRU/MRU/LFU: sort files, split into as many
 * equal groups as devices, map group i to device rank i; leftovers go
 * to the slowest device, as in the paper's Section VI).
 */
class GroupedHeuristicPolicy : public PlacementPolicy
{
  public:
    /**
     * @param capacity_weighted size each device's group proportionally
     *        to its capacity instead of evenly (the variant the paper
     *        mentions as an alternative in Section VI).
     */
    explicit GroupedHeuristicPolicy(bool capacity_weighted = false)
        : capacityWeighted_(capacity_weighted)
    {
    }

    size_t rebalance(PolicyContext &context) override;

    bool capacityWeighted() const { return capacityWeighted_; }

  protected:
    bool capacityWeighted_;

    /**
     * Sort `files` into placement order: the first group lands on the
     * first device of `devices` (which this hook may reorder).
     */
    virtual void orderFiles(std::vector<storage::FileId> &files,
                            std::vector<storage::DeviceId> &devices,
                            const PolicyContext &context) = 0;
};

/** Most recently used files to the fastest devices. */
class LruPolicy : public GroupedHeuristicPolicy
{
  public:
    using GroupedHeuristicPolicy::GroupedHeuristicPolicy;

    std::string name() const override { return "LRU"; }

  protected:
    void orderFiles(std::vector<storage::FileId> &files,
                    std::vector<storage::DeviceId> &devices,
                    const PolicyContext &context) override;
};

/** Most recently used files to the *slowest* devices (Chou et al.). */
class MruPolicy : public GroupedHeuristicPolicy
{
  public:
    using GroupedHeuristicPolicy::GroupedHeuristicPolicy;

    std::string name() const override { return "MRU"; }

  protected:
    void orderFiles(std::vector<storage::FileId> &files,
                    std::vector<storage::DeviceId> &devices,
                    const PolicyContext &context) override;
};

/** Most frequently used files to the fastest devices (Gupta et al.). */
class LfuPolicy : public GroupedHeuristicPolicy
{
  public:
    using GroupedHeuristicPolicy::GroupedHeuristicPolicy;

    std::string name() const override { return "LFU"; }

  protected:
    void orderFiles(std::vector<storage::FileId> &files,
                    std::vector<storage::DeviceId> &devices,
                    const PolicyContext &context) override;
};

/** Shuffle every file to a uniformly random device. */
class RandomPolicy : public PlacementPolicy
{
  public:
    /** @param dynamic reshuffle on every rebalance (random dynamic)
     *         or only once (random static). */
    explicit RandomPolicy(bool dynamic);

    std::string name() const override;
    bool isDynamic() const override { return dynamic_; }
    size_t rebalance(PolicyContext &context) override;

  private:
    bool dynamic_;
    bool placed_ = false;
};

/** Pin every file to one mount (experiment 2 / Table IV rows). */
class SingleMountPolicy : public PlacementPolicy
{
  public:
    explicit SingleMountPolicy(storage::DeviceId device);

    std::string name() const override;
    bool isDynamic() const override { return false; }
    size_t rebalance(PolicyContext &context) override;

  private:
    storage::DeviceId device_;
    bool placed_ = false;
};

/** Keep the initial layout untouched (control baseline). */
class NoOpPolicy : public PlacementPolicy
{
  public:
    std::string name() const override { return "no-op"; }
    bool isDynamic() const override { return false; }
    size_t rebalance(PolicyContext &) override { return 0; }
};

/**
 * Geomancy dynamic: full decision cycles at every rebalance point.
 */
class GeomancyDynamicPolicy : public PlacementPolicy
{
  public:
    /** @param geomancy engine attached to the same target system. */
    explicit GeomancyDynamicPolicy(Geomancy &geomancy);

    std::string name() const override { return "Geomancy dynamic"; }
    size_t rebalance(PolicyContext &context) override;

    /** Most recent cycle report (for experiment instrumentation). */
    const CycleReport &lastReport() const { return lastReport_; }

  private:
    Geomancy &geomancy_;
    CycleReport lastReport_;
};

/**
 * Fleet-scale Geomancy: one coordinator round — a decision cycle on
 * every shard, under the cross-shard admission budgets — at every
 * rebalance point.
 */
class ShardedGeomancyPolicy : public PlacementPolicy
{
  public:
    /** @param coordinator attached to the same target system. */
    explicit ShardedGeomancyPolicy(ShardCoordinator &coordinator);

    std::string name() const override;
    size_t rebalance(PolicyContext &context) override;

    /** Most recent round's per-shard reports. */
    const std::vector<CycleReport> &lastReports() const
    {
        return lastReports_;
    }

  private:
    ShardCoordinator &coordinator_;
    std::vector<CycleReport> lastReports_;
};

/**
 * Geomancy static: one prediction applied once, never updated
 * (experiment 2's "manual tuning" simulation).
 */
class GeomancyStaticPolicy : public PlacementPolicy
{
  public:
    explicit GeomancyStaticPolicy(Geomancy &geomancy);

    std::string name() const override { return "Geomancy static"; }
    bool isDynamic() const override { return false; }
    size_t rebalance(PolicyContext &context) override;

  private:
    Geomancy &geomancy_;
    bool placed_ = false;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_POLICIES_HH
