#include "core/replay_db.hh"

#include <sqlite3.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace geo {
namespace core {

namespace {

/** Read one PerfRecord from the current row of a SELECT * statement. */
PerfRecord
readAccessRow(sqlite3_stmt *stmt)
{
    PerfRecord rec;
    rec.id = sqlite3_column_int64(stmt, 0);
    rec.file =
        static_cast<storage::FileId>(sqlite3_column_int64(stmt, 1));
    rec.device =
        static_cast<storage::DeviceId>(sqlite3_column_int64(stmt, 2));
    rec.rb = static_cast<uint64_t>(sqlite3_column_int64(stmt, 3));
    rec.wb = static_cast<uint64_t>(sqlite3_column_int64(stmt, 4));
    rec.ots = sqlite3_column_int64(stmt, 5);
    rec.otms = sqlite3_column_int64(stmt, 6);
    rec.cts = sqlite3_column_int64(stmt, 7);
    rec.ctms = sqlite3_column_int64(stmt, 8);
    rec.throughput = sqlite3_column_double(stmt, 9);
    rec.failed = sqlite3_column_int64(stmt, 10) != 0;
    return rec;
}

constexpr const char *kAccessColumns =
    "id, file_id, device_id, rb, wb, ots, otms, cts, ctms, throughput,"
    " failed";

} // namespace

const char *
attemptOutcomeName(AttemptOutcome outcome)
{
    switch (outcome) {
      case AttemptOutcome::Applied:
        return "applied";
      case AttemptOutcome::Skipped:
        return "skipped";
      case AttemptOutcome::Failed:
        return "failed";
      case AttemptOutcome::Abandoned:
        return "abandoned";
      case AttemptOutcome::Superseded:
        return "superseded";
    }
    return "unknown";
}

namespace {

/** Run PRAGMA quick_check and report whether the file is sound. */
bool
quickCheckOk(sqlite3 *db)
{
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db, "PRAGMA quick_check;", -1, &stmt,
                           nullptr) != SQLITE_OK)
        return false;
    bool ok = false;
    if (sqlite3_step(stmt) == SQLITE_ROW) {
        const unsigned char *text = sqlite3_column_text(stmt, 0);
        ok = text &&
             std::string(reinterpret_cast<const char *>(text)) == "ok";
    }
    sqlite3_finalize(stmt);
    return ok;
}

} // namespace

ReplayDb::ReplayDb(const std::string &path)
{
    readCorruptMetric_ =
        &util::MetricRegistry::global().counter("replaydb.read.corrupt");

    // A corrupt or truncated on-disk database must not take the whole
    // daemon down: the ReplayDB is a history cache that can be rebuilt
    // from live traffic, so degrade to an empty in-memory store.
    if (sqlite3_open(path.c_str(), &db_) != SQLITE_OK) {
        warn("ReplayDb: cannot open '%s': %s", path.c_str(),
             db_ ? sqlite3_errmsg(db_) : "out of memory");
        openedCorrupt_ = true;
    } else if (path != ":memory:" && !quickCheckOk(db_)) {
        warn("ReplayDb: '%s' failed its integrity check (corrupt or "
             "truncated file)", path.c_str());
        openedCorrupt_ = true;
    }
    if (openedCorrupt_) {
        util::MetricRegistry::global().counter("replaydb.open.corrupt")
            .inc();
        if (db_) {
            sqlite3_close(db_);
            db_ = nullptr;
        }
        warn("ReplayDb: falling back to an empty in-memory database");
        if (sqlite3_open(":memory:", &db_) != SQLITE_OK)
            fatal("ReplayDb: cannot open in-memory fallback: %s",
                  db_ ? sqlite3_errmsg(db_) : "out of memory");
    }

    exec("PRAGMA journal_mode = MEMORY;");
    exec("PRAGMA synchronous = OFF;");
    exec("CREATE TABLE IF NOT EXISTS accesses ("
         "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
         "  file_id INTEGER NOT NULL,"
         "  device_id INTEGER NOT NULL,"
         "  rb INTEGER NOT NULL,"
         "  wb INTEGER NOT NULL,"
         "  ots INTEGER NOT NULL,"
         "  otms INTEGER NOT NULL,"
         "  cts INTEGER NOT NULL,"
         "  ctms INTEGER NOT NULL,"
         "  throughput REAL NOT NULL,"
         "  failed INTEGER NOT NULL DEFAULT 0"
         ");");
    {
        // On-disk databases written before the fault model predate the
        // failed column; add it in place (a no-op error otherwise).
        char *err = nullptr;
        if (sqlite3_exec(db_,
                         "ALTER TABLE accesses ADD COLUMN failed"
                         " INTEGER NOT NULL DEFAULT 0;",
                         nullptr, nullptr, &err) != SQLITE_OK)
            sqlite3_free(err);
    }
    exec("CREATE INDEX IF NOT EXISTS idx_accesses_device"
         " ON accesses(device_id, id);");
    exec("CREATE INDEX IF NOT EXISTS idx_accesses_file"
         " ON accesses(file_id, id);");
    exec("CREATE TABLE IF NOT EXISTS movements ("
         "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
         "  timestamp REAL NOT NULL,"
         "  file_id INTEGER NOT NULL,"
         "  from_device INTEGER NOT NULL,"
         "  to_device INTEGER NOT NULL,"
         "  bytes INTEGER NOT NULL,"
         "  seconds REAL NOT NULL"
         ");");
    exec("CREATE TABLE IF NOT EXISTS move_attempts ("
         "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
         "  timestamp REAL NOT NULL,"
         "  file_id INTEGER NOT NULL,"
         "  from_device INTEGER NOT NULL,"
         "  to_device INTEGER NOT NULL,"
         "  attempt INTEGER NOT NULL,"
         "  outcome INTEGER NOT NULL,"
         "  reason INTEGER NOT NULL,"
         "  bytes_copied INTEGER NOT NULL"
         ");");
    exec("CREATE INDEX IF NOT EXISTS idx_attempts_file"
         " ON move_attempts(file_id, id);");
    exec("CREATE TABLE IF NOT EXISTS fault_events ("
         "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
         "  timestamp REAL NOT NULL,"
         "  device_id INTEGER NOT NULL,"
         "  kind INTEGER NOT NULL,"
         "  active INTEGER NOT NULL,"
         "  magnitude REAL NOT NULL"
         ");");

    const char *insert_access =
        "INSERT INTO accesses (file_id, device_id, rb, wb, ots, otms, cts,"
        " ctms, throughput, failed)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?);";
    if (sqlite3_prepare_v2(db_, insert_access, -1, &insertAccessStmt_,
                           nullptr) != SQLITE_OK)
        fatal("ReplayDb: prepare insertAccess: %s", sqlite3_errmsg(db_));

    const char *insert_movement =
        "INSERT INTO movements (timestamp, file_id, from_device, to_device,"
        " bytes, seconds) VALUES (?, ?, ?, ?, ?, ?);";
    if (sqlite3_prepare_v2(db_, insert_movement, -1, &insertMovementStmt_,
                           nullptr) != SQLITE_OK)
        fatal("ReplayDb: prepare insertMovement: %s", sqlite3_errmsg(db_));

    const char *insert_attempt =
        "INSERT INTO move_attempts (timestamp, file_id, from_device,"
        " to_device, attempt, outcome, reason, bytes_copied)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?);";
    if (sqlite3_prepare_v2(db_, insert_attempt, -1, &insertAttemptStmt_,
                           nullptr) != SQLITE_OK)
        fatal("ReplayDb: prepare insertMoveAttempt: %s",
              sqlite3_errmsg(db_));

    const char *insert_fault =
        "INSERT INTO fault_events (timestamp, device_id, kind, active,"
        " magnitude) VALUES (?, ?, ?, ?, ?);";
    if (sqlite3_prepare_v2(db_, insert_fault, -1, &insertFaultStmt_,
                           nullptr) != SQLITE_OK)
        fatal("ReplayDb: prepare insertFaultEvent: %s",
              sqlite3_errmsg(db_));
}

ReplayDb::~ReplayDb()
{
    sqlite3_finalize(insertAccessStmt_);
    sqlite3_finalize(insertMovementStmt_);
    sqlite3_finalize(insertAttemptStmt_);
    sqlite3_finalize(insertFaultStmt_);
    sqlite3_close(db_);
}

void
ReplayDb::exec(const std::string &sql)
{
    char *err = nullptr;
    if (sqlite3_exec(db_, sql.c_str(), nullptr, nullptr, &err) !=
        SQLITE_OK) {
        std::string message = err ? err : "unknown error";
        sqlite3_free(err);
        fatal("ReplayDb: exec failed: %s (%s)", message.c_str(),
              sql.c_str());
    }
}

int64_t
ReplayDb::insertAccess(const PerfRecord &record)
{
    sqlite3_reset(insertAccessStmt_);
    sqlite3_bind_int64(insertAccessStmt_, 1,
                       static_cast<int64_t>(record.file));
    sqlite3_bind_int64(insertAccessStmt_, 2,
                       static_cast<int64_t>(record.device));
    sqlite3_bind_int64(insertAccessStmt_, 3,
                       static_cast<int64_t>(record.rb));
    sqlite3_bind_int64(insertAccessStmt_, 4,
                       static_cast<int64_t>(record.wb));
    sqlite3_bind_int64(insertAccessStmt_, 5, record.ots);
    sqlite3_bind_int64(insertAccessStmt_, 6, record.otms);
    sqlite3_bind_int64(insertAccessStmt_, 7, record.cts);
    sqlite3_bind_int64(insertAccessStmt_, 8, record.ctms);
    sqlite3_bind_double(insertAccessStmt_, 9, record.throughput);
    sqlite3_bind_int64(insertAccessStmt_, 10, record.failed ? 1 : 0);
    if (sqlite3_step(insertAccessStmt_) != SQLITE_DONE)
        fatal("ReplayDb: insertAccess: %s", sqlite3_errmsg(db_));
    return sqlite3_last_insert_rowid(db_);
}

void
ReplayDb::insertAccesses(const std::vector<PerfRecord> &records)
{
    exec("BEGIN TRANSACTION;");
    for (const PerfRecord &rec : records)
        insertAccess(rec);
    exec("COMMIT;");
}

int64_t
ReplayDb::accessCount() const
{
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, "SELECT COUNT(*) FROM accesses;", -1, &stmt,
                           nullptr) != SQLITE_OK)
        fatal("ReplayDb: accessCount: %s", sqlite3_errmsg(db_));
    int64_t count = 0;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        count = sqlite3_column_int64(stmt, 0);
    sqlite3_finalize(stmt);
    return count;
}

std::vector<PerfRecord>
ReplayDb::queryAccesses(const std::string &sql, int64_t bind0,
                        size_t limit) const
{
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql.c_str(), -1, &stmt, nullptr) !=
        SQLITE_OK)
        fatal("ReplayDb: query: %s", sqlite3_errmsg(db_));
    int index = 1;
    if (bind0 >= 0)
        sqlite3_bind_int64(stmt, index++, bind0);
    sqlite3_bind_int64(stmt, index, static_cast<int64_t>(limit));
    std::vector<PerfRecord> records;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW)
        records.push_back(readAccessRow(stmt));
    if (rc != SQLITE_DONE)
        noteReadCorrupt("queryAccesses");
    sqlite3_finalize(stmt);
    // Queries select newest-first for the LIMIT; return oldest-first.
    std::reverse(records.begin(), records.end());
    return records;
}

std::vector<PerfRecord>
ReplayDb::recentAccesses(size_t limit) const
{
    return queryAccesses(
        strprintf("SELECT %s FROM accesses ORDER BY id DESC LIMIT ?;",
                  kAccessColumns),
        -1, limit);
}

std::vector<PerfRecord>
ReplayDb::recentAccessesForDevice(storage::DeviceId device,
                                  size_t limit) const
{
    return queryAccesses(
        strprintf("SELECT %s FROM accesses WHERE device_id = ?"
                  " ORDER BY id DESC LIMIT ?;",
                  kAccessColumns),
        static_cast<int64_t>(device), limit);
}

std::vector<PerfRecord>
ReplayDb::recentAccessesForFile(storage::FileId file, size_t limit) const
{
    return queryAccesses(
        strprintf("SELECT %s FROM accesses WHERE file_id = ?"
                  " ORDER BY id DESC LIMIT ?;",
                  kAccessColumns),
        static_cast<int64_t>(file), limit);
}

bool
ReplayDb::latestAccessForFile(storage::FileId file, PerfRecord &out) const
{
    std::vector<PerfRecord> records = recentAccessesForFile(file, 1);
    if (records.empty())
        return false;
    out = records.front();
    return true;
}

std::vector<std::pair<storage::DeviceId, double>>
ReplayDb::deviceThroughput(size_t limit) const
{
    const char *sql =
        "SELECT device_id, AVG(throughput) FROM"
        " (SELECT device_id, throughput FROM accesses"
        "  ORDER BY id DESC LIMIT ?)"
        " GROUP BY device_id;";
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql, -1, &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: deviceThroughput: %s", sqlite3_errmsg(db_));
    sqlite3_bind_int64(stmt, 1, static_cast<int64_t>(limit));
    std::vector<std::pair<storage::DeviceId, double>> result;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW) {
        result.emplace_back(
            static_cast<storage::DeviceId>(sqlite3_column_int64(stmt, 0)),
            sqlite3_column_double(stmt, 1));
    }
    if (rc != SQLITE_DONE)
        noteReadCorrupt("deviceThroughput");
    sqlite3_finalize(stmt);
    return result;
}

std::vector<std::tuple<storage::DeviceId, double, int64_t>>
ReplayDb::deviceThroughputSince(int64_t min_id) const
{
    // A GROUP BY device_id would tempt the planner onto the
    // (device_id, id) index — a full-index walk that grows with the
    // table, not the tail.  Range-scan the rowid tail and aggregate
    // here instead; the tail is one monitoring window (~1k rows).
    const char *sql =
        "SELECT device_id, throughput FROM accesses WHERE id > ?;";
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql, -1, &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: deviceThroughputSince: %s", sqlite3_errmsg(db_));
    sqlite3_bind_int64(stmt, 1, min_id);
    std::map<storage::DeviceId, std::pair<double, int64_t>> acc;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW) {
        auto &slot = acc[static_cast<storage::DeviceId>(
            sqlite3_column_int64(stmt, 0))];
        slot.first += sqlite3_column_double(stmt, 1);
        ++slot.second;
    }
    if (rc != SQLITE_DONE)
        noteReadCorrupt("deviceThroughputSince");
    sqlite3_finalize(stmt);
    std::vector<std::tuple<storage::DeviceId, double, int64_t>> result;
    result.reserve(acc.size());
    for (const auto &[device, slot] : acc)
        result.emplace_back(device,
                            slot.first / static_cast<double>(slot.second),
                            slot.second);
    return result;
}

int64_t
ReplayDb::insertMovement(const MovementRecord &movement)
{
    sqlite3_reset(insertMovementStmt_);
    sqlite3_bind_double(insertMovementStmt_, 1, movement.timestamp);
    sqlite3_bind_int64(insertMovementStmt_, 2,
                       static_cast<int64_t>(movement.file));
    sqlite3_bind_int64(insertMovementStmt_, 3,
                       static_cast<int64_t>(movement.fromDevice));
    sqlite3_bind_int64(insertMovementStmt_, 4,
                       static_cast<int64_t>(movement.toDevice));
    sqlite3_bind_int64(insertMovementStmt_, 5,
                       static_cast<int64_t>(movement.bytes));
    sqlite3_bind_double(insertMovementStmt_, 6, movement.seconds);
    if (sqlite3_step(insertMovementStmt_) != SQLITE_DONE)
        fatal("ReplayDb: insertMovement: %s", sqlite3_errmsg(db_));
    return sqlite3_last_insert_rowid(db_);
}

int64_t
ReplayDb::movementCount() const
{
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, "SELECT COUNT(*) FROM movements;", -1,
                           &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: movementCount: %s", sqlite3_errmsg(db_));
    int64_t count = 0;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        count = sqlite3_column_int64(stmt, 0);
    sqlite3_finalize(stmt);
    return count;
}

namespace {

MovementRecord
readMovementRow(sqlite3_stmt *stmt)
{
    MovementRecord rec;
    rec.id = sqlite3_column_int64(stmt, 0);
    rec.timestamp = sqlite3_column_double(stmt, 1);
    rec.file =
        static_cast<storage::FileId>(sqlite3_column_int64(stmt, 2));
    rec.fromDevice =
        static_cast<storage::DeviceId>(sqlite3_column_int64(stmt, 3));
    rec.toDevice =
        static_cast<storage::DeviceId>(sqlite3_column_int64(stmt, 4));
    rec.bytes = static_cast<uint64_t>(sqlite3_column_int64(stmt, 5));
    rec.seconds = sqlite3_column_double(stmt, 6);
    return rec;
}

} // namespace

std::vector<MovementRecord>
ReplayDb::movementsBetween(double begin, double end) const
{
    const char *sql =
        "SELECT id, timestamp, file_id, from_device, to_device, bytes,"
        " seconds FROM movements WHERE timestamp >= ? AND timestamp < ?"
        " ORDER BY id ASC;";
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql, -1, &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: movementsBetween: %s", sqlite3_errmsg(db_));
    sqlite3_bind_double(stmt, 1, begin);
    sqlite3_bind_double(stmt, 2, end);
    std::vector<MovementRecord> records;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW)
        records.push_back(readMovementRow(stmt));
    if (rc != SQLITE_DONE)
        noteReadCorrupt("movementsBetween");
    sqlite3_finalize(stmt);
    return records;
}

std::vector<MovementRecord>
ReplayDb::recentMovements(size_t limit) const
{
    const char *sql =
        "SELECT id, timestamp, file_id, from_device, to_device, bytes,"
        " seconds FROM movements ORDER BY id DESC LIMIT ?;";
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql, -1, &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: recentMovements: %s", sqlite3_errmsg(db_));
    sqlite3_bind_int64(stmt, 1, static_cast<int64_t>(limit));
    std::vector<MovementRecord> records;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW)
        records.push_back(readMovementRow(stmt));
    if (rc != SQLITE_DONE)
        noteReadCorrupt("recentMovements");
    sqlite3_finalize(stmt);
    std::reverse(records.begin(), records.end());
    return records;
}

namespace {

MoveAttemptRecord
readAttemptRow(sqlite3_stmt *stmt)
{
    MoveAttemptRecord rec;
    rec.id = sqlite3_column_int64(stmt, 0);
    rec.timestamp = sqlite3_column_double(stmt, 1);
    rec.file =
        static_cast<storage::FileId>(sqlite3_column_int64(stmt, 2));
    rec.fromDevice =
        static_cast<storage::DeviceId>(sqlite3_column_int64(stmt, 3));
    rec.toDevice =
        static_cast<storage::DeviceId>(sqlite3_column_int64(stmt, 4));
    rec.attempt = static_cast<int>(sqlite3_column_int64(stmt, 5));
    rec.outcome =
        static_cast<AttemptOutcome>(sqlite3_column_int64(stmt, 6));
    rec.reason =
        static_cast<storage::MoveFail>(sqlite3_column_int64(stmt, 7));
    rec.bytesCopied =
        static_cast<uint64_t>(sqlite3_column_int64(stmt, 8));
    return rec;
}

constexpr const char *kAttemptColumns =
    "id, timestamp, file_id, from_device, to_device, attempt, outcome,"
    " reason, bytes_copied";

} // namespace

int64_t
ReplayDb::insertMoveAttempt(const MoveAttemptRecord &attempt)
{
    sqlite3_reset(insertAttemptStmt_);
    sqlite3_bind_double(insertAttemptStmt_, 1, attempt.timestamp);
    sqlite3_bind_int64(insertAttemptStmt_, 2,
                       static_cast<int64_t>(attempt.file));
    sqlite3_bind_int64(insertAttemptStmt_, 3,
                       static_cast<int64_t>(attempt.fromDevice));
    sqlite3_bind_int64(insertAttemptStmt_, 4,
                       static_cast<int64_t>(attempt.toDevice));
    sqlite3_bind_int64(insertAttemptStmt_, 5, attempt.attempt);
    sqlite3_bind_int64(insertAttemptStmt_, 6,
                       static_cast<int64_t>(attempt.outcome));
    sqlite3_bind_int64(insertAttemptStmt_, 7,
                       static_cast<int64_t>(attempt.reason));
    sqlite3_bind_int64(insertAttemptStmt_, 8,
                       static_cast<int64_t>(attempt.bytesCopied));
    if (sqlite3_step(insertAttemptStmt_) != SQLITE_DONE)
        fatal("ReplayDb: insertMoveAttempt: %s", sqlite3_errmsg(db_));
    return sqlite3_last_insert_rowid(db_);
}

int64_t
ReplayDb::moveAttemptCount() const
{
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, "SELECT COUNT(*) FROM move_attempts;", -1,
                           &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: moveAttemptCount: %s", sqlite3_errmsg(db_));
    int64_t count = 0;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        count = sqlite3_column_int64(stmt, 0);
    sqlite3_finalize(stmt);
    return count;
}

std::vector<MoveAttemptRecord>
ReplayDb::recentMoveAttempts(size_t limit) const
{
    std::string sql = strprintf(
        "SELECT %s FROM move_attempts ORDER BY id DESC LIMIT ?;",
        kAttemptColumns);
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql.c_str(), -1, &stmt, nullptr) !=
        SQLITE_OK)
        fatal("ReplayDb: recentMoveAttempts: %s", sqlite3_errmsg(db_));
    sqlite3_bind_int64(stmt, 1, static_cast<int64_t>(limit));
    std::vector<MoveAttemptRecord> records;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW)
        records.push_back(readAttemptRow(stmt));
    if (rc != SQLITE_DONE)
        noteReadCorrupt("recentMoveAttempts");
    sqlite3_finalize(stmt);
    std::reverse(records.begin(), records.end());
    return records;
}

std::vector<MoveAttemptRecord>
ReplayDb::attemptsForFile(storage::FileId file, size_t limit) const
{
    std::string sql = strprintf(
        "SELECT %s FROM move_attempts WHERE file_id = ?"
        " ORDER BY id DESC LIMIT ?;",
        kAttemptColumns);
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql.c_str(), -1, &stmt, nullptr) !=
        SQLITE_OK)
        fatal("ReplayDb: attemptsForFile: %s", sqlite3_errmsg(db_));
    sqlite3_bind_int64(stmt, 1, static_cast<int64_t>(file));
    sqlite3_bind_int64(stmt, 2, static_cast<int64_t>(limit));
    std::vector<MoveAttemptRecord> records;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW)
        records.push_back(readAttemptRow(stmt));
    if (rc != SQLITE_DONE)
        noteReadCorrupt("attemptsForFile");
    sqlite3_finalize(stmt);
    std::reverse(records.begin(), records.end());
    return records;
}

int64_t
ReplayDb::insertFaultEvent(const FaultEventRecord &event)
{
    sqlite3_reset(insertFaultStmt_);
    sqlite3_bind_double(insertFaultStmt_, 1, event.timestamp);
    sqlite3_bind_int64(insertFaultStmt_, 2,
                       static_cast<int64_t>(event.device));
    sqlite3_bind_int64(insertFaultStmt_, 3, event.kind);
    sqlite3_bind_int64(insertFaultStmt_, 4, event.active ? 1 : 0);
    sqlite3_bind_double(insertFaultStmt_, 5, event.magnitude);
    if (sqlite3_step(insertFaultStmt_) != SQLITE_DONE)
        fatal("ReplayDb: insertFaultEvent: %s", sqlite3_errmsg(db_));
    return sqlite3_last_insert_rowid(db_);
}

int64_t
ReplayDb::faultEventCount() const
{
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, "SELECT COUNT(*) FROM fault_events;", -1,
                           &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: faultEventCount: %s", sqlite3_errmsg(db_));
    int64_t count = 0;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        count = sqlite3_column_int64(stmt, 0);
    sqlite3_finalize(stmt);
    return count;
}

std::vector<FaultEventRecord>
ReplayDb::recentFaultEvents(size_t limit) const
{
    const char *sql =
        "SELECT id, timestamp, device_id, kind, active, magnitude"
        " FROM fault_events ORDER BY id DESC LIMIT ?;";
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql, -1, &stmt, nullptr) != SQLITE_OK)
        fatal("ReplayDb: recentFaultEvents: %s", sqlite3_errmsg(db_));
    sqlite3_bind_int64(stmt, 1, static_cast<int64_t>(limit));
    std::vector<FaultEventRecord> records;
    int rc;
    while ((rc = sqlite3_step(stmt)) == SQLITE_ROW) {
        FaultEventRecord rec;
        rec.id = sqlite3_column_int64(stmt, 0);
        rec.timestamp = sqlite3_column_double(stmt, 1);
        rec.device = static_cast<storage::DeviceId>(
            sqlite3_column_int64(stmt, 2));
        rec.kind = static_cast<int>(sqlite3_column_int64(stmt, 3));
        rec.active = sqlite3_column_int64(stmt, 4) != 0;
        rec.magnitude = sqlite3_column_double(stmt, 5);
        records.push_back(rec);
    }
    if (rc != SQLITE_DONE)
        noteReadCorrupt("recentFaultEvents");
    sqlite3_finalize(stmt);
    std::reverse(records.begin(), records.end());
    return records;
}

void
ReplayDb::clear()
{
    exec("DELETE FROM accesses;");
    exec("DELETE FROM movements;");
    exec("DELETE FROM move_attempts;");
    exec("DELETE FROM fault_events;");
}

void
ReplayDb::noteReadCorrupt(const char *where) const
{
    warn("ReplayDb: %s: read ended early: %s (corrupt database?)", where,
         sqlite3_errmsg(db_));
    readCorruptMetric_->inc();
}

int64_t
ReplayDb::maxRowId(const char *table) const
{
    std::string sql =
        strprintf("SELECT COALESCE(MAX(id), 0) FROM %s;", table);
    sqlite3_stmt *stmt = nullptr;
    if (sqlite3_prepare_v2(db_, sql.c_str(), -1, &stmt, nullptr) !=
        SQLITE_OK)
        fatal("ReplayDb: maxRowId(%s): %s", table, sqlite3_errmsg(db_));
    int64_t id = 0;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        id = sqlite3_column_int64(stmt, 0);
    sqlite3_finalize(stmt);
    return id;
}

ReplayDbWatermark
ReplayDb::watermark() const
{
    ReplayDbWatermark wm;
    wm.accesses = maxRowId("accesses");
    wm.movements = maxRowId("movements");
    wm.moveAttempts = maxRowId("move_attempts");
    wm.faultEvents = maxRowId("fault_events");
    return wm;
}

void
ReplayDb::rewindTo(const ReplayDbWatermark &wm)
{
    struct { const char *table; int64_t id; } cuts[] = {
        {"accesses", wm.accesses},
        {"movements", wm.movements},
        {"move_attempts", wm.moveAttempts},
        {"fault_events", wm.faultEvents},
    };
    exec("BEGIN TRANSACTION;");
    for (const auto &cut : cuts) {
        exec(strprintf("DELETE FROM %s WHERE id > %lld;", cut.table,
                       static_cast<long long>(cut.id)));
        // Reset the AUTOINCREMENT sequence so re-inserted rows get the
        // same ids an uninterrupted run would have assigned.
        exec(strprintf("UPDATE sqlite_sequence SET seq = %lld"
                       " WHERE name = '%s';",
                       static_cast<long long>(cut.id), cut.table));
    }
    exec("COMMIT;");
}

std::string
ReplayDb::exportAccessesCsv() const
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeRow({"file_id", "device_id", "rb", "wb", "ots", "otms",
                     "cts", "ctms", "throughput", "failed"});
    // Stream in id order; the window helper returns oldest-first when
    // given the full count.
    size_t total = static_cast<size_t>(accessCount());
    for (const PerfRecord &rec : recentAccesses(total)) {
        writer.writeRow({
            std::to_string(rec.file), std::to_string(rec.device),
            std::to_string(rec.rb), std::to_string(rec.wb),
            std::to_string(rec.ots), std::to_string(rec.otms),
            std::to_string(rec.cts), std::to_string(rec.ctms),
            strprintf("%.17g", rec.throughput),
            rec.failed ? "1" : "0",
        });
    }
    return os.str();
}

size_t
ReplayDb::importAccessesCsv(const std::string &csv)
{
    std::vector<std::vector<std::string>> rows = parseCsv(csv);
    if (rows.empty())
        return 0;
    std::vector<PerfRecord> records;
    // 10 columns since the failed flag was added; 9-column exports from
    // before the fault-injection layer import with failed = 0.
    constexpr size_t kColumns = 10;
    constexpr size_t kLegacyColumns = 9;
    for (size_t i = 1; i < rows.size(); ++i) { // skip header
        const auto &row = rows[i];
        if (row.size() != kColumns && row.size() != kLegacyColumns) {
            warn("importAccessesCsv: row %zu has %zu fields, expected "
                 "%zu", i, row.size(), kColumns);
            continue;
        }
        PerfRecord rec;
        size_t c = 0;
        rec.file = std::stoull(row[c++]);
        rec.device = static_cast<storage::DeviceId>(std::stoul(row[c++]));
        rec.rb = std::stoull(row[c++]);
        rec.wb = std::stoull(row[c++]);
        rec.ots = std::stoll(row[c++]);
        rec.otms = std::stoll(row[c++]);
        rec.cts = std::stoll(row[c++]);
        rec.ctms = std::stoll(row[c++]);
        rec.throughput = std::stod(row[c++]);
        if (row.size() == kColumns)
            rec.failed = std::stoi(row[c++]) != 0;
        records.push_back(rec);
    }
    insertAccesses(records);
    return records.size();
}

} // namespace core
} // namespace geo
