/**
 * @file
 * The Action Checker (paper Section V-H): the last sanity check before
 * file movements reach the target system.
 *
 * It removes storage devices that are invalid at decision time
 * (missing, read-only, or too full for the file), selects the
 * highest-predicted-throughput location among the survivors (including
 * "stay put"), and falls back to a random movement when every
 * candidate is invalid so Geomancy keeps exploring the system.
 */

#ifndef GEO_CORE_ACTION_CHECKER_HH
#define GEO_CORE_ACTION_CHECKER_HH

#include <optional>
#include <vector>

#include "core/control_agent.hh"
#include "core/drl_engine.hh"
#include "storage/system.hh"
#include "util/metrics.hh"
#include "util/random.hh"

namespace geo {
namespace core {

/** Action Checker configuration. */
struct CheckerConfig
{
    /** Minimum relative predicted gain over staying put before a move
     *  is worth its transfer cost. */
    double minRelativeGain = 0.02;
    /** Upper bound on files moved per decision cycle; the paper
     *  observes 1-14 files per movement. */
    size_t maxMovesPerCycle = 14;
    /** Upper bound on files moved to the *same* destination per
     *  cycle. Per-file argmax scoring would otherwise herd every file
     *  onto the momentarily-fastest mount in one step; the paper
     *  instead lets the system "rearrange itself into this
     *  configuration over time", which this cap enforces (its future
     *  work proposes a full movement scheduler). */
    size_t maxMovesPerTarget = 3;
    /** Devices degraded below this health factor are invalid as move
     *  targets (offline devices are always invalid). */
    double minHealthFactor = 0.5;
};

/** Why selectMove() declined (or degraded) a candidate file. */
enum class MoveVeto {
    None,           ///< a move was selected
    Unreachable,    ///< current device offline: nothing to execute
    StayPut,        ///< the current location predicted best
    BelowMinGain,   ///< predicted gain under minRelativeGain
    NoValidTarget,  ///< random fallback found no valid device either
    RandomFallback, ///< all candidates invalid: random move taken
};

/** Stable lowercase name ("stay_put", ... — the ledger verdict). */
const char *moveVetoName(MoveVeto veto);

/** A checked, ready-to-apply movement decision. */
struct CheckedMove
{
    storage::FileId file = 0;
    storage::DeviceId from = 0;
    storage::DeviceId to = 0;
    double predictedThroughput = 0.0;
    double predictedGain = 0.0; ///< relative to staying put
    bool random = false;        ///< fallback exploration move
};

/**
 * Validates candidate locations and selects movements.
 */
class ActionChecker
{
  public:
    ActionChecker(storage::StorageSystem &system,
                  const CheckerConfig &config = {});

    /**
     * Devices from `candidates` that could hold `file` right now.
     * The file's current device is always considered valid.
     */
    std::vector<storage::DeviceId> validDevices(
        storage::FileId file,
        const std::vector<storage::DeviceId> &candidates) const;

    /**
     * Pick the best move for one file from scored candidates.
     *
     * @param file the file under consideration.
     * @param scores engine predictions per candidate device (must
     *        include the current location).
     * @param rng used for the all-invalid random fallback.
     * @param lower_is_better true for latency models (smaller
     *        predicted target wins).
     * @param veto when non-null, receives why the file was declined
     *        (or RandomFallback/None when a move came back) — the
     *        decision ledger's audit trail.
     * @return a move if one beats staying put by minRelativeGain, the
     *         random fallback when nothing is valid, or nullopt.
     */
    std::optional<CheckedMove> selectMove(
        storage::FileId file, const std::vector<CandidateScore> &scores,
        Rng &rng, bool lower_is_better = false,
        MoveVeto *veto = nullptr) const;

    /**
     * Order proposed moves by predicted gain and truncate to
     * maxMovesPerCycle.
     */
    std::vector<CheckedMove> capMoves(std::vector<CheckedMove> moves) const;

    /** A purely random (exploration) move for `file`, if possible. */
    std::optional<CheckedMove> randomMove(storage::FileId file,
                                          Rng &rng) const;

    const CheckerConfig &config() const { return config_; }

  private:
    storage::StorageSystem &system_;
    CheckerConfig config_;

    // Registry handles for candidate-veto accounting (the pointees are
    // thread-safe to mutate from the const checker methods).
    util::Counter *vetoReadonlyMetric_;
    util::Counter *vetoCapacityMetric_;
    util::Counter *vetoUnhealthyMetric_;
    util::Counter *belowMinGainMetric_;
    util::Counter *randomFallbackMetric_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_ACTION_CHECKER_HH
