/**
 * @file
 * The ReplayDB: Geomancy's SQLite-backed performance history.
 *
 * As in the paper (Section V-A), the ReplayDB lives outside the target
 * system, stores every performance sample the monitoring agents
 * collect, and records each layout action with a timestamp so the
 * evolution of layout vs. performance can be replayed. Training batches
 * are windows of the most recent accesses.
 */

#ifndef GEO_CORE_REPLAY_DB_HH
#define GEO_CORE_REPLAY_DB_HH

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/perf_record.hh"

struct sqlite3;
struct sqlite3_stmt;

namespace geo {
namespace util {
class Counter;
} // namespace util
} // namespace geo

namespace geo {
namespace core {

/** A recorded layout action (file movement). */
struct MovementRecord
{
    int64_t id = 0;
    double timestamp = 0.0;
    storage::FileId file = 0;
    storage::DeviceId fromDevice = 0;
    storage::DeviceId toDevice = 0;
    uint64_t bytes = 0;
    double seconds = 0.0; ///< transfer duration
};

/** Outcome of one recorded migration attempt. */
enum class AttemptOutcome {
    Applied = 0,   ///< the move completed
    Skipped = 1,   ///< invalid request, not executed (with reason)
    Failed = 2,    ///< fault aborted the attempt; a retry is pending
    Abandoned = 3, ///< fault aborted and the retry budget/deadline ran out
    Superseded = 4, ///< a newer request for the file replaced the retry
};

/** Printable name of an attempt outcome. */
const char *attemptOutcomeName(AttemptOutcome outcome);

/**
 * One migration attempt (including retries), logged so the full
 * retry history of every move survives a crash and can be replayed.
 */
struct MoveAttemptRecord
{
    int64_t id = 0;
    double timestamp = 0.0;
    storage::FileId file = 0;
    storage::DeviceId fromDevice = 0;
    storage::DeviceId toDevice = 0;
    int attempt = 1; ///< 1-based attempt number for this move
    AttemptOutcome outcome = AttemptOutcome::Applied;
    storage::MoveFail reason = storage::MoveFail::None;
    uint64_t bytesCopied = 0; ///< bytes landed before the abort
};

/** A fault-schedule transition (episode begins or ends). */
struct FaultEventRecord
{
    int64_t id = 0;
    double timestamp = 0.0;
    storage::DeviceId device = 0;
    int kind = 0;           ///< storage::FaultKind as int
    bool active = false;    ///< episode begins (true) or ends (false)
    double magnitude = 0.0; ///< error probability / bandwidth factor
};

/**
 * Per-table high-water row ids: a consistent cut of the database.
 *
 * A checkpoint records the watermark at the end of a decision cycle;
 * rewindTo() discards everything a crashed process appended after that
 * cut so the resumed run replays it identically.
 */
struct ReplayDbWatermark
{
    int64_t accesses = 0;
    int64_t movements = 0;
    int64_t moveAttempts = 0;
    int64_t faultEvents = 0;
};

/**
 * SQLite-backed store of performance and movement history.
 */
class ReplayDb
{
  public:
    /**
     * Open (creating schema if needed).
     * @param path file path, or ":memory:" for an in-memory database.
     */
    explicit ReplayDb(const std::string &path = ":memory:");
    ~ReplayDb();

    ReplayDb(const ReplayDb &) = delete;
    ReplayDb &operator=(const ReplayDb &) = delete;

    /** Insert one access sample; returns its row id. */
    int64_t insertAccess(const PerfRecord &record);

    /** Insert many samples in one transaction. */
    void insertAccesses(const std::vector<PerfRecord> &records);

    /** Total stored access samples. */
    int64_t accessCount() const;

    /**
     * The most recent `limit` accesses, oldest first (ready to use as
     * a chronological training window).
     */
    std::vector<PerfRecord> recentAccesses(size_t limit) const;

    /** Most recent `limit` accesses observed on one device. */
    std::vector<PerfRecord> recentAccessesForDevice(
        storage::DeviceId device, size_t limit) const;

    /** Most recent `limit` accesses of one file. */
    std::vector<PerfRecord> recentAccessesForFile(storage::FileId file,
                                                  size_t limit) const;

    /** The single most recent access of a file, if any. */
    bool latestAccessForFile(storage::FileId file, PerfRecord &out) const;

    /** Mean measured throughput per device over the last `limit`
     *  samples (devices with no samples are absent). */
    std::vector<std::pair<storage::DeviceId, double>>
    deviceThroughput(size_t limit) const;

    /**
     * Mean measured throughput and sample count per device over every
     * access with row id > `min_id`, ordered by device. The decision
     * ledger joins these realized windows against its recorded
     * predictions (a watermark pins the window start).
     */
    std::vector<std::tuple<storage::DeviceId, double, int64_t>>
    deviceThroughputSince(int64_t min_id) const;

    /** Record a layout action. */
    int64_t insertMovement(const MovementRecord &movement);

    int64_t movementCount() const;

    /** All movements with timestamp in [begin, end), oldest first. */
    std::vector<MovementRecord> movementsBetween(double begin,
                                                 double end) const;

    /** Most recent `limit` movements, oldest first. */
    std::vector<MovementRecord> recentMovements(size_t limit) const;

    /** Record one migration attempt (success, skip, failure, ...). */
    int64_t insertMoveAttempt(const MoveAttemptRecord &attempt);

    int64_t moveAttemptCount() const;

    /** Most recent `limit` attempts, oldest first. */
    std::vector<MoveAttemptRecord> recentMoveAttempts(size_t limit) const;

    /** Most recent `limit` attempts touching one file, oldest first. */
    std::vector<MoveAttemptRecord> attemptsForFile(storage::FileId file,
                                                   size_t limit) const;

    /** Record a fault-schedule transition. */
    int64_t insertFaultEvent(const FaultEventRecord &event);

    int64_t faultEventCount() const;

    /** Most recent `limit` fault events, oldest first. */
    std::vector<FaultEventRecord> recentFaultEvents(size_t limit) const;

    /** Delete all stored data (used between experiment phases). */
    void clear();

    /** Current high-water row id of every table. */
    ReplayDbWatermark watermark() const;

    /**
     * Discard every row appended after `wm` and reset the
     * AUTOINCREMENT sequences, so rows inserted after the rewind get
     * the same ids an uninterrupted run would have assigned.
     */
    void rewindTo(const ReplayDbWatermark &wm);

    /**
     * Whether the constructor fell back to an empty in-memory database
     * because `path` could not be opened or failed its integrity check.
     */
    bool openedCorrupt() const { return openedCorrupt_; }

    /**
     * Export all access samples as CSV (header + one row per access,
     * oldest first) — the operations-side escape hatch for analyzing
     * a run with external tooling.
     */
    std::string exportAccessesCsv() const;

    /**
     * Import access samples from CSV produced by exportAccessesCsv()
     * (row ids are reassigned). @return rows imported.
     */
    size_t importAccessesCsv(const std::string &csv);

  private:
    sqlite3 *db_ = nullptr;
    sqlite3_stmt *insertAccessStmt_ = nullptr;
    sqlite3_stmt *insertMovementStmt_ = nullptr;
    sqlite3_stmt *insertAttemptStmt_ = nullptr;
    sqlite3_stmt *insertFaultStmt_ = nullptr;
    bool openedCorrupt_ = false;
    util::Counter *readCorruptMetric_ = nullptr;

    void exec(const std::string &sql);
    std::vector<PerfRecord> queryAccesses(const std::string &sql,
                                          int64_t bind0, size_t limit) const;
    /** MAX(id) of one table (0 when empty). */
    int64_t maxRowId(const char *table) const;
    /** Log and count a SELECT loop that ended in an error, not DONE. */
    void noteReadCorrupt(const char *where) const;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_REPLAY_DB_HH
