#include "core/checkpoint.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "util/crc32.hh"
#include "util/flight_recorder.hh"
#include "util/fs_atomic.hh"
#include "util/logging.hh"

namespace geo {
namespace core {

namespace fs = std::filesystem;

namespace {

constexpr const char *kMagic = "geo-ckpt-1";

} // namespace

CheckpointManager::CheckpointManager(CheckpointManagerConfig config)
    : config_(std::move(config))
{
    auto &registry = util::MetricRegistry::global();
    writesMetric_ = &registry.counter("checkpoint.writes");
    writeFailuresMetric_ = &registry.counter("checkpoint.write_failures");
    bytesMetric_ = &registry.gauge("checkpoint.bytes");
    writeMsMetric_ = &registry.histogram("checkpoint.write_ms");
}

std::string
CheckpointManager::pathFor(uint64_t cycle) const
{
    std::ostringstream os;
    os << config_.dir << '/' << config_.prefix << '-' << cycle << ".geo";
    return os.str();
}

bool
CheckpointManager::ensureDir() const
{
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
    if (ec) {
        warn("checkpoint: cannot create directory %s: %s",
             config_.dir.c_str(), ec.message().c_str());
        return false;
    }
    return true;
}

bool
CheckpointManager::write(uint64_t cycle, const std::string &payload)
{
    auto started = std::chrono::steady_clock::now();
    if (!ensureDir()) {
        writeFailuresMetric_->inc();
        return false;
    }

    char header[96];
    std::snprintf(header, sizeof header,
                  "%s cycle=%llu bytes=%llu crc32=%08x\n", kMagic,
                  static_cast<unsigned long long>(cycle),
                  static_cast<unsigned long long>(payload.size()),
                  util::crc32(payload));
    std::string blob = header;
    blob += payload;

    if (!util::writeFileAtomic(pathFor(cycle), blob)) {
        writeFailuresMetric_->inc();
        return false;
    }
    writesMetric_->inc();
    bytesMetric_->set(static_cast<double>(blob.size()));
    util::FlightRecorder::global().record(
        util::FlightKind::CheckpointWrite, 0.0, cycle, blob.size());

    // Prune beyond the retention window; the just-written snapshot is
    // the newest, so everything past `keep` from the end goes.
    std::vector<uint64_t> cycles = availableCycles();
    if (cycles.size() > config_.keep) {
        for (size_t i = 0; i + config_.keep < cycles.size(); ++i) {
            std::error_code ec;
            fs::remove(pathFor(cycles[i]), ec);
        }
    }

    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    writeMsMetric_->record(ms);
    return true;
}

std::vector<uint64_t>
CheckpointManager::availableCycles() const
{
    std::vector<uint64_t> cycles;
    std::error_code ec;
    fs::directory_iterator it(config_.dir, ec);
    if (ec)
        return cycles;
    std::string stem = config_.prefix + "-";
    for (const fs::directory_entry &entry : it) {
        std::string name = entry.path().filename().string();
        if (name.size() <= stem.size() + 4 ||
            name.compare(0, stem.size(), stem) != 0 ||
            name.compare(name.size() - 4, 4, ".geo") != 0)
            continue;
        std::string digits =
            name.substr(stem.size(), name.size() - stem.size() - 4);
        char *end = nullptr;
        unsigned long long cycle = std::strtoull(digits.c_str(), &end, 10);
        if (end && *end == '\0')
            cycles.push_back(cycle);
    }
    std::sort(cycles.begin(), cycles.end());
    return cycles;
}

void
CheckpointManager::clear()
{
    for (uint64_t cycle : availableCycles()) {
        std::error_code ec;
        fs::remove(pathFor(cycle), ec);
    }
}

bool
CheckpointManager::read(const std::string &path, CheckpointHeader &header,
                        std::string &payload)
{
    util::Counter &rejected =
        util::MetricRegistry::global().counter("checkpoint.crc_rejected");
    std::string blob;
    if (!util::readFileAll(path, blob)) {
        warn("checkpoint: cannot read %s", path.c_str());
        return false;
    }
    size_t eol = blob.find('\n');
    if (eol == std::string::npos) {
        warn("checkpoint: %s has no header line", path.c_str());
        rejected.inc();
        return false;
    }
    std::string line = blob.substr(0, eol);
    char magic[32];
    unsigned long long cycle = 0, bytes = 0;
    unsigned crc = 0;
    if (std::sscanf(line.c_str(), "%31s cycle=%llu bytes=%llu crc32=%x",
                    magic, &cycle, &bytes, &crc) != 4 ||
        std::string(magic) != kMagic) {
        warn("checkpoint: %s has a malformed header", path.c_str());
        rejected.inc();
        return false;
    }
    payload = blob.substr(eol + 1);
    if (payload.size() != bytes) {
        warn("checkpoint: %s truncated (%zu of %llu payload bytes)",
             path.c_str(), payload.size(), bytes);
        rejected.inc();
        return false;
    }
    uint32_t actual = util::crc32(payload);
    if (actual != crc) {
        warn("checkpoint: %s fails CRC (stored %08x, computed %08x)",
             path.c_str(), crc, actual);
        rejected.inc();
        return false;
    }
    header.cycle = cycle;
    header.bytes = bytes;
    header.crc = crc;
    return true;
}

bool
CheckpointManager::loadLatest(CheckpointHeader &header,
                              std::string &payload, std::string *path_out)
{
    std::vector<uint64_t> cycles = availableCycles();
    for (auto it = cycles.rbegin(); it != cycles.rend(); ++it) {
        std::string path = pathFor(*it);
        if (read(path, header, payload)) {
            if (path_out)
                *path_out = path;
            return true;
        }
        warn("checkpoint: falling back past corrupt snapshot %s",
             path.c_str());
    }
    return false;
}

} // namespace core
} // namespace geo
