/**
 * @file
 * Per-device monitoring agent (paper Section V-A).
 *
 * Each agent watches exactly one storage device, flags the start and
 * end of every access, measures the bytes moved, and forwards the
 * resulting performance records. To lower transfer overhead, records
 * are batched ("Geomancy captures groups of accesses as one access")
 * and handed to the Interface Daemon in groups.
 */

#ifndef GEO_CORE_MONITORING_AGENT_HH
#define GEO_CORE_MONITORING_AGENT_HH

#include <functional>
#include <vector>

#include "core/perf_record.hh"
#include "util/metrics.hh"

namespace geo {
namespace core {

class Guardrails;

/**
 * Monitoring agent for one storage device.
 */
class MonitoringAgent
{
  public:
    using BatchSink = std::function<void(const std::vector<PerfRecord> &)>;

    /**
     * @param device the device this agent watches.
     * @param sink receives full batches of records.
     * @param batch_size records per forwarded batch.
     */
    MonitoringAgent(storage::DeviceId device, BatchSink sink,
                    size_t batch_size = 32);

    /** Candidate observation; ignored unless it hit this device. */
    void observe(const storage::AccessObservation &obs);

    /**
     * Validate every record through the guardrails before it enters
     * the pending batch (quarantined records are counted as observed
     * but never forwarded). Null disables validation (the default).
     */
    void setGuardrails(Guardrails *guardrails) { guardrails_ = guardrails; }

    /** Flush any partially filled batch to the sink. */
    void flush();

    storage::DeviceId device() const { return device_; }

    /** Records observed on this device over the agent's lifetime. */
    uint64_t observedCount() const { return observed_; }

    /** Batches forwarded so far. */
    uint64_t batchesSent() const { return batches_; }

  private:
    storage::DeviceId device_;
    BatchSink sink_;
    Guardrails *guardrails_ = nullptr;
    size_t batchSize_;
    std::vector<PerfRecord> pending_;
    uint64_t observed_ = 0;
    uint64_t batches_ = 0;

    // Registry handles, resolved once so observe() stays allocation-
    // and lookup-free (all agents aggregate into the same metrics).
    util::Counter *recordsMetric_;
    util::Counter *batchesMetric_;
    util::Histogram *batchSizeMetric_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_MONITORING_AGENT_HH
