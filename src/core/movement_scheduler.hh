/**
 * @file
 * The data-movement scheduler (paper Sections V-F and X, future work).
 *
 * The paper defers "a data movement scheduler ... that determines a
 * cooldown between file movement" to future work. This implementation
 * combines two admission rules for each checked move:
 *
 *  1. a per-file cooldown — a file that was just migrated is left
 *     alone for a while, bounding migration churn;
 *  2. a gap check — the expected transfer must fit inside the file's
 *     predicted idle gap (GapPredictor), so migrations do not collide
 *     with the workload's own accesses.
 */

#ifndef GEO_CORE_MOVEMENT_SCHEDULER_HH
#define GEO_CORE_MOVEMENT_SCHEDULER_HH

#include <map>

#include "core/action_checker.hh"
#include "core/gap_predictor.hh"
#include "storage/system.hh"

namespace geo {
namespace core {

/** Scheduler configuration. */
struct SchedulerConfig
{
    /** Seconds a file must rest between migrations. */
    double fileCooldownSeconds = 60.0;
    /** Safety factor on the transfer-vs-gap comparison. */
    double gapSafetyFactor = 1.5;
    /** Enforce the gap check (the cooldown always applies). */
    bool checkGaps = true;
    GapPredictorConfig gaps;
};

/**
 * Admission control for checked moves.
 */
class MovementScheduler
{
  public:
    MovementScheduler(storage::StorageSystem &system, const ReplayDb &db,
                      const SchedulerConfig &config = {});

    /**
     * Whether `move` may execute at time `now`; admitted moves are
     * recorded so the cooldown starts immediately.
     */
    bool admit(const CheckedMove &move, double now);

    /** Filter a move list, keeping only admissible moves. */
    std::vector<CheckedMove> admitAll(std::vector<CheckedMove> moves,
                                      double now);

    /** Expected transfer duration of a move at time `now`. */
    double expectedTransferSeconds(const CheckedMove &move,
                                   double now) const;

    /** Moves rejected so far, by reason. */
    uint64_t rejectedByCooldown() const { return rejectedCooldown_; }
    uint64_t rejectedByGap() const { return rejectedGap_; }

    const SchedulerConfig &config() const { return config_; }

  private:
    storage::StorageSystem &system_;
    GapPredictor gaps_;
    SchedulerConfig config_;
    std::map<storage::FileId, double> lastMove_;
    uint64_t rejectedCooldown_ = 0;
    uint64_t rejectedGap_ = 0;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_MOVEMENT_SCHEDULER_HH
