/**
 * @file
 * The data-movement scheduler (paper Sections V-F and X, future work).
 *
 * The paper defers "a data movement scheduler ... that determines a
 * cooldown between file movement" to future work. This implementation
 * combines two admission rules for each checked move:
 *
 *  1. a per-file cooldown — a file that was just migrated is left
 *     alone for a while, bounding migration churn;
 *  2. a gap check — the expected transfer must fit inside the file's
 *     predicted idle gap (GapPredictor), so migrations do not collide
 *     with the workload's own accesses;
 *  3. a per-device circuit breaker — a target device whose recent
 *     moves keep failing is taken out of rotation until a single
 *     probe move succeeds, so the pipeline stops pouring retries
 *     onto a dying mount.
 */

#ifndef GEO_CORE_MOVEMENT_SCHEDULER_HH
#define GEO_CORE_MOVEMENT_SCHEDULER_HH

#include <deque>
#include <map>

#include "core/action_checker.hh"
#include "core/gap_predictor.hh"
#include "storage/system.hh"
#include "util/metrics.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {

/** Per-target-device circuit-breaker configuration. */
struct BreakerConfig
{
    bool enabled = true;
    /** Failures within the window that trip the breaker open. */
    size_t failureThreshold = 3;
    /** Sliding window over which failures are counted, seconds. */
    double windowSeconds = 600.0;
    /** Open this long before allowing a half-open probe move. */
    double cooldownSeconds = 300.0;
};

/** Circuit-breaker state for one target device. */
enum class BreakerState {
    Closed,   ///< moves admitted normally
    Open,     ///< all moves onto the device rejected
    HalfOpen, ///< cooldown elapsed: exactly one probe move admitted
};

/** Printable name of a breaker state. */
const char *breakerStateName(BreakerState state);

/** Scheduler configuration. */
struct SchedulerConfig
{
    /** Seconds a file must rest between migrations. */
    double fileCooldownSeconds = 60.0;
    /** Safety factor on the transfer-vs-gap comparison. */
    double gapSafetyFactor = 1.5;
    /** Enforce the gap check (the cooldown always applies). */
    bool checkGaps = true;
    GapPredictorConfig gaps;
    BreakerConfig breaker;
};

/**
 * Admission control for checked moves.
 */
class MovementScheduler
{
  public:
    MovementScheduler(storage::StorageSystem &system, const ReplayDb &db,
                      const SchedulerConfig &config = {});

    /**
     * Whether `move` may execute at time `now`; admitted moves are
     * recorded so the cooldown starts immediately.
     */
    bool admit(const CheckedMove &move, double now);

    /** Filter a move list, keeping only admissible moves. */
    std::vector<CheckedMove> admitAll(std::vector<CheckedMove> moves,
                                      double now);

    /** Expected transfer duration of a move at time `now`. */
    double expectedTransferSeconds(const CheckedMove &move,
                                   double now) const;

    /**
     * Feed the breaker with the fate of an executed move onto
     * `target`. A fault-class failure counts toward tripping the
     * breaker; a success resets it (and closes a half-open probe).
     */
    void recordMoveOutcome(storage::DeviceId target, bool success,
                           double now);

    /** Breaker state of a target device at time `now`. */
    BreakerState breakerState(storage::DeviceId target, double now);

    /** Moves rejected so far, by reason. */
    uint64_t rejectedByCooldown() const { return rejectedCooldown_; }
    uint64_t rejectedByGap() const { return rejectedGap_; }
    uint64_t rejectedByBreaker() const { return rejectedBreaker_; }

    const SchedulerConfig &config() const { return config_; }

    /** Serialize cooldown map, breaker states and rejection totals. */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    /** Breaker bookkeeping for one target device. */
    struct Breaker
    {
        std::deque<double> failures; ///< recent failure timestamps
        BreakerState state = BreakerState::Closed;
        double openedAt = 0.0;
        bool probeInFlight = false;
    };

    storage::StorageSystem &system_;
    GapPredictor gaps_;
    SchedulerConfig config_;
    std::map<storage::FileId, double> lastMove_;
    std::map<storage::DeviceId, Breaker> breakers_;
    uint64_t rejectedCooldown_ = 0;
    uint64_t rejectedGap_ = 0;
    uint64_t rejectedBreaker_ = 0;

    // Registry mirrors of the per-instance counters, plus breaker
    // state transitions (trips/probes/closes) for the fig7 summary.
    util::Counter *admittedMetric_;
    util::Counter *rejectedCooldownMetric_;
    util::Counter *rejectedGapMetric_;
    util::Counter *rejectedBreakerMetric_;
    util::Counter *breakerTripsMetric_;
    util::Counter *breakerProbesMetric_;
    util::Counter *breakerClosesMetric_;

    /** Admission decision of the breaker for a move onto `target`. */
    bool breakerAdmits(storage::DeviceId target, double now);
    /** Drop failure timestamps older than the window. */
    void pruneFailures(Breaker &breaker, double now);
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_MOVEMENT_SCHEDULER_HH
