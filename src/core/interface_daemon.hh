/**
 * @file
 * The Interface Daemon (paper Sections V-A, V-E): networking
 * middleware between the target system's agents and Geomancy.
 *
 * It stores raw performance data into the ReplayDB (charging the
 * paper's ~3 ms per batch transfer cost to an overhead counter), and
 * prepares training batches for the DRL engine: the X most recent
 * accesses for each storage device, throughput smoothed by a moving
 * average, all values min-max normalized into [0, 1].
 */

#ifndef GEO_CORE_INTERFACE_DAEMON_HH
#define GEO_CORE_INTERFACE_DAEMON_HH

#include <vector>

#include "core/replay_db.hh"
#include "nn/dataset.hh"
#include "trace/normalizer.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {

/** What the DRL engine models (paper Section V-C: throughput now,
 *  latency planned for latency-sensitive workloads). */
enum class ModelTarget {
    Throughput, ///< bytes/s of each access (higher is better)
    Latency,    ///< access duration in seconds (lower is better)
};

/** Interface Daemon configuration. */
struct DaemonConfig
{
    /** Most recent accesses pulled per device per training request. */
    size_t windowPerDevice = 2000;
    /** Moving-average window for target smoothing (Section V-E). */
    size_t smoothingWindow = 8;
    /** Simulated transfer latency per forwarded batch (seconds);
     *  the paper measures ~3 ms on average. */
    double batchTransferSeconds = 0.003;
    /** The quantity the engine is trained to predict. */
    ModelTarget target = ModelTarget::Throughput;
};

/** A normalized training view plus the scalers to invert it. */
struct TrainingBatch
{
    nn::Dataset dataset;
    trace::MinMaxNormalizer featureNorm;
    trace::MinMaxNormalizer targetNorm;
    ModelTarget target = ModelTarget::Throughput;

    /** Normalize a raw Z-feature row with this batch's scalers. */
    std::vector<double> normalizeFeatures(
        const std::vector<double> &raw) const;

    /**
     * Normalize a raw Z-feature row directly into `out` (at least
     * `count` doubles). Allocation-free variant used by the batched
     * prediction path; `raw` and `out` may alias.
     */
    void normalizeFeaturesInto(const double *raw, size_t count,
                               double *out) const;

    /** Denormalize a model output back to bytes/s. */
    double denormalizeTarget(double normalized) const;
};

/**
 * Middleware between monitoring agents, the ReplayDB and the engine.
 */
class InterfaceDaemon
{
  public:
    InterfaceDaemon(ReplayDb &db, const DaemonConfig &config = {});

    /** Sink for monitoring-agent batches: persists to the ReplayDB. */
    void receiveBatch(const std::vector<PerfRecord> &records);

    /**
     * Build a normalized training batch from the most recent
     * `windowPerDevice` accesses of each of `devices`, merged in
     * chronological order.
     *
     * @return an empty dataset if the ReplayDB has no samples yet.
     */
    TrainingBatch buildTrainingBatch(
        const std::vector<storage::DeviceId> &devices) const;

    /** Accumulated simulated transfer latency (seconds). */
    double transferOverheadSeconds() const { return transferOverhead_; }

    /** Batches received from agents. */
    uint64_t batchesReceived() const { return batchesReceived_; }

    const DaemonConfig &config() const { return config_; }

    /** Serialize the overhead accumulators (the training window
     *  itself lives in the ReplayDB and is covered by its watermark). */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    ReplayDb &db_;
    DaemonConfig config_;
    double transferOverhead_ = 0.0;
    uint64_t batchesReceived_ = 0;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_INTERFACE_DAEMON_HH
