/**
 * @file
 * The Geomancy facade: wires monitoring agents, the Interface Daemon,
 * the ReplayDB, the DRL engine, the Action Checker and the control
 * agents into the architecture of the paper's Fig. 2.
 *
 * Geomancy only touches the target system in two ways: it observes
 * per-access performance (via the agents) and it moves files (via the
 * control agent). Decision cycles retrain the network on the freshest
 * ReplayDB window, score every (file, device) candidate, and apply the
 * checked moves; 10% of cycles take random exploration actions instead
 * (Section V-H).
 */

#ifndef GEO_CORE_GEOMANCY_HH
#define GEO_CORE_GEOMANCY_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/action_checker.hh"
#include "core/control_agent.hh"
#include "core/decision_ledger.hh"
#include "core/drl_engine.hh"
#include "core/guardrails.hh"
#include "core/interface_daemon.hh"
#include "core/monitoring_agent.hh"
#include "core/movement_scheduler.hh"
#include "core/replay_db.hh"
#include "storage/system.hh"
#include "util/metrics.hh"
#include "util/random.hh"

namespace geo {
namespace core {

/** Top-level Geomancy configuration. */
struct GeomancyConfig
{
    DrlConfig drl;
    DaemonConfig daemon;
    CheckerConfig checker;
    /** Probability of an exploration cycle. The paper takes random
     *  decisions on 10% of *runs*; with a decision every 5 runs that
     *  is P(any of 5 runs explores) = 1 - 0.9^5 ~ 0.41 per cycle. */
    double explorationRate = 0.41;
    /** Files moved in one exploration cycle. */
    size_t explorationMoves = 2;
    /** Minimum ReplayDB samples before the engine starts acting. */
    size_t minHistory = 500;
    /** Recent-sample window for the measured-throughput sanity check:
     *  a proposed move whose destination measures slower than the
     *  file's current device over this window is vetoed (0 disables).
     *  This keeps one noisy prediction from herding files onto a mount
     *  that is demonstrably slow right now — the Action Checker's
     *  "last sanity check" role (Section V-H). */
    size_t sanityWindow = 4000;
    uint64_t seed = 77;
    /** Monitoring-agent batch size. */
    size_t agentBatchSize = 32;
    /** Enable the movement scheduler (per-file cooldown + gap check,
     *  the paper's future-work extension). Off by default to match
     *  the published system. */
    bool useScheduler = false;
    SchedulerConfig scheduler;
    /** Control-agent chunking and retry policy. */
    ControlAgentConfig control;
    /** Only feed accesses to *managed* files into the monitoring
     *  agents. Off by default (a monolithic optimizer observes the
     *  whole substrate, byte-identical to every prior release); the
     *  shard coordinator turns it on so co-tenant shards don't train
     *  on each other's traffic. */
    bool observeOnlyManaged = false;
    /** Telemetry quarantine, decision deadlines and safe mode. With
     *  the default knobs (budgets disabled) this is recording-only:
     *  clean runs are byte-identical to a guardrail-free build. */
    GuardrailsConfig guardrails;
};

/** Report of one decision cycle. */
struct CycleReport
{
    bool acted = false;          ///< any move applied
    bool explored = false;       ///< this was a random exploration cycle
    bool skipped = false;        ///< not enough history / model diverged
    bool held = false;           ///< layout held (quarantine starvation)
    bool safeMode = false;       ///< cycle ran (or ended) in safe mode
    bool probe = false;          ///< this was a safe-mode probe cycle
    RetrainStats retrain;
    size_t proposedMoves = 0;
    MoveSummary moves;
};

/**
 * The Geomancy optimizer attached to one target system.
 */
class Geomancy
{
  public:
    /**
     * Attach to a target system.
     *
     * @param system target system (must outlive Geomancy).
     * @param managed_files the workload's files to optimize.
     * @param config tuning knobs.
     * @param db_path ReplayDB location (":memory:" by default).
     */
    Geomancy(storage::StorageSystem &system,
             std::vector<storage::FileId> managed_files,
             const GeomancyConfig &config = {},
             const std::string &db_path = ":memory:");

    /**
     * One decision cycle: flush agents, retrain, score candidates,
     * check actions and move files.
     */
    CycleReport runCycle();

    /**
     * Produce one layout prediction without applying it (used by the
     * "Geomancy static" baseline of experiment 2).
     */
    std::vector<MoveRequest> predictLayout();

    /** The ReplayDB (exposed for experiments and inspection). */
    ReplayDb &replayDb() { return *db_; }

    InterfaceDaemon &daemon() { return *daemon_; }
    DrlEngine &engine() { return *engine_; }
    ControlAgent &controlAgent() { return *control_; }
    Guardrails &guardrails() { return *guardrails_; }

    /** The movement scheduler, or null when disabled. */
    MovementScheduler *scheduler() { return scheduler_.get(); }

    /**
     * Attach a decision audit ledger writing NDJSON to `path`
     * (recording-only: the decision trajectory is unchanged — pinned
     * by the LedgerIdentity test). Attach before restore() so the
     * ledger cursor is part of the loaded cut; nothing touches the
     * disk until the first cycle ends.
     */
    void attachLedger(const std::string &path);

    /** The attached ledger, or null. */
    DecisionLedger *ledger() { return ledger_.get(); }

    const std::vector<storage::FileId> &managedFiles() const
    {
        return managedFiles_;
    }

    /** Decision cycles run so far. */
    size_t cyclesRun() const { return cycles_; }

    /**
     * Serialize the whole pipeline cut at the current instant: target
     * system world state, cycle counter, RNG streams, engine weights
     * and scalers, control-agent retry queue, scheduler breakers and
     * the ReplayDB watermark. Written at the end of a decision cycle,
     * this is a consistent cut a restore resumes from byte-identically.
     */
    void saveState(util::StateWriter &w);

    /**
     * Restore a cut written by saveState(). Also rewinds the ReplayDB
     * to the checkpointed watermark, discarding rows a crashed process
     * appended after the cut. No-op when the reader fails validation.
     */
    void loadState(util::StateReader &r);

    /**
     * Restore from a checkpoint file (header + CRC validated). On
     * success the pending-retry queue is additionally reconciled
     * against the attempt log via restorePending() — a no-op when the
     * snapshot already carries the queue, the safety net when it
     * predates one. @return false when the file is missing, corrupt
     * or from an incompatible topology.
     */
    bool restore(const std::string &path);

  private:
    storage::StorageSystem &system_;
    std::vector<storage::FileId> managedFiles_;
    std::unordered_set<storage::FileId> managedSet_; ///< observe filter
    GeomancyConfig config_;
    Rng rng_;

    std::unique_ptr<ReplayDb> db_;
    std::unique_ptr<InterfaceDaemon> daemon_;
    std::unique_ptr<DrlEngine> engine_;
    std::unique_ptr<ActionChecker> checker_;
    std::unique_ptr<ControlAgent> control_;
    std::unique_ptr<Guardrails> guardrails_;
    std::unique_ptr<MovementScheduler> scheduler_; ///< optional
    std::unique_ptr<DecisionLedger> ledger_;       ///< optional
    std::vector<std::unique_ptr<MonitoringAgent>> agents_;
    size_t cycles_ = 0;

    // Registry handles for the decision-cycle counters.
    util::Counter *cyclesMetric_;
    util::Counter *cyclesExploredMetric_;
    util::Counter *cyclesSkippedMetric_;
    util::Counter *movesProposedMetric_;
    util::Counter *sanityVetoMetric_;

    /** Flush all agents' pending batches into the ReplayDB. */
    void flushAgents();

    /** The phase sequence of one cycle (early returns allowed; the
     *  caller always feeds the evidence to the guardrails after). */
    void runCycleBody(CycleReport &report, bool probe,
                      storage::FaultInjector *injector);

    /** Propose checked moves from the current model. */
    std::vector<CheckedMove> proposeMoves();

    /** Guardrail budget of a named phase (for the ledger's rows). */
    double phaseBudget(const char *phase) const;

    /** beginPhase/endPhase plus ledger/flight-recorder bookkeeping. */
    void enterPhase(const char *phase, int index);
    void leavePhase(const char *phase, int index, double began);

    /** Random exploration move set. */
    std::vector<CheckedMove> explorationMoves();
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_GEOMANCY_HH
