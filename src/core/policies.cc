#include "core/policies.hh"

#include <algorithm>

#include "util/logging.hh"

namespace geo {
namespace core {

namespace {

/** Usage of a file, defaulting to "never used". */
FileUsage
usageOf(const PolicyContext &context, storage::FileId file)
{
    auto it = context.usage.find(file);
    return it == context.usage.end() ? FileUsage{} : it->second;
}

/**
 * Devices a baseline may target right now, mirroring the Action
 * Checker's validity rules for Geomancy: offline, read-only or
 * degraded below half health are skipped (per-file capacity stays
 * with moveFile itself). Without this the fastest-first grouping
 * keeps assigning files to a mount the fault injector took down,
 * wasting every one of those moves.
 */
std::vector<storage::DeviceId>
usableDevices(const PolicyContext &context,
              const std::vector<storage::DeviceId> &devices)
{
    std::vector<storage::DeviceId> usable;
    usable.reserve(devices.size());
    for (storage::DeviceId id : devices) {
        const storage::StorageDevice &dev = context.system.device(id);
        if (!dev.available() || !dev.writable() ||
            dev.healthFactor() < 0.5)
            continue;
        usable.push_back(id);
    }
    return usable;
}

} // namespace

size_t
GroupedHeuristicPolicy::rebalance(PolicyContext &context)
{
    if (context.files.empty() || context.devicesFastestFirst.empty())
        return 0;

    std::vector<storage::FileId> files = context.files;
    std::vector<storage::DeviceId> devices =
        usableDevices(context, context.devicesFastestFirst);
    if (devices.empty())
        return 0; // every device offline/degraded: hold the layout
    orderFiles(files, devices, context);

    // Group boundaries: even split by default (files that do not
    // divide evenly land on the slowest device, as in the paper's
    // setup), or proportional to device capacity when requested.
    std::vector<size_t> group_end(devices.size(), 0);
    if (capacityWeighted_) {
        double total_capacity = 0.0;
        for (storage::DeviceId id : devices)
            total_capacity += static_cast<double>(
                context.system.device(id).capacityBytes());
        double cumulative = 0.0;
        for (size_t g = 0; g < devices.size(); ++g) {
            cumulative += static_cast<double>(
                context.system.device(devices[g]).capacityBytes());
            group_end[g] = static_cast<size_t>(
                cumulative / total_capacity *
                static_cast<double>(files.size()));
        }
        group_end.back() = files.size();
    } else {
        size_t group_size = files.size() / devices.size();
        for (size_t g = 0; g < devices.size(); ++g)
            group_end[g] = group_size == 0 ? 0 : (g + 1) * group_size;
        group_end.back() = files.size();
    }

    size_t moved = 0;
    size_t group = 0;
    for (size_t i = 0; i < files.size(); ++i) {
        while (group + 1 < devices.size() && i >= group_end[group])
            ++group;
        storage::DeviceId target = devices[group];
        if (context.system.location(files[i]) != target) {
            if (context.system.moveFile(files[i], target).moved)
                ++moved;
        }
    }
    return moved;
}

void
LruPolicy::orderFiles(std::vector<storage::FileId> &files,
                      std::vector<storage::DeviceId> &devices,
                      const PolicyContext &context)
{
    (void)devices; // fastest-first order already correct
    std::sort(files.begin(), files.end(),
              [&](storage::FileId a, storage::FileId b) {
                  return usageOf(context, a).lastAccessIndex >
                         usageOf(context, b).lastAccessIndex;
              });
}

void
MruPolicy::orderFiles(std::vector<storage::FileId> &files,
                      std::vector<storage::DeviceId> &devices,
                      const PolicyContext &context)
{
    // Most recently used files go to the *slowest* devices.
    std::sort(files.begin(), files.end(),
              [&](storage::FileId a, storage::FileId b) {
                  return usageOf(context, a).lastAccessIndex >
                         usageOf(context, b).lastAccessIndex;
              });
    std::reverse(devices.begin(), devices.end());
}

void
LfuPolicy::orderFiles(std::vector<storage::FileId> &files,
                      std::vector<storage::DeviceId> &devices,
                      const PolicyContext &context)
{
    (void)devices;
    std::sort(files.begin(), files.end(),
              [&](storage::FileId a, storage::FileId b) {
                  return usageOf(context, a).accessCount >
                         usageOf(context, b).accessCount;
              });
}

RandomPolicy::RandomPolicy(bool dynamic) : dynamic_(dynamic) {}

std::string
RandomPolicy::name() const
{
    return dynamic_ ? "random dynamic" : "random static";
}

size_t
RandomPolicy::rebalance(PolicyContext &context)
{
    if (!dynamic_ && placed_)
        return 0;
    placed_ = true;
    size_t moved = 0;
    // Draw over the usable devices only; with every device healthy the
    // list equals the full set, so fault-free runs consume the RNG
    // stream exactly as before.
    std::vector<storage::DeviceId> usable =
        usableDevices(context, context.system.deviceIds());
    if (usable.empty())
        return 0;
    for (storage::FileId file : context.files) {
        storage::DeviceId target = usable[static_cast<size_t>(
            context.rng.uniformInt(
                0, static_cast<int64_t>(usable.size()) - 1))];
        if (context.system.location(file) != target) {
            if (context.system.moveFile(file, target).moved)
                ++moved;
        }
    }
    return moved;
}

SingleMountPolicy::SingleMountPolicy(storage::DeviceId device)
    : device_(device)
{
}

std::string
SingleMountPolicy::name() const
{
    return strprintf("single-mount(%u)", device_);
}

size_t
SingleMountPolicy::rebalance(PolicyContext &context)
{
    if (placed_)
        return 0;
    placed_ = true;
    size_t moved = 0;
    for (storage::FileId file : context.files) {
        if (context.system.location(file) != device_) {
            if (context.system.moveFile(file, device_).moved)
                ++moved;
            else
                warn("SingleMountPolicy: could not move file %llu to %u",
                     static_cast<unsigned long long>(file), device_);
        }
    }
    return moved;
}

GeomancyDynamicPolicy::GeomancyDynamicPolicy(Geomancy &geomancy)
    : geomancy_(geomancy)
{
}

size_t
GeomancyDynamicPolicy::rebalance(PolicyContext &context)
{
    (void)context; // Geomancy consults its own ReplayDB
    lastReport_ = geomancy_.runCycle();
    return lastReport_.moves.applied;
}

ShardedGeomancyPolicy::ShardedGeomancyPolicy(ShardCoordinator &coordinator)
    : coordinator_(coordinator)
{
}

std::string
ShardedGeomancyPolicy::name() const
{
    return strprintf("Geomancy x%zu shards", coordinator_.shardCount());
}

size_t
ShardedGeomancyPolicy::rebalance(PolicyContext &context)
{
    (void)context; // every shard consults its own ReplayDB
    lastReports_ = coordinator_.runRound();
    size_t applied = 0;
    for (const CycleReport &report : lastReports_)
        applied += report.moves.applied;
    return applied;
}

GeomancyStaticPolicy::GeomancyStaticPolicy(Geomancy &geomancy)
    : geomancy_(geomancy)
{
}

size_t
GeomancyStaticPolicy::rebalance(PolicyContext &context)
{
    if (placed_)
        return 0;
    placed_ = true;
    std::vector<MoveRequest> layout = geomancy_.predictLayout();
    size_t moved = 0;
    for (const MoveRequest &req : layout) {
        if (context.system.moveFile(req.file, req.target).moved)
            ++moved;
    }
    return moved;
}

} // namespace core
} // namespace geo
