#include "core/layout_config.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace geo {
namespace core {

namespace {
constexpr const char *kMagic = "geomancy-layout-v1";
} // namespace

LayoutConfig
LayoutConfig::capture(const storage::StorageSystem &system)
{
    LayoutConfig config;
    for (const auto &[file, device] : system.layout())
        config.layout_[file] = device;
    for (storage::DeviceId id : system.deviceIds())
        if (system.device(id).writable())
            config.available_.push_back(id);
    return config;
}

storage::DeviceId
LayoutConfig::location(storage::FileId file) const
{
    auto it = layout_.find(file);
    if (it == layout_.end())
        panic("LayoutConfig: unknown file %llu",
              static_cast<unsigned long long>(file));
    return it->second;
}

bool
LayoutConfig::knows(storage::FileId file) const
{
    return layout_.count(file) > 0;
}

std::string
LayoutConfig::serialize() const
{
    std::ostringstream os;
    os << kMagic << '\n';
    os << "available";
    for (storage::DeviceId id : available_)
        os << ' ' << id;
    os << '\n';
    for (const auto &[file, device] : layout_)
        os << file << ' ' << device << '\n';
    return os.str();
}

bool
LayoutConfig::parse(const std::string &text)
{
    std::istringstream is(text);
    std::string magic;
    if (!std::getline(is, magic) || magic != kMagic)
        return false;
    std::string line;
    if (!std::getline(is, line))
        return false;
    std::istringstream avail(line);
    std::string tag;
    avail >> tag;
    if (tag != "available")
        return false;
    layout_.clear();
    available_.clear();
    storage::DeviceId device = 0;
    while (avail >> device)
        available_.push_back(device);
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        storage::FileId file = 0;
        if (!(row >> file >> device))
            return false;
        layout_[file] = device;
    }
    return true;
}

bool
LayoutConfig::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << serialize();
    return static_cast<bool>(os);
}

bool
LayoutConfig::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::stringstream buffer;
    buffer << is.rdbuf();
    return parse(buffer.str());
}

} // namespace core
} // namespace geo
