/**
 * @file
 * The decision audit ledger: an append-only, per-cycle structured
 * record of *why* Geomancy did what it did.
 *
 * Every decision cycle appends line-delimited JSON rows (the
 * "geo-ledger-1" schema) covering the full causal chain of the cycle:
 * the feature vector and per-device predicted throughput of every
 * candidate move (with ranks), the Action Checker's verdict or veto
 * reason, guardrail/safe-mode state, per-phase watchdog budget
 * consumption, and the fate of every migration attempt. Once the next
 * monitoring window lands, the loop is closed: the realized per-mount
 * throughput is joined against the prediction and the signed relative
 * error is recorded — the live counterpart of the paper's Table 3
 * prediction-accuracy evaluation.
 *
 * Rules of the house:
 *
 *  - Recording-only: the ledger consumes no randomness and never
 *    feeds back into a decision; a run with a ledger attached is
 *    byte-identical to one without (pinned alongside the
 *    GuardrailsIdentity test).
 *  - Crash-exact: the serialized text is buffered in memory and
 *    flushed with util::writeFileAtomic at the end of every cycle —
 *    before the cycle's checkpoint is cut — and the checkpoint carries
 *    a byte cursor. A restore truncates the on-disk ledger back to the
 *    cursor, so a crash/rewind/resume run produces a ledger
 *    byte-identical to an uninterrupted one: no duplicated rows, no
 *    dropped rows (pinned by fig9_chaos_soak).
 *  - One file, NDJSON: first line is the schema header
 *    `{"t":"ledger","schema":"geo-ledger-1"}`; every later row carries
 *    a strictly increasing "seq" and its row type in "t".
 *
 * Row types ("t"): cycle_start, phase, realized, prediction,
 * candidate, outcome, transition, cycle. tools/geomancy_explain reads
 * this file back to answer "--why file@cycle" and friends.
 */

#ifndef GEO_CORE_DECISION_LEDGER_HH
#define GEO_CORE_DECISION_LEDGER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/control_agent.hh"
#include "core/replay_db.hh"
#include "storage/system.hh"
#include "util/metrics.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {

/** One candidate device's prediction, as recorded in a candidate row. */
struct LedgerScore
{
    storage::DeviceId device = 0;
    double predicted = 0.0;
    int rank = 0; ///< 1 = best (orientation-aware)
};

/** Lifetime per-mount prediction-error accumulator (Table 3 view). */
struct MountErrorStat
{
    uint64_t samples = 0;
    double sumAbs = 0.0;    ///< sum of |predicted - realized| / realized
    double sumSigned = 0.0; ///< sum of (predicted - realized) / realized
};

/** End-of-cycle summary row payload (filled from the CycleReport). */
struct LedgerCycleSummary
{
    bool acted = false;
    bool explored = false;
    bool skipped = false;
    bool held = false;
    bool safeMode = false;
    bool probe = false;
    bool trained = false;
    bool diverged = false;
    bool cancelled = false;
    double maeFraction = 0.0; ///< validation MAE of the retrain
    size_t proposed = 0;
    size_t applied = 0;
    size_t failed = 0;
    size_t abandoned = 0;
    size_t cancelledMoves = 0;
    size_t admitted = 0;     ///< telemetry admitted this cycle
    size_t quarantined = 0;  ///< telemetry quarantined this cycle
    bool overrun = false;    ///< any phase blew its deadline
};

/**
 * Append-only NDJSON audit log of Geomancy's decision cycles.
 */
class DecisionLedger
{
  public:
    /**
     * Create a ledger writing to `path`. The schema header is buffered
     * immediately but nothing touches the disk until the first
     * endCycle() — so attaching a ledger before a checkpoint restore
     * never clobbers the file the restore will truncate.
     */
    explicit DecisionLedger(std::string path);

    const std::string &path() const { return path_; }

    /** Rows emitted so far (the "seq" of the last row). */
    uint64_t rowsWritten() const { return seq_; }

    // --- Per-cycle recording hooks (no-ops outside a cycle) ---------

    /** Open cycle `cycle`; buffers the cycle_start row. */
    void beginCycle(uint64_t cycle, double sim, bool safe_mode,
                    bool probe);

    /** One finished phase: measured sim seconds vs. its budget
     *  (budget 0 = unlimited; frac is 0 then). */
    void recordPhase(const char *phase, double seconds, double budget);

    /**
     * One scored candidate file. `verdict` is "selected",
     * "random_fallback", or the veto reason ("stay_put",
     * "below_min_gain", "unreachable", "no_valid_target", "sanity").
     * `to`/`gain`/`random` only appear in the row for verdicts that
     * produced a move.
     */
    void recordCandidate(storage::FileId file, storage::DeviceId from,
                         const std::vector<double> &features,
                         const std::vector<LedgerScore> &scores,
                         const std::string &verdict,
                         storage::DeviceId to, double gain, bool random,
                         bool moved);

    /** One exploration move (random cycle; no scores exist). */
    void recordExploration(storage::FileId file, storage::DeviceId from,
                           storage::DeviceId to);

    /**
     * The cycle's per-device mean predicted throughput (averaged over
     * every candidate row scored this cycle), pinned to the ReplayDB
     * accesses watermark at prediction time. Resolved against realized
     * throughput by resolveRealized() once later samples land.
     */
    void recordPrediction(
        int64_t watermark,
        const std::vector<std::pair<storage::DeviceId,
                                    std::pair<double, uint64_t>>>
            &by_device);

    /**
     * Join every pending prediction against the accesses that arrived
     * after its watermark (call right after the monitor flush): emits
     * one realized row per (prediction, device) with samples, updates
     * the lifetime per-mount error accumulators and mirrors them into
     * `ledger.dev<id>.{abs_err,signed_err,samples}` gauges so external
     * tooling can be cross-checked against the in-process numbers.
     */
    void resolveRealized(ReplayDb &db);

    /** The fate of one migration attempt this cycle. */
    void recordOutcome(const AppliedMove &move);

    /**
     * Turn a monotone, checkpointed cumulative counter into the delta
     * since the last call (keyed by `slot`: 0 = admitted watermark,
     * 1 = quarantined). The cursors are part of the checkpoint, so the
     * deltas — unlike in-process per-cycle counters — replay exactly
     * across a crash/rewind/resume.
     */
    uint64_t advanceCumulative(int slot, uint64_t cumulative);

    /** Safe-mode transition ("safe_enter" / "safe_exit"). */
    void recordTransition(const char *event);

    /**
     * Close the cycle: buffer the summary row, splice the cycle's rows
     * into the ledger text and flush it atomically to disk.
     */
    void endCycle(const LedgerCycleSummary &summary);

    // --- Error statistics (Table 3 view) ----------------------------

    const std::map<storage::DeviceId, MountErrorStat> &
    mountErrors() const
    {
        return mountErrors_;
    }

    // --- Checkpointing ----------------------------------------------

    /**
     * Serialize the cursor ("ldg." keys): row seq, ledger byte length,
     * pending (unresolved) predictions and the per-mount error
     * accumulators. Written as part of the Geomancy cut.
     */
    void saveState(util::StateWriter &w) const;

    /**
     * Restore a cursor: truncate the in-memory ledger text to the
     * checkpointed byte length (re-reading the on-disk file, which is
     * always >= the cursor because flushes precede checkpoints) and
     * rewrite the file, discarding rows a crashed process appended
     * after the cut.
     */
    void loadState(util::StateReader &r);

  private:
    /** A prediction awaiting its realized window. */
    struct PendingPrediction
    {
        uint64_t cycle = 0;
        int64_t watermark = 0; ///< accesses row id at prediction time
        std::vector<std::pair<storage::DeviceId,
                              std::pair<double, uint64_t>>>
            byDevice;
    };

    void appendRow(const std::string &body); ///< assigns seq, buffers
    /** Durable flush of content_: appends the unflushed suffix in
     *  steady state, full atomic rewrite when the disk file is not
     *  our exact flushed prefix. */
    void flush();
    util::Gauge &deviceGauge(storage::DeviceId device,
                             const char *suffix);

    std::string path_;
    std::string content_;     ///< full ledger text (header included)
    std::string pendingText_; ///< rows of the open cycle
    uint64_t seq_ = 0;
    uint64_t cycle_ = 0;
    double sim_ = 0.0;
    bool inCycle_ = false;
    std::deque<PendingPrediction> pending_;
    std::map<storage::DeviceId, MountErrorStat> mountErrors_;
    uint64_t cumulative_[2] = {0, 0}; ///< advanceCumulative cursors
    /** Bytes of content_ already durable on disk; 0 forces the next
     *  flush() to be a full atomic rewrite. */
    size_t flushedBytes_ = 0;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_DECISION_LEDGER_HH
