#include "core/shard_coordinator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace geo {
namespace core {

namespace {

/** Golden-ratio stride keeps per-shard seed streams independent. */
constexpr uint64_t kSeedStride = 0x9E3779B97F4A7C15ULL;

/**
 * Derive shard i's Geomancy knobs from the coordinator's template.
 * A single shard is the monolithic optimizer exactly: no observe
 * filter, no window scaling, the template's own seeds.
 */
GeomancyConfig
shardConfig(const ShardCoordinatorConfig &coord, size_t shard,
            size_t shard_count)
{
    GeomancyConfig cfg = coord.base;
    cfg.seed = coord.base.seed + shard * kSeedStride;
    cfg.drl.seed = coord.base.drl.seed + shard * kSeedStride;
    cfg.observeOnlyManaged = shard_count > 1;
    if (coord.scaleBudgets && shard_count > 1) {
        // Constant fleet-wide budget: each shard trains on ~1/N of
        // the telemetry a monolithic optimizer would pull, with
        // floors so tiny fleets still learn.
        cfg.daemon.windowPerDevice = std::max<size_t>(
            256, coord.base.daemon.windowPerDevice / shard_count);
        cfg.minHistory =
            std::max<size_t>(64, coord.base.minHistory / shard_count);
        if (coord.base.sanityWindow > 0)
            cfg.sanityWindow = std::max<size_t>(
                256, coord.base.sanityWindow / shard_count);
    }
    return cfg;
}

} // namespace

size_t
ShardCoordinator::shardForFile(storage::FileId file, size_t shard_count)
{
    if (shard_count == 0)
        panic("ShardCoordinator: shard_count must be >= 1");
    uint64_t state = file;
    return static_cast<size_t>(splitmix64(state) % shard_count);
}

std::string
ShardCoordinator::dbPath(const std::string &db_path, size_t shard)
{
    if (db_path == ":memory:")
        return db_path;
    return strprintf("%s.shard%zu", db_path.c_str(), shard);
}

std::string
ShardCoordinator::ledgerPath(const std::string &base_path, size_t shard)
{
    return strprintf("%s.shard%zu", base_path.c_str(), shard);
}

ShardCoordinator::ShardCoordinator(
    storage::StorageSystem &system,
    const std::vector<storage::FileId> &files,
    const ShardCoordinatorConfig &config, const std::string &db_path)
    : system_(system), config_(config)
{
    if (config_.shardCount == 0)
        panic("ShardCoordinator: shardCount must be >= 1");
    std::vector<std::vector<storage::FileId>> assignment(
        config_.shardCount);
    for (storage::FileId file : files)
        assignment[shardForFile(file, config_.shardCount)]
            .push_back(file);
    build(assignment, db_path);
}

ShardCoordinator::ShardCoordinator(
    storage::StorageSystem &system,
    const std::vector<std::vector<storage::FileId>> &assignment,
    const ShardCoordinatorConfig &config, const std::string &db_path)
    : system_(system), config_(config)
{
    config_.shardCount = assignment.size();
    build(assignment, db_path);
}

void
ShardCoordinator::build(
    const std::vector<std::vector<storage::FileId>> &assignment,
    const std::string &db_path)
{
    if (assignment.empty())
        panic("ShardCoordinator: no shards");
    for (size_t i = 0; i < assignment.size(); ++i) {
        if (assignment[i].empty())
            panic("ShardCoordinator: shard %zu has no files (population "
                  "too small for %zu shards?)", i, assignment.size());
    }

    auto &registry = util::MetricRegistry::global();
    shards_.reserve(assignment.size());
    for (size_t i = 0; i < assignment.size(); ++i) {
        // Everything a shard's constructor resolves lands under the
        // "shard<i>." prefix — the Prometheus exporter renders it as
        // a shard="i" label on the shared base name.
        util::MetricScope scope(registry, strprintf("shard%zu.", i));
        shards_.push_back(std::make_unique<Geomancy>(
            system_, assignment[i],
            shardConfig(config_, i, assignment.size()),
            dbPath(db_path, i)));
    }
    for (auto &shard : shards_)
        shard->controlAgent().setAdmission(this);
    wasSafe_.assign(shards_.size(), false);
    usage_.assign(system_.deviceCount(), DeviceRoundUsage{});

    roundsMetric_ = &registry.counter("coord.rounds");
    deniedMetric_ = &registry.counter("coord.moves_denied");
    admittedMetric_ = &registry.counter("coord.moves_admitted");
    fanOutsMetric_ = &registry.counter("coord.safe_mode_fanouts");
    peakMovesGauge_ = &registry.gauge("coord.peak_device_moves");
    peakBytesGauge_ = &registry.gauge("coord.peak_device_bytes");
    registry.setHelp("coord.rounds",
                     "Coordinator rounds (one decision cycle per "
                     "shard) completed");
    registry.setHelp("coord.moves_denied",
                     "Migrations denied by the cross-shard per-device "
                     "budgets");
    registry.setHelp("coord.moves_admitted",
                     "Migrations admitted by the cross-shard budgets");
    registry.setHelp("coord.safe_mode_fanouts",
                     "Co-tenant shards force-tripped into safe mode "
                     "by the coordinator");
    registry.setHelp("coord.peak_device_moves",
                     "Highest per-device admitted-move count in any "
                     "round");
    registry.setHelp("coord.peak_device_bytes",
                     "Highest per-device admitted byte load in any "
                     "round");

    inform("coordinator: %zu shard%s over %zu devices, budgets "
           "moves/device/round=%zu bytes/device/round=%llu",
           shards_.size(), shards_.size() == 1 ? "" : "s",
           system_.deviceCount(), config_.maxMovesPerDevicePerRound,
           static_cast<unsigned long long>(
               config_.maxBytesInFlightPerDevice));
    for (size_t i = 0; i < shards_.size(); ++i)
        inform("coordinator: shard %zu manages %zu file%s", i,
               assignment[i].size(),
               assignment[i].size() == 1 ? "" : "s");
}

void
ShardCoordinator::attachLedgers(const std::string &base_path)
{
    for (size_t i = 0; i < shards_.size(); ++i)
        shards_[i]->attachLedger(ledgerPath(base_path, i));
}

void
ShardCoordinator::beginRound()
{
    usage_.assign(system_.deviceCount(), DeviceRoundUsage{});
}

bool
ShardCoordinator::admitMove(storage::DeviceId from, storage::DeviceId to,
                            uint64_t bytes)
{
    // A same-device request never transfers anything (the control
    // agent records it as Skipped); don't charge budget for it. Out of
    // range ids pass through for the same reason.
    if (from == to || from >= usage_.size() || to >= usage_.size())
        return true;
    size_t max_moves = config_.maxMovesPerDevicePerRound;
    uint64_t max_bytes = config_.maxBytesInFlightPerDevice;
    DeviceRoundUsage &src = usage_[from];
    DeviceRoundUsage &dst = usage_[to];
    bool moves_ok = max_moves == 0 ||
                    (src.moves < max_moves && dst.moves < max_moves);
    bool bytes_ok = max_bytes == 0 ||
                    (src.bytes + bytes <= max_bytes &&
                     dst.bytes + bytes <= max_bytes);
    if (!moves_ok || !bytes_ok) {
        ++denied_;
        deniedMetric_->inc();
        return false;
    }
    // Charge on admit, both endpoints: the budget bounds how much
    // migration traffic one device can see per round, whichever side
    // of the transfer it is on.
    ++src.moves;
    ++dst.moves;
    src.bytes += bytes;
    dst.bytes += bytes;
    admittedMetric_->inc();
    return true;
}

void
ShardCoordinator::fanOutSafeMode(size_t origin)
{
    for (size_t j = 0; j < shards_.size(); ++j) {
        if (j == origin)
            continue;
        Geomancy &shard = *shards_[j];
        if (!shard.guardrails().tripSafeMode(shard.cyclesRun()))
            continue; // already safe (or guardrails disabled)
        shard.controlAgent().abandonPending();
        wasSafe_[j] = true;
        ++fanOuts_;
        fanOutsMetric_->inc();
        warn("coordinator: shard %zu force-tripped into safe mode "
             "(fan-out from shard %zu)", j, origin);
    }
}

std::vector<CycleReport>
ShardCoordinator::runRound()
{
    beginRound();
    auto &registry = util::MetricRegistry::global();
    std::vector<CycleReport> reports;
    reports.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
        {
            // Scope lazily-resolved metrics (ledger device gauges) to
            // this shard, same prefix its constructor used.
            util::MetricScope scope(registry,
                                    strprintf("shard%zu.", i));
            reports.push_back(shards_[i]->runCycle());
        }
        bool safe = shards_[i]->guardrails().safeMode();
        if (safe && !wasSafe_[i] && config_.safeModeFanOut)
            fanOutSafeMode(i);
        wasSafe_[i] = safe;
    }
    ++rounds_;
    roundsMetric_->inc();
    for (const DeviceRoundUsage &u : usage_) {
        peakDeviceMoves_ = std::max(peakDeviceMoves_, u.moves);
        peakDeviceBytes_ = std::max(peakDeviceBytes_, u.bytes);
    }
    peakMovesGauge_->set(static_cast<double>(peakDeviceMoves_));
    peakBytesGauge_->set(static_cast<double>(peakDeviceBytes_));
    return reports;
}

void
ShardCoordinator::saveState(util::StateWriter &w)
{
    w.u64("coord.shards", shards_.size());
    w.u64("coord.rounds", rounds_);
    w.u64("coord.denied", denied_);
    w.u64("coord.fanouts", fanOuts_);
    w.u64("coord.peak_moves", peakDeviceMoves_);
    w.u64("coord.peak_bytes", peakDeviceBytes_);
    for (size_t i = 0; i < shards_.size(); ++i) {
        // The marker keys both namespace the shard sections and make a
        // snapshot from a different shard count fail key validation
        // instead of silently misloading.
        w.u64("coord.shard", i);
        shards_[i]->saveState(w);
    }
}

void
ShardCoordinator::loadState(util::StateReader &r)
{
    uint64_t shard_count = r.u64("coord.shards");
    uint64_t rounds = r.u64("coord.rounds");
    uint64_t denied = r.u64("coord.denied");
    uint64_t fanouts = r.u64("coord.fanouts");
    uint64_t peak_moves = r.u64("coord.peak_moves");
    uint64_t peak_bytes = r.u64("coord.peak_bytes");
    if (r.ok() && shard_count != shards_.size()) {
        r.fail(strprintf("snapshot has %llu shards, coordinator has %zu",
                         static_cast<unsigned long long>(shard_count),
                         shards_.size()));
        return;
    }
    if (!r.ok())
        return;
    for (size_t i = 0; i < shards_.size(); ++i) {
        uint64_t marker = r.u64("coord.shard");
        if (r.ok() && marker != i) {
            r.fail(strprintf("shard marker %llu where %zu expected",
                             static_cast<unsigned long long>(marker),
                             i));
        }
        if (!r.ok())
            return;
        shards_[i]->loadState(r);
        if (!r.ok())
            return;
    }
    rounds_ = rounds;
    denied_ = denied;
    fanOuts_ = fanouts;
    peakDeviceMoves_ = static_cast<size_t>(peak_moves);
    peakDeviceBytes_ = peak_bytes;
    for (size_t i = 0; i < shards_.size(); ++i)
        wasSafe_[i] = shards_[i]->guardrails().safeMode();
}

} // namespace core
} // namespace geo
