/**
 * @file
 * Control agent (paper Section V-A): executes layout changes on the
 * target system in the background and reports the movements back to
 * the ReplayDB so every action is indexed by its timestamp.
 */

#ifndef GEO_CORE_CONTROL_AGENT_HH
#define GEO_CORE_CONTROL_AGENT_HH

#include <vector>

#include "core/replay_db.hh"
#include "storage/system.hh"

namespace geo {
namespace core {

/** One requested file movement. */
struct MoveRequest
{
    storage::FileId file = 0;
    storage::DeviceId target = 0;
};

/** Summary of an applied layout change. */
struct MoveSummary
{
    size_t requested = 0;
    size_t applied = 0;      ///< actually moved (src != dst, valid)
    uint64_t bytesMoved = 0;
    double transferSeconds = 0.0;
};

/**
 * Applies move requests to the target system.
 */
class ControlAgent
{
  public:
    /**
     * @param system the target system.
     * @param db movement log (may be null to skip logging).
     */
    ControlAgent(storage::StorageSystem &system, ReplayDb *db);

    /** Apply a batch of moves; invalid moves are skipped with a warn. */
    MoveSummary apply(const std::vector<MoveRequest> &moves);

    /** Lifetime totals. */
    uint64_t totalMoves() const { return totalMoves_; }
    uint64_t totalBytesMoved() const { return totalBytes_; }

  private:
    storage::StorageSystem &system_;
    ReplayDb *db_;
    uint64_t totalMoves_ = 0;
    uint64_t totalBytes_ = 0;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_CONTROL_AGENT_HH
