/**
 * @file
 * Control agent (paper Section V-A): executes layout changes on the
 * target system in the background and reports the movements back to
 * the ReplayDB so every action is indexed by its timestamp.
 *
 * Migrations are fallible: a device can go offline or throw transient
 * I/O errors mid-transfer. The agent therefore logs every *attempt*
 * (not just every success), retries fault-aborted moves with bounded
 * exponential backoff, and abandons a move once its retry budget or
 * per-move deadline runs out. Because each attempt is persisted in
 * the ReplayDB, a restarted agent can rebuild its pending-retry queue
 * from the log (crash-safe replay).
 */

#ifndef GEO_CORE_CONTROL_AGENT_HH
#define GEO_CORE_CONTROL_AGENT_HH

#include <deque>
#include <vector>

#include "core/replay_db.hh"
#include "storage/system.hh"
#include "util/metrics.hh"
#include "util/random.hh"
#include "util/state_io.hh"
#include "util/watchdog.hh"

namespace geo {
namespace core {

/** One requested file movement. */
struct MoveRequest
{
    storage::FileId file = 0;
    storage::DeviceId target = 0;
};

/** Retry policy for fault-aborted migrations. */
struct RetryConfig
{
    /** Total tries per move (first attempt included). */
    size_t maxAttempts = 4;
    /** Backoff before retry n is base * multiplier^(n-1) seconds,
     *  +/- jitterFraction of itself. */
    double backoffBase = 30.0;
    double backoffMultiplier = 2.0;
    double jitterFraction = 0.25;
    /** A move still failing this long after its first attempt is
     *  abandoned even if attempts remain. */
    double moveDeadlineSeconds = 1800.0;
};

/** Control-agent configuration. */
struct ControlAgentConfig
{
    /** Chunk size for incremental transfers; 0 = single-shot moves. */
    uint64_t chunkBytes = 64ULL << 20;
    RetryConfig retry;
    /** Seed for backoff jitter. */
    uint64_t seed = 17;
};

/**
 * Cross-shard admission control. When several ControlAgents share one
 * substrate (the shard coordinator), each consults this hook before
 * every attempt so per-device concurrency/bytes budgets hold globally.
 * Returning false defers the move: a fresh request is dropped (counted
 * as deferred), a due retry stays queued for the next cycle. The hook
 * must be deterministic — admission decisions are part of the replayed
 * decision trajectory.
 */
class MoveAdmission
{
  public:
    virtual ~MoveAdmission() = default;
    /** May `bytes` move from `from` to `to` right now? */
    virtual bool admitMove(storage::DeviceId from, storage::DeviceId to,
                           uint64_t bytes) = 0;
};

/** The fate of one request within an apply() batch. */
struct AppliedMove
{
    storage::FileId file = 0;
    storage::DeviceId from = 0;
    storage::DeviceId to = 0;
    AttemptOutcome outcome = AttemptOutcome::Applied;
    storage::MoveFail reason = storage::MoveFail::None;
    size_t attempt = 1; ///< 1-based attempt number for this move
};

/** Summary of an applied layout change. */
struct MoveSummary
{
    size_t requested = 0;
    size_t applied = 0;   ///< actually moved (src != dst, valid)
    size_t skipped = 0;   ///< invalid requests dropped (with reason)
    size_t failed = 0;    ///< fault-aborted attempts this batch
    size_t abandoned = 0; ///< moves given up (budget/deadline)
    size_t requeued = 0;  ///< fault-aborted moves queued for retry
    size_t cancelled = 0; ///< not attempted: the watchdog fired
    size_t deferred = 0;  ///< denied by cross-shard admission control
    uint64_t bytesMoved = 0;
    double transferSeconds = 0.0;
    /** Per-request fates, in execution order (retries included). */
    std::vector<AppliedMove> outcomes;
};

/**
 * Applies move requests to the target system.
 */
class ControlAgent
{
  public:
    /**
     * @param system the target system.
     * @param db attempt/movement log (may be null to skip logging).
     */
    ControlAgent(storage::StorageSystem &system, ReplayDb *db,
                 ControlAgentConfig config = {});

    /**
     * Apply a batch of moves plus any pending retries that are due.
     * Invalid moves are skipped with a warn; fault-aborted moves are
     * re-queued with backoff or abandoned per the retry policy. A new
     * request for a file supersedes its pending retry.
     */
    MoveSummary apply(const std::vector<MoveRequest> &moves);

    /** Moves currently awaiting a retry. */
    size_t pendingRetries() const { return pending_.size(); }

    /**
     * Cooperative deadline enforcement: when set, the watchdog is
     * polled before every attempt inside apply(); once it fires the
     * remaining moves of the batch are counted as cancelled and left
     * for the next cycle. Null disables (the default).
     */
    void setWatchdog(util::Watchdog *watchdog) { watchdog_ = watchdog; }

    /**
     * Cross-shard admission hook, consulted before every attempt when
     * set. Denied fresh moves are dropped (summary.deferred); denied
     * due retries stay queued. Null admits everything (the default).
     */
    void setAdmission(MoveAdmission *admission) { admission_ = admission; }

    /**
     * Abandon every pending retry (safe-mode entry): each queued move
     * is logged as Abandoned so the attempt log stays an exact record
     * of the move's fate. @return moves abandoned.
     */
    size_t abandonPending();

    /**
     * Rebuild the pending-retry queue from the ReplayDB attempt log:
     * every move whose most recent attempt ended in Failed is re-queued
     * (due immediately, attempt counter restored). Used after a crash
     * or restart. @return moves restored.
     */
    size_t restorePending();

    /** Lifetime totals. */
    uint64_t totalMoves() const { return totalMoves_; }
    uint64_t totalBytesMoved() const { return totalBytes_; }
    uint64_t totalAbandoned() const { return totalAbandoned_; }

    /**
     * Serialize the retry queue, jitter RNG and lifetime totals. A
     * restore from this state is exact; restorePending() then becomes
     * a consistency check, not the source of truth.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    /** A fault-aborted move awaiting its next try. */
    struct Pending
    {
        MoveRequest req;
        size_t attempts = 0;      ///< tries already made
        double firstAttempt = 0.0;
        double nextAttempt = 0.0; ///< due time (sim seconds)
    };

    storage::StorageSystem &system_;
    ReplayDb *db_;
    ControlAgentConfig config_;
    util::Watchdog *watchdog_ = nullptr;
    MoveAdmission *admission_ = nullptr;
    Rng rng_;
    std::deque<Pending> pending_;
    uint64_t totalMoves_ = 0;
    uint64_t totalBytes_ = 0;
    uint64_t totalAbandoned_ = 0;

    // Registry handles for migration accounting.
    util::Counter *requestedMetric_;
    util::Counter *appliedMetric_;
    util::Counter *failedMetric_;
    util::Counter *skippedMetric_;
    util::Counter *requeuedMetric_;
    util::Counter *abandonedMetric_;
    util::Counter *cancelledMetric_;
    util::Counter *deferredMetric_;
    util::Counter *supersededMetric_;
    util::Counter *retriesMetric_;
    util::Counter *bytesMetric_;
    util::Histogram *backoffMetric_;
    util::Histogram *transferSecondsMetric_;

    /** Run one attempt of one move; updates summary, queue and log. */
    void attemptMove(const MoveRequest &req, size_t prior_attempts,
                     double first_attempt, MoveSummary &summary);
    /** True once the migrate-phase watchdog has fired. */
    bool overBudget();
    double backoffDelay(size_t attempts);
    void logAttempt(const AppliedMove &fate, uint64_t bytes_copied);
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_CONTROL_AGENT_HH
