#include "core/action_checker.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace geo {
namespace core {

const char *
moveVetoName(MoveVeto veto)
{
    switch (veto) {
      case MoveVeto::None:
        return "selected";
      case MoveVeto::Unreachable:
        return "unreachable";
      case MoveVeto::StayPut:
        return "stay_put";
      case MoveVeto::BelowMinGain:
        return "below_min_gain";
      case MoveVeto::NoValidTarget:
        return "no_valid_target";
      case MoveVeto::RandomFallback:
        return "random_fallback";
    }
    return "unknown";
}

ActionChecker::ActionChecker(storage::StorageSystem &system,
                             const CheckerConfig &config)
    : system_(system), config_(config)
{
    if (config_.maxMovesPerCycle == 0)
        panic("ActionChecker: maxMovesPerCycle must be >= 1");
    auto &registry = util::MetricRegistry::global();
    vetoReadonlyMetric_ = &registry.counter("checker.veto_readonly");
    vetoCapacityMetric_ = &registry.counter("checker.veto_capacity");
    vetoUnhealthyMetric_ = &registry.counter("checker.veto_unhealthy");
    belowMinGainMetric_ = &registry.counter("checker.below_min_gain");
    randomFallbackMetric_ = &registry.counter("checker.random_fallbacks");
}

std::vector<storage::DeviceId>
ActionChecker::validDevices(
    storage::FileId file,
    const std::vector<storage::DeviceId> &candidates) const
{
    const storage::FileObject &f = system_.file(file);
    std::vector<storage::DeviceId> valid;
    for (storage::DeviceId id : candidates) {
        if (id >= system_.deviceCount())
            continue;
        if (id == f.location) {
            valid.push_back(id); // staying put is always allowed
            continue;
        }
        const storage::StorageDevice &dev = system_.device(id);
        if (!dev.writable()) {
            vetoReadonlyMetric_->inc();
            continue;
        }
        if (dev.freeBytes() < f.sizeBytes) {
            vetoCapacityMetric_->inc();
            continue;
        }
        if (!dev.available() ||
            dev.healthFactor() < config_.minHealthFactor) {
            vetoUnhealthyMetric_->inc();
            continue; // offline or too degraded to take new data
        }
        valid.push_back(id);
    }
    return valid;
}

std::optional<CheckedMove>
ActionChecker::selectMove(storage::FileId file,
                          const std::vector<CandidateScore> &scores,
                          Rng &rng, bool lower_is_better,
                          MoveVeto *veto) const
{
    auto verdict = [veto](MoveVeto v) {
        if (veto)
            *veto = v;
    };
    verdict(MoveVeto::None);
    // Orient comparisons so "better" is always larger.
    auto better = [lower_is_better](double a, double b) {
        return lower_is_better ? a < b : a > b;
    };
    storage::DeviceId current = system_.location(file);
    if (!system_.device(current).available()) {
        verdict(MoveVeto::Unreachable);
        return std::nullopt; // data unreachable: nothing to execute
    }

    std::vector<storage::DeviceId> candidates;
    candidates.reserve(scores.size());
    for (const CandidateScore &s : scores)
        candidates.push_back(s.device);
    std::vector<storage::DeviceId> valid = validDevices(file, candidates);

    if (valid.empty()) {
        // All storage devices invalid: perform a random movement so
        // Geomancy keeps learning the movement/performance relation.
        randomFallbackMetric_->inc();
        std::optional<CheckedMove> fallback = randomMove(file, rng);
        verdict(fallback ? MoveVeto::RandomFallback
                         : MoveVeto::NoValidTarget);
        return fallback;
    }

    double stay_predicted = 0.0;
    bool have_stay = false;
    const CandidateScore *best = nullptr;
    for (const CandidateScore &s : scores) {
        if (std::find(valid.begin(), valid.end(), s.device) == valid.end())
            continue;
        if (s.device == current) {
            stay_predicted = s.predictedThroughput;
            have_stay = true;
        }
        // Ties break to the lowest device id, not container order:
        // callers may enumerate candidates in any order, and shard
        // digest comparison needs the argmax to be a pure function of
        // the scores.
        if (!best ||
            better(s.predictedThroughput, best->predictedThroughput) ||
            (s.predictedThroughput == best->predictedThroughput &&
             s.device < best->device))
            best = &s;
    }
    if (!best) {
        randomFallbackMetric_->inc();
        std::optional<CheckedMove> fallback = randomMove(file, rng);
        verdict(fallback ? MoveVeto::RandomFallback
                         : MoveVeto::NoValidTarget);
        return fallback;
    }
    if (best->device == current) {
        verdict(MoveVeto::StayPut);
        return std::nullopt; // staying put predicted best
    }

    CheckedMove move;
    move.file = file;
    move.from = current;
    move.to = best->device;
    move.predictedThroughput = best->predictedThroughput;
    if (have_stay && stay_predicted > 0.0) {
        move.predictedGain =
            lower_is_better
                ? (stay_predicted - best->predictedThroughput) /
                      stay_predicted
                : (best->predictedThroughput - stay_predicted) /
                      stay_predicted;
        if (move.predictedGain < config_.minRelativeGain) {
            belowMinGainMetric_->inc();
            verdict(MoveVeto::BelowMinGain);
            return std::nullopt; // not worth the transfer cost
        }
    } else {
        move.predictedGain = 0.0;
    }
    return move;
}

std::vector<CheckedMove>
ActionChecker::capMoves(std::vector<CheckedMove> moves) const
{
    // Equal gains order by (file, target) so the cap keeps the same
    // moves regardless of proposal order or sort implementation.
    std::sort(moves.begin(), moves.end(),
              [](const CheckedMove &a, const CheckedMove &b) {
                  if (a.predictedGain != b.predictedGain)
                      return a.predictedGain > b.predictedGain;
                  if (a.file != b.file)
                      return a.file < b.file;
                  return a.to < b.to;
              });
    std::vector<CheckedMove> kept;
    std::map<storage::DeviceId, size_t> per_target;
    for (CheckedMove &move : moves) {
        if (kept.size() >= config_.maxMovesPerCycle)
            break;
        if (config_.maxMovesPerTarget > 0 &&
            per_target[move.to] >= config_.maxMovesPerTarget) {
            continue;
        }
        ++per_target[move.to];
        kept.push_back(std::move(move));
    }
    return kept;
}

std::optional<CheckedMove>
ActionChecker::randomMove(storage::FileId file, Rng &rng) const
{
    const storage::FileObject &f = system_.file(file);
    if (!system_.device(f.location).available())
        return std::nullopt; // data unreachable: nothing to execute
    std::vector<storage::DeviceId> options;
    for (storage::DeviceId id : system_.deviceIds()) {
        if (id == f.location)
            continue;
        const storage::StorageDevice &dev = system_.device(id);
        if (!dev.available() ||
            dev.healthFactor() < config_.minHealthFactor)
            continue;
        if (dev.writable() && dev.freeBytes() >= f.sizeBytes)
            options.push_back(id);
    }
    if (options.empty())
        return std::nullopt;
    CheckedMove move;
    move.file = file;
    move.from = f.location;
    move.to = options[static_cast<size_t>(rng.uniformInt(
        0, static_cast<int64_t>(options.size()) - 1))];
    move.random = true;
    return move;
}

} // namespace core
} // namespace geo
