#include "core/interface_daemon.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/smoothing.hh"

namespace geo {
namespace core {

std::vector<double>
TrainingBatch::normalizeFeatures(const std::vector<double> &raw) const
{
    if (!featureNorm.fitted())
        return raw;
    if (raw.size() != featureNorm.columns())
        panic("normalizeFeatures: %zu values, scaler has %zu columns",
              raw.size(), featureNorm.columns());
    std::vector<double> out(raw.size());
    for (size_t c = 0; c < raw.size(); ++c)
        out[c] = featureNorm.value(raw[c], c);
    return out;
}

void
TrainingBatch::normalizeFeaturesInto(const double *raw, size_t count,
                                     double *out) const
{
    if (!featureNorm.fitted()) {
        std::copy(raw, raw + count, out);
        return;
    }
    if (count != featureNorm.columns())
        panic("normalizeFeatures: %zu values, scaler has %zu columns",
              count, featureNorm.columns());
    for (size_t c = 0; c < count; ++c)
        out[c] = featureNorm.value(raw[c], c);
}

double
TrainingBatch::denormalizeTarget(double normalized) const
{
    if (!targetNorm.fitted())
        return normalized;
    return targetNorm.inverseValue(normalized, 0);
}

InterfaceDaemon::InterfaceDaemon(ReplayDb &db, const DaemonConfig &config)
    : db_(db), config_(config)
{
    if (config_.windowPerDevice == 0)
        panic("InterfaceDaemon: windowPerDevice must be >= 1");
    if (config_.smoothingWindow == 0)
        panic("InterfaceDaemon: smoothingWindow must be >= 1");
}

void
InterfaceDaemon::receiveBatch(const std::vector<PerfRecord> &records)
{
    if (records.empty())
        return;
    db_.insertAccesses(records);
    transferOverhead_ += config_.batchTransferSeconds;
    ++batchesReceived_;
}

void
InterfaceDaemon::saveState(util::StateWriter &w) const
{
    w.f64("daemon.overhead", transferOverhead_);
    w.u64("daemon.batches", batchesReceived_);
}

void
InterfaceDaemon::loadState(util::StateReader &r)
{
    double overhead = r.f64("daemon.overhead");
    uint64_t batches = r.u64("daemon.batches");
    if (!r.ok())
        return;
    transferOverhead_ = overhead;
    batchesReceived_ = batches;
}

TrainingBatch
InterfaceDaemon::buildTrainingBatch(
    const std::vector<storage::DeviceId> &devices) const
{
    // The X most recent accesses for each storage device...
    std::vector<PerfRecord> merged;
    for (storage::DeviceId device : devices) {
        std::vector<PerfRecord> recent =
            db_.recentAccessesForDevice(device, config_.windowPerDevice);
        merged.insert(merged.end(), recent.begin(), recent.end());
    }
    // ...merged chronologically (row id order = insertion order).
    std::sort(merged.begin(), merged.end(),
              [](const PerfRecord &a, const PerfRecord &b) {
                  return a.id < b.id;
              });

    TrainingBatch batch;
    batch.target = config_.target;
    if (merged.empty())
        return batch;

    nn::Matrix inputs(merged.size(), kLiveFeatureCount);
    for (size_t r = 0; r < merged.size(); ++r) {
        std::vector<double> row = merged[r].features();
        for (size_t c = 0; c < row.size(); ++c)
            inputs.at(r, c) = row[c];
    }

    std::vector<double> tp;
    tp.reserve(merged.size());
    for (const PerfRecord &rec : merged) {
        if (config_.target == ModelTarget::Latency) {
            double open_time = static_cast<double>(rec.ots) +
                               static_cast<double>(rec.otms) / 1000.0;
            double close_time = static_cast<double>(rec.cts) +
                                static_cast<double>(rec.ctms) / 1000.0;
            tp.push_back(std::max(0.0, close_time - open_time));
        } else {
            tp.push_back(rec.throughput);
        }
    }
    if (config_.smoothingWindow > 1)
        tp = movingAverage(tp, config_.smoothingWindow);
    nn::Matrix targets(merged.size(), 1);
    for (size_t r = 0; r < merged.size(); ++r)
        targets.at(r, 0) = tp[r];

    batch.featureNorm.fit(inputs);
    batch.targetNorm.fit(targets);
    batch.dataset.inputs = batch.featureNorm.transform(inputs);
    batch.dataset.targets = batch.targetNorm.transform(targets);
    return batch;
}

} // namespace core
} // namespace geo
