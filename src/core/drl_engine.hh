/**
 * @file
 * The DRL engine (paper Sections V-B, V-C, V-G).
 *
 * Wraps one of the Table I neural networks in a reinforcement loop:
 * the measured throughput of each access is the reward signal, the
 * engine retrains on the most recent ReplayDB window, and predictions
 * are made per candidate location by cloning the file's latest access
 * features with only the device column varying (Section V-C). The
 * validation mean-absolute-error is used to bias-correct predictions
 * (AdjustedPrediction = prediction +/- MAE * prediction, Section V-G).
 */

#ifndef GEO_CORE_DRL_ENGINE_HH
#define GEO_CORE_DRL_ENGINE_HH

#include <vector>

#include "core/interface_daemon.hh"
#include "core/perf_record.hh"
#include "nn/model_zoo.hh"
#include "nn/optimizer.hh"
#include "nn/sequential.hh"
#include "util/metrics.hh"
#include "util/random.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {

/** DRL engine configuration. */
struct DrlConfig
{
    int modelNumber = 1;   ///< Table I architecture (paper picks 1)
    size_t featureCount = kLiveFeatureCount; ///< Z
    size_t epochs = 40;    ///< retraining epochs per cycle
    size_t batchSize = 64;
    double learningRate = 0.05;
    double clipNorm = 5.0; ///< gradient clipping for stability
    double trainFraction = 0.6; ///< paper: 60/20/20 split
    double valFraction = 0.2;
    bool adjustWithMae = true; ///< Section V-G bias correction
    uint64_t seed = 2024;
};

/** Outcome of one retraining cycle. */
struct RetrainStats
{
    bool trained = false;       ///< false when the batch was too small
    bool diverged = false;
    bool cancelled = false;     ///< cut short by the watchdog
    double seconds = 0.0;       ///< wall-clock training time
    double meanAbsRelError = 0.0; ///< % on the validation set
    double signedRelError = 0.0;  ///< % (sign drives the adjustment)
    size_t samples = 0;
};

/** Predicted target value of a file at one candidate location. */
struct CandidateScore
{
    storage::DeviceId device = 0;
    /** Denormalized predicted target: bytes/s for throughput models,
     *  seconds for latency models. */
    double predictedThroughput = 0.0;
};

/**
 * Neural-network throughput predictor with per-location scoring.
 */
class DrlEngine
{
  public:
    explicit DrlEngine(const DrlConfig &config = {});

    /**
     * Retrain on a normalized training batch (keeps the batch's
     * scalers for subsequent predictions).
     */
    RetrainStats retrain(const TrainingBatch &batch);

    /** True once at least one successful retrain has happened. */
    bool ready() const { return ready_; }

    /**
     * Cooperative cancellation for retrain(): the token is checked at
     * every epoch boundary; a fired token aborts training, rolls the
     * weights back to the last good cycle (like a divergence) and sets
     * RetrainStats::cancelled. Null disables (the default).
     */
    void setCancelToken(const util::CancelToken *token)
    {
        cancelToken_ = token;
    }

    /**
     * Predicted throughput (bytes/s) for a raw Z-feature row,
     * MAE-adjusted when configured. Thin shim over predictBatch()
     * sharing its preallocated row buffer.
     */
    double predictThroughput(const std::vector<double> &raw_features);

    /**
     * Predict raw targets for a batch of raw Z-feature rows in ONE
     * forward pass: result[r] is bitwise equal to
     * predictThroughput(row r) — normalization, the Sec. V-G MAE
     * adjustment and the >= 0 clamp are applied per row in the same
     * order as the scalar path.
     */
    std::vector<double> predictBatch(const nn::Matrix &raw_rows);

    /**
     * Score every candidate location for the access pattern described
     * by `latest`: one row per device, only the location column
     * varying, including the current location ("the possibility that
     * moving the data will not improve performance").
     */
    std::vector<CandidateScore> scoreCandidates(
        const PerfRecord &latest,
        const std::vector<storage::DeviceId> &devices);

    /** Single-file alias of the batched scoreLocations() below. */
    std::vector<CandidateScore> scoreLocations(
        const PerfRecord &latest,
        const std::vector<storage::DeviceId> &devices);

    /**
     * Batched Section V-C scoring: one feature matrix with
     * records.size() * devices.size() rows and a single forward pass.
     * result[f][d] is bitwise equal to
     * scoreCandidates(records[f], devices)[d].
     */
    std::vector<std::vector<CandidateScore>> scoreLocations(
        const std::vector<PerfRecord> &records,
        const std::vector<storage::DeviceId> &devices);

    /** Millisecond cost of the last prediction batch (wall clock). */
    double lastPredictionMillis() const { return lastPredictMs_; }

    /** What the engine currently models (from the latest batch). */
    ModelTarget targetKind() const { return targetKind_; }

    /** True when smaller predictions are better (latency models). */
    bool lowerIsBetter() const
    {
        return targetKind_ == ModelTarget::Latency;
    }

    /** Validation MAE as a fraction of the target (Sec. V-G). */
    double maeFraction() const { return maeFraction_; }

    /** Direction of the Sec. V-G adjustment (+1, -1, or 0 = off). */
    double adjustSign() const { return adjustSign_; }

    const DrlConfig &config() const { return config_; }
    nn::Sequential &model() { return model_; }

    /**
     * Serialize weights, optimizer moments, RNG, batch scalers and the
     * Section V-G adjustment state. Non-const because weight export
     * walks the mutable parameter list.
     */
    void saveState(util::StateWriter &w);

    /** Restore state saved by an identically-configured engine. */
    void loadState(util::StateReader &r);

  private:
    /** False when any weight went NaN/Inf. */
    bool weightsFinite();

    DrlConfig config_;
    Rng rng_;
    nn::Sequential model_;
    nn::SgdOptimizer optimizer_;
    TrainingBatch batch_; ///< scalers of the latest retrain
    bool ready_ = false;
    double maeFraction_ = 0.0;  ///< validation MAE as fraction of target
    double adjustSign_ = 0.0;   ///< +1 raise, -1 lower, 0 no adjustment
    ModelTarget targetKind_ = ModelTarget::Throughput;
    double lastPredictMs_ = 0.0;
    /** Weights after the last non-diverged retrain (serialized text);
     *  the rollback target when training poisons the model. */
    std::string lastGoodWeights_;
    const util::CancelToken *cancelToken_ = nullptr;

    // Preallocated batch buffers, reused across prediction calls.
    nn::Matrix rowScratch_;     ///< 1 x Z raw row for the scalar shim
    nn::Matrix featureScratch_; ///< (F * D) x Z normalized batch
    nn::Matrix outputScratch_;  ///< model predictions (reused per call)

    // Registry handles (resolved once; recording is lock-free).
    util::Counter *trainStepsMetric_;
    util::Counter *divergedMetric_;
    util::Counter *trainDivergedMetric_;
    util::Counter *trainCancelledMetric_;
    util::Counter *rollbackMetric_;
    util::Histogram *trainMsMetric_;
    util::Histogram *trainRowsMetric_;
    util::Histogram *predictMsMetric_;
    util::Histogram *scoreRowsMetric_;
    util::Gauge *valMaeMetric_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_DRL_ENGINE_HH
