#include "core/gap_predictor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace geo {
namespace core {

GapPredictor::GapPredictor(const ReplayDb &db,
                           const GapPredictorConfig &config)
    : db_(db), config_(config)
{
    if (config_.alpha <= 0.0 || config_.alpha > 1.0)
        panic("GapPredictor: alpha %f out of (0, 1]", config_.alpha);
    if (config_.historyPerFile < 2)
        panic("GapPredictor: historyPerFile must be >= 2");
}

std::optional<GapPrediction>
GapPredictor::predict(storage::FileId file) const
{
    std::vector<PerfRecord> history =
        db_.recentAccessesForFile(file, config_.historyPerFile);
    if (history.size() < 2)
        return std::nullopt;

    GapPrediction prediction;
    double ewma = 0.0;
    bool first = true;
    for (size_t i = 1; i < history.size(); ++i) {
        double open_i = static_cast<double>(history[i].ots) +
                        static_cast<double>(history[i].otms) / 1000.0;
        double close_prev =
            static_cast<double>(history[i - 1].cts) +
            static_cast<double>(history[i - 1].ctms) / 1000.0;
        double gap = open_i - close_prev;
        if (gap < 0.0)
            gap = 0.0; // overlapping concurrent accesses
        if (first) {
            ewma = gap;
            prediction.shortestRecentGap = gap;
            first = false;
        } else {
            ewma = config_.alpha * gap + (1.0 - config_.alpha) * ewma;
            prediction.shortestRecentGap =
                std::min(prediction.shortestRecentGap, gap);
        }
        ++prediction.samples;
    }
    if (prediction.samples < config_.minSamples)
        return std::nullopt;
    prediction.expectedGapSeconds = ewma;
    return prediction;
}

bool
GapPredictor::fitsInGap(storage::FileId file, double transfer_seconds,
                        double safety) const
{
    std::optional<GapPrediction> prediction = predict(file);
    if (!prediction)
        return true; // unknown or idle file: moving cannot collide
    return prediction->expectedGapSeconds >= transfer_seconds * safety;
}

} // namespace core
} // namespace geo
