/**
 * @file
 * Guardrails: telemetry quarantine, decision deadlines and safe mode.
 *
 * Production Geomancy runs unattended against live storage, so the
 * pipeline has to survive bad inputs and its own bad cycles. This
 * subsystem adds three defensive layers:
 *
 *  1. Telemetry quarantine — every incoming performance record is
 *     validated (finite, non-negative throughput, plausible
 *     timestamps, in-range features, no duplicates) before it may
 *     enter a training batch; rejects land in a bounded quarantine
 *     ring with per-reason counters. A cycle that admits too few
 *     records while quarantining any degrades to "hold the layout".
 *  2. Decision deadlines — each cycle phase (monitor, train, propose,
 *     migrate) gets a SimClock budget watched by a util::Watchdog;
 *     overruns cancel the phase cooperatively (training stops at the
 *     next epoch, migration defers the rest of the batch).
 *  3. Safe mode — consecutive overruns, quarantine floods or DRL
 *     divergence trip a frozen-layout mode: migrations stop, pending
 *     retries are abandoned, and only periodic probe cycles (with
 *     exponential backoff) may demonstrate health and exit.
 *
 * Everything here is recording-only on clean runs: admit() consumes
 * no randomness, budgets default to disabled, and the decision
 * trajectory with guardrails enabled is byte-identical to one without
 * them unless a fault actually fires (pinned by
 * tests/core/test_guardrails.cc).
 */

#ifndef GEO_CORE_GUARDRAILS_HH
#define GEO_CORE_GUARDRAILS_HH

#include <deque>
#include <vector>

#include "core/perf_record.hh"
#include "util/metrics.hh"
#include "util/sim_clock.hh"
#include "util/state_io.hh"
#include "util/watchdog.hh"

namespace geo {
namespace core {

/** Why a telemetry record was quarantined (checked in this order). */
enum class QuarantineReason {
    NonFinite,          ///< NaN/Inf throughput
    NegativeThroughput, ///< throughput < 0
    BadDuration,        ///< close timestamp before open timestamp
    OutOfRange,         ///< throughput or byte counts beyond physics
    Future,             ///< close timestamp too far past sim-now
    Stale,              ///< close timestamp too far before sim-now
    Duplicate,          ///< exact copy of the previous pending record
};

constexpr size_t kQuarantineReasonCount = 7;

/** Stable lowercase name ("non_finite", ... — used as metric suffix). */
const char *quarantineReasonName(QuarantineReason reason);

/** One quarantined record, kept for diagnosis. */
struct QuarantinedRecord
{
    PerfRecord record;
    QuarantineReason reason = QuarantineReason::NonFinite;
    double quarantinedAt = 0.0; ///< sim time of the rejection
};

/** Guardrails configuration. */
struct GuardrailsConfig
{
    /** Master switch; disabled = admit everything, never trip. */
    bool enabled = true;

    // --- Telemetry quarantine -------------------------------------
    /** A record closing more than this before sim-now is stale. */
    double maxRecordAgeSeconds = 86400.0;
    /** Slack for records that legitimately close "in the future"
     *  (concurrent accesses observe end = start + duration without
     *  advancing the clock), plus injected clock skew beyond it. */
    double maxFutureSkewSeconds = 3600.0;
    /** Throughput above this is physically implausible (bytes/s). */
    double maxThroughput = 1e12;
    /** Byte counts above this are corrupt (per access). */
    uint64_t maxAccessBytes = 1ULL << 50;
    /** Quarantined records retained for diagnosis (ring buffer). */
    size_t quarantineCapacity = 256;
    /** A cycle admitting fewer records than this while quarantining
     *  at least one holds the layout instead of acting. */
    size_t minAdmittedPerCycle = 8;

    // --- Decision deadlines (SimClock seconds; 0 = disabled) ------
    double monitorBudgetSeconds = 0.0;
    double trainBudgetSeconds = 0.0;
    double proposeBudgetSeconds = 0.0;
    double migrateBudgetSeconds = 0.0;

    // --- Safe mode -------------------------------------------------
    /** Consecutive deadline-overrun cycles that trip safe mode. */
    size_t overrunTripThreshold = 3;
    /** Consecutive quarantine-flood cycles that trip safe mode. */
    size_t floodTripThreshold = 2;
    /** Consecutive diverged-retrain cycles that trip safe mode. */
    size_t divergenceTripThreshold = 2;
    /** A cycle is a flood when quarantined > admitted and at least
     *  this many records were quarantined. */
    size_t floodMinQuarantined = 16;
    /** Probe schedule: first probe after probeBackoffBase cycles,
     *  each failed probe multiplies the wait (cap probeBackoffMax). */
    uint64_t probeBackoffBase = 2;
    uint64_t probeBackoffMultiplier = 2;
    uint64_t probeBackoffMax = 32;
};

/** What one decision cycle looked like, fed to observeCycle(). */
struct CycleEvidence
{
    uint64_t cycle = 0;   ///< the cycle number just finished
    bool probe = false;   ///< this was a safe-mode probe cycle
    bool overrun = false; ///< any phase blew its deadline
    bool flood = false;   ///< quarantine flood (see floodMinQuarantined)
    bool diverged = false; ///< retraining diverged
    bool held = false;     ///< layout held for lack of admitted records
    bool trained = false;  ///< retraining ran to completion
};

/** observeCycle()'s verdict on the safe-mode state machine. */
enum class GuardrailTransition {
    None,    ///< no mode change
    Entered, ///< tripped into safe mode this cycle
    Exited,  ///< healthy probe exited safe mode
};

/**
 * The guardrail state shared by the whole pipeline. One instance per
 * Geomancy; agents validate through it, the cycle loop consults it.
 */
class Guardrails
{
  public:
    /**
     * @param config knobs (see GuardrailsConfig).
     * @param clock the shared sim clock (staleness/deadline source).
     */
    Guardrails(const GuardrailsConfig &config, const SimClock &clock);

    const GuardrailsConfig &config() const { return config_; }

    // --- Telemetry quarantine -------------------------------------

    /**
     * Validate one record; true admits it. @param prev the previous
     * record still pending in the same agent batch (null at a batch
     * boundary) for duplicate detection. Rejections are quarantined
     * and counted; no randomness is consumed either way.
     */
    bool admit(const PerfRecord &rec, const PerfRecord *prev);

    /** Reason a record would be rejected for, without side effects;
     *  admitted records return no value (false). */
    bool checkOnly(const PerfRecord &rec, const PerfRecord *prev,
                   QuarantineReason &reason) const;

    /** The quarantine ring, oldest first. */
    const std::deque<QuarantinedRecord> &quarantine() const
    {
        return quarantine_;
    }

    uint64_t admitted() const { return admitted_; }
    uint64_t quarantined() const { return quarantined_; }
    uint64_t quarantinedFor(QuarantineReason reason) const
    {
        return perReason_[static_cast<size_t>(reason)];
    }

    // --- Cycle accounting -----------------------------------------

    /** Reset the per-cycle admit/quarantine counts. */
    void beginCycle();

    size_t cycleAdmitted() const { return cycleAdmitted_; }
    size_t cycleQuarantined() const { return cycleQuarantined_; }

    /** True when this cycle must hold the layout: telemetry was
     *  quarantined and too little of it survived to trust a decision. */
    bool holdLayout() const;

    /** True when this cycle counts as a quarantine flood. */
    bool quarantineFlood() const;

    // --- Decision deadlines ---------------------------------------

    /**
     * Arm the watchdog for a named phase ("monitor", "train",
     * "propose", "migrate" — anything else has no budget). A zero
     * budget leaves the watchdog disarmed.
     */
    void beginPhase(const char *phase, double now);

    /** Final poll + disarm; remembers an overrun for the cycle. */
    void endPhase(double now);

    /** True when any phase overran since beginCycle(). */
    bool cycleOverrun() const { return cycleOverrun_; }

    util::Watchdog &watchdog() { return watchdog_; }

    // --- Safe mode -------------------------------------------------

    bool safeMode() const { return safeMode_; }

    /** True when a safe-mode probe cycle is due at `cycle`. */
    bool probeDue(uint64_t cycle) const;

    /**
     * Feed the finished cycle to the trip/recovery state machine.
     * Returns the transition so the caller can freeze or thaw.
     */
    GuardrailTransition observeCycle(const CycleEvidence &evidence);

    /**
     * Externally-forced safe-mode entry — the shard coordinator's
     * global fan-out: a substrate-level fault tripping one shard's
     * guardrails trips every co-tenant coherently, instead of each
     * shard discovering the fault on its own schedule. No-op (returns
     * false) when already in safe mode or when disabled; otherwise the
     * layout freezes exactly as for an organic trip, probes and all.
     */
    bool tripSafeMode(uint64_t cycle);

    uint64_t safeModeEntries() const { return safeModeEntries_; }
    uint64_t safeModeExits() const { return safeModeExits_; }
    uint64_t backoffLevel() const { return backoffLevel_; }
    uint64_t nextProbeCycle() const { return nextProbeCycle_; }

    // --- Checkpointing ---------------------------------------------

    /**
     * Serialize the safe-mode machine, streaks and lifetime counters
     * ("grd." keys). The quarantine ring is diagnostic and not
     * persisted. A crash in safe mode resumes in safe mode with the
     * same probe schedule.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    void quarantineRecord(const PerfRecord &rec, QuarantineReason reason);
    double phaseBudget(const char *phase) const;
    uint64_t probeBackoffCycles() const;
    void enterSafeMode(uint64_t cycle);
    void exitSafeMode(uint64_t cycle);

    GuardrailsConfig config_;
    const SimClock &clock_;

    std::deque<QuarantinedRecord> quarantine_;
    uint64_t admitted_ = 0;
    uint64_t quarantined_ = 0;
    uint64_t perReason_[kQuarantineReasonCount] = {};
    size_t cycleAdmitted_ = 0;
    size_t cycleQuarantined_ = 0;
    bool cycleOverrun_ = false;

    util::Watchdog watchdog_;

    bool safeMode_ = false;
    size_t overrunStreak_ = 0;
    size_t floodStreak_ = 0;
    size_t divergenceStreak_ = 0;
    uint64_t backoffLevel_ = 0;
    uint64_t nextProbeCycle_ = 0;
    uint64_t enteredCycle_ = 0;
    uint64_t safeModeEntries_ = 0;
    uint64_t safeModeExits_ = 0;
    uint64_t probeCycles_ = 0;
    uint64_t safeModeCycles_ = 0;
    uint64_t holds_ = 0;

    // Registry handles (resolved once in the constructor).
    util::Counter *admittedMetric_;
    util::Counter *quarantinedMetric_;
    util::Counter *reasonMetrics_[kQuarantineReasonCount];
    util::Counter *holdsMetric_;
    util::Counter *entriesMetric_;
    util::Counter *exitsMetric_;
    util::Counter *probesMetric_;
    util::Counter *safeCyclesMetric_;
    util::Gauge *safeModeGauge_;
    util::Gauge *backoffGauge_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_GUARDRAILS_HH
