/**
 * @file
 * Access-gap prediction (paper Section X, future work).
 *
 * The paper's planned extension is a second model that predicts, for
 * every file, the gaps between its accesses — periods long enough to
 * move the file without colliding with a client. Files that are
 * "always accessed and never released" are excluded from movement.
 *
 * This implementation estimates the next idle gap per file from the
 * ReplayDB history with an exponentially weighted average of observed
 * inter-access gaps (recent behavior dominates, matching how the DRL
 * engine itself is retrained on recent windows).
 */

#ifndef GEO_CORE_GAP_PREDICTOR_HH
#define GEO_CORE_GAP_PREDICTOR_HH

#include <optional>

#include "core/replay_db.hh"

namespace geo {
namespace core {

/** Gap-predictor configuration. */
struct GapPredictorConfig
{
    /** Accesses of a file consulted per prediction. */
    size_t historyPerFile = 64;
    /** EWMA smoothing factor over successive gaps (newest weighted). */
    double alpha = 0.3;
    /** Minimum number of observed gaps before predicting. */
    size_t minSamples = 4;
};

/** A predicted access gap for one file. */
struct GapPrediction
{
    double expectedGapSeconds = 0.0; ///< EWMA of inter-access gaps
    double shortestRecentGap = 0.0;  ///< pessimistic bound
    size_t samples = 0;              ///< gaps observed
};

/**
 * Predicts per-file idle gaps from ReplayDB history.
 */
class GapPredictor
{
  public:
    explicit GapPredictor(const ReplayDb &db,
                          const GapPredictorConfig &config = {});

    /**
     * Predict the next idle gap of `file`.
     *
     * @return nullopt when the file has too little history (fewer than
     *         minSamples gaps) to say anything.
     */
    std::optional<GapPrediction> predict(storage::FileId file) const;

    /**
     * Whether moving `file` is expected to fit into its next idle gap.
     *
     * @param transfer_seconds the expected move duration.
     * @param safety multiplier on the transfer time (>= 1).
     * @retval true also when the file has no history at all (a file
     *         nobody touches can always be moved).
     */
    bool fitsInGap(storage::FileId file, double transfer_seconds,
                   double safety = 1.5) const;

    const GapPredictorConfig &config() const { return config_; }

  private:
    const ReplayDb &db_;
    GapPredictorConfig config_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_GAP_PREDICTOR_HH
