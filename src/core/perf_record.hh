/**
 * @file
 * The performance record exchanged between the target system's agents
 * and Geomancy, and persisted in the ReplayDB.
 *
 * Fields mirror the paper's six live-experiment features (Section V-D):
 * bytes read/written, open/close timestamps (seconds + milliseconds),
 * the file's encoded ID and the storage-device ID — plus the measured
 * throughput that serves as the reinforcement reward.
 */

#ifndef GEO_CORE_PERF_RECORD_HH
#define GEO_CORE_PERF_RECORD_HH

#include <cstdint>
#include <vector>

#include "storage/system.hh"

namespace geo {
namespace core {

/** Number of live-experiment features (the paper's Z = 6). */
constexpr size_t kLiveFeatureCount = 6;

/**
 * One access performance sample.
 */
struct PerfRecord
{
    int64_t id = 0;          ///< ReplayDB row id (0 until stored)
    storage::FileId file = 0;
    storage::DeviceId device = 0;
    uint64_t rb = 0;         ///< bytes read
    uint64_t wb = 0;         ///< bytes written
    int64_t ots = 0;         ///< open timestamp seconds
    int64_t otms = 0;        ///< open timestamp milliseconds
    int64_t cts = 0;         ///< close timestamp seconds
    int64_t ctms = 0;        ///< close timestamp milliseconds
    double throughput = 0.0; ///< measured bytes/s (the reward)
    /** The access errored (fault injection): throughput is zero and
     *  the sample teaches the model that this device is dying. */
    bool failed = false;

    /**
     * The Z = 6 feature vector [rb, wb, ots, cts, fid, fsid], with the
     * millisecond parts folded into fractional timestamps.
     */
    std::vector<double> features() const;

    /** Same features with the device column replaced by `candidate`. */
    std::vector<double> featuresAt(storage::DeviceId candidate) const;

    /** Build a record from a simulator observation. */
    static PerfRecord fromObservation(
        const storage::AccessObservation &obs);
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_PERF_RECORD_HH
