/**
 * @file
 * Fleet-scale shard coordinator: multi-tenant Geomancy over a shared
 * substrate.
 *
 * One Geomancy instance per shard — each with its own DRL engine,
 * monitoring agents, ReplayDB and checkpoint namespace — partitions a
 * large file population (stable hash or explicit tenant assignment)
 * while every shard drives the *same* storage::StorageSystem. The
 * coordinator owns everything cross-shard:
 *
 *  - Admission control. Shards propose migrations independently, so
 *    without arbitration N shards can stampede one device with N full
 *    migration batches at once. The coordinator implements the control
 *    agents' MoveAdmission hook with per-device, per-round budgets
 *    (concurrent-move count and bytes in flight, charged to both
 *    endpoints); a denied fresh move is dropped (the next cycle
 *    re-proposes from newer telemetry), a denied retry stays queued.
 *  - Safe-mode fan-out. A substrate-level fault trips one shard's
 *    guardrails organically; the coordinator immediately trips every
 *    co-tenant shard too (Guardrails::tripSafeMode) and abandons their
 *    pending retries, so the whole fleet freezes coherently instead of
 *    each shard rediscovering the fault on its own schedule.
 *  - Aggregated views. Every shard's metrics carry a "shard<i>." name
 *    prefix (rendered as a shard="i" label by the Prometheus
 *    exporter), ledgers write one NDJSON file per shard, and the
 *    coordinator's own coord.* metrics summarize rounds, denials and
 *    per-device budget peaks.
 *
 * Scaling comes from the partition, not from threads: per-shard
 * telemetry windows, history thresholds and sanity windows are divided
 * by the shard count (constant fleet-wide budget), so each shard's
 * decision cycle touches ~1/N of the telemetry a monolithic optimizer
 * would — that is what bench/fig10_scale_out measures.
 *
 * Determinism: shards run in index order within a round, partitions
 * are stable hashes, per-shard seeds derive from the base seed and
 * the shard index, and admission charges in execution order. Same
 * seed, same round count => byte-identical ledgers and checkpoints
 * (pinned by tests/core/test_shard_coordinator.cc).
 */

#ifndef GEO_CORE_SHARD_COORDINATOR_HH
#define GEO_CORE_SHARD_COORDINATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/geomancy.hh"
#include "storage/system.hh"
#include "util/metrics.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {

/** Coordinator configuration. */
struct ShardCoordinatorConfig
{
    /** Shards (>= 1). One shard reproduces the monolithic optimizer
     *  exactly: no observe filter, no window scaling. */
    size_t shardCount = 1;

    /** Template for every shard's Geomancy; per-shard seed, observe
     *  filter and (optionally) telemetry windows are derived from it. */
    GeomancyConfig base;

    /** Divide windowPerDevice / minHistory / sanityWindow by the shard
     *  count (with floors) so the fleet-wide telemetry and training
     *  budget stays constant as shards are added. */
    bool scaleBudgets = true;

    /** Per-device migration budget per coordinator round: at most this
     *  many admitted moves may touch one device (as source or target).
     *  0 = unlimited. */
    size_t maxMovesPerDevicePerRound = 6;

    /** Per-device bytes-in-flight budget per round (charged to both
     *  endpoints). 0 = unlimited. */
    uint64_t maxBytesInFlightPerDevice = 0;

    /** Propagate one shard's organic safe-mode entry to all others. */
    bool safeModeFanOut = true;
};

/** One round's admission accounting for one device. */
struct DeviceRoundUsage
{
    size_t moves = 0;
    uint64_t bytes = 0;
};

/**
 * Multi-tenant scale-out: N Geomancy shards over one substrate.
 */
class ShardCoordinator : public MoveAdmission
{
  public:
    /**
     * Partition `files` over the shards by stable hash and build one
     * Geomancy per shard.
     *
     * @param system the shared target system (must outlive this).
     * @param files the whole managed population.
     * @param config coordinator knobs.
     * @param db_path ReplayDB base path; shard i opens
     *        "<db_path>.shard<i>" (":memory:" stays in memory).
     */
    ShardCoordinator(storage::StorageSystem &system,
                     const std::vector<storage::FileId> &files,
                     const ShardCoordinatorConfig &config,
                     const std::string &db_path = ":memory:");

    /**
     * Partition by explicit assignment (e.g. tenants): shard i manages
     * exactly `assignment[i]`. `assignment.size()` overrides
     * `config.shardCount`; no list may be empty.
     */
    ShardCoordinator(storage::StorageSystem &system,
                     const std::vector<std::vector<storage::FileId>>
                         &assignment,
                     const ShardCoordinatorConfig &config,
                     const std::string &db_path = ":memory:");

    /** Stable shard index of a file (splitmix64 % shardCount). */
    static size_t shardForFile(storage::FileId file, size_t shard_count);

    /**
     * One coordinator round: reset the admission budgets, then run one
     * decision cycle on every shard in index order. A shard entering
     * safe mode organically fans out to all co-tenants before the next
     * shard runs. Returns each shard's cycle report, by shard index.
     */
    std::vector<CycleReport> runRound();

    // --- MoveAdmission ---------------------------------------------
    /** Charge-on-admit per-device budgets; deterministic. */
    bool admitMove(storage::DeviceId from, storage::DeviceId to,
                   uint64_t bytes) override;

    size_t shardCount() const { return shards_.size(); }
    Geomancy &shard(size_t i) { return *shards_[i]; }
    const std::vector<storage::FileId> &shardFiles(size_t i) const
    {
        return shards_[i]->managedFiles();
    }

    /** Rounds completed. */
    uint64_t roundsRun() const { return rounds_; }
    /** Admission denials, lifetime. */
    uint64_t movesDenied() const { return denied_; }
    /** Safe-mode fan-out propagations (co-tenant trips), lifetime. */
    uint64_t fanOuts() const { return fanOuts_; }
    /** Highest per-device admitted-move count seen in any round. */
    size_t peakDeviceMoves() const { return peakDeviceMoves_; }
    /** Highest per-device admitted-byte load seen in any round. */
    uint64_t peakDeviceBytes() const { return peakDeviceBytes_; }
    /** This round's usage for one device (testing/inspection). */
    const DeviceRoundUsage &roundUsage(storage::DeviceId device) const
    {
        return usage_[device];
    }

    /**
     * Attach one decision ledger per shard: shard i writes NDJSON to
     * "<base_path>.shard<i>".
     */
    void attachLedgers(const std::string &base_path);

    /** Ledger path of shard i under `base_path` (for cleanup). */
    static std::string ledgerPath(const std::string &base_path,
                                  size_t shard);
    /** ReplayDB path of shard i under `db_path`. */
    static std::string dbPath(const std::string &db_path, size_t shard);

    /**
     * Serialize every shard (in index order, each a full Geomancy cut
     * including the shared system — idempotent to reload N times) plus
     * the coordinator's own counters, under "coord." keys with a
     * per-shard "coord.shard" marker separating the namespaces.
     */
    void saveState(util::StateWriter &w);
    void loadState(util::StateReader &r);

  private:
    void build(const std::vector<std::vector<storage::FileId>>
                   &assignment,
               const std::string &db_path);
    void beginRound();
    void fanOutSafeMode(size_t origin);

    storage::StorageSystem &system_;
    ShardCoordinatorConfig config_;
    std::vector<std::unique_ptr<Geomancy>> shards_;
    std::vector<bool> wasSafe_; ///< per-shard safe-mode edge detector
    std::vector<DeviceRoundUsage> usage_; ///< this round, by device id

    uint64_t rounds_ = 0;
    uint64_t denied_ = 0;
    uint64_t fanOuts_ = 0;
    size_t peakDeviceMoves_ = 0;
    uint64_t peakDeviceBytes_ = 0;

    // Registry handles (unscoped coord.* names).
    util::Counter *roundsMetric_;
    util::Counter *deniedMetric_;
    util::Counter *admittedMetric_;
    util::Counter *fanOutsMetric_;
    util::Gauge *peakMovesGauge_;
    util::Gauge *peakBytesGauge_;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_SHARD_COORDINATOR_HH
