#include "core/experiment.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/smoothing.hh"
#include "util/stats.hh"

namespace geo {
namespace core {

std::vector<double>
ExperimentResult::smoothedSeries(size_t window) const
{
    return movingAverage(throughputSeries, window);
}

std::vector<double>
ExperimentResult::bucketedSeries(size_t bucket) const
{
    if (bucket == 0)
        panic("bucketedSeries: bucket must be >= 1");
    std::vector<double> out;
    for (size_t begin = 0; begin < throughputSeries.size();
         begin += bucket) {
        size_t end = std::min(begin + bucket, throughputSeries.size());
        double sum = std::accumulate(throughputSeries.begin() +
                                         static_cast<long>(begin),
                                     throughputSeries.begin() +
                                         static_cast<long>(end),
                                     0.0);
        out.push_back(sum / static_cast<double>(end - begin));
    }
    return out;
}

ExperimentRunner::ExperimentRunner(storage::StorageSystem &system,
                                   workload::Belle2Workload &workload,
                                   PlacementPolicy &policy,
                                   const ExperimentConfig &config)
    : system_(system), workload_(workload), policy_(policy),
      config_(config), rng_(config.seed)
{
    if (config_.cadence == 0)
        panic("ExperimentRunner: cadence must be >= 1");
}

void
ExperimentRunner::setRunHook(std::function<void(size_t)> hook)
{
    runHook_ = std::move(hook);
}

void
ExperimentRunner::setCheckpointHook(std::function<void(size_t)> hook)
{
    checkpointHook_ = std::move(hook);
}

void
ExperimentRunner::recordUsage(
    const std::vector<storage::AccessObservation> &observations)
{
    for (const storage::AccessObservation &obs : observations) {
        FileUsage &usage = usage_[obs.file];
        ++usage.accessCount;
        usage.lastAccessIndex = ++accessCounter_;
        usage.lastAccessTime = obs.endTime;
    }
}

std::vector<storage::DeviceId>
ExperimentRunner::rankDevices() const
{
    // Measured mean throughput where available ("the current total
    // average throughput at each storage device"), instantaneous
    // effective bandwidth as a cold-start fallback.
    std::vector<storage::DeviceId> ids = system_.deviceIds();
    double now = system_.clock().now();
    auto speed = [&](storage::DeviceId id) {
        const storage::StorageDevice &dev = system_.device(id);
        if (dev.accessCount() >= 8)
            return dev.throughputStats().mean();
        return dev.effectiveBandwidth(true, now);
    };
    std::sort(ids.begin(), ids.end(),
              [&](storage::DeviceId a, storage::DeviceId b) {
                  return speed(a) > speed(b);
              });
    return ids;
}

bool
ExperimentRunner::finished() const
{
    return warmupDone_ >= config_.warmupRuns && placedInitial_ &&
           measuredDone_ >= config_.measuredRuns;
}

bool
ExperimentRunner::step()
{
    if (finished())
        return false;

    // Warmup: collect history with the initial layout untouched.
    if (warmupDone_ < config_.warmupRuns) {
        recordUsage(workload_.executeRun());
        ++warmupDone_;
        return !finished();
    }

    // Static policies place once, at the start of measurement.
    if (!placedInitial_) {
        result_.policyName = policy_.name();
        result_.accessesPerDevice.assign(system_.deviceCount(), 0);
        movesBefore_ = system_.migrationCount();
        bytesBefore_ = system_.migratedBytes();
        std::vector<storage::DeviceId> ranked = rankDevices();
        PolicyContext context{system_, workload_.files(), usage_, ranked,
                              rng_};
        size_t moved = policy_.rebalance(context);
        if (moved > 0)
            result_.moveEvents.push_back({0, moved});
        placedInitial_ = true;
        return !finished();
    }

    size_t r = measuredDone_;
    std::vector<storage::AccessObservation> observations =
        workload_.executeRun();
    recordUsage(observations);
    for (const storage::AccessObservation &obs : observations) {
        result_.throughputSeries.push_back(obs.throughput);
        tpStats_.add(obs.throughput);
        ++result_.accessesPerDevice[obs.device];
    }

    if (runHook_)
        runHook_(r);

    bool last_run = (r + 1 == config_.measuredRuns);
    if (policy_.isDynamic() && !last_run &&
        (r + 1) % config_.cadence == 0) {
        std::vector<storage::DeviceId> ranked = rankDevices();
        PolicyContext context{system_, workload_.files(), usage_,
                              ranked, rng_};
        size_t moved = policy_.rebalance(context);
        if (moved > 0) {
            result_.moveEvents.push_back(
                {result_.throughputSeries.size(), moved});
        }
    }
    ++measuredDone_;
    // The cut point: the run (and any rebalance it triggered) is fully
    // applied and nothing of the next run has started.
    if (checkpointHook_)
        checkpointHook_(measuredDone_);
    return !finished();
}

ExperimentResult
ExperimentRunner::finish()
{
    result_.totalAccesses = result_.throughputSeries.size();
    result_.averageThroughput = tpStats_.mean();
    result_.filesMoved = system_.migrationCount() - movesBefore_;
    result_.bytesMoved = system_.migratedBytes() - bytesBefore_;
    return result_;
}

ExperimentResult
ExperimentRunner::run()
{
    while (step()) {
    }
    return finish();
}

void
ExperimentRunner::saveState(util::StateWriter &w) const
{
    w.rng("exp.rng", rng_);
    w.u64("exp.warmup_done", warmupDone_);
    w.u64("exp.measured_done", measuredDone_);
    w.boolean("exp.placed", placedInitial_);
    w.u64("exp.access_counter", accessCounter_);
    w.u64("exp.moves_before", movesBefore_);
    w.u64("exp.bytes_before", bytesBefore_);
    w.stat("exp.tp_stats", tpStats_);
    w.f64Vec("exp.series", result_.throughputSeries);
    std::vector<double> per_device(result_.accessesPerDevice.size());
    for (size_t i = 0; i < per_device.size(); ++i)
        per_device[i] = static_cast<double>(result_.accessesPerDevice[i]);
    w.f64Vec("exp.per_device", per_device);
    w.u64("exp.events", result_.moveEvents.size());
    for (const MoveEvent &ev : result_.moveEvents) {
        w.u64("ev.access", ev.accessNumber);
        w.u64("ev.moved", ev.filesMoved);
    }
    w.u64("exp.usage", usage_.size());
    for (const auto &[file, use] : usage_) {
        w.u64("use.file", file);
        w.u64("use.count", use.accessCount);
        w.u64("use.last_index", use.lastAccessIndex);
        w.f64("use.last_time", use.lastAccessTime);
    }
}

void
ExperimentRunner::loadState(util::StateReader &r)
{
    Rng::State rng = r.rng("exp.rng");
    uint64_t warmup = r.u64("exp.warmup_done");
    uint64_t measured = r.u64("exp.measured_done");
    bool placed = r.boolean("exp.placed");
    uint64_t access_counter = r.u64("exp.access_counter");
    uint64_t moves_before = r.u64("exp.moves_before");
    uint64_t bytes_before = r.u64("exp.bytes_before");
    StatAccumulator::State tp = r.stat("exp.tp_stats");
    std::vector<double> series = r.f64Vec("exp.series");
    std::vector<double> per_device = r.f64Vec("exp.per_device");
    std::vector<MoveEvent> events(r.u64("exp.events"));
    for (MoveEvent &ev : events) {
        ev.accessNumber = r.u64("ev.access");
        ev.filesMoved = r.u64("ev.moved");
    }
    std::map<storage::FileId, FileUsage> usage;
    uint64_t usage_count = r.u64("exp.usage");
    for (uint64_t i = 0; i < usage_count && r.ok(); ++i) {
        storage::FileId file =
            static_cast<storage::FileId>(r.u64("use.file"));
        FileUsage use;
        use.accessCount = r.u64("use.count");
        use.lastAccessIndex = r.u64("use.last_index");
        use.lastAccessTime = r.f64("use.last_time");
        usage[file] = use;
    }
    if (!r.ok())
        return;
    rng_.setState(rng);
    warmupDone_ = warmup;
    measuredDone_ = measured;
    placedInitial_ = placed;
    accessCounter_ = access_counter;
    movesBefore_ = moves_before;
    bytesBefore_ = bytes_before;
    tpStats_.restore(tp);
    result_ = ExperimentResult{};
    result_.policyName = policy_.name();
    result_.throughputSeries = std::move(series);
    result_.accessesPerDevice.assign(per_device.size(), 0);
    for (size_t i = 0; i < per_device.size(); ++i)
        result_.accessesPerDevice[i] =
            static_cast<uint64_t>(per_device[i]);
    result_.moveEvents = std::move(events);
    usage_ = std::move(usage);
}

} // namespace core
} // namespace geo
