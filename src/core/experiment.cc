#include "core/experiment.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/smoothing.hh"
#include "util/stats.hh"

namespace geo {
namespace core {

std::vector<double>
ExperimentResult::smoothedSeries(size_t window) const
{
    return movingAverage(throughputSeries, window);
}

std::vector<double>
ExperimentResult::bucketedSeries(size_t bucket) const
{
    if (bucket == 0)
        panic("bucketedSeries: bucket must be >= 1");
    std::vector<double> out;
    for (size_t begin = 0; begin < throughputSeries.size();
         begin += bucket) {
        size_t end = std::min(begin + bucket, throughputSeries.size());
        double sum = std::accumulate(throughputSeries.begin() +
                                         static_cast<long>(begin),
                                     throughputSeries.begin() +
                                         static_cast<long>(end),
                                     0.0);
        out.push_back(sum / static_cast<double>(end - begin));
    }
    return out;
}

ExperimentRunner::ExperimentRunner(storage::StorageSystem &system,
                                   workload::Belle2Workload &workload,
                                   PlacementPolicy &policy,
                                   const ExperimentConfig &config)
    : system_(system), workload_(workload), policy_(policy),
      config_(config), rng_(config.seed)
{
    if (config_.cadence == 0)
        panic("ExperimentRunner: cadence must be >= 1");
}

void
ExperimentRunner::setRunHook(std::function<void(size_t)> hook)
{
    runHook_ = std::move(hook);
}

void
ExperimentRunner::recordUsage(
    const std::vector<storage::AccessObservation> &observations)
{
    for (const storage::AccessObservation &obs : observations) {
        FileUsage &usage = usage_[obs.file];
        ++usage.accessCount;
        usage.lastAccessIndex = ++accessCounter_;
        usage.lastAccessTime = obs.endTime;
    }
}

std::vector<storage::DeviceId>
ExperimentRunner::rankDevices() const
{
    // Measured mean throughput where available ("the current total
    // average throughput at each storage device"), instantaneous
    // effective bandwidth as a cold-start fallback.
    std::vector<storage::DeviceId> ids = system_.deviceIds();
    double now = system_.clock().now();
    auto speed = [&](storage::DeviceId id) {
        const storage::StorageDevice &dev = system_.device(id);
        if (dev.accessCount() >= 8)
            return dev.throughputStats().mean();
        return dev.effectiveBandwidth(true, now);
    };
    std::sort(ids.begin(), ids.end(),
              [&](storage::DeviceId a, storage::DeviceId b) {
                  return speed(a) > speed(b);
              });
    return ids;
}

ExperimentResult
ExperimentRunner::run()
{
    ExperimentResult result;
    result.policyName = policy_.name();
    result.accessesPerDevice.assign(system_.deviceCount(), 0);

    // Warmup: collect history with the initial layout untouched.
    for (size_t r = 0; r < config_.warmupRuns; ++r)
        recordUsage(workload_.executeRun());

    // Static policies place once, at the start of measurement.
    uint64_t moves_before = system_.migrationCount();
    uint64_t bytes_before = system_.migratedBytes();
    {
        std::vector<storage::DeviceId> ranked = rankDevices();
        PolicyContext context{system_, workload_.files(), usage_, ranked,
                              rng_};
        size_t moved = policy_.rebalance(context);
        if (moved > 0)
            result.moveEvents.push_back({0, moved});
    }

    StatAccumulator tp_stats;
    for (size_t r = 0; r < config_.measuredRuns; ++r) {
        std::vector<storage::AccessObservation> observations =
            workload_.executeRun();
        recordUsage(observations);
        for (const storage::AccessObservation &obs : observations) {
            result.throughputSeries.push_back(obs.throughput);
            tp_stats.add(obs.throughput);
            ++result.accessesPerDevice[obs.device];
        }

        if (runHook_)
            runHook_(r);

        bool last_run = (r + 1 == config_.measuredRuns);
        if (policy_.isDynamic() && !last_run &&
            (r + 1) % config_.cadence == 0) {
            std::vector<storage::DeviceId> ranked = rankDevices();
            PolicyContext context{system_, workload_.files(), usage_,
                                  ranked, rng_};
            size_t moved = policy_.rebalance(context);
            if (moved > 0) {
                result.moveEvents.push_back(
                    {result.throughputSeries.size(), moved});
            }
        }
    }

    result.totalAccesses = result.throughputSeries.size();
    result.averageThroughput = tp_stats.mean();
    result.filesMoved = system_.migrationCount() - moves_before;
    result.bytesMoved = system_.migratedBytes() - bytes_before;
    return result;
}

} // namespace core
} // namespace geo
