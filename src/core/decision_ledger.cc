#include "core/decision_ledger.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/fs_atomic.hh"
#include "util/logging.hh"

namespace geo {
namespace core {

namespace {

/** Shortest decimal form that round-trips the exact double: ledger
 *  numbers must reproduce the in-process values bit-for-bit when a
 *  tool reads them back (the Table 3 consistency check depends on it). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no Inf/NaN; should not happen upstream
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

const char *
jsonBool(bool v)
{
    return v ? "true" : "false";
}

} // namespace

DecisionLedger::DecisionLedger(std::string path)
    : path_(std::move(path))
{
    content_ = "{\"t\":\"ledger\",\"schema\":\"geo-ledger-1\"}\n";
}

void
DecisionLedger::appendRow(const std::string &body)
{
    ++seq_;
    pendingText_ += "{\"t\":" + body + ",\"seq\":" +
                    std::to_string(seq_) + "}\n";
}

void
DecisionLedger::flush()
{
    // Steady state appends only the rows added since the last flush:
    // the on-disk prefix is immutable history, and rewriting it every
    // cycle would make the per-cycle cost grow with the run.  The
    // append is refused (and we fall back to a full atomic rewrite)
    // whenever the disk file is not byte-for-byte our flushed prefix —
    // first flush, post-restore truncation, external interference.
    if (flushedBytes_ == content_.size() && flushedBytes_ > 0)
        return;
    if (flushedBytes_ > 0 && flushedBytes_ < content_.size() &&
        util::appendFileDurable(path_, content_.data() + flushedBytes_,
                                content_.size() - flushedBytes_,
                                flushedBytes_)) {
        flushedBytes_ = content_.size();
        return;
    }
    if (!util::writeFileAtomic(path_, content_)) {
        warn("DecisionLedger: cannot flush %s", path_.c_str());
        flushedBytes_ = 0; // disk state unknown: rewrite next time
        return;
    }
    flushedBytes_ = content_.size();
}

util::Gauge &
DecisionLedger::deviceGauge(storage::DeviceId device, const char *suffix)
{
    return util::MetricRegistry::global().gauge(
        strprintf("ledger.dev%llu.%s",
                  static_cast<unsigned long long>(device), suffix));
}

void
DecisionLedger::beginCycle(uint64_t cycle, double sim, bool safe_mode,
                           bool probe)
{
    cycle_ = cycle;
    sim_ = sim;
    inCycle_ = true;
    appendRow("\"cycle_start\",\"cycle\":" + std::to_string(cycle) +
              ",\"sim\":" + jsonNumber(sim) +
              ",\"safe_mode\":" + jsonBool(safe_mode) +
              ",\"probe\":" + jsonBool(probe));
}

void
DecisionLedger::recordPhase(const char *phase, double seconds,
                            double budget)
{
    if (!inCycle_)
        return;
    double frac = budget > 0.0 ? seconds / budget : 0.0;
    appendRow("\"phase\",\"cycle\":" + std::to_string(cycle_) +
              ",\"name\":\"" + phase +
              "\",\"seconds\":" + jsonNumber(seconds) +
              ",\"budget\":" + jsonNumber(budget) +
              ",\"frac\":" + jsonNumber(frac));
}

void
DecisionLedger::recordCandidate(storage::FileId file,
                                storage::DeviceId from,
                                const std::vector<double> &features,
                                const std::vector<LedgerScore> &scores,
                                const std::string &verdict,
                                storage::DeviceId to, double gain,
                                bool random, bool moved)
{
    if (!inCycle_)
        return;
    std::string body = "\"candidate\",\"cycle\":" +
                       std::to_string(cycle_) +
                       ",\"file\":" + std::to_string(file) +
                       ",\"from\":" + std::to_string(from) +
                       ",\"features\":[";
    for (size_t i = 0; i < features.size(); ++i) {
        if (i)
            body += ",";
        body += jsonNumber(features[i]);
    }
    body += "],\"scores\":[";
    for (size_t i = 0; i < scores.size(); ++i) {
        if (i)
            body += ",";
        body += "{\"device\":" + std::to_string(scores[i].device) +
                ",\"predicted\":" + jsonNumber(scores[i].predicted) +
                ",\"rank\":" + std::to_string(scores[i].rank) + "}";
    }
    body += "],\"verdict\":\"" + verdict + "\"";
    if (moved) {
        body += ",\"to\":" + std::to_string(to) +
                ",\"gain\":" + jsonNumber(gain) +
                ",\"random\":" + jsonBool(random);
    }
    appendRow(body);
}

void
DecisionLedger::recordExploration(storage::FileId file,
                                  storage::DeviceId from,
                                  storage::DeviceId to)
{
    if (!inCycle_)
        return;
    appendRow("\"candidate\",\"cycle\":" + std::to_string(cycle_) +
              ",\"file\":" + std::to_string(file) +
              ",\"from\":" + std::to_string(from) +
              ",\"verdict\":\"exploration\",\"to\":" +
              std::to_string(to) + ",\"random\":true");
}

void
DecisionLedger::recordPrediction(
    int64_t watermark,
    const std::vector<std::pair<storage::DeviceId,
                                std::pair<double, uint64_t>>> &by_device)
{
    if (!inCycle_ || by_device.empty())
        return;
    std::string body = "\"prediction\",\"cycle\":" +
                       std::to_string(cycle_) +
                       ",\"watermark\":" + std::to_string(watermark) +
                       ",\"devices\":[";
    for (size_t i = 0; i < by_device.size(); ++i) {
        if (i)
            body += ",";
        body += "{\"device\":" + std::to_string(by_device[i].first) +
                ",\"predicted\":" +
                jsonNumber(by_device[i].second.first) +
                ",\"candidates\":" +
                std::to_string(by_device[i].second.second) + "}";
    }
    body += "]";
    appendRow(body);

    PendingPrediction pending;
    pending.cycle = cycle_;
    pending.watermark = watermark;
    pending.byDevice = by_device;
    pending_.push_back(std::move(pending));
}

void
DecisionLedger::resolveRealized(ReplayDb &db)
{
    if (!inCycle_)
        return;
    while (!pending_.empty()) {
        const PendingPrediction &p = pending_.front();
        std::vector<std::tuple<storage::DeviceId, double, int64_t>>
            realized = db.deviceThroughputSince(p.watermark);
        for (const auto &[device, mean, samples] : realized) {
            double predicted = 0.0;
            bool have = false;
            for (const auto &[dev, stat] : p.byDevice) {
                if (dev == device) {
                    predicted = stat.first;
                    have = true;
                    break;
                }
            }
            if (!have || samples <= 0 || mean <= 0.0)
                continue; // nothing predicted / nothing measured
            double signed_err = (predicted - mean) / mean;
            double abs_err = std::fabs(signed_err);
            appendRow("\"realized\",\"cycle\":" +
                      std::to_string(cycle_) + ",\"predicted_cycle\":" +
                      std::to_string(p.cycle) + ",\"device\":" +
                      std::to_string(device) + ",\"predicted\":" +
                      jsonNumber(predicted) + ",\"realized\":" +
                      jsonNumber(mean) + ",\"samples\":" +
                      std::to_string(samples) + ",\"signed_err\":" +
                      jsonNumber(signed_err) + ",\"abs_err\":" +
                      jsonNumber(abs_err));
            MountErrorStat &stat = mountErrors_[device];
            ++stat.samples;
            stat.sumAbs += abs_err;
            stat.sumSigned += signed_err;
            deviceGauge(device, "abs_err")
                .set(stat.sumAbs / static_cast<double>(stat.samples));
            deviceGauge(device, "signed_err")
                .set(stat.sumSigned / static_cast<double>(stat.samples));
            deviceGauge(device, "samples")
                .set(static_cast<double>(stat.samples));
        }
        pending_.pop_front();
    }
}

void
DecisionLedger::recordOutcome(const AppliedMove &move)
{
    if (!inCycle_)
        return;
    appendRow("\"outcome\",\"cycle\":" + std::to_string(cycle_) +
              ",\"file\":" + std::to_string(move.file) +
              ",\"from\":" + std::to_string(move.from) +
              ",\"to\":" + std::to_string(move.to) +
              ",\"outcome\":\"" + attemptOutcomeName(move.outcome) +
              "\",\"reason\":\"" + storage::moveFailName(move.reason) +
              "\",\"attempt\":" + std::to_string(move.attempt));
}

void
DecisionLedger::recordTransition(const char *event)
{
    if (!inCycle_)
        return;
    appendRow("\"transition\",\"cycle\":" + std::to_string(cycle_) +
              ",\"event\":\"" + std::string(event) + "\"");
}

void
DecisionLedger::endCycle(const LedgerCycleSummary &summary)
{
    if (!inCycle_)
        return;
    appendRow(
        "\"cycle\",\"cycle\":" + std::to_string(cycle_) +
        ",\"acted\":" + jsonBool(summary.acted) +
        ",\"explored\":" + jsonBool(summary.explored) +
        ",\"skipped\":" + jsonBool(summary.skipped) +
        ",\"held\":" + jsonBool(summary.held) +
        ",\"safe_mode\":" + jsonBool(summary.safeMode) +
        ",\"probe\":" + jsonBool(summary.probe) +
        ",\"trained\":" + jsonBool(summary.trained) +
        ",\"diverged\":" + jsonBool(summary.diverged) +
        ",\"cancelled\":" + jsonBool(summary.cancelled) +
        ",\"mae_frac\":" + jsonNumber(summary.maeFraction) +
        ",\"proposed\":" + std::to_string(summary.proposed) +
        ",\"applied\":" + std::to_string(summary.applied) +
        ",\"failed\":" + std::to_string(summary.failed) +
        ",\"abandoned\":" + std::to_string(summary.abandoned) +
        ",\"cancelled_moves\":" +
        std::to_string(summary.cancelledMoves) +
        ",\"admitted\":" + std::to_string(summary.admitted) +
        ",\"quarantined\":" + std::to_string(summary.quarantined) +
        ",\"overrun\":" + jsonBool(summary.overrun));
    content_ += pendingText_;
    pendingText_.clear();
    inCycle_ = false;
    flush();
}

void
DecisionLedger::saveState(util::StateWriter &w) const
{
    // The open cycle's rows are never part of a cut: checkpoints are
    // written after endCycle() spliced them in.
    w.u64("ldg.seq", seq_);
    w.u64("ldg.bytes", static_cast<uint64_t>(content_.size()));
    w.u64("ldg.pending", static_cast<uint64_t>(pending_.size()));
    for (const PendingPrediction &p : pending_) {
        w.u64("ldg.p.cycle", p.cycle);
        w.i64("ldg.p.watermark", p.watermark);
        w.u64("ldg.p.devices", static_cast<uint64_t>(p.byDevice.size()));
        for (const auto &[device, stat] : p.byDevice) {
            w.u64("ldg.p.device", device);
            w.f64("ldg.p.predicted", stat.first);
            w.u64("ldg.p.candidates", stat.second);
        }
    }
    w.u64("ldg.mounts", static_cast<uint64_t>(mountErrors_.size()));
    for (const auto &[device, stat] : mountErrors_) {
        w.u64("ldg.m.device", device);
        w.u64("ldg.m.samples", stat.samples);
        w.f64("ldg.m.sum_abs", stat.sumAbs);
        w.f64("ldg.m.sum_signed", stat.sumSigned);
    }
    w.u64("ldg.cum_admitted", cumulative_[0]);
    w.u64("ldg.cum_quarantined", cumulative_[1]);
}

uint64_t
DecisionLedger::advanceCumulative(int slot, uint64_t cumulative)
{
    uint64_t delta =
        cumulative >= cumulative_[slot] ? cumulative - cumulative_[slot]
                                        : 0;
    cumulative_[slot] = cumulative;
    return delta;
}

void
DecisionLedger::loadState(util::StateReader &r)
{
    uint64_t seq = r.u64("ldg.seq");
    uint64_t bytes = r.u64("ldg.bytes");
    uint64_t pending_count = r.u64("ldg.pending");
    std::deque<PendingPrediction> pending;
    for (uint64_t i = 0; r.ok() && i < pending_count; ++i) {
        PendingPrediction p;
        p.cycle = r.u64("ldg.p.cycle");
        p.watermark = r.i64("ldg.p.watermark");
        uint64_t devices = r.u64("ldg.p.devices");
        for (uint64_t d = 0; r.ok() && d < devices; ++d) {
            storage::DeviceId device =
                static_cast<storage::DeviceId>(r.u64("ldg.p.device"));
            double predicted = r.f64("ldg.p.predicted");
            uint64_t candidates = r.u64("ldg.p.candidates");
            p.byDevice.emplace_back(
                device, std::make_pair(predicted, candidates));
        }
        pending.push_back(std::move(p));
    }
    uint64_t mounts = r.u64("ldg.mounts");
    std::map<storage::DeviceId, MountErrorStat> errors;
    for (uint64_t i = 0; r.ok() && i < mounts; ++i) {
        storage::DeviceId device =
            static_cast<storage::DeviceId>(r.u64("ldg.m.device"));
        MountErrorStat stat;
        stat.samples = r.u64("ldg.m.samples");
        stat.sumAbs = r.f64("ldg.m.sum_abs");
        stat.sumSigned = r.f64("ldg.m.sum_signed");
        errors[device] = stat;
    }
    uint64_t cum_admitted = r.u64("ldg.cum_admitted");
    uint64_t cum_quarantined = r.u64("ldg.cum_quarantined");
    if (!r.ok())
        return;

    cumulative_[0] = cum_admitted;
    cumulative_[1] = cum_quarantined;
    seq_ = seq;
    pending_ = std::move(pending);
    mountErrors_ = std::move(errors);
    pendingText_.clear();
    inCycle_ = false;
    for (const auto &[device, stat] : mountErrors_) {
        if (stat.samples == 0)
            continue;
        deviceGauge(device, "abs_err")
            .set(stat.sumAbs / static_cast<double>(stat.samples));
        deviceGauge(device, "signed_err")
            .set(stat.sumSigned / static_cast<double>(stat.samples));
        deviceGauge(device, "samples")
            .set(static_cast<double>(stat.samples));
    }

    // Truncate the ledger back to the cut. The on-disk file is always
    // at least `bytes` long (flushes precede checkpoints); a shorter
    // or missing file means someone removed it underneath us — start
    // over from the schema header rather than fabricate history.
    std::string disk;
    if (util::readFileAll(path_, disk) && disk.size() >= bytes) {
        content_ = disk.substr(0, bytes);
    } else {
        warn("DecisionLedger: %s shorter than the checkpoint cursor "
             "(%llu bytes); restarting the ledger",
             path_.c_str(), static_cast<unsigned long long>(bytes));
        content_ = "{\"t\":\"ledger\",\"schema\":\"geo-ledger-1\"}\n";
    }
    // The disk file may hold rows past the cut (crash after flush,
    // rewind before checkpoint): force a full rewrite so it shrinks
    // back to exactly the restored prefix.
    flushedBytes_ = 0;
    flush();
}

} // namespace core
} // namespace geo
