#include "core/perf_record.hh"

#include "util/sim_clock.hh"

namespace geo {
namespace core {

std::vector<double>
PerfRecord::features() const
{
    return featuresAt(device);
}

std::vector<double>
PerfRecord::featuresAt(storage::DeviceId candidate) const
{
    return {
        static_cast<double>(rb),
        static_cast<double>(wb),
        static_cast<double>(ots) + static_cast<double>(otms) / 1000.0,
        static_cast<double>(cts) + static_cast<double>(ctms) / 1000.0,
        static_cast<double>(file),
        static_cast<double>(candidate),
    };
}

PerfRecord
PerfRecord::fromObservation(const storage::AccessObservation &obs)
{
    PerfRecord rec;
    rec.file = obs.file;
    rec.device = obs.device;
    rec.rb = obs.readBytes;
    rec.wb = obs.writtenBytes;
    SplitTime open_ts = splitSeconds(obs.startTime);
    SplitTime close_ts = splitSeconds(obs.endTime);
    rec.ots = open_ts.seconds;
    rec.otms = open_ts.millis;
    rec.cts = close_ts.seconds;
    rec.ctms = close_ts.millis;
    rec.throughput = obs.throughput;
    rec.failed = obs.failed;
    return rec;
}

} // namespace core
} // namespace geo
