#include "core/control_agent.hh"

namespace geo {
namespace core {

ControlAgent::ControlAgent(storage::StorageSystem &system, ReplayDb *db)
    : system_(system), db_(db)
{
}

MoveSummary
ControlAgent::apply(const std::vector<MoveRequest> &moves)
{
    MoveSummary summary;
    summary.requested = moves.size();
    for (const MoveRequest &req : moves) {
        storage::MoveResult result = system_.moveFile(req.file, req.target);
        if (!result.moved)
            continue;
        ++summary.applied;
        summary.bytesMoved += result.bytes;
        summary.transferSeconds += result.seconds;
        ++totalMoves_;
        totalBytes_ += result.bytes;
        if (db_) {
            MovementRecord rec;
            rec.timestamp = system_.clock().now();
            rec.file = req.file;
            rec.fromDevice = result.from;
            rec.toDevice = result.to;
            rec.bytes = result.bytes;
            rec.seconds = result.seconds;
            db_->insertMovement(rec);
        }
    }
    return summary;
}

} // namespace core
} // namespace geo
