#include "core/control_agent.hh"

#include <algorithm>

#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/trace_event.hh"

namespace geo {
namespace core {

ControlAgent::ControlAgent(storage::StorageSystem &system, ReplayDb *db,
                           ControlAgentConfig config)
    : system_(system), db_(db), config_(config), rng_(config.seed)
{
    auto &registry = util::MetricRegistry::global();
    requestedMetric_ = &registry.counter("control.moves_requested");
    appliedMetric_ = &registry.counter("control.moves_applied");
    failedMetric_ = &registry.counter("control.moves_failed");
    skippedMetric_ = &registry.counter("control.moves_skipped");
    requeuedMetric_ = &registry.counter("control.moves_requeued");
    abandonedMetric_ = &registry.counter("control.moves_abandoned");
    cancelledMetric_ = &registry.counter("control.moves_cancelled");
    deferredMetric_ = &registry.counter("control.moves_deferred");
    supersededMetric_ = &registry.counter("control.moves_superseded");
    retriesMetric_ = &registry.counter("control.retries");
    bytesMetric_ = &registry.counter("control.bytes_moved");
    backoffMetric_ = &registry.histogram("control.backoff_s");
    transferSecondsMetric_ = &registry.histogram("control.transfer_s");
}

double
ControlAgent::backoffDelay(size_t attempts)
{
    // attempts = tries already made, so the first retry (attempts == 1)
    // waits backoffBase seconds.
    double delay = config_.retry.backoffBase;
    for (size_t i = 1; i < attempts; ++i)
        delay *= config_.retry.backoffMultiplier;
    double jitter = config_.retry.jitterFraction;
    if (jitter > 0.0)
        delay *= 1.0 + rng_.uniform(-jitter, jitter);
    return std::max(delay, 0.0);
}

void
ControlAgent::logAttempt(const AppliedMove &fate, uint64_t bytes_copied)
{
    if (!db_)
        return;
    MoveAttemptRecord rec;
    rec.timestamp = system_.clock().now();
    rec.file = fate.file;
    rec.fromDevice = fate.from;
    rec.toDevice = fate.to;
    rec.attempt = static_cast<int>(fate.attempt);
    rec.outcome = fate.outcome;
    rec.reason = fate.reason;
    rec.bytesCopied = bytes_copied;
    db_->insertMoveAttempt(rec);
}

void
ControlAgent::attemptMove(const MoveRequest &req, size_t prior_attempts,
                          double first_attempt, MoveSummary &summary)
{
    if (prior_attempts > 0)
        retriesMetric_->inc();
    storage::DeviceId from = system_.location(req.file);
    storage::MoveResult result =
        config_.chunkBytes > 0
            ? system_.moveFileChunked(req.file, req.target,
                                      config_.chunkBytes)
            : system_.moveFile(req.file, req.target);

    AppliedMove fate;
    fate.file = req.file;
    fate.from = from;
    fate.to = req.target;
    fate.reason = result.reason;
    fate.attempt = prior_attempts + 1;

    if (result.moved) {
        fate.outcome = AttemptOutcome::Applied;
        ++summary.applied;
        summary.bytesMoved += result.bytes;
        summary.transferSeconds += result.seconds;
        ++totalMoves_;
        totalBytes_ += result.bytes;
        appliedMetric_->inc();
        bytesMetric_->add(result.bytes);
        transferSecondsMetric_->record(result.seconds);
        // The transfer just finished at sim-now; span covers its
        // modeled duration on the sim timeline.
        GEO_SIM_SPAN("migrate", "move",
                     system_.clock().now() - result.seconds,
                     result.seconds);
        logAttempt(fate, result.bytes);
        if (db_) {
            MovementRecord rec;
            rec.timestamp = system_.clock().now();
            rec.file = req.file;
            rec.fromDevice = result.from;
            rec.toDevice = result.to;
            rec.bytes = result.bytes;
            rec.seconds = result.seconds;
            db_->insertMovement(rec);
        }
    } else if (result.failed) {
        // Fault-class abort: retry with backoff unless the budget or
        // the per-move deadline ran out.
        ++summary.failed;
        failedMetric_->inc();
        double now = system_.clock().now();
        size_t attempts = prior_attempts + 1;
        bool budget_left = attempts < config_.retry.maxAttempts;
        bool within_deadline =
            now - first_attempt < config_.retry.moveDeadlineSeconds;
        if (budget_left && within_deadline) {
            fate.outcome = AttemptOutcome::Failed;
            Pending pend;
            pend.req = req;
            pend.attempts = attempts;
            pend.firstAttempt = first_attempt;
            double delay = backoffDelay(attempts);
            backoffMetric_->record(delay);
            pend.nextAttempt = now + delay;
            pending_.push_back(pend);
            ++summary.requeued;
            requeuedMetric_->inc();
            warn("control: move file %llu -> dev %u aborted (%s, "
                 "attempt %zu), retrying at t=%.1f",
                 (unsigned long long)req.file, (unsigned)req.target,
                 storage::moveFailName(result.reason), attempts,
                 pend.nextAttempt);
        } else {
            fate.outcome = AttemptOutcome::Abandoned;
            ++summary.abandoned;
            ++totalAbandoned_;
            abandonedMetric_->inc();
            warn("control: move file %llu -> dev %u abandoned after "
                 "%zu attempts (%s)",
                 (unsigned long long)req.file, (unsigned)req.target,
                 attempts, storage::moveFailName(result.reason));
        }
        logAttempt(fate, result.bytesCopied);
    } else {
        // Validity-class rejection: the request itself is bad (wrong
        // target, no capacity, no-op); dropping it is the right move.
        fate.outcome = AttemptOutcome::Skipped;
        ++summary.skipped;
        skippedMetric_->inc();
        if (result.reason != storage::MoveFail::SameDevice)
            warn("control: skipped move file %llu -> dev %u (%s)",
                 (unsigned long long)req.file, (unsigned)req.target,
                 storage::moveFailName(result.reason));
        logAttempt(fate, 0);
    }
    summary.outcomes.push_back(fate);
}

MoveSummary
ControlAgent::apply(const std::vector<MoveRequest> &moves)
{
    MoveSummary summary;
    summary.requested = moves.size();
    requestedMetric_->add(moves.size());

    // A fresh request for a file supersedes its pending retry: the
    // model has newer information about where the file should live.
    // Log the supersede so the attempt log's last entry per
    // (file, target) no longer says Failed — restorePending() would
    // otherwise resurrect a retry nobody owes anymore.
    if (!pending_.empty() && !moves.empty()) {
        auto superseded = [&moves](const Pending &p) {
            return std::any_of(moves.begin(), moves.end(),
                               [&p](const MoveRequest &m) {
                                   return m.file == p.req.file;
                               });
        };
        for (const Pending &p : pending_) {
            if (!superseded(p))
                continue;
            AppliedMove fate;
            fate.file = p.req.file;
            fate.from = system_.location(p.req.file);
            fate.to = p.req.target;
            fate.outcome = AttemptOutcome::Superseded;
            fate.attempt = p.attempts + 1;
            logAttempt(fate, 0);
            supersededMetric_->inc();
        }
        pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                      superseded),
                       pending_.end());
    }

    // Cross-shard admission: consult the coordinator's per-device
    // budgets before each attempt. Out-of-range files pass through so
    // attemptMove() can record the Skipped fate as before.
    auto admits = [this](const MoveRequest &req) {
        if (!admission_ || req.file >= system_.fileCount())
            return true;
        const storage::FileObject &f = system_.file(req.file);
        return admission_->admitMove(f.location, req.target,
                                     f.sizeBytes);
    };

    // Drain the retries that have reached their due time.
    double now = system_.clock().now();
    std::vector<Pending> due;
    for (size_t i = 0; i < pending_.size();) {
        if (pending_[i].nextAttempt <= now) {
            due.push_back(pending_[i]);
            pending_.erase(pending_.begin() +
                           static_cast<ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    // Retries that came due go back to the queue when the migrate
    // budget runs out mid-batch: unlike fresh requests (which the next
    // cycle re-proposes from newer data), a dropped retry would orphan
    // the Failed entry in the attempt log.
    size_t due_done = 0;
    for (const Pending &p : due) {
        if (overBudget()) {
            for (size_t i = due_done; i < due.size(); ++i)
                pending_.push_back(due[i]);
            break;
        }
        if (!admits(p.req)) {
            // A denied retry stays owed: back to the queue, due again
            // next cycle when the coordinator's budgets have reset.
            pending_.push_back(p);
            ++summary.deferred;
            deferredMetric_->inc();
            ++due_done;
            continue;
        }
        attemptMove(p.req, p.attempts, p.firstAttempt, summary);
        ++due_done;
    }

    for (const MoveRequest &req : moves) {
        if (overBudget())
            break;
        if (!admits(req)) {
            // A denied fresh move is simply dropped: the next cycle
            // re-proposes from newer telemetry anyway.
            ++summary.deferred;
            deferredMetric_->inc();
            continue;
        }
        attemptMove(req, 0, system_.clock().now(), summary);
    }

    size_t attempted = summary.outcomes.size();
    size_t owed = due.size() + moves.size();
    if (attempted + summary.deferred < owed) {
        summary.cancelled = owed - attempted - summary.deferred;
        cancelledMetric_->add(summary.cancelled);
        warn("control: migrate deadline hit, %zu move%s deferred",
             summary.cancelled, summary.cancelled == 1 ? "" : "s");
    }
    return summary;
}

bool
ControlAgent::overBudget()
{
    return watchdog_ && watchdog_->poll(system_.clock().now());
}

size_t
ControlAgent::abandonPending()
{
    size_t count = pending_.size();
    for (const Pending &p : pending_) {
        AppliedMove fate;
        fate.file = p.req.file;
        fate.from = system_.location(p.req.file);
        fate.to = p.req.target;
        fate.outcome = AttemptOutcome::Abandoned;
        fate.attempt = p.attempts + 1;
        logAttempt(fate, 0);
        abandonedMetric_->inc();
        ++totalAbandoned_;
    }
    pending_.clear();
    if (count > 0) {
        util::FlightRecorder::global().record(
            util::FlightKind::MovesAbandoned, system_.clock().now(),
            count);
        warn("control: abandoned %zu pending retr%s (safe mode)", count,
             count == 1 ? "y" : "ies");
    }
    return count;
}

size_t
ControlAgent::restorePending()
{
    if (!db_)
        return 0;
    // Scan the attempt log oldest-first: the last attempt seen per
    // (file, target) decides whether a retry is still owed.
    struct Last
    {
        AttemptOutcome outcome;
        size_t attempts;
        double firstAttempt;
    };
    std::map<std::pair<storage::FileId, storage::DeviceId>, Last> last;
    size_t total = static_cast<size_t>(db_->moveAttemptCount());
    for (const MoveAttemptRecord &rec : db_->recentMoveAttempts(total)) {
        auto key = std::make_pair(rec.file, rec.toDevice);
        auto it = last.find(key);
        Last entry;
        entry.outcome = rec.outcome;
        entry.attempts = static_cast<size_t>(rec.attempt);
        entry.firstAttempt = (it != last.end() && rec.attempt > 1)
                                 ? it->second.firstAttempt
                                 : rec.timestamp;
        last[key] = entry;
    }
    size_t restored = 0;
    double now = system_.clock().now();
    for (const auto &[key, entry] : last) {
        if (entry.outcome != AttemptOutcome::Failed)
            continue;
        // Idempotency: a retry already in the queue (an earlier call,
        // or a checkpoint restore) must not be queued twice.
        bool queued = std::any_of(
            pending_.begin(), pending_.end(), [&key](const Pending &p) {
                return p.req.file == key.first &&
                       p.req.target == key.second;
            });
        if (queued)
            continue;
        Pending pend;
        pend.req.file = key.first;
        pend.req.target = key.second;
        pend.attempts = entry.attempts;
        pend.firstAttempt = entry.firstAttempt;
        pend.nextAttempt = now; // due immediately after restart
        pending_.push_back(pend);
        ++restored;
    }
    if (restored > 0)
        inform("control: restored %zu pending retr%s from the attempt "
               "log", restored, restored == 1 ? "y" : "ies");
    return restored;
}

void
ControlAgent::saveState(util::StateWriter &w) const
{
    w.rng("control.rng", rng_);
    w.u64("control.total_moves", totalMoves_);
    w.u64("control.total_bytes", totalBytes_);
    w.u64("control.total_abandoned", totalAbandoned_);
    w.u64("control.pending", pending_.size());
    for (const Pending &p : pending_) {
        w.u64("pend.file", p.req.file);
        w.u64("pend.target", p.req.target);
        w.u64("pend.attempts", p.attempts);
        w.f64("pend.first", p.firstAttempt);
        w.f64("pend.next", p.nextAttempt);
    }
}

void
ControlAgent::loadState(util::StateReader &r)
{
    Rng::State rng = r.rng("control.rng");
    uint64_t moves = r.u64("control.total_moves");
    uint64_t bytes = r.u64("control.total_bytes");
    uint64_t abandoned = r.u64("control.total_abandoned");
    size_t count = r.u64("control.pending");
    std::deque<Pending> pending;
    for (size_t i = 0; i < count && r.ok(); ++i) {
        Pending p;
        p.req.file = r.u64("pend.file");
        p.req.target =
            static_cast<storage::DeviceId>(r.u64("pend.target"));
        p.attempts = r.u64("pend.attempts");
        p.firstAttempt = r.f64("pend.first");
        p.nextAttempt = r.f64("pend.next");
        pending.push_back(p);
    }
    if (!r.ok())
        return;
    rng_.setState(rng);
    totalMoves_ = moves;
    totalBytes_ = bytes;
    totalAbandoned_ = abandoned;
    pending_ = std::move(pending);
}

} // namespace core
} // namespace geo
