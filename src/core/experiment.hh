/**
 * @file
 * The experiment harness (paper Section VI).
 *
 * Drives a workload over the target system under one placement policy:
 * warmup runs first (the paper collects ~10,000 accesses before any
 * experiment), then measurement runs with the policy rebalancing every
 * `cadence` runs (Geomancy moves data every five runs of the
 * workload). Time is represented by access number, as in all of the
 * paper's figures.
 */

#ifndef GEO_CORE_EXPERIMENT_HH
#define GEO_CORE_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/policies.hh"
#include "storage/system.hh"
#include "util/random.hh"
#include "util/state_io.hh"
#include "util/stats.hh"
#include "workload/belle2.hh"

namespace geo {
namespace core {

/** Experiment configuration. */
struct ExperimentConfig
{
    size_t warmupRuns = 4;      ///< runs before the policy first acts
    size_t measuredRuns = 40;   ///< runs in the measured phase
    size_t cadence = 5;         ///< rebalance every N runs (paper: 5)
    /** Window (accesses) for the plotted moving-average series. */
    size_t seriesWindow = 500;
    uint64_t seed = 31;
};

/** A rebalance event on the access-number axis (the Fig. 5 bars). */
struct MoveEvent
{
    size_t accessNumber = 0;
    size_t filesMoved = 0;
};

/** Everything measured during one experiment. */
struct ExperimentResult
{
    std::string policyName;
    std::vector<double> throughputSeries;  ///< per access, bytes/s
    std::vector<MoveEvent> moveEvents;
    double averageThroughput = 0.0;        ///< bytes/s over the series
    size_t totalAccesses = 0;
    uint64_t bytesMoved = 0;
    uint64_t filesMoved = 0;
    /** accesses served per device (utilization, Table IV). */
    std::vector<uint64_t> accessesPerDevice;

    /** Moving average of the throughput series (plot-friendly). */
    std::vector<double> smoothedSeries(size_t window) const;

    /** Series downsampled to one mean point per `bucket` accesses. */
    std::vector<double> bucketedSeries(size_t bucket) const;
};

/**
 * Runs one workload/policy pair and collects the series.
 */
class ExperimentRunner
{
  public:
    /**
     * @param system target system.
     * @param workload the tuned workload.
     * @param policy placement policy under test.
     * @param config phases and cadence.
     */
    ExperimentRunner(storage::StorageSystem &system,
                     workload::Belle2Workload &workload,
                     PlacementPolicy &policy,
                     const ExperimentConfig &config = {});

    /**
     * Hook invoked after every measured run (run index, result so
     * far); used by the Fig. 6 bench to start the interference
     * workload mid-experiment.
     */
    void setRunHook(std::function<void(size_t)> hook);

    /**
     * Hook invoked at the end of each completed measured run — the
     * consistent-cut boundary the sim tool checkpoints at. The
     * argument is the number of measured runs completed so far.
     */
    void setCheckpointHook(std::function<void(size_t)> hook);

    /** Execute warmup + measurement; returns the collected result. */
    ExperimentResult run();

    /**
     * Advance the experiment by one unit — a warmup run, the policy's
     * initial placement, or one measured run. @return true while more
     * work remains. run() is just `while (step());` + finish().
     */
    bool step();

    /** Whether every phase has completed. */
    bool finished() const;

    /** Measured runs completed so far. */
    size_t measuredRunsDone() const { return measuredDone_; }

    /** Finalize totals and return the result collected so far. */
    ExperimentResult finish();

    /**
     * Serialize the runner's progress cursor: phase counters, the
     * partial series and usage map, the experiment RNG. Combined with
     * the system/workload/pipeline state this makes a mid-experiment
     * checkpoint resumable byte-identically.
     */
    void saveState(util::StateWriter &w) const;
    void loadState(util::StateReader &r);

  private:
    storage::StorageSystem &system_;
    workload::Belle2Workload &workload_;
    PlacementPolicy &policy_;
    ExperimentConfig config_;
    Rng rng_;
    std::function<void(size_t)> runHook_;
    std::function<void(size_t)> checkpointHook_;

    std::map<storage::FileId, FileUsage> usage_;
    size_t accessCounter_ = 0;

    // Resumable progress (all checkpointed).
    ExperimentResult result_;
    StatAccumulator tpStats_;
    size_t warmupDone_ = 0;
    size_t measuredDone_ = 0;
    bool placedInitial_ = false;
    uint64_t movesBefore_ = 0;
    uint64_t bytesBefore_ = 0;

    /** Track per-file usage from one run's observations. */
    void recordUsage(
        const std::vector<storage::AccessObservation> &observations);

    /** Devices ordered fastest-first by measured mean throughput. */
    std::vector<storage::DeviceId> rankDevices() const;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_EXPERIMENT_HH
