/**
 * @file
 * Crash-safe checkpoint files for the whole Geomancy pipeline.
 *
 * A checkpoint is one file:
 *
 *     geo-ckpt-1 cycle=<n> bytes=<len> crc32=<8 hex>\n
 *     <len bytes of StateWriter payload>
 *
 * The header carries the decision cycle the snapshot was cut at, the
 * exact payload length and a zlib-compatible CRC32 over the payload.
 * Files are written atomically (temp file in the same directory,
 * fsync, rename), so a crash mid-write leaves either the previous
 * checkpoint or none — never a torn one. Reads validate magic, length
 * and CRC before handing the payload to StateReader; a corrupt file
 * is rejected (counted in `checkpoint.crc_rejected`) and loadLatest()
 * falls back to the next-older snapshot.
 *
 * The manager keeps the newest `keep` snapshots and prunes the rest,
 * so the fallback window survives a checkpoint that was committed but
 * whose producing process then corrupted the world before dying.
 */

#ifndef GEO_CORE_CHECKPOINT_HH
#define GEO_CORE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.hh"

namespace geo {
namespace core {

/** Checkpoint directory policy. */
struct CheckpointManagerConfig
{
    /** Directory snapshots live in (created if missing). */
    std::string dir = "checkpoints";
    /** Newest snapshots retained; older ones are pruned on write. */
    size_t keep = 2;
    /** File name stem: `<prefix>-<cycle>.geo`. */
    std::string prefix = "ckpt";
};

/** Parsed checkpoint header. */
struct CheckpointHeader
{
    uint64_t cycle = 0;
    uint64_t bytes = 0;
    uint32_t crc = 0;
};

/**
 * Writes, validates and enumerates checkpoint files in one directory.
 */
class CheckpointManager
{
  public:
    explicit CheckpointManager(CheckpointManagerConfig config = {});

    const std::string &dir() const { return config_.dir; }

    /** Path the snapshot for `cycle` is (or would be) stored at. */
    std::string pathFor(uint64_t cycle) const;

    /**
     * Atomically commit `payload` as the snapshot for `cycle`, then
     * prune snapshots beyond the retention window. @return false when
     * the directory cannot be created or the write fails (the previous
     * snapshot, if any, is untouched either way).
     */
    bool write(uint64_t cycle, const std::string &payload);

    /** Cycles with a snapshot file present, sorted ascending. */
    std::vector<uint64_t> availableCycles() const;

    /** Delete every snapshot (a fresh, non-resuming start does this
     *  so stale snapshots cannot be resumed later). */
    void clear();

    /**
     * Read and validate one checkpoint file: magic, payload length and
     * CRC32 must all match the header. @return false (and count
     * `checkpoint.crc_rejected`) on any mismatch.
     */
    static bool read(const std::string &path, CheckpointHeader &header,
                     std::string &payload);

    /**
     * Load the newest snapshot that validates, falling back across
     * older ones when the newest is corrupt. @param path_out the file
     * that validated, when non-null. @return false when no snapshot
     * validates.
     */
    bool loadLatest(CheckpointHeader &header, std::string &payload,
                    std::string *path_out = nullptr);

  private:
    CheckpointManagerConfig config_;
    util::Counter *writesMetric_;
    util::Counter *writeFailuresMetric_;
    util::Gauge *bytesMetric_;
    util::Histogram *writeMsMetric_;

    bool ensureDir() const;
};

} // namespace core
} // namespace geo

#endif // GEO_CORE_CHECKPOINT_HH
