#include "core/movement_scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace geo {
namespace core {

MovementScheduler::MovementScheduler(storage::StorageSystem &system,
                                     const ReplayDb &db,
                                     const SchedulerConfig &config)
    : system_(system), gaps_(db, config.gaps), config_(config)
{
    if (config_.fileCooldownSeconds < 0.0)
        panic("MovementScheduler: negative cooldown");
    if (config_.gapSafetyFactor < 1.0)
        panic("MovementScheduler: gap safety factor must be >= 1");
}

double
MovementScheduler::expectedTransferSeconds(const CheckedMove &move,
                                           double now) const
{
    const storage::FileObject &f = system_.file(move.file);
    if (move.to >= system_.deviceCount())
        return 0.0;
    const storage::StorageDevice &src = system_.device(f.location);
    const storage::StorageDevice &dst = system_.device(move.to);
    double bw = std::min(src.effectiveBandwidth(true, now),
                         dst.effectiveBandwidth(false, now));
    if (bw <= 0.0)
        return 0.0;
    return static_cast<double>(f.sizeBytes) / bw;
}

bool
MovementScheduler::admit(const CheckedMove &move, double now)
{
    auto it = lastMove_.find(move.file);
    if (it != lastMove_.end() &&
        now - it->second < config_.fileCooldownSeconds) {
        ++rejectedCooldown_;
        return false;
    }
    if (config_.checkGaps) {
        double transfer = expectedTransferSeconds(move, now);
        if (!gaps_.fitsInGap(move.file, transfer,
                             config_.gapSafetyFactor)) {
            ++rejectedGap_;
            return false;
        }
    }
    lastMove_[move.file] = now;
    return true;
}

std::vector<CheckedMove>
MovementScheduler::admitAll(std::vector<CheckedMove> moves, double now)
{
    std::vector<CheckedMove> admitted;
    admitted.reserve(moves.size());
    for (CheckedMove &move : moves)
        if (admit(move, now))
            admitted.push_back(std::move(move));
    return admitted;
}

} // namespace core
} // namespace geo
