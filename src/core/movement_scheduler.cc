#include "core/movement_scheduler.hh"

#include <algorithm>

#include "util/flight_recorder.hh"
#include "util/logging.hh"

namespace geo {
namespace core {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half-open";
    }
    return "unknown";
}

MovementScheduler::MovementScheduler(storage::StorageSystem &system,
                                     const ReplayDb &db,
                                     const SchedulerConfig &config)
    : system_(system), gaps_(db, config.gaps), config_(config)
{
    if (config_.fileCooldownSeconds < 0.0)
        panic("MovementScheduler: negative cooldown");
    if (config_.gapSafetyFactor < 1.0)
        panic("MovementScheduler: gap safety factor must be >= 1");
    auto &registry = util::MetricRegistry::global();
    admittedMetric_ = &registry.counter("scheduler.admitted");
    rejectedCooldownMetric_ =
        &registry.counter("scheduler.rejected_cooldown");
    rejectedGapMetric_ = &registry.counter("scheduler.rejected_gap");
    rejectedBreakerMetric_ =
        &registry.counter("scheduler.rejected_breaker");
    breakerTripsMetric_ = &registry.counter("scheduler.breaker_trips");
    breakerProbesMetric_ = &registry.counter("scheduler.breaker_probes");
    breakerClosesMetric_ = &registry.counter("scheduler.breaker_closes");
}

double
MovementScheduler::expectedTransferSeconds(const CheckedMove &move,
                                           double now) const
{
    const storage::FileObject &f = system_.file(move.file);
    if (move.to >= system_.deviceCount())
        return 0.0;
    const storage::StorageDevice &src = system_.device(f.location);
    const storage::StorageDevice &dst = system_.device(move.to);
    double bw = std::min(src.effectiveBandwidth(true, now),
                         dst.effectiveBandwidth(false, now));
    if (bw <= 0.0)
        return 0.0;
    return static_cast<double>(f.sizeBytes) / bw;
}

void
MovementScheduler::pruneFailures(Breaker &breaker, double now)
{
    while (!breaker.failures.empty() &&
           now - breaker.failures.front() >
               config_.breaker.windowSeconds)
        breaker.failures.pop_front();
}

bool
MovementScheduler::breakerAdmits(storage::DeviceId target, double now)
{
    if (!config_.breaker.enabled)
        return true;
    auto it = breakers_.find(target);
    if (it == breakers_.end())
        return true;
    Breaker &breaker = it->second;
    switch (breaker.state) {
    case BreakerState::Closed:
        return true;
    case BreakerState::Open:
        if (now - breaker.openedAt < config_.breaker.cooldownSeconds)
            return false;
        breaker.state = BreakerState::HalfOpen;
        breaker.probeInFlight = false;
        inform("scheduler: breaker for device %u half-open at t=%.1f",
               (unsigned)target, now);
        [[fallthrough]];
    case BreakerState::HalfOpen:
        // Exactly one probe move is allowed through; further moves
        // wait for the probe's outcome.
        if (breaker.probeInFlight)
            return false;
        breaker.probeInFlight = true;
        breakerProbesMetric_->inc();
        return true;
    }
    return true;
}

BreakerState
MovementScheduler::breakerState(storage::DeviceId target, double now)
{
    if (!config_.breaker.enabled)
        return BreakerState::Closed;
    auto it = breakers_.find(target);
    if (it == breakers_.end())
        return BreakerState::Closed;
    Breaker &breaker = it->second;
    if (breaker.state == BreakerState::Open &&
        now - breaker.openedAt >= config_.breaker.cooldownSeconds) {
        breaker.state = BreakerState::HalfOpen;
        breaker.probeInFlight = false;
    }
    return breaker.state;
}

void
MovementScheduler::recordMoveOutcome(storage::DeviceId target,
                                     bool success, double now)
{
    if (!config_.breaker.enabled)
        return;
    Breaker &breaker = breakers_[target];
    if (success) {
        // Any success proves the device is taking writes again.
        if (breaker.state != BreakerState::Closed) {
            inform("scheduler: breaker for device %u closed at t=%.1f",
                   (unsigned)target, now);
            breakerClosesMetric_->inc();
        }
        breaker.state = BreakerState::Closed;
        breaker.probeInFlight = false;
        breaker.failures.clear();
        return;
    }
    if (breaker.state == BreakerState::HalfOpen) {
        // The probe failed: back to open, restart the cooldown.
        breaker.state = BreakerState::Open;
        breaker.openedAt = now;
        breaker.probeInFlight = false;
        breakerTripsMetric_->inc();
        util::FlightRecorder::global().record(
            util::FlightKind::BreakerTrip, now, target,
            breaker.failures.size());
        warn("scheduler: probe move onto device %u failed, breaker "
             "re-opened", (unsigned)target);
        return;
    }
    breaker.failures.push_back(now);
    pruneFailures(breaker, now);
    if (breaker.state == BreakerState::Closed &&
        breaker.failures.size() >= config_.breaker.failureThreshold) {
        breaker.state = BreakerState::Open;
        breaker.openedAt = now;
        breakerTripsMetric_->inc();
        util::FlightRecorder::global().record(
            util::FlightKind::BreakerTrip, now, target,
            breaker.failures.size());
        warn("scheduler: breaker for device %u opened after %zu "
             "failures in %.0f s", (unsigned)target,
             breaker.failures.size(), config_.breaker.windowSeconds);
    }
}

bool
MovementScheduler::admit(const CheckedMove &move, double now)
{
    auto it = lastMove_.find(move.file);
    if (it != lastMove_.end() &&
        now - it->second < config_.fileCooldownSeconds) {
        ++rejectedCooldown_;
        rejectedCooldownMetric_->inc();
        return false;
    }
    if (config_.checkGaps) {
        double transfer = expectedTransferSeconds(move, now);
        if (!gaps_.fitsInGap(move.file, transfer,
                             config_.gapSafetyFactor)) {
            ++rejectedGap_;
            rejectedGapMetric_->inc();
            return false;
        }
    }
    // Breaker last: a half-open breaker's single probe slot must only
    // be consumed by a move that will actually execute.
    if (!breakerAdmits(move.to, now)) {
        ++rejectedBreaker_;
        rejectedBreakerMetric_->inc();
        return false;
    }
    lastMove_[move.file] = now;
    admittedMetric_->inc();
    return true;
}

std::vector<CheckedMove>
MovementScheduler::admitAll(std::vector<CheckedMove> moves, double now)
{
    std::vector<CheckedMove> admitted;
    admitted.reserve(moves.size());
    for (CheckedMove &move : moves)
        if (admit(move, now))
            admitted.push_back(std::move(move));
    return admitted;
}

void
MovementScheduler::saveState(util::StateWriter &w) const
{
    w.u64("sched.rej_cooldown", rejectedCooldown_);
    w.u64("sched.rej_gap", rejectedGap_);
    w.u64("sched.rej_breaker", rejectedBreaker_);
    w.u64("sched.cooldowns", lastMove_.size());
    for (const auto &[file, at] : lastMove_) {
        w.u64("cd.file", file);
        w.f64("cd.at", at);
    }
    w.u64("sched.breakers", breakers_.size());
    for (const auto &[device, breaker] : breakers_) {
        w.u64("brk.device", device);
        w.u64("brk.state", static_cast<uint64_t>(breaker.state));
        w.f64("brk.opened_at", breaker.openedAt);
        w.boolean("brk.probe", breaker.probeInFlight);
        std::vector<double> failures(breaker.failures.begin(),
                                     breaker.failures.end());
        w.f64Vec("brk.failures", failures);
    }
}

void
MovementScheduler::loadState(util::StateReader &r)
{
    uint64_t rej_cooldown = r.u64("sched.rej_cooldown");
    uint64_t rej_gap = r.u64("sched.rej_gap");
    uint64_t rej_breaker = r.u64("sched.rej_breaker");
    std::map<storage::FileId, double> last_move;
    size_t cooldowns = r.u64("sched.cooldowns");
    for (size_t i = 0; i < cooldowns && r.ok(); ++i) {
        storage::FileId file = r.u64("cd.file");
        last_move[file] = r.f64("cd.at");
    }
    std::map<storage::DeviceId, Breaker> breakers;
    size_t count = r.u64("sched.breakers");
    for (size_t i = 0; i < count && r.ok(); ++i) {
        auto device = static_cast<storage::DeviceId>(r.u64("brk.device"));
        Breaker breaker;
        breaker.state = static_cast<BreakerState>(r.u64("brk.state"));
        breaker.openedAt = r.f64("brk.opened_at");
        breaker.probeInFlight = r.boolean("brk.probe");
        std::vector<double> failures = r.f64Vec("brk.failures");
        breaker.failures.assign(failures.begin(), failures.end());
        breakers[device] = breaker;
    }
    if (!r.ok())
        return;
    rejectedCooldown_ = rej_cooldown;
    rejectedGap_ = rej_gap;
    rejectedBreaker_ = rej_breaker;
    lastMove_ = std::move(last_move);
    breakers_ = std::move(breakers);
}

} // namespace core
} // namespace geo
