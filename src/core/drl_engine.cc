#include "core/drl_engine.hh"

#include <chrono>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace geo {
namespace core {

DrlEngine::DrlEngine(const DrlConfig &config)
    : config_(config), rng_(config.seed),
      model_(nn::buildModel(config.modelNumber, config.featureCount, rng_)),
      optimizer_(config.learningRate, config.clipNorm)
{
    if (nn::modelSpec(config.modelNumber, config.featureCount).recurrent)
        panic("DrlEngine: live engine requires a dense model "
              "(model %d is recurrent); windowed inputs are only wired "
              "into the offline model search", config.modelNumber);
}

RetrainStats
DrlEngine::retrain(const TrainingBatch &batch)
{
    RetrainStats stats;
    stats.samples = batch.dataset.size();
    // Need enough rows for a meaningful 60/20/20 split.
    if (batch.dataset.size() < 16)
        return stats;

    batch_ = batch;
    targetKind_ = batch.target;
    nn::DataSplit split = nn::chronologicalSplit(
        batch.dataset, config_.trainFraction, config_.valFraction);

    nn::TrainOptions options;
    options.epochs = config_.epochs;
    options.batchSize = config_.batchSize;
    nn::TrainResult result =
        model_.train(split.train, split.validation, optimizer_, options);
    stats.trained = true;
    stats.seconds = result.seconds;
    stats.diverged = result.diverged || model_.looksDiverged(split.test);
    if (stats.diverged) {
        warn("DrlEngine: model diverged during retrain; predictions "
             "disabled until a successful cycle");
        ready_ = false;
        return stats;
    }

    // Validation relative error drives the Section V-G adjustment.
    const nn::Dataset &probe =
        split.validation.empty() ? split.train : split.validation;
    nn::Matrix predictions = model_.predict(probe.inputs);
    std::vector<double> pred_raw, target_raw;
    pred_raw.reserve(probe.size());
    target_raw.reserve(probe.size());
    for (size_t r = 0; r < probe.size(); ++r) {
        pred_raw.push_back(
            batch_.denormalizeTarget(predictions.at(r, 0)));
        target_raw.push_back(
            batch_.denormalizeTarget(probe.targets.at(r, 0)));
    }
    stats.meanAbsRelError =
        meanAbsoluteRelativeError(pred_raw, target_raw);
    stats.signedRelError = meanSignedRelativeError(pred_raw, target_raw);

    maeFraction_ = stats.meanAbsRelError / 100.0;
    if (config_.adjustWithMae && maeFraction_ > 0.0) {
        // Over-predicting on average -> lower predictions, and vice
        // versa (sign of the mean signed relative error).
        adjustSign_ = stats.signedRelError > 0.0 ? -1.0 : 1.0;
    } else {
        adjustSign_ = 0.0;
    }
    ready_ = true;
    return stats;
}

double
DrlEngine::predictThroughput(const std::vector<double> &raw_features)
{
    if (!ready_)
        panic("DrlEngine::predictThroughput before a successful retrain");
    std::vector<double> normalized =
        batch_.normalizeFeatures(raw_features);
    nn::Matrix input = nn::Matrix::rowVector(normalized);
    double predicted =
        batch_.denormalizeTarget(model_.predict(input).at(0, 0));
    if (adjustSign_ != 0.0)
        predicted += adjustSign_ * maeFraction_ * predicted;
    return predicted < 0.0 ? 0.0 : predicted;
}

std::vector<CandidateScore>
DrlEngine::scoreCandidates(const PerfRecord &latest,
                           const std::vector<storage::DeviceId> &devices)
{
    if (!ready_)
        panic("DrlEngine::scoreCandidates before a successful retrain");
    auto start = std::chrono::steady_clock::now();

    // One batch, one row per candidate location (Section V-C).
    nn::Matrix inputs(devices.size(), config_.featureCount);
    for (size_t i = 0; i < devices.size(); ++i) {
        std::vector<double> row =
            batch_.normalizeFeatures(latest.featuresAt(devices[i]));
        for (size_t c = 0; c < row.size(); ++c)
            inputs.at(i, c) = row[c];
    }
    nn::Matrix outputs = model_.predict(inputs);

    std::vector<CandidateScore> scores;
    scores.reserve(devices.size());
    for (size_t i = 0; i < devices.size(); ++i) {
        CandidateScore score;
        score.device = devices[i];
        double predicted = batch_.denormalizeTarget(outputs.at(i, 0));
        if (adjustSign_ != 0.0)
            predicted += adjustSign_ * maeFraction_ * predicted;
        score.predictedThroughput = predicted < 0.0 ? 0.0 : predicted;
        scores.push_back(score);
    }

    auto elapsed = std::chrono::steady_clock::now() - start;
    lastPredictMs_ =
        std::chrono::duration<double, std::milli>(elapsed).count();
    return scores;
}

} // namespace core
} // namespace geo
