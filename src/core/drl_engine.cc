#include "core/drl_engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "nn/serialize.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace_event.hh"

namespace geo {
namespace core {

DrlEngine::DrlEngine(const DrlConfig &config)
    : config_(config), rng_(config.seed),
      model_(nn::buildModel(config.modelNumber, config.featureCount, rng_)),
      optimizer_(config.learningRate, config.clipNorm)
{
    if (nn::modelSpec(config.modelNumber, config.featureCount).recurrent)
        panic("DrlEngine: live engine requires a dense model "
              "(model %d is recurrent); windowed inputs are only wired "
              "into the offline model search", config.modelNumber);
    auto &registry = util::MetricRegistry::global();
    trainStepsMetric_ = &registry.counter("drl.train_steps");
    divergedMetric_ = &registry.counter("drl.diverged");
    trainDivergedMetric_ = &registry.counter("drl.train.diverged");
    trainCancelledMetric_ = &registry.counter("drl.train.cancelled");
    rollbackMetric_ = &registry.counter("drl.train.rollbacks");
    trainMsMetric_ = &registry.histogram("drl.train_ms");
    trainRowsMetric_ = &registry.histogram("drl.train_rows");
    predictMsMetric_ = &registry.histogram("drl.predict_ms");
    scoreRowsMetric_ = &registry.histogram("drl.score_rows");
    valMaeMetric_ = &registry.gauge("drl.val_mae_pct");
}

RetrainStats
DrlEngine::retrain(const TrainingBatch &batch)
{
    GEO_SPAN("drl", "retrain");
    RetrainStats stats;
    stats.samples = batch.dataset.size();
    // Need enough rows for a meaningful 60/20/20 split.
    if (batch.dataset.size() < 16)
        return stats;

    batch_ = batch;
    targetKind_ = batch.target;
    nn::DataSplit split = nn::chronologicalSplit(
        batch.dataset, config_.trainFraction, config_.valFraction);

    nn::TrainOptions options;
    options.epochs = config_.epochs;
    options.batchSize = config_.batchSize;
    options.cancel = cancelToken_;
    nn::TrainResult result =
        model_.train(split.train, split.validation, optimizer_, options);
    stats.trained = true;
    stats.seconds = result.seconds;
    if (result.cancelled) {
        // The watchdog cut training short: a half-trained model is not
        // trustworthy, so roll back exactly like a divergence and let
        // the next healthy cycle retrain from the last good weights.
        stats.cancelled = true;
        trainCancelledMetric_->inc();
        util::FlightRecorder::global().record(
            util::FlightKind::TrainCancelled, 0.0, config_.epochs);
        ready_ = false;
        if (!lastGoodWeights_.empty()) {
            std::istringstream is(lastGoodWeights_);
            if (nn::loadWeights(model_, is)) {
                rollbackMetric_->inc();
                warn("DrlEngine: retrain cancelled by the watchdog; "
                     "rolled weights back to the last good cycle");
                return stats;
            }
        }
        warn("DrlEngine: retrain cancelled by the watchdog; predictions "
             "disabled until a successful cycle");
        return stats;
    }
    // Guard against numerical poison: a non-finite loss, a probe set
    // the model mangles, or NaN/Inf in the weights themselves.
    stats.diverged = result.diverged ||
                     model_.looksDiverged(split.test) || !weightsFinite();
    trainStepsMetric_->inc();
    trainMsMetric_->record(result.seconds * 1e3);
    trainRowsMetric_->record(static_cast<double>(split.train.size()));
    if (stats.diverged) {
        divergedMetric_->inc();
        trainDivergedMetric_->inc();
        util::FlightRecorder::global().record(
            util::FlightKind::TrainDiverged, 0.0, config_.epochs);
        ready_ = false;
        if (!lastGoodWeights_.empty()) {
            // Roll back to the last finite weights so the poison does
            // not compound across retrains or leak into proposeMoves.
            std::istringstream is(lastGoodWeights_);
            if (nn::loadWeights(model_, is)) {
                rollbackMetric_->inc();
                warn("DrlEngine: retrain diverged; rolled weights back "
                     "to the last good cycle");
                return stats;
            }
        }
        warn("DrlEngine: model diverged during retrain; predictions "
             "disabled until a successful cycle");
        return stats;
    }

    // Validation relative error drives the Section V-G adjustment.
    const nn::Dataset &probe =
        split.validation.empty() ? split.train : split.validation;
    model_.predictInto(probe.inputs, outputScratch_);
    const nn::Matrix &predictions = outputScratch_;
    std::vector<double> pred_raw, target_raw;
    pred_raw.reserve(probe.size());
    target_raw.reserve(probe.size());
    for (size_t r = 0; r < probe.size(); ++r) {
        pred_raw.push_back(
            batch_.denormalizeTarget(predictions.at(r, 0)));
        target_raw.push_back(
            batch_.denormalizeTarget(probe.targets.at(r, 0)));
    }
    stats.meanAbsRelError =
        meanAbsoluteRelativeError(pred_raw, target_raw);
    stats.signedRelError = meanSignedRelativeError(pred_raw, target_raw);

    valMaeMetric_->set(stats.meanAbsRelError);
    maeFraction_ = stats.meanAbsRelError / 100.0;
    if (config_.adjustWithMae && maeFraction_ > 0.0) {
        // Over-predicting on average -> lower predictions, and vice
        // versa (sign of the mean signed relative error).
        adjustSign_ = stats.signedRelError > 0.0 ? -1.0 : 1.0;
    } else {
        adjustSign_ = 0.0;
    }
    {
        std::ostringstream os;
        if (nn::saveWeights(model_, os))
            lastGoodWeights_ = os.str();
    }
    ready_ = true;
    return stats;
}

bool
DrlEngine::weightsFinite()
{
    for (const nn::Matrix *p : model_.parameters())
        for (double v : p->data())
            if (!std::isfinite(v))
                return false;
    return true;
}

double
DrlEngine::predictThroughput(const std::vector<double> &raw_features)
{
    if (!ready_)
        panic("DrlEngine::predictThroughput before a successful retrain");
    rowScratch_.reshape(1, raw_features.size());
    std::copy(raw_features.begin(), raw_features.end(),
              rowScratch_.data().begin());
    return predictBatch(rowScratch_)[0];
}

std::vector<double>
DrlEngine::predictBatch(const nn::Matrix &raw_rows)
{
    if (!ready_)
        panic("DrlEngine::predictBatch before a successful retrain");
    GEO_SPAN("drl", "predict");
    const size_t rows = raw_rows.rows();
    const size_t z = raw_rows.cols();
    featureScratch_.reshape(rows, z);
    for (size_t r = 0; r < rows; ++r)
        batch_.normalizeFeaturesInto(raw_rows.data().data() + r * z, z,
                                     featureScratch_.data().data() + r * z);
    model_.predictInto(featureScratch_, outputScratch_);
    const nn::Matrix &outputs = outputScratch_;

    std::vector<double> predicted(rows);
    for (size_t r = 0; r < rows; ++r) {
        double value = batch_.denormalizeTarget(outputs.at(r, 0));
        if (adjustSign_ != 0.0)
            value += adjustSign_ * maeFraction_ * value;
        predicted[r] = value < 0.0 ? 0.0 : value;
    }
    return predicted;
}

std::vector<CandidateScore>
DrlEngine::scoreCandidates(const PerfRecord &latest,
                           const std::vector<storage::DeviceId> &devices)
{
    return scoreLocations(latest, devices);
}

std::vector<CandidateScore>
DrlEngine::scoreLocations(const PerfRecord &latest,
                          const std::vector<storage::DeviceId> &devices)
{
    std::vector<std::vector<CandidateScore>> all =
        scoreLocations(std::vector<PerfRecord>{latest}, devices);
    return std::move(all.front());
}

std::vector<std::vector<CandidateScore>>
DrlEngine::scoreLocations(const std::vector<PerfRecord> &records,
                          const std::vector<storage::DeviceId> &devices)
{
    if (!ready_)
        panic("DrlEngine::scoreCandidates before a successful retrain");
    GEO_SPAN("drl", "predict");
    auto start = std::chrono::steady_clock::now();

    // One batch across all files: a row per (file, candidate) pair
    // with only the location column varying per file (Section V-C).
    const size_t z = config_.featureCount;
    featureScratch_.reshape(records.size() * devices.size(), z);
    size_t row = 0;
    for (const PerfRecord &rec : records) {
        for (storage::DeviceId device : devices) {
            std::vector<double> raw = rec.featuresAt(device);
            batch_.normalizeFeaturesInto(
                raw.data(), raw.size(),
                featureScratch_.data().data() + row * z);
            ++row;
        }
    }
    nn::Matrix outputs = model_.predict(featureScratch_);

    std::vector<std::vector<CandidateScore>> all;
    all.reserve(records.size());
    row = 0;
    for (size_t f = 0; f < records.size(); ++f) {
        std::vector<CandidateScore> scores;
        scores.reserve(devices.size());
        for (size_t d = 0; d < devices.size(); ++d, ++row) {
            CandidateScore score;
            score.device = devices[d];
            double predicted = batch_.denormalizeTarget(outputs.at(row, 0));
            if (adjustSign_ != 0.0)
                predicted += adjustSign_ * maeFraction_ * predicted;
            score.predictedThroughput = predicted < 0.0 ? 0.0 : predicted;
            scores.push_back(score);
        }
        all.push_back(std::move(scores));
    }

    auto elapsed = std::chrono::steady_clock::now() - start;
    lastPredictMs_ =
        std::chrono::duration<double, std::milli>(elapsed).count();
    predictMsMetric_->record(lastPredictMs_);
    scoreRowsMetric_->record(
        static_cast<double>(records.size() * devices.size()));
    return all;
}

namespace {

/** The learned column ranges of a fitted normalizer. */
void
normalizerRanges(const trace::MinMaxNormalizer &n,
                 std::vector<double> &mins, std::vector<double> &maxs)
{
    mins.clear();
    maxs.clear();
    for (size_t c = 0; c < n.columns(); ++c) {
        mins.push_back(n.columnMin(c));
        maxs.push_back(n.columnMax(c));
    }
}

} // namespace

void
DrlEngine::saveState(util::StateWriter &w)
{
    w.rng("drl.rng", rng_);
    std::ostringstream weights;
    nn::saveWeights(model_, weights);
    w.str("drl.weights", weights.str());
    std::ostringstream opt;
    util::StateWriter ow(opt);
    optimizer_.saveState(ow);
    w.str("drl.optimizer", opt.str());
    w.boolean("drl.ready", ready_);
    w.f64("drl.mae_fraction", maeFraction_);
    w.f64("drl.adjust_sign", adjustSign_);
    w.u64("drl.target", static_cast<uint64_t>(targetKind_));
    w.str("drl.last_good", lastGoodWeights_);
    // Batch scalers only: the dataset itself is transient retrain
    // input, but predictions between retrains need the normalizers.
    std::vector<double> mins, maxs;
    normalizerRanges(batch_.featureNorm, mins, maxs);
    w.f64Vec("drl.feat_mins", mins);
    w.f64Vec("drl.feat_maxs", maxs);
    normalizerRanges(batch_.targetNorm, mins, maxs);
    w.f64Vec("drl.target_mins", mins);
    w.f64Vec("drl.target_maxs", maxs);
}

void
DrlEngine::loadState(util::StateReader &r)
{
    Rng::State rng = r.rng("drl.rng");
    std::string weights = r.str("drl.weights");
    std::string opt = r.str("drl.optimizer");
    bool ready = r.boolean("drl.ready");
    double mae = r.f64("drl.mae_fraction");
    double sign = r.f64("drl.adjust_sign");
    auto target = static_cast<ModelTarget>(r.u64("drl.target"));
    std::string last_good = r.str("drl.last_good");
    std::vector<double> feat_mins = r.f64Vec("drl.feat_mins");
    std::vector<double> feat_maxs = r.f64Vec("drl.feat_maxs");
    std::vector<double> target_mins = r.f64Vec("drl.target_mins");
    std::vector<double> target_maxs = r.f64Vec("drl.target_maxs");
    if (!r.ok())
        return;
    {
        std::istringstream is(weights);
        if (!nn::loadWeights(model_, is)) {
            r.fail("drl: checkpointed weights do not fit the model");
            return;
        }
    }
    {
        std::istringstream is(opt);
        util::StateReader orr(is);
        optimizer_.loadState(orr);
        if (!orr.ok()) {
            r.fail("drl: bad optimizer state: " + orr.error());
            return;
        }
    }
    rng_.setState(rng);
    ready_ = ready;
    maeFraction_ = mae;
    adjustSign_ = sign;
    targetKind_ = target;
    lastGoodWeights_ = last_good;
    batch_ = TrainingBatch{};
    batch_.target = target;
    batch_.featureNorm.restore(std::move(feat_mins),
                               std::move(feat_maxs));
    batch_.targetNorm.restore(std::move(target_mins),
                              std::move(target_maxs));
}

} // namespace core
} // namespace geo
