/**
 * @file
 * Black-box flight recorder: an always-on, lock-light bounded ring of
 * recent pipeline events that can be dumped to disk from contexts
 * where nothing else survives — fatal signals, fault-injector kill
 * points, safe-mode entry.
 *
 * Recording discipline mirrors the metric registry: record() is one
 * relaxed fetch_add plus a handful of relaxed stores into a fixed-size
 * slot array — no locks, no allocation, no clock reads (callers pass
 * the sim timestamp they already have). The ring overwrites oldest
 * entries, so the recorder always holds the most recent kCapacity
 * events leading up to whatever went wrong.
 *
 * Dumping is best-effort and usable from a signal handler: dumpTo()
 * formats each slot with snprintf into a stack buffer and write(2)s
 * it — no allocation, no locks. Entries a racing writer is mid-way
 * through are detected via a per-slot sequence stamp and skipped
 * rather than emitted torn.
 *
 * The dump format ("geo-flight-1") is one header line followed by one
 * space-separated line per event, oldest first:
 *
 *   geo-flight-1 recorded=<total> capacity=<n>
 *   <seq> <sim-time> <kind> <a0> <a1> <a2>
 *
 * Argument meaning per kind (0 when unused):
 *   phase_begin/phase_end     a0=cycle a1=phase(0 monitor, 1 train,
 *                             2 propose, 3 migrate)
 *   quarantine_reject         a0=reason(QuarantineReason) a1=device
 *   breaker_trip              a0=device a1=failure streak
 *   safe_mode_enter/exit      a0=cycle
 *   layout_hold               a0=cycle a1=admitted a2=quarantined
 *   checkpoint_write          a0=cycle a1=payload bytes
 *   crash_point               a0=CrashPoint a1=cycle
 *   train_diverged            a0=epochs run
 *   train_cancelled           a0=epochs run
 *   moves_abandoned           a0=moves
 *   restore                   a0=cycle
 */

#ifndef GEO_UTIL_FLIGHT_RECORDER_HH
#define GEO_UTIL_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace geo {
namespace util {

/** What happened (see the file comment for the argument meanings). */
enum class FlightKind : uint8_t {
    PhaseBegin,
    PhaseEnd,
    QuarantineReject,
    BreakerTrip,
    SafeModeEnter,
    SafeModeExit,
    LayoutHold,
    CheckpointWrite,
    CrashPoint,
    TrainDiverged,
    TrainCancelled,
    MovesAbandoned,
    Restore,
};

constexpr size_t kFlightKindCount = 13;

/** Stable lowercase name used in the dump ("phase_begin", ...). */
const char *flightKindName(FlightKind kind);

/** One recorded event (POD; copied out by snapshot()). */
struct FlightEvent
{
    uint64_t seq = 0;
    double sim = 0.0; ///< sim-clock seconds (0 = no clock at hand)
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint64_t a2 = 0;
    FlightKind kind = FlightKind::PhaseBegin;
};

/**
 * The process-wide event ring. Always on; recording costs a few
 * relaxed atomics whether or not anyone ever dumps it.
 */
class FlightRecorder
{
  public:
    static constexpr size_t kCapacity = 4096;

    /** Record one event. Safe from any thread; never blocks. */
    void record(FlightKind kind, double sim_time, uint64_t a0 = 0,
                uint64_t a1 = 0, uint64_t a2 = 0);

    /** Total events ever recorded (>= size()). */
    uint64_t recorded() const
    {
        return next_.load(std::memory_order_relaxed);
    }

    /** Events currently held (min(recorded, kCapacity)). */
    size_t size() const;

    /** Copy the ring out, oldest first, skipping torn slots. Not for
     *  signal context (allocates) — use dumpTo() there. */
    std::vector<FlightEvent> snapshot() const;

    /** Forget everything recorded so far (tests / run boundaries). */
    void clear();

    /**
     * Register the directory crashDump() writes into. The path is
     * copied into a fixed internal buffer so later dumps need no
     * allocation. An empty string disables crash dumps.
     */
    void setDumpDir(const std::string &dir);

    bool dumpDirSet() const { return dumpDir_[0] != '\0'; }

    /**
     * Write the ring to `<dump-dir>/flight-<tag>-<pid>.txt`.
     * Best-effort and async-signal-friendly (open/snprintf/write
     * only). @return false when no directory is set or I/O failed.
     */
    bool crashDump(const char *tag);

    /** Serialize the ring to an open descriptor (see crashDump). */
    bool dumpTo(int fd) const;

    /** Convenience wrapper: open `path`, dumpTo(), close. */
    bool dumpToFile(const std::string &path) const;

    /**
     * Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that dump
     * the global ring (and crash-flush the global TraceCollector),
     * then re-raise with the default disposition so the process still
     * dies with the original signal.
     */
    static void installSignalHandlers();

    /** The process-wide recorder every component records into. */
    static FlightRecorder &global();

  private:
    struct Slot
    {
        /** 0 = never written; otherwise seq+1 of the event it holds.
         *  Stored last (release) so readers can detect torn writes. */
        std::atomic<uint64_t> stamp{0};
        /** Payload fields are relaxed atomics: once the ring wraps,
         *  two writers whose sequence numbers are kCapacity apart can
         *  land on the same slot concurrently, and readers race with
         *  writers by design. The stamp protocol already discards
         *  mixed payloads; the atomics make the accesses themselves
         *  defined behavior. */
        std::atomic<double> sim{0.0};
        std::atomic<uint64_t> a0{0};
        std::atomic<uint64_t> a1{0};
        std::atomic<uint64_t> a2{0};
        std::atomic<FlightKind> kind{FlightKind::PhaseBegin};
    };

    std::atomic<uint64_t> next_{0};
    Slot slots_[kCapacity];
    char dumpDir_[512] = {0};
};

} // namespace util
} // namespace geo

#endif // GEO_UTIL_FLIGHT_RECORDER_HH
