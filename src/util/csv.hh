/**
 * @file
 * Minimal CSV reading/writing for traces and experiment series.
 *
 * Values containing commas, quotes or newlines are quoted per RFC 4180.
 */

#ifndef GEO_UTIL_CSV_HH
#define GEO_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace geo {

/** Stream-backed CSV writer. The stream must outlive the writer. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os);

    /** Write one row, quoting fields as needed. */
    void writeRow(const std::vector<std::string> &fields);

    /** Write a row of doubles with full round-trip precision. */
    void writeNumericRow(const std::vector<double> &values);

  private:
    std::ostream &os_;
};

/** Parse one CSV line into fields (handles RFC 4180 quoting). */
std::vector<std::string> parseCsvLine(const std::string &line);

/** Parse a whole CSV document (splits on '\n', ignores trailing blank). */
std::vector<std::vector<std::string>> parseCsv(const std::string &text);

/** Escape a single field per RFC 4180 (quote only when needed). */
std::string csvEscape(const std::string &field);

} // namespace geo

#endif // GEO_UTIL_CSV_HH
