/**
 * @file
 * Scoped-span event tracing in Chrome trace_event JSON format
 * (load the output in Perfetto or chrome://tracing).
 *
 * Two time domains, exported as two trace "processes":
 *
 *  - Host (pid 1): steady-clock wall time of compute work — model
 *    training, candidate scoring, decision-cycle phases. Spans come
 *    from ScopedSpan (RAII) on the current thread.
 *  - Sim (pid 2): SimClock seconds of simulated work — migrations,
 *    fault episodes. Callers pass sim timestamps explicitly because
 *    only they know which clock their span lives on.
 *
 * Recording discipline: the collector is disabled by default and every
 * record call is a single relaxed atomic load away from a no-op. When
 * enabled, events go into a buffer preallocated at enable() time —
 * recording never allocates; when the buffer fills, further events are
 * dropped and counted (a truncated trace beats a perturbed benchmark).
 * Event names/categories must be string literals (the collector stores
 * the pointers).
 *
 * The GEO_TRACE compile gate (CMake option, default ON) removes the
 * instrumentation macros entirely: with -DGEO_TRACE=0 every GEO_SPAN /
 * GEO_SIM_SPAN / GEO_TRACE_INSTANT expands to nothing, proving the
 * instrumented hot paths cost nothing when tracing is compiled out.
 */

#ifndef GEO_UTIL_TRACE_EVENT_HH
#define GEO_UTIL_TRACE_EVENT_HH

#ifndef GEO_TRACE
#define GEO_TRACE 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace geo {
namespace util {

/** Which clock a span's timestamps come from. */
enum class TimeDomain : uint8_t {
    Host, ///< steady clock, microseconds since tracing was enabled
    Sim,  ///< SimClock, simulated seconds (converted to "us" on export)
};

/**
 * Collects trace events and serializes them as Chrome trace JSON.
 */
class TraceCollector
{
  public:
    /**
     * Start collecting. Preallocates space for `capacity` events; all
     * later recording is allocation-free. Re-enabling clears the
     * buffer and restarts the host-time epoch.
     */
    void enable(size_t capacity = kDefaultCapacity);

    /** Stop collecting (already-buffered events are kept). */
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all buffered events (the enabled state is unchanged). */
    void clear();

    /**
     * Record a completed span ("ph":"X"). Host domain: `ts` and `dur`
     * in microseconds (see nowUs()). Sim domain: in simulated seconds.
     * `cat` and `name` must outlive the collector (string literals).
     */
    void completeEvent(const char *cat, const char *name,
                       TimeDomain domain, double ts, double dur);

    /** Record an instant event ("ph":"i"). Units as completeEvent. */
    void instantEvent(const char *cat, const char *name,
                      TimeDomain domain, double ts);

    /** Record a counter sample ("ph":"C"). Units as completeEvent. */
    void counterEvent(const char *name, TimeDomain domain, double ts,
                      double value);

    /** Events currently buffered. */
    size_t eventCount() const;

    /** Events rejected because the buffer was full. */
    uint64_t droppedCount() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Serialize the buffer as Chrome trace JSON. */
    std::string toJson() const;

    /** Write toJson() to a file. @return false on I/O error. */
    bool writeJsonFile(const std::string &path) const;

    /**
     * Register the path crashFlush() writes to (copied into a fixed
     * internal buffer; empty disables). Set this alongside the normal
     * trace output path so a crashed run keeps its trace tail.
     */
    void setCrashFlushPath(const std::string &path);

    /**
     * Best-effort dump of the buffered events for fatal-signal and
     * kill-point paths: the already-recorded POD events are formatted
     * with snprintf into a stack buffer and written with write(2) —
     * no allocation, no locks (a recorder racing mid-push can cost at
     * most the event it was appending). The output is the same Chrome
     * trace JSON as toJson(). @return false when no crash path is
     * registered or I/O failed.
     */
    bool crashFlush() const;

    /** crashFlush() to an already-open descriptor. */
    bool crashFlushTo(int fd) const;

    /** Host-domain timestamp: steady-clock microseconds since the
     *  collector was (first) enabled. */
    double nowUs() const;

    /** The process-wide collector the GEO_SPAN macros record into. */
    static TraceCollector &global();

    static constexpr size_t kDefaultCapacity = 1 << 16;

  private:
    struct Event
    {
        const char *cat;
        const char *name;
        double ts;    ///< host: us; sim: seconds
        double dur;   ///< span length (same unit as ts)
        double value; ///< counter events
        uint32_t tid;
        char phase; ///< 'X' span, 'i' instant, 'C' counter
        TimeDomain domain;
    };

    void push(const Event &event);

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<int64_t> epochNs_{0};
    mutable std::mutex mutex_;
    std::vector<Event> events_; ///< capacity fixed at enable() time
    char crashPath_[512] = {0}; ///< crashFlush() destination
};

/**
 * RAII host-domain span: measures construction-to-destruction on the
 * steady clock and records it into the global collector. When tracing
 * is disabled this is two relaxed loads and no clock reads.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *cat, const char *name)
        : cat_(cat), name_(name),
          active_(TraceCollector::global().enabled())
    {
        if (active_)
            startUs_ = TraceCollector::global().nowUs();
    }

    ~ScopedSpan()
    {
        if (!active_)
            return;
        TraceCollector &collector = TraceCollector::global();
        collector.completeEvent(cat_, name_, TimeDomain::Host, startUs_,
                                collector.nowUs() - startUs_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *cat_;
    const char *name_;
    bool active_;
    double startUs_ = 0.0;
};

/** Record a sim-domain span (timestamps in simulated seconds). */
inline void
traceSimSpan(const char *cat, const char *name, double start_s,
             double dur_s)
{
    TraceCollector &collector = TraceCollector::global();
    if (collector.enabled())
        collector.completeEvent(cat, name, TimeDomain::Sim, start_s,
                                dur_s);
}

/** Record an instant event in either domain. */
inline void
traceInstant(const char *cat, const char *name, TimeDomain domain,
             double ts)
{
    TraceCollector &collector = TraceCollector::global();
    if (collector.enabled())
        collector.instantEvent(cat, name, domain, ts);
}

} // namespace util
} // namespace geo

#if GEO_TRACE
#define GEO_TRACE_CONCAT2(a, b) a##b
#define GEO_TRACE_CONCAT(a, b) GEO_TRACE_CONCAT2(a, b)
/** Host-domain scoped span covering the rest of the enclosing block. */
#define GEO_SPAN(cat, name)                                             \
    ::geo::util::ScopedSpan GEO_TRACE_CONCAT(geo_span_, __LINE__)       \
    {                                                                   \
        cat, name                                                       \
    }
/** Sim-domain span from explicit (start, duration) sim seconds. */
#define GEO_SIM_SPAN(cat, name, start_s, dur_s)                         \
    ::geo::util::traceSimSpan(cat, name, start_s, dur_s)
/** Instant marker in the given domain. */
#define GEO_TRACE_INSTANT(cat, name, domain, ts)                        \
    ::geo::util::traceInstant(cat, name, domain, ts)
#else
#define GEO_SPAN(cat, name)                                             \
    do {                                                                \
    } while (0)
#define GEO_SIM_SPAN(cat, name, start_s, dur_s)                         \
    do {                                                                \
    } while (0)
#define GEO_TRACE_INSTANT(cat, name, domain, ts)                        \
    do {                                                                \
    } while (0)
#endif

#endif // GEO_UTIL_TRACE_EVENT_HH
