/**
 * @file
 * Series smoothing used by the Interface Daemon (paper Section V-E).
 *
 * The paper removes small variations from ReplayDB training data with a
 * moving average and rejects the cumulative average because it erases the
 * short-term dips that signal an incoming slowdown. Both are provided
 * (the cumulative variant is used in the ablation benchmarks), plus an
 * exponential moving average that the paper discusses as the heuristic
 * alternative to a learned model.
 */

#ifndef GEO_UTIL_SMOOTHING_HH
#define GEO_UTIL_SMOOTHING_HH

#include <cstddef>
#include <deque>
#include <vector>

namespace geo {

/**
 * Trailing moving average over the last `window` samples.
 *
 * Output i is the mean of inputs max(0, i-window+1) .. i, so the series
 * keeps its length and early samples are averaged over a shorter prefix.
 */
std::vector<double> movingAverage(const std::vector<double> &series,
                                  size_t window);

/** Cumulative average: output i is the mean of inputs 0 .. i. */
std::vector<double> cumulativeAverage(const std::vector<double> &series);

/** Exponential moving average with smoothing factor alpha in (0, 1]. */
std::vector<double> exponentialMovingAverage(
    const std::vector<double> &series, double alpha);

/**
 * Streaming counterpart of movingAverage() for online smoothing.
 */
class MovingAverageFilter
{
  public:
    /** @param window number of trailing samples to average (>= 1). */
    explicit MovingAverageFilter(size_t window);

    /** Push one sample and return the smoothed value. */
    double push(double value);

    /** Current smoothed value (0 before any sample). */
    double value() const;

    /** Number of samples currently inside the window. */
    size_t fill() const { return buffer_.size(); }

    void reset();

  private:
    size_t window_;
    std::deque<double> buffer_;
    double sum_ = 0.0;
};

} // namespace geo

#endif // GEO_UTIL_SMOOTHING_HH
