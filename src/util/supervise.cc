#include "util/supervise.hh"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace geo {
namespace util {

SuperviseResult
runSupervised(const std::function<int(int, bool)> &body,
              const SuperviseConfig &config)
{
    SuperviseResult result;
    double backoff = static_cast<double>(config.backoffMs);

    for (int attempt = 0;; ++attempt) {
        ++result.attempts;
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("runSupervised: fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: run one attempt and exit without unwinding, so a
            // crash in the body can't corrupt the supervisor's state.
            ::_exit(body(attempt, attempt > 0));
        }

        int status = 0;
        while (::waitpid(pid, &status, 0) < 0) {
            if (errno != EINTR)
                fatal("runSupervised: waitpid failed: %s",
                      std::strerror(errno));
        }

        bool crashed = false;
        if (WIFSIGNALED(status)) {
            result.exitCode = 128 + WTERMSIG(status);
            crashed = true;
        } else {
            result.exitCode = WEXITSTATUS(status);
            crashed = result.exitCode == config.crashExitCode;
        }
        if (!crashed)
            return result;

        if (result.restarts >= config.maxRestarts) {
            warn("supervisor: child still crashing after %d restart(s); "
                 "giving up", result.restarts);
            result.gaveUp = true;
            return result;
        }

        int delayMs = static_cast<int>(backoff);
        if (delayMs > config.backoffCapMs)
            delayMs = config.backoffCapMs;
        inform("supervisor: child crashed (code %d); restart %d/%d after "
               "%d ms", result.exitCode, result.restarts + 1,
               config.maxRestarts, delayMs);
        if (delayMs > 0)
            ::usleep(static_cast<useconds_t>(delayMs) * 1000);
        result.totalBackoffMs += delayMs;
        backoff *= config.backoffMultiplier;
        ++result.restarts;
    }
}

} // namespace util
} // namespace geo
