/**
 * @file
 * Crash-safe file writes (temp file + fsync + rename).
 *
 * A process killed mid-write must never leave a half-written file at
 * the destination path: readers either see the complete old contents
 * or the complete new contents. The recipe is the classic POSIX one —
 * write to a temporary file in the same directory, fsync it, rename()
 * over the destination, then fsync the directory so the rename itself
 * is durable.
 */

#ifndef GEO_UTIL_FS_ATOMIC_HH
#define GEO_UTIL_FS_ATOMIC_HH

#include <string>

namespace geo {
namespace util {

/**
 * Atomically replace (or create) `path` with `content`.
 *
 * The temporary file is created next to `path` (same filesystem, so
 * the rename is atomic) and unlinked on any failure.
 *
 * @return false on any I/O error (a warn() is logged with errno).
 */
bool writeFileAtomic(const std::string &path, const std::string &content);

/**
 * Durably append `len` bytes to an existing file whose current size
 * is exactly `expected_size` (the caller's record of what it has
 * already written).  The size check makes the append safe for
 * cursor-tracked logs: if anything else touched the file — truncated,
 * replaced, deleted — the append is refused and the caller should
 * fall back to a full writeFileAtomic() rewrite.  The data is
 * fsync()ed before returning; a crash mid-append can leave a partial
 * tail, which cursor-based recovery truncates on restart.
 *
 * @return false if the file is missing, its size does not match, or
 *         any I/O error occurs (a warn() is logged with errno).
 */
bool appendFileDurable(const std::string &path, const char *data,
                       size_t len, uint64_t expected_size);

/**
 * Read a whole file into `out`.
 * @return false if the file cannot be opened or read.
 */
bool readFileAll(const std::string &path, std::string &out);

} // namespace util
} // namespace geo

#endif // GEO_UTIL_FS_ATOMIC_HH
