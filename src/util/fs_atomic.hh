/**
 * @file
 * Crash-safe file writes (temp file + fsync + rename).
 *
 * A process killed mid-write must never leave a half-written file at
 * the destination path: readers either see the complete old contents
 * or the complete new contents. The recipe is the classic POSIX one —
 * write to a temporary file in the same directory, fsync it, rename()
 * over the destination, then fsync the directory so the rename itself
 * is durable.
 */

#ifndef GEO_UTIL_FS_ATOMIC_HH
#define GEO_UTIL_FS_ATOMIC_HH

#include <string>

namespace geo {
namespace util {

/**
 * Atomically replace (or create) `path` with `content`.
 *
 * The temporary file is created next to `path` (same filesystem, so
 * the rename is atomic) and unlinked on any failure.
 *
 * @return false on any I/O error (a warn() is logged with errno).
 */
bool writeFileAtomic(const std::string &path, const std::string &content);

/**
 * Read a whole file into `out`.
 * @return false if the file cannot be opened or read.
 */
bool readFileAll(const std::string &path, std::string &out);

} // namespace util
} // namespace geo

#endif // GEO_UTIL_FS_ATOMIC_HH
