#include "util/fs_atomic.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/logging.hh"

namespace geo {
namespace util {

namespace {

/** Directory part of a path ("." when there is no separator). */
std::string
dirOf(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** fsync a directory so a rename inside it is durable. */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return; // best effort: some filesystems refuse O_DIRECTORY
    ::fsync(fd);
    ::close(fd);
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    // The temp file must live in the destination directory: rename()
    // is only atomic within one filesystem.
    std::string tmp = path + ".tmp.XXXXXX";
    std::vector<char> buf(tmp.begin(), tmp.end());
    buf.push_back('\0');
    int fd = ::mkstemp(buf.data());
    if (fd < 0) {
        warn("writeFileAtomic: mkstemp for %s: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    tmp.assign(buf.data());

    bool ok = true;
    const char *data = content.data();
    size_t remaining = content.size();
    while (remaining > 0) {
        ssize_t written = ::write(fd, data, remaining);
        if (written < 0) {
            if (errno == EINTR)
                continue;
            warn("writeFileAtomic: write %s: %s", tmp.c_str(),
                 std::strerror(errno));
            ok = false;
            break;
        }
        data += written;
        remaining -= static_cast<size_t>(written);
    }
    if (ok && ::fsync(fd) != 0) {
        warn("writeFileAtomic: fsync %s: %s", tmp.c_str(),
             std::strerror(errno));
        ok = false;
    }
    ::close(fd);

    if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("writeFileAtomic: rename %s -> %s: %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        ok = false;
    }
    if (!ok) {
        ::unlink(tmp.c_str());
        return false;
    }
    syncDir(dirOf(path));
    return true;
}

bool
appendFileDurable(const std::string &path, const char *data, size_t len,
                  uint64_t expected_size)
{
    // No O_CREAT: an append is only meaningful onto the file this
    // caller has already written; a missing file means the history is
    // gone and the caller must rewrite it whole.
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0)
        return false;
    struct stat st{};
    if (::fstat(fd, &st) != 0 ||
        static_cast<uint64_t>(st.st_size) != expected_size) {
        ::close(fd);
        return false;
    }
    bool ok = true;
    size_t remaining = len;
    while (remaining > 0) {
        ssize_t written = ::write(fd, data, remaining);
        if (written < 0) {
            if (errno == EINTR)
                continue;
            warn("appendFileDurable: write %s: %s", path.c_str(),
                 std::strerror(errno));
            ok = false;
            break;
        }
        data += written;
        remaining -= static_cast<size_t>(written);
    }
    if (ok && ::fsync(fd) != 0) {
        warn("appendFileDurable: fsync %s: %s", path.c_str(),
             std::strerror(errno));
        ok = false;
    }
    ::close(fd);
    return ok;
}

bool
readFileAll(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    if (is.bad())
        return false;
    out = os.str();
    return true;
}

} // namespace util
} // namespace geo
