#include "util/csv.hh"

#include <cstdio>
#include <sstream>

namespace geo {

CsvWriter::CsvWriter(std::ostream &os) : os_(os) {}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << csvEscape(fields[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &values)
{
    char buf[64];
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            os_ << ',';
        std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
        os_ << buf;
    }
    os_ << '\n';
}

std::string
csvEscape(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (c == '\r') {
            // Ignore carriage returns from CRLF input.
        } else {
            current += c;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        rows.push_back(parseCsvLine(line));
    }
    return rows;
}

} // namespace geo
