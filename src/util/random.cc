#include "util/random.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace geo {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo (%lld) > hi (%lld)",
              static_cast<long long>(lo), static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>((*this)());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = (~0ULL) - ((~0ULL) % span);
    uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit && limit != 0);
    return lo + static_cast<int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: rate must be positive, got %f", rate);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("weightedIndex: negative weight %f", w);
        total += w;
    }
    if (total <= 0.0)
        panic("weightedIndex: all weights are zero");
    double mark = uniform() * total;
    double cum = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        cum += weights[i];
        if (mark < cum)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace geo
