/**
 * @file
 * Fixed-size worker pool for the engine's parallel hot paths.
 *
 * Two entry points: submit() enqueues an arbitrary task and returns a
 * future, parallelFor() splits an index range into chunks and runs the
 * chunks across the workers with the caller participating.
 *
 * Determinism contract: parallelFor's chunk boundaries depend only on
 * (count, grain), never on the worker count or scheduling order, so a
 * caller that seeds per-chunk RNGs from the chunk index and combines
 * per-chunk partial results in chunk order is bit-identical across
 * 1, 2 or N workers — and to a fully serial run.
 *
 * Calls from inside a worker thread degrade gracefully: nested
 * parallelFor runs inline and nested submit executes eagerly, so a
 * parallel model search whose inner training loops also ask for
 * parallelism cannot deadlock the pool.
 */

#ifndef GEO_UTIL_THREAD_POOL_HH
#define GEO_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/metrics.hh"

namespace geo {
namespace util {

/**
 * Fixed worker-count thread pool with deterministic parallelFor.
 */
class ThreadPool
{
  public:
    /**
     * @param workers number of worker threads; 0 picks the hardware
     *        concurrency (at least 1).
     */
    explicit ThreadPool(size_t workers = 0);

    /** Joins all workers (pending tasks are drained first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t workerCount() const { return workers_.size(); }

    /**
     * Enqueue a task and get a future for its result. When called from
     * one of this pool's worker threads the task runs inline (eager)
     * to keep nested fan-outs deadlock-free.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        if (workers_.empty() || onWorkerThread()) {
            (*task)();
            return future;
        }
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run fn(chunk, begin, end) over [0, count) split into fixed
     * chunks of `grain` indices (the last chunk may be short). The
     * caller thread participates; returns when every chunk completed.
     *
     * Chunk boundaries depend only on (count, grain) — see the
     * determinism contract above.
     */
    void parallelFor(
        size_t count, size_t grain,
        const std::function<void(size_t chunk, size_t begin, size_t end)>
            &fn);

    /** True when the calling thread is one of this pool's workers. */
    bool onWorkerThread() const;

    /**
     * The process-wide pool, sized from the GEO_THREADS environment
     * variable (default: hardware concurrency). Constructed on first
     * use.
     */
    static ThreadPool &global();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;

    // Registry handles (resolved in the constructor, so the registry
    // outlives every pool including the global one).
    Counter *tasksMetric_;
    Gauge *queueDepthMetric_;
    Histogram *taskMsMetric_;
};

} // namespace util
} // namespace geo

#endif // GEO_UTIL_THREAD_POOL_HH
