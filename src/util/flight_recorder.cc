#include "util/flight_recorder.hh"

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.hh"
#include "util/trace_event.hh"

namespace geo {
namespace util {

const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
      case FlightKind::PhaseBegin:
        return "phase_begin";
      case FlightKind::PhaseEnd:
        return "phase_end";
      case FlightKind::QuarantineReject:
        return "quarantine_reject";
      case FlightKind::BreakerTrip:
        return "breaker_trip";
      case FlightKind::SafeModeEnter:
        return "safe_mode_enter";
      case FlightKind::SafeModeExit:
        return "safe_mode_exit";
      case FlightKind::LayoutHold:
        return "layout_hold";
      case FlightKind::CheckpointWrite:
        return "checkpoint_write";
      case FlightKind::CrashPoint:
        return "crash_point";
      case FlightKind::TrainDiverged:
        return "train_diverged";
      case FlightKind::TrainCancelled:
        return "train_cancelled";
      case FlightKind::MovesAbandoned:
        return "moves_abandoned";
      case FlightKind::Restore:
        return "restore";
    }
    return "unknown";
}

void
FlightRecorder::record(FlightKind kind, double sim_time, uint64_t a0,
                       uint64_t a1, uint64_t a2)
{
    uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[seq % kCapacity];
    // Invalidate first so a concurrent dump never emits a half-new
    // half-old line; the payload stores may still interleave with a
    // racing writer or reader, but the final stamp mismatch makes
    // readers skip the slot.
    slot.stamp.store(0, std::memory_order_release);
    slot.sim.store(sim_time, std::memory_order_relaxed);
    slot.a0.store(a0, std::memory_order_relaxed);
    slot.a1.store(a1, std::memory_order_relaxed);
    slot.a2.store(a2, std::memory_order_relaxed);
    slot.kind.store(kind, std::memory_order_relaxed);
    slot.stamp.store(seq + 1, std::memory_order_release);
}

size_t
FlightRecorder::size() const
{
    uint64_t total = next_.load(std::memory_order_relaxed);
    return total < kCapacity ? static_cast<size_t>(total) : kCapacity;
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    uint64_t total = next_.load(std::memory_order_acquire);
    uint64_t first = total > kCapacity ? total - kCapacity : 0;
    std::vector<FlightEvent> out;
    out.reserve(static_cast<size_t>(total - first));
    for (uint64_t seq = first; seq < total; ++seq) {
        const Slot &slot = slots_[seq % kCapacity];
        if (slot.stamp.load(std::memory_order_acquire) != seq + 1)
            continue; // torn or already overwritten
        FlightEvent event;
        event.seq = seq;
        event.sim = slot.sim.load(std::memory_order_relaxed);
        event.a0 = slot.a0.load(std::memory_order_relaxed);
        event.a1 = slot.a1.load(std::memory_order_relaxed);
        event.a2 = slot.a2.load(std::memory_order_relaxed);
        event.kind = slot.kind.load(std::memory_order_relaxed);
        if (slot.stamp.load(std::memory_order_acquire) != seq + 1)
            continue; // overwritten while copying
        out.push_back(event);
    }
    return out;
}

void
FlightRecorder::clear()
{
    for (Slot &slot : slots_)
        slot.stamp.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
}

void
FlightRecorder::setDumpDir(const std::string &dir)
{
    size_t n = dir.size();
    if (n >= sizeof dumpDir_)
        n = sizeof dumpDir_ - 1;
    std::memcpy(dumpDir_, dir.data(), n);
    dumpDir_[n] = '\0';
}

bool
FlightRecorder::dumpTo(int fd) const
{
    char line[192];
    uint64_t total = next_.load(std::memory_order_acquire);
    int len = std::snprintf(line, sizeof line,
                            "geo-flight-1 recorded=%" PRIu64
                            " capacity=%zu\n",
                            total, kCapacity);
    if (len < 0 || ::write(fd, line, static_cast<size_t>(len)) != len)
        return false;
    uint64_t first = total > kCapacity ? total - kCapacity : 0;
    for (uint64_t seq = first; seq < total; ++seq) {
        const Slot &slot = slots_[seq % kCapacity];
        if (slot.stamp.load(std::memory_order_acquire) != seq + 1)
            continue;
        len = std::snprintf(
            line, sizeof line,
            "%" PRIu64 " %.6f %s %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
            seq, slot.sim.load(std::memory_order_relaxed),
            flightKindName(slot.kind.load(std::memory_order_relaxed)),
            slot.a0.load(std::memory_order_relaxed),
            slot.a1.load(std::memory_order_relaxed),
            slot.a2.load(std::memory_order_relaxed));
        if (slot.stamp.load(std::memory_order_acquire) != seq + 1)
            continue; // overwritten while formatting: drop the line
        if (len < 0 || ::write(fd, line, static_cast<size_t>(len)) != len)
            return false;
    }
    return true;
}

bool
FlightRecorder::dumpToFile(const std::string &path) const
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("FlightRecorder: cannot open %s: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    bool ok = dumpTo(fd);
    ::close(fd);
    return ok;
}

bool
FlightRecorder::crashDump(const char *tag)
{
    if (!dumpDirSet())
        return false;
    char path[640];
    int len = std::snprintf(path, sizeof path, "%s/flight-%s-%ld.txt",
                            dumpDir_, tag,
                            static_cast<long>(::getpid()));
    if (len < 0 || static_cast<size_t>(len) >= sizeof path)
        return false;
    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    bool ok = dumpTo(fd);
    ::close(fd);
    return ok;
}

namespace {

void
fatalSignalHandler(int sig)
{
    // Best-effort post-mortem artifacts, then die with the original
    // signal under its default disposition (SA_RESETHAND restored it).
    FlightRecorder::global().crashDump("signal");
    TraceCollector::global().crashFlush();
    ::raise(sig);
}

} // namespace

void
FlightRecorder::installSignalHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = fatalSignalHandler;
    action.sa_flags = SA_RESETHAND;
    sigemptyset(&action.sa_mask);
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
        ::sigaction(sig, &action, nullptr);
}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

} // namespace util
} // namespace geo
