/**
 * @file
 * Cooperative phase watchdog for the decision cycle.
 *
 * Each pipeline phase (monitor, train, propose, migrate) can be given
 * a SimClock budget. The watchdog does not preempt anything: long
 * loops poll() it at natural yield points (between migration attempts,
 * at training epoch boundaries, inside thread-pool tasks) and bail out
 * when the budget is blown. The first overrun of a phase fires the
 * shared CancelToken, bumps the `guardrails.deadline_exceeded` counter
 * and drops a trace instant; later polls of the same phase just keep
 * reporting "cancelled".
 *
 * Threading: beginPhase()/poll()/endPhase() belong to the cycle's
 * owning thread. Worker tasks may only read token().cancelled(), which
 * is a relaxed atomic load — cheap enough for inner loops.
 */

#ifndef GEO_UTIL_WATCHDOG_HH
#define GEO_UTIL_WATCHDOG_HH

#include <atomic>
#include <cstdint>

#include "util/metrics.hh"

namespace geo {
namespace util {

/**
 * Shared cancellation flag: set once by the watchdog, read by any
 * number of worker threads.
 */
class CancelToken
{
  public:
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
    void reset() { cancelled_.store(false, std::memory_order_relaxed); }

    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/**
 * Deadline monitor for one phase at a time.
 */
class Watchdog
{
  public:
    Watchdog();

    /**
     * Arm the watchdog for a phase starting at sim time `now` with
     * `budget_seconds` of sim time to spend (<= 0 disables the
     * deadline). Resets the cancel token.
     */
    void beginPhase(const char *phase, double now, double budget_seconds);

    /**
     * Check the deadline at sim time `now`. Returns true once the
     * phase has overrun (and keeps returning true until the next
     * beginPhase). The first overrun cancels the token and records
     * the metric + trace instant.
     */
    bool poll(double now);

    /** Close the phase; the overrun count survives, the arm does not. */
    void endPhase();

    /** The shared cancellation flag workers watch. */
    CancelToken &token() { return token_; }
    const CancelToken &token() const { return token_; }

    /** True when the currently armed phase has fired. */
    bool firedThisPhase() const { return fired_; }

    /** Lifetime overrun count (restored from checkpoints by the
     *  owning Guardrails, not here). */
    uint64_t overruns() const { return overruns_; }
    void setOverruns(uint64_t n) { overruns_ = n; }

    /** Name of the phase currently armed ("" outside a phase). */
    const char *phase() const { return phase_; }

  private:
    CancelToken token_;
    const char *phase_ = "";
    double start_ = 0.0;
    double budget_ = 0.0;
    bool active_ = false;
    bool fired_ = false;
    uint64_t overruns_ = 0;
    Counter *overrunMetric_; ///< guardrails.deadline_exceeded
};

} // namespace util
} // namespace geo

#endif // GEO_UTIL_WATCHDOG_HH
