/**
 * @file
 * Process-wide metric registry: named counters, gauges and
 * log-bucketed histograms for the agent pipeline's self-telemetry.
 *
 * Design rules (the hot path is a decision cycle scoring thousands of
 * candidates while worker threads train models):
 *
 *  - recording is lock-free: counters and histogram buckets are relaxed
 *    atomics, so instrumentation never serializes the instrumented code;
 *  - recording is allocation-free: components resolve their metric
 *    handles once (construction time) and keep the returned reference —
 *    handle addresses are stable for the registry's lifetime;
 *  - reading is approximate under concurrency: snapshots are taken
 *    metric-by-metric without a global lock, which is fine for
 *    telemetry and keeps the exporters off the recording paths.
 *
 * Histograms use base-2 log bucketing (one bucket per power of two)
 * over [2^kMinExp, 2^kMaxExp), plus an underflow bucket for values
 * <= 2^kMinExp (including zero and negatives) and an overflow bucket.
 * Quantiles are estimated by linear interpolation inside the bucket
 * where the target rank falls, clamped to the observed min/max.
 *
 * Snapshots export as JSON ("geo-metrics-1" schema) or Prometheus-style
 * text exposition (histograms become summaries with p50/p95/p99).
 */

#ifndef GEO_UTIL_METRICS_HH
#define GEO_UTIL_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace geo {
namespace util {

/** Monotonic event counter. */
class Counter
{
  public:
    void add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    void inc() { add(1); }
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time view of one histogram. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; ///< 0 when count == 0
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Lock-free log-bucketed histogram.
 */
class Histogram
{
  public:
    /** Bucket 0 holds values <= 2^kMinExp (incl. zero/negatives). */
    static constexpr int kMinExp = -20; ///< ~9.5e-7
    static constexpr int kMaxExp = 44;  ///< ~1.76e13
    /** underflow + one per power of two + overflow. */
    static constexpr size_t kBucketCount =
        static_cast<size_t>(kMaxExp - kMinExp) + 2;

    /** Index of the bucket `value` lands in. */
    static size_t bucketIndex(double value);
    /** Inclusive lower bound of bucket `index` (0 for the underflow). */
    static double bucketLowerBound(size_t index);
    /** Exclusive upper bound of bucket `index`. */
    static double bucketUpperBound(size_t index);

    /** Record one observation (relaxed atomics; no locks, no allocs). */
    void record(double value);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Estimate the q-quantile (q in [0, 1]) from the buckets. */
    double quantile(double q) const;

    HistogramSnapshot snapshot() const;

    void reset();

  private:
    std::atomic<uint64_t> buckets_[kBucketCount] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Named metric registry with stable handle addresses.
 */
class MetricRegistry
{
  public:
    /**
     * Look up (or create) a metric by name. The returned reference
     * stays valid for the registry's lifetime — resolve once, keep the
     * handle, record through it. Names are independent per metric
     * kind; the dotted "component.metric" scheme is the convention
     * (see DESIGN.md §7).
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Zero every metric; registrations (and handles) survive. */
    void reset();

    /** Current value of a counter, 0 when it was never registered. */
    uint64_t counterValue(const std::string &name) const;

    /** JSON snapshot ("geo-metrics-1": counters/gauges/histograms). */
    std::string toJson() const;

    /**
     * Attach help text to a metric (any kind; keyed by the dotted
     * name). Exported as the `# HELP` line of the Prometheus
     * exposition, escaped per the format rules. Metrics without help
     * get a generated fallback.
     */
    void setHelp(const std::string &name, const std::string &help);

    /** Prometheus text exposition (dots become underscores, histograms
     *  export as summaries with p50/p95/p99, `# HELP`/`# TYPE` per
     *  metric, label values and help text escaped per the format). */
    std::string toPrometheus() const;

    /** Escape HELP text per the exposition format: backslash and
     *  newline become \\ and \n. */
    static std::string promEscapeHelp(const std::string &text);

    /** Escape a label value per the exposition format: backslash,
     *  double quote and newline become \\, \" and \n. */
    static std::string promEscapeLabel(const std::string &value);

    /** Write toJson() to a file. @return false on I/O error. */
    bool writeJsonFile(const std::string &path) const;

    /** Sorted (name, value) views, for tables and tests. */
    std::vector<std::pair<std::string, uint64_t>> counters() const;
    std::vector<std::pair<std::string, double>> gauges() const;
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histograms() const;

    /** The process-wide registry every component records into. */
    static MetricRegistry &global();

    /**
     * Push a name prefix applied to every subsequent counter(),
     * gauge() and histogram() resolution ("shard0." makes a component
     * constructed under it resolve "shard0.control.moves_applied").
     * Scopes nest by concatenation; setHelp() is never scoped (help
     * text is shared by all shards of a metric). Use the RAII
     * MetricScope guard instead of calling these directly.
     */
    void pushScope(const std::string &prefix);
    void popScope();

    /**
     * Split a shard-scoped name: "shard3.control.moves_applied" fills
     * base = "control.moves_applied", shard = "3" and returns true.
     * Names without a "shard<digits>." prefix return false. The
     * Prometheus exporter uses this to turn the per-shard name prefix
     * into a proper `shard` label.
     */
    static bool splitShardScope(const std::string &name,
                                std::string &base, std::string &shard);

  private:
    mutable std::mutex mutex_; ///< guards the maps, never the metrics
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::string> help_; ///< HELP text by name
    std::vector<std::string> scopes_; ///< active prefixes, innermost last

    /** `name` under the active scope (mutex_ must be held). */
    std::string scoped(const std::string &name) const;

    /** Registered help for `name`, or a generated fallback. */
    std::string helpFor(const std::string &name) const;
};

/**
 * RAII metric scope: components constructed while the guard is alive
 * resolve their handles under `prefix` (the shard coordinator labels
 * each shard's pipeline this way). Recording through already-resolved
 * handles is unaffected — the scope only matters at resolution time.
 */
class MetricScope
{
  public:
    MetricScope(MetricRegistry &registry, const std::string &prefix)
        : registry_(registry)
    {
        registry_.pushScope(prefix);
    }
    ~MetricScope() { registry_.popScope(); }
    MetricScope(const MetricScope &) = delete;
    MetricScope &operator=(const MetricScope &) = delete;

  private:
    MetricRegistry &registry_;
};

} // namespace util
} // namespace geo

#endif // GEO_UTIL_METRICS_HH
