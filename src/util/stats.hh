/**
 * @file
 * Statistics accumulators and correlation measures.
 *
 * These are the numerical building blocks shared by the trace feature
 * analysis (Pearson correlation, Fig. 4 of the paper), the model search
 * (mean absolute relative error, Tables II/III) and the evaluation
 * harness (throughput mean/stddev, Table IV).
 */

#ifndef GEO_UTIL_STATS_HH
#define GEO_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace geo {

/**
 * Streaming accumulator for mean / variance / extrema (Welford update).
 *
 * Numerically stable for long runs; O(1) memory.
 */
class StatAccumulator
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Merge another accumulator into this one. */
    void merge(const StatAccumulator &other);

    /** Remove all samples. */
    void reset();

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (N denominator); 0 with fewer than 2 samples. */
    double variance() const;

    /** Sample variance (N-1 denominator); 0 with fewer than 2 samples. */
    double sampleVariance() const;

    double stddev() const;
    double sampleStddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Raw Welford state, exposed for checkpointing. */
    struct State
    {
        size_t count = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    State state() const { return {count_, mean_, m2_, min_, max_}; }

    void
    restore(const State &s)
    {
        count_ = s.count;
        mean_ = s.mean;
        m2_ = s.m2;
        min_ = s.min;
        max_ = s.max;
    }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Reservoir of samples supporting percentile queries.
 *
 * Keeps every sample (suitable for experiment-sized series); percentile
 * uses linear interpolation between closest ranks.
 */
class PercentileTracker
{
  public:
    void add(double value);
    size_t count() const { return samples_.size(); }

    /** Percentile p in [0, 100]; requires at least one sample. */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 *
 * Returns 0 when either series has zero variance (the convention used by
 * the paper's feature screening: constant features carry no signal).
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Arithmetic mean of a series (0 for an empty series). */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a series. */
double stddev(const std::vector<double> &xs);

/**
 * Mean absolute relative error |pred - target| / |target| in percent.
 *
 * Targets with magnitude below `floor` are skipped to avoid division
 * blow-ups; this mirrors the paper's absolute-relative-error metric of
 * Tables II and III.
 */
double meanAbsoluteRelativeError(const std::vector<double> &predictions,
                                 const std::vector<double> &targets,
                                 double floor = 1e-9);

/** Standard deviation of the per-sample absolute relative error (%). */
double stddevAbsoluteRelativeError(const std::vector<double> &predictions,
                                   const std::vector<double> &targets,
                                   double floor = 1e-9);

/**
 * Signed mean relative error (pred - target) / |target| in percent.
 *
 * The paper uses its sign to decide whether the MAE-based prediction
 * adjustment should be added or subtracted (Section V-G).
 */
double meanSignedRelativeError(const std::vector<double> &predictions,
                               const std::vector<double> &targets,
                               double floor = 1e-9);

} // namespace geo

#endif // GEO_UTIL_STATS_HH
