/**
 * @file
 * Keyed text serialization for checkpoint state.
 *
 * Every stateful pipeline component implements
 * saveState(StateWriter&) / loadState(StateReader&) in terms of these
 * helpers. The format is line-oriented `key value` text: human-readable
 * for debugging, yet exact — doubles are written as C99 hexfloats
 * (printf %a), which round-trip bit-for-bit, so a restored run replays
 * byte-identically.
 *
 * The reader validates every key it consumes and latches a sticky
 * failure flag on the first mismatch; loadState implementations stay
 * linear and the caller checks ok() once at the end.
 */

#ifndef GEO_UTIL_STATE_IO_HH
#define GEO_UTIL_STATE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"

namespace geo {
namespace util {

/** Writes `key value` lines; the mirror image of StateReader. */
class StateWriter
{
  public:
    explicit StateWriter(std::ostream &os) : os_(os) {}

    void u64(const char *key, uint64_t v);
    void i64(const char *key, int64_t v);
    void f64(const char *key, double v); ///< hexfloat, exact round-trip
    void boolean(const char *key, bool v);
    /** Length-prefixed, so the value may contain spaces or newlines. */
    void str(const char *key, const std::string &v);
    void rng(const char *key, const Rng &r);
    void stat(const char *key, const StatAccumulator &s);
    void f64Vec(const char *key, const std::vector<double> &v);

  private:
    std::ostream &os_;
};

/**
 * Reads `key value` lines written by StateWriter.
 *
 * Each accessor checks that the next line carries the expected key; a
 * mismatch (or malformed value) latches fail() and subsequent reads
 * return defaults, so callers can run straight through and test ok()
 * once.
 */
class StateReader
{
  public:
    explicit StateReader(std::istream &is) : is_(is) {}

    uint64_t u64(const char *key);
    int64_t i64(const char *key);
    double f64(const char *key);
    bool boolean(const char *key);
    std::string str(const char *key);
    Rng::State rng(const char *key);
    StatAccumulator::State stat(const char *key);
    std::vector<double> f64Vec(const char *key);

    bool ok() const { return ok_; }

    /** Latch a failure from the caller's own validation. */
    void fail(const std::string &why);

    /** First failure reason (empty while ok()). */
    const std::string &error() const { return error_; }

  private:
    /** Consume one `key ` prefix; false (and latched fail) on mismatch. */
    bool expectKey(const char *key);
    /** Read the rest of the line as whitespace-separated tokens. */
    bool restOfLine(std::string &out);

    std::istream &is_;
    bool ok_ = true;
    std::string error_;
};

} // namespace util
} // namespace geo

#endif // GEO_UTIL_STATE_IO_HH
