/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator takes a Rng (or a seed)
 * explicitly so that experiments are exactly reproducible. The generator
 * is xoshiro256** seeded through SplitMix64, which is fast, has a 256-bit
 * state, and passes BigCrush.
 */

#ifndef GEO_UTIL_RANDOM_HH
#define GEO_UTIL_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace geo {

/** SplitMix64 step: used to expand a 64-bit seed into generator state. */
uint64_t splitmix64(uint64_t &state);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate (lambda > 0). */
    double exponential(double rate);

    /** Log-normal with the given parameters of the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Sample an index from non-negative weights (at least one > 0). */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(
                uniformInt(0, static_cast<int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Fork a statistically independent child generator. */
    Rng fork();

    /**
     * Complete serializable generator state.
     *
     * Restoring a saved State reproduces the exact output stream,
     * including the Box-Muller cached-normal half-step.
     */
    struct State
    {
        std::array<uint64_t, 4> s{};
        double cachedNormal = 0.0;
        bool hasCachedNormal = false;
    };

    State
    state() const
    {
        return {state_, cachedNormal_, hasCachedNormal_};
    }

    void
    setState(const State &state)
    {
        state_ = state.s;
        cachedNormal_ = state.cachedNormal;
        hasCachedNormal_ = state.hasCachedNormal;
    }

  private:
    std::array<uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace geo

#endif // GEO_UTIL_RANDOM_HH
