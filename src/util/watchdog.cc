#include "util/watchdog.hh"

#include "util/logging.hh"
#include "util/trace_event.hh"

namespace geo {
namespace util {

Watchdog::Watchdog()
{
    overrunMetric_ =
        &MetricRegistry::global().counter("guardrails.deadline_exceeded");
}

void
Watchdog::beginPhase(const char *phase, double now, double budget_seconds)
{
    phase_ = phase;
    start_ = now;
    budget_ = budget_seconds;
    active_ = true;
    fired_ = false;
    token_.reset();
}

bool
Watchdog::poll(double now)
{
    if (fired_)
        return true;
    if (!active_ || budget_ <= 0.0)
        return false;
    if (now - start_ <= budget_)
        return false;
    fired_ = true;
    ++overruns_;
    overrunMetric_->inc();
    token_.cancel();
    warn("watchdog: phase '%s' overran its %.3fs budget "
         "(%.3fs elapsed), cancelling", phase_, budget_, now - start_);
    GEO_TRACE_INSTANT("guardrails", "deadline_exceeded",
                      TimeDomain::Sim, now);
    return true;
}

void
Watchdog::endPhase()
{
    active_ = false;
    phase_ = "";
}

} // namespace util
} // namespace geo
