#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace geo {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::meanStd(double mean, double stddev, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << mean << " +/- "
       << stddev;
    return os.str();
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::render() const
{
    // Compute column widths over header + all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

} // namespace geo
