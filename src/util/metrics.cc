#include "util/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace geo {
namespace util {

namespace {

/** Relaxed-CAS add for atomic<double> (no fetch_add before C++20 on
 *  all targets; this compiles everywhere we build). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed))
        ;
}

void
atomicMin(std::atomic<double> &target, double value)
{
    double expected = target.load(std::memory_order_relaxed);
    while (value < expected &&
           !target.compare_exchange_weak(expected, value,
                                         std::memory_order_relaxed))
        ;
}

void
atomicMax(std::atomic<double> &target, double value)
{
    double expected = target.load(std::memory_order_relaxed);
    while (value > expected &&
           !target.compare_exchange_weak(expected, value,
                                         std::memory_order_relaxed))
        ;
}

/** Print a double so it JSON-round-trips (shortest exact form). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::string out = strprintf("%.17g", v);
    // Try shorter representations that still parse back exactly.
    for (int precision = 1; precision < 17; ++precision) {
        std::string candidate = strprintf("%.*g", precision, v);
        if (std::stod(candidate) == v)
            return candidate;
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Prometheus metric name: dots/dashes to underscores, geo_ prefix. */
std::string
promName(const std::string &name)
{
    std::string out = "geo_";
    for (char c : name)
        out.push_back((c == '.' || c == '-') ? '_' : c);
    return out;
}

} // namespace

size_t
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0) || !std::isfinite(value))
        return 0; // zero, negatives, NaN -> underflow bucket
    int exp = static_cast<int>(std::floor(std::log2(value)));
    if (exp < kMinExp)
        return 0;
    if (exp >= kMaxExp)
        return kBucketCount - 1;
    return static_cast<size_t>(exp - kMinExp) + 1;
}

double
Histogram::bucketLowerBound(size_t index)
{
    if (index == 0)
        return 0.0;
    return std::ldexp(1.0, kMinExp + static_cast<int>(index) - 1);
}

double
Histogram::bucketUpperBound(size_t index)
{
    if (index >= kBucketCount - 1)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, kMinExp + static_cast<int>(index));
}

void
Histogram::record(double value)
{
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
    if (before == 0) {
        // First observation seeds min/max; racing recorders converge
        // via the CAS loops below.
        min_.store(value, std::memory_order_relaxed);
        max_.store(value, std::memory_order_relaxed);
    }
    atomicMin(min_, value);
    atomicMax(max_, value);
}

double
Histogram::quantile(double q) const
{
    uint64_t counts[kBucketCount];
    uint64_t total = 0;
    for (size_t i = 0; i < kBucketCount; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(total);
    double lo = min_.load(std::memory_order_relaxed);
    double hi = max_.load(std::memory_order_relaxed);

    double cumulative = 0.0;
    for (size_t i = 0; i < kBucketCount; ++i) {
        if (counts[i] == 0)
            continue;
        double next = cumulative + static_cast<double>(counts[i]);
        if (next >= target) {
            double bucket_lo = std::max(bucketLowerBound(i), lo);
            double bucket_hi = std::min(bucketUpperBound(i), hi);
            if (!(bucket_hi > bucket_lo))
                return std::clamp(bucket_lo, lo, hi);
            double within =
                (target - cumulative) / static_cast<double>(counts[i]);
            return std::clamp(
                bucket_lo + within * (bucket_hi - bucket_lo), lo, hi);
        }
        cumulative = next;
    }
    return hi;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    if (snap.count > 0) {
        snap.min = min_.load(std::memory_order_relaxed);
        snap.max = max_.load(std::memory_order_relaxed);
        snap.p50 = quantile(0.50);
        snap.p95 = quantile(0.95);
        snap.p99 = quantile(0.99);
    }
    return snap;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

std::string
MetricRegistry::scoped(const std::string &name) const
{
    if (scopes_.empty())
        return name;
    std::string out;
    for (const std::string &prefix : scopes_)
        out += prefix;
    out += name;
    return out;
}

void
MetricRegistry::pushScope(const std::string &prefix)
{
    std::lock_guard<std::mutex> lock(mutex_);
    scopes_.push_back(prefix);
}

void
MetricRegistry::popScope()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (scopes_.empty())
        panic("MetricRegistry::popScope: no scope active");
    scopes_.pop_back();
}

bool
MetricRegistry::splitShardScope(const std::string &name,
                                std::string &base, std::string &shard)
{
    static const std::string kPrefix = "shard";
    if (name.compare(0, kPrefix.size(), kPrefix) != 0)
        return false;
    size_t i = kPrefix.size();
    size_t digits_begin = i;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9')
        ++i;
    if (i == digits_begin || i >= name.size() || name[i] != '.')
        return false;
    shard = name.substr(digits_begin, i - digits_begin);
    base = name.substr(i + 1);
    return !base.empty();
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[scoped(name)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[scoped(name)];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[scoped(name)];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, uint64_t>>
MetricRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter->value());
    return out;
}

std::vector<std::pair<std::string, double>>
MetricRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, histogram] : histograms_)
        out.emplace_back(name, histogram->snapshot());
    return out;
}

std::string
MetricRegistry::toJson() const
{
    std::vector<std::pair<std::string, uint64_t>> counter_rows =
        counters();
    std::vector<std::pair<std::string, double>> gauge_rows = gauges();
    std::vector<std::pair<std::string, HistogramSnapshot>> histo_rows =
        histograms();

    std::ostringstream out;
    out << "{\n  \"schema\": \"geo-metrics-1\",\n";
    out << "  \"counters\": {";
    for (size_t i = 0; i < counter_rows.size(); ++i) {
        out << (i ? ",\n    " : "\n    ") << '"'
            << jsonEscape(counter_rows[i].first)
            << "\": " << counter_rows[i].second;
    }
    out << (counter_rows.empty() ? "},\n" : "\n  },\n");
    out << "  \"gauges\": {";
    for (size_t i = 0; i < gauge_rows.size(); ++i) {
        out << (i ? ",\n    " : "\n    ") << '"'
            << jsonEscape(gauge_rows[i].first)
            << "\": " << jsonNumber(gauge_rows[i].second);
    }
    out << (gauge_rows.empty() ? "},\n" : "\n  },\n");
    out << "  \"histograms\": {";
    for (size_t i = 0; i < histo_rows.size(); ++i) {
        const HistogramSnapshot &h = histo_rows[i].second;
        out << (i ? ",\n    " : "\n    ") << '"'
            << jsonEscape(histo_rows[i].first) << "\": {\"count\": "
            << h.count << ", \"sum\": " << jsonNumber(h.sum)
            << ", \"min\": " << jsonNumber(h.min)
            << ", \"max\": " << jsonNumber(h.max)
            << ", \"p50\": " << jsonNumber(h.p50)
            << ", \"p95\": " << jsonNumber(h.p95)
            << ", \"p99\": " << jsonNumber(h.p99) << "}";
    }
    out << (histo_rows.empty() ? "}\n" : "\n  }\n");
    out << "}\n";
    return out.str();
}

void
MetricRegistry::setHelp(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    help_[name] = help;
}

std::string
MetricRegistry::helpFor(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = help_.find(name);
    if (it != help_.end())
        return it->second;
    return "geomancy metric " + name;
}

std::string
MetricRegistry::promEscapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

std::string
MetricRegistry::promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

namespace {

/** One exported sample: the shard label ("" = unsharded) + value. */
template <typename V>
struct PromSample
{
    std::string shard;
    V value;
};

/** Group rows by base name so shard-scoped variants of one metric
 *  share a single HELP/TYPE header and differ only in the `shard`
 *  label (the exposition format forbids repeated headers). std::map
 *  keeps bases sorted; per-base samples keep registry (sorted) order,
 *  which sorts numerically for single-digit shard counts. */
template <typename V>
std::map<std::string, std::vector<PromSample<V>>>
groupByBase(const std::vector<std::pair<std::string, V>> &rows)
{
    std::map<std::string, std::vector<PromSample<V>>> grouped;
    for (const auto &[name, value] : rows) {
        std::string base, shard;
        if (!MetricRegistry::splitShardScope(name, base, shard)) {
            base = name;
            shard.clear();
        }
        grouped[base].push_back({shard, value});
    }
    return grouped;
}

/** `{shard="N"}` (or "" for unsharded), with extra labels appended. */
std::string
promLabels(const std::string &shard, const std::string &extra = {})
{
    std::string labels;
    if (!shard.empty())
        labels = "shard=\"" + MetricRegistry::promEscapeLabel(shard) +
                 "\"";
    if (!extra.empty())
        labels += (labels.empty() ? "" : ",") + extra;
    if (labels.empty())
        return "";
    return "{" + labels + "}";
}

} // namespace

std::string
MetricRegistry::toPrometheus() const
{
    // HELP before TYPE before samples, per the exposition format.
    std::ostringstream out;
    auto header = [&](const std::string &name, const std::string &prom,
                      const char *type) {
        out << "# HELP " << prom << " "
            << promEscapeHelp(helpFor(name)) << "\n"
            << "# TYPE " << prom << " " << type << "\n";
    };
    for (const auto &[base, samples] : groupByBase(counters())) {
        std::string prom = promName(base);
        header(base, prom, "counter");
        for (const auto &s : samples)
            out << prom << promLabels(s.shard) << " " << s.value << "\n";
    }
    for (const auto &[base, samples] : groupByBase(gauges())) {
        std::string prom = promName(base);
        header(base, prom, "gauge");
        for (const auto &s : samples)
            out << prom << promLabels(s.shard) << " "
                << jsonNumber(s.value) << "\n";
    }
    for (const auto &[base, samples] : groupByBase(histograms())) {
        std::string prom = promName(base);
        header(base, prom, "summary");
        for (const auto &s : samples) {
            auto quantile = [&](const char *q, double value) {
                out << prom
                    << promLabels(s.shard, "quantile=\"" +
                                               promEscapeLabel(q) + "\"")
                    << " " << jsonNumber(value) << "\n";
            };
            quantile("0.5", s.value.p50);
            quantile("0.95", s.value.p95);
            quantile("0.99", s.value.p99);
            out << prom << "_sum" << promLabels(s.shard) << " "
                << jsonNumber(s.value.sum) << "\n";
            out << prom << "_count" << promLabels(s.shard) << " "
                << s.value.count << "\n";
        }
    }
    return out.str();
}

bool
MetricRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

} // namespace util
} // namespace geo
