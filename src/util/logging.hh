/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Modeled on the gem5 logging discipline: inform() for normal status,
 * warn() for suspicious-but-survivable conditions, fatal() for user
 * errors that make continuing impossible, and panic() for internal
 * invariant violations (bugs).
 */

#ifndef GEO_UTIL_LOGGING_HH
#define GEO_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace geo {

/** Verbosity levels for the global logger (each includes the ones
 *  above it). */
enum class LogLevel {
    Quiet,   ///< only fatal/panic messages
    Normal,  ///< warn + fatal/panic
    Verbose, ///< inform + warn + fatal/panic
    Debug,   ///< debug + inform + warn + fatal/panic
};

/** Set the global log verbosity. Thread-safe for concurrent readers. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Print an informational message (printf-style) when verbose. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a high-volume diagnostic message (printf-style) at the Debug
 *  tier; the instrumentation layer's narration channel. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about a survivable but suspicious condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error and exit(1).
 *
 * Use for bad configuration or invalid arguments — conditions that are
 * the caller's fault, not a bug in this library.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 *
 * Use for conditions that can never happen unless the library itself is
 * broken; abort() leaves a core dump for debugging.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace geo

#endif // GEO_UTIL_LOGGING_HH
