#include "util/trace_event.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.hh"

namespace geo {
namespace util {

namespace {

/** Small dense thread id for the trace (std::thread::id is opaque). */
uint32_t
currentTid()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t tid = next.fetch_add(1);
    return tid;
}

int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Shortest %g form that still round-trips enough for a trace view. */
std::string
traceNumber(double v)
{
    return strprintf("%.6g", v);
}

} // namespace

void
TraceCollector::enable(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    events_.reserve(capacity == 0 ? 1 : capacity);
    dropped_.store(0, std::memory_order_relaxed);
    epochNs_.store(steadyNowNs(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
}

void
TraceCollector::disable()
{
    enabled_.store(false, std::memory_order_release);
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

double
TraceCollector::nowUs() const
{
    return static_cast<double>(
               steadyNowNs() -
               epochNs_.load(std::memory_order_relaxed)) /
           1e3;
}

void
TraceCollector::push(const Event &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // capacity was fixed at enable(); growing here would allocate on
    // the recording path, so a full buffer drops instead.
    if (events_.size() >= events_.capacity()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    events_.push_back(event);
}

void
TraceCollector::completeEvent(const char *cat, const char *name,
                              TimeDomain domain, double ts, double dur)
{
    if (!enabled())
        return;
    push({cat, name, ts, dur, 0.0, currentTid(), 'X', domain});
}

void
TraceCollector::instantEvent(const char *cat, const char *name,
                             TimeDomain domain, double ts)
{
    if (!enabled())
        return;
    push({cat, name, ts, 0.0, 0.0, currentTid(), 'i', domain});
}

void
TraceCollector::counterEvent(const char *name, TimeDomain domain,
                             double ts, double value)
{
    if (!enabled())
        return;
    push({"counter", name, ts, 0.0, value, currentTid(), 'C', domain});
}

size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string
TraceCollector::toJson() const
{
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
    }

    std::ostringstream out;
    out << "{\"traceEvents\":[\n";
    // Process metadata so Perfetto labels the two time domains.
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
           "\"process_name\",\"args\":{\"name\":"
           "\"geomancy host (steady clock)\"}},\n";
    out << "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":"
           "\"process_name\",\"args\":{\"name\":"
           "\"geomancy sim (SimClock)\"}}";
    for (const Event &event : events) {
        const bool sim = event.domain == TimeDomain::Sim;
        const int pid = sim ? 2 : 1;
        // Sim timestamps are seconds; the trace format wants us.
        const double scale = sim ? 1e6 : 1.0;
        out << ",\n{\"ph\":\"" << event.phase << "\",\"pid\":" << pid
            << ",\"tid\":" << (sim ? 0 : event.tid)
            << ",\"ts\":" << traceNumber(event.ts * scale)
            << ",\"cat\":\"" << event.cat << "\",\"name\":\""
            << event.name << "\"";
        if (event.phase == 'X')
            out << ",\"dur\":" << traceNumber(event.dur * scale);
        else if (event.phase == 'i')
            out << ",\"s\":\"t\"";
        else if (event.phase == 'C')
            out << ",\"args\":{\"value\":" << traceNumber(event.value)
                << "}";
        out << "}";
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out.str();
}

bool
TraceCollector::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

void
TraceCollector::setCrashFlushPath(const std::string &path)
{
    size_t n = path.size();
    if (n >= sizeof crashPath_)
        n = sizeof crashPath_ - 1;
    std::memcpy(crashPath_, path.data(), n);
    crashPath_[n] = '\0';
}

namespace {

/** write(2) a snprintf-formatted chunk; false on short write. */
bool
writeAll(int fd, const char *buf, int len)
{
    return len >= 0 &&
           ::write(fd, buf, static_cast<size_t>(len)) == len;
}

} // namespace

bool
TraceCollector::crashFlushTo(int fd) const
{
    // Deliberately lock-free: the crashing thread may be the one
    // holding mutex_. Reading the vector concurrently with a push is
    // benign in practice — capacity is fixed at enable() time, so the
    // storage never moves; at worst the event being appended is
    // dropped or torn, and a torn trace line beats no trace at all.
    const Event *events = events_.data();
    size_t count = events_.size();
    if (count > events_.capacity())
        count = 0; // size read mid-update: give up on the body

    char buf[512];
    int len = std::snprintf(
        buf, sizeof buf,
        "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"geomancy host (steady clock)\"}},\n"
        "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"geomancy sim (SimClock)\"}}");
    if (!writeAll(fd, buf, len))
        return false;
    for (size_t i = 0; i < count; ++i) {
        const Event &event = events[i];
        if (!event.cat || !event.name)
            continue; // torn slot: the pointers are set on push
        const bool sim = event.domain == TimeDomain::Sim;
        const double scale = sim ? 1e6 : 1.0;
        len = std::snprintf(buf, sizeof buf,
                            ",\n{\"ph\":\"%c\",\"pid\":%d,\"tid\":%u,"
                            "\"ts\":%.6g,\"cat\":\"%s\",\"name\":\"%s\"",
                            event.phase, sim ? 2 : 1,
                            sim ? 0 : event.tid, event.ts * scale,
                            event.cat, event.name);
        if (!writeAll(fd, buf, len))
            return false;
        if (event.phase == 'X')
            len = std::snprintf(buf, sizeof buf, ",\"dur\":%.6g}",
                                event.dur * scale);
        else if (event.phase == 'i')
            len = std::snprintf(buf, sizeof buf, ",\"s\":\"t\"}");
        else if (event.phase == 'C')
            len = std::snprintf(buf, sizeof buf,
                                ",\"args\":{\"value\":%.6g}}",
                                event.value);
        else
            len = std::snprintf(buf, sizeof buf, "}");
        if (!writeAll(fd, buf, len))
            return false;
    }
    len = std::snprintf(buf, sizeof buf,
                        "\n],\"displayTimeUnit\":\"ms\"}\n");
    return writeAll(fd, buf, len);
}

bool
TraceCollector::crashFlush() const
{
    if (crashPath_[0] == '\0')
        return false;
    int fd = ::open(crashPath_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    bool ok = crashFlushTo(fd);
    ::close(fd);
    return ok;
}

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

} // namespace util
} // namespace geo
