/**
 * @file
 * CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320).
 *
 * Used to checksum checkpoint payloads. The algorithm is deliberately
 * the standard zlib CRC-32 so external tooling (python's zlib.crc32,
 * cksum-style utilities) can validate checkpoint files without linking
 * against this code; tools/bench_smoke.sh relies on that.
 */

#ifndef GEO_UTIL_CRC32_HH
#define GEO_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace geo {
namespace util {

/**
 * CRC-32 of `size` bytes at `data`.
 *
 * @param seed result of a previous call, for incremental use over
 *        split buffers (0 for the first/only chunk).
 */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

/** Convenience overload for strings. */
uint32_t crc32(const std::string &data, uint32_t seed = 0);

} // namespace util
} // namespace geo

#endif // GEO_UTIL_CRC32_HH
