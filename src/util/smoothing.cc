#include "util/smoothing.hh"

#include "util/logging.hh"

namespace geo {

std::vector<double>
movingAverage(const std::vector<double> &series, size_t window)
{
    if (window == 0)
        panic("movingAverage: window must be >= 1");
    std::vector<double> out;
    out.reserve(series.size());
    double sum = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
        sum += series[i];
        if (i >= window)
            sum -= series[i - window];
        size_t denom = std::min(i + 1, window);
        out.push_back(sum / static_cast<double>(denom));
    }
    return out;
}

std::vector<double>
cumulativeAverage(const std::vector<double> &series)
{
    std::vector<double> out;
    out.reserve(series.size());
    double sum = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
        sum += series[i];
        out.push_back(sum / static_cast<double>(i + 1));
    }
    return out;
}

std::vector<double>
exponentialMovingAverage(const std::vector<double> &series, double alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        panic("exponentialMovingAverage: alpha %f out of (0, 1]", alpha);
    std::vector<double> out;
    out.reserve(series.size());
    double ema = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
        ema = (i == 0) ? series[i] : alpha * series[i] + (1.0 - alpha) * ema;
        out.push_back(ema);
    }
    return out;
}

MovingAverageFilter::MovingAverageFilter(size_t window) : window_(window)
{
    if (window_ == 0)
        panic("MovingAverageFilter: window must be >= 1");
}

double
MovingAverageFilter::push(double value)
{
    buffer_.push_back(value);
    sum_ += value;
    if (buffer_.size() > window_) {
        sum_ -= buffer_.front();
        buffer_.pop_front();
    }
    return this->value();
}

double
MovingAverageFilter::value() const
{
    if (buffer_.empty())
        return 0.0;
    return sum_ / static_cast<double>(buffer_.size());
}

void
MovingAverageFilter::reset()
{
    buffer_.clear();
    sum_ = 0.0;
}

} // namespace geo
