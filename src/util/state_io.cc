#include "util/state_io.hh"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace geo {
namespace util {

namespace {

/** Exact text form of a double (C99 hexfloat). */
std::string
hexFloat(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

bool
parseDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

void
StateWriter::u64(const char *key, uint64_t v)
{
    os_ << key << ' ' << v << '\n';
}

void
StateWriter::i64(const char *key, int64_t v)
{
    os_ << key << ' ' << v << '\n';
}

void
StateWriter::f64(const char *key, double v)
{
    os_ << key << ' ' << hexFloat(v) << '\n';
}

void
StateWriter::boolean(const char *key, bool v)
{
    os_ << key << ' ' << (v ? 1 : 0) << '\n';
}

void
StateWriter::str(const char *key, const std::string &v)
{
    // Length prefix, then the raw bytes: values may contain anything.
    os_ << key << ' ' << v.size() << '\n';
    os_.write(v.data(), static_cast<std::streamsize>(v.size()));
    os_ << '\n';
}

void
StateWriter::rng(const char *key, const Rng &r)
{
    Rng::State s = r.state();
    os_ << key << ' ' << s.s[0] << ' ' << s.s[1] << ' ' << s.s[2] << ' '
        << s.s[3] << ' ' << hexFloat(s.cachedNormal) << ' '
        << (s.hasCachedNormal ? 1 : 0) << '\n';
}

void
StateWriter::stat(const char *key, const StatAccumulator &s)
{
    StatAccumulator::State st = s.state();
    os_ << key << ' ' << st.count << ' ' << hexFloat(st.mean) << ' '
        << hexFloat(st.m2) << ' ' << hexFloat(st.min) << ' '
        << hexFloat(st.max) << '\n';
}

void
StateWriter::f64Vec(const char *key, const std::vector<double> &v)
{
    os_ << key << ' ' << v.size();
    for (double x : v)
        os_ << ' ' << hexFloat(x);
    os_ << '\n';
}

void
StateReader::fail(const std::string &why)
{
    if (ok_) {
        ok_ = false;
        error_ = why;
    }
}

bool
StateReader::expectKey(const char *key)
{
    if (!ok_)
        return false;
    std::string tok;
    if (!(is_ >> tok)) {
        fail(std::string("unexpected end of state (wanted key '") + key +
             "')");
        return false;
    }
    if (tok != key) {
        fail(std::string("state key mismatch: wanted '") + key +
             "', found '" + tok + "'");
        return false;
    }
    return true;
}

uint64_t
StateReader::u64(const char *key)
{
    if (!expectKey(key))
        return 0;
    uint64_t v = 0;
    if (!(is_ >> v)) {
        fail(std::string("bad u64 value for '") + key + "'");
        return 0;
    }
    return v;
}

int64_t
StateReader::i64(const char *key)
{
    if (!expectKey(key))
        return 0;
    int64_t v = 0;
    if (!(is_ >> v)) {
        fail(std::string("bad i64 value for '") + key + "'");
        return 0;
    }
    return v;
}

double
StateReader::f64(const char *key)
{
    if (!expectKey(key))
        return 0.0;
    std::string tok;
    double v = 0.0;
    if (!(is_ >> tok) || !parseDouble(tok, v)) {
        fail(std::string("bad f64 value for '") + key + "'");
        return 0.0;
    }
    return v;
}

bool
StateReader::boolean(const char *key)
{
    return u64(key) != 0;
}

std::string
StateReader::str(const char *key)
{
    if (!expectKey(key))
        return "";
    size_t len = 0;
    if (!(is_ >> len)) {
        fail(std::string("bad string length for '") + key + "'");
        return "";
    }
    is_.get(); // the newline after the length
    std::string v(len, '\0');
    if (len > 0 && !is_.read(&v[0], static_cast<std::streamsize>(len))) {
        fail(std::string("truncated string value for '") + key + "'");
        return "";
    }
    return v;
}

Rng::State
StateReader::rng(const char *key)
{
    Rng::State s;
    if (!expectKey(key))
        return s;
    std::string cached;
    int hasCached = 0;
    if (!(is_ >> s.s[0] >> s.s[1] >> s.s[2] >> s.s[3] >> cached >>
          hasCached) ||
        !parseDouble(cached, s.cachedNormal)) {
        fail(std::string("bad rng state for '") + key + "'");
        return Rng::State{};
    }
    s.hasCachedNormal = hasCached != 0;
    return s;
}

StatAccumulator::State
StateReader::stat(const char *key)
{
    StatAccumulator::State st;
    if (!expectKey(key))
        return st;
    std::string mean, m2, min, max;
    if (!(is_ >> st.count >> mean >> m2 >> min >> max) ||
        !parseDouble(mean, st.mean) || !parseDouble(m2, st.m2) ||
        !parseDouble(min, st.min) || !parseDouble(max, st.max)) {
        fail(std::string("bad stat state for '") + key + "'");
        return StatAccumulator::State{};
    }
    return st;
}

std::vector<double>
StateReader::f64Vec(const char *key)
{
    std::vector<double> v;
    if (!expectKey(key))
        return v;
    size_t n = 0;
    if (!(is_ >> n)) {
        fail(std::string("bad vector length for '") + key + "'");
        return v;
    }
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::string tok;
        double x = 0.0;
        if (!(is_ >> tok) || !parseDouble(tok, x)) {
            fail(std::string("bad vector element for '") + key + "'");
            v.clear();
            return v;
        }
        v.push_back(x);
    }
    return v;
}

} // namespace util
} // namespace geo
