#include "util/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/logging.hh"

namespace geo {
namespace util {

namespace {

/** The pool (if any) whose worker loop the current thread runs. */
thread_local const ThreadPool *t_worker_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(size_t workers)
{
    auto &registry = MetricRegistry::global();
    tasksMetric_ = &registry.counter("pool.tasks");
    queueDepthMetric_ = &registry.gauge("pool.queue_depth");
    taskMsMetric_ = &registry.histogram("pool.task_ms");
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::onWorkerThread() const
{
    return t_worker_pool == this;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        queueDepthMetric_->set(static_cast<double>(queue_.size()));
    }
    tasksMetric_->inc();
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    t_worker_pool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            queueDepthMetric_->set(static_cast<double>(queue_.size()));
        }
        auto start = std::chrono::steady_clock::now();
        task();
        taskMsMetric_->record(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count());
    }
}

void
ThreadPool::parallelFor(
    size_t count, size_t grain,
    const std::function<void(size_t, size_t, size_t)> &fn)
{
    if (count == 0)
        return;
    if (grain == 0)
        grain = 1;
    // Chunk boundaries are a pure function of (count, grain): the
    // determinism contract. Worker count only affects who runs what.
    const size_t chunks = (count + grain - 1) / grain;

    auto run_chunk = [&](size_t chunk) {
        size_t begin = chunk * grain;
        size_t end = std::min(count, begin + grain);
        fn(chunk, begin, end);
    };

    if (workers_.empty() || chunks == 1 || onWorkerThread()) {
        for (size_t chunk = 0; chunk < chunks; ++chunk)
            run_chunk(chunk);
        return;
    }

    struct ForState
    {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::mutex mutex;
        std::condition_variable finished;
    };
    auto state = std::make_shared<ForState>();

    auto claim_loop = [&fn, state, count, grain, chunks]() {
        for (;;) {
            size_t chunk = state->next.fetch_add(1);
            if (chunk >= chunks)
                return;
            size_t begin = chunk * grain;
            size_t end = std::min(count, begin + grain);
            fn(chunk, begin, end);
            if (state->done.fetch_add(1) + 1 == chunks) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->finished.notify_all();
            }
        }
    };

    size_t helpers = std::min(workers_.size(), chunks - 1);
    for (size_t i = 0; i < helpers; ++i)
        enqueue(claim_loop);
    claim_loop(); // the caller participates

    std::unique_lock<std::mutex> lock(state->mutex);
    state->finished.wait(lock,
                         [&]() { return state->done.load() == chunks; });
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool([]() -> size_t {
        if (const char *env = std::getenv("GEO_THREADS")) {
            long parsed = std::strtol(env, nullptr, 10);
            if (parsed >= 1)
                return static_cast<size_t>(parsed);
            warn("GEO_THREADS=%s is not a positive integer; using "
                 "hardware concurrency", env);
        }
        return 0; // ThreadPool picks hardware concurrency
    }());
    return pool;
}

} // namespace util
} // namespace geo
