/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.
 *
 * Every table/figure bench prints paper-style rows through this class so
 * the regenerated results are easy to diff against the paper.
 */

#ifndef GEO_UTIL_TABLE_HH
#define GEO_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace geo {

/**
 * Column-aligned ASCII table with an optional title and header row.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row (column names). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; column count need not match the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format "mean ± stddev" with the given precision. */
    static std::string meanStd(double mean, double stddev, int precision = 2);

    /** Format a double with fixed precision. */
    static std::string num(double value, int precision = 2);

    /** Render to a string (used by print and by tests). */
    std::string render() const;

    /** Render to a stream. */
    void print(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace geo

#endif // GEO_UTIL_TABLE_HH
