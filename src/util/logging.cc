#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace geo {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Normal};

/** Serializes writes so concurrent ThreadPool workers cannot shear a
 *  message mid-line. */
std::mutex &
emitMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
emit(const char *prefix, const char *fmt, va_list args)
{
    // Format outside the lock, then emit prefix + body + newline as a
    // single locked write: interleaved workers get whole lines.
    std::string line = prefix + vformat(fmt, args);
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

} // namespace geo
