#include "util/crc32.hh"

#include <array>

namespace geo {
namespace util {

namespace {

/** Byte-at-a-time lookup table for the reflected polynomial. */
std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> kTable = makeTable();

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const std::string &data, uint32_t seed)
{
    return crc32(data.data(), data.size(), seed);
}

} // namespace util
} // namespace geo
