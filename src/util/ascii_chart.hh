/**
 * @file
 * ASCII line charts for the figure-regeneration benches.
 *
 * The paper's evaluation is figure-driven; rendering the regenerated
 * series directly in the bench output makes the dip/recovery and
 * policy-separation shapes visible without a plotting stack.
 */

#ifndef GEO_UTIL_ASCII_CHART_HH
#define GEO_UTIL_ASCII_CHART_HH

#include <string>
#include <vector>

namespace geo {

/** Chart options. */
struct AsciiChartOptions
{
    size_t width = 72;   ///< columns of plot area
    size_t height = 12;  ///< rows of plot area
    std::string yLabel;  ///< printed above the axis
    /** Marks drawn on the x axis (e.g. "interference starts"),
     *  positions in series-index units. */
    std::vector<size_t> marks;
};

/**
 * Render one series as an ASCII chart with a y-axis scale.
 *
 * The series is resampled to the chart width by averaging; y is
 * scaled to [min, max] of the data.
 */
std::string asciiChart(const std::vector<double> &series,
                       const AsciiChartOptions &options = {});

/**
 * Render several series overlaid, each with its own glyph
 * ('*', 'o', '+', 'x', ...), sharing one y scale. Legend lines are
 * appended as "<glyph> <name>".
 */
std::string asciiChartMulti(
    const std::vector<std::pair<std::string, std::vector<double>>> &series,
    const AsciiChartOptions &options = {});

} // namespace geo

#endif // GEO_UTIL_ASCII_CHART_HH
