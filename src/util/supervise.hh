/**
 * @file
 * Supervised-restart loop for crash-tolerant daemons.
 *
 * The Geomancy daemon is meant to run for the lifetime of the storage
 * system; when it dies mid-cycle (injected kill point, OOM, signal)
 * something must restart it from the last checkpoint. runSupervised()
 * is that something: it forks the body into a child process per
 * attempt, and when the child dies by signal or exits with the crash
 * exit code it restarts it — with exponential backoff — telling the
 * new attempt to resume from the checkpoint directory.
 */

#ifndef GEO_UTIL_SUPERVISE_HH
#define GEO_UTIL_SUPERVISE_HH

#include <functional>

namespace geo {
namespace util {

/**
 * Exit code an injected CrashPoint uses to die.
 *
 * Distinct from 0 (success) and 1 (fatal() user error) so the
 * supervisor can tell "injected/abnormal crash, restart me" from
 * "configuration error, restarting is pointless".
 */
constexpr int kCrashExitCode = 86;

struct SuperviseConfig
{
    /** Restarts allowed after the first attempt (0 = run once). */
    int maxRestarts = 3;
    /** Delay before the first restart (doubles each further restart). */
    int backoffMs = 100;
    double backoffMultiplier = 2.0;
    int backoffCapMs = 2000;
    /** Child exit code treated as a restartable crash. */
    int crashExitCode = kCrashExitCode;
};

struct SuperviseResult
{
    int attempts = 0;      ///< bodies started (>= 1)
    int restarts = 0;      ///< attempts - 1
    int exitCode = 0;      ///< final child's exit code (or 128+signal)
    bool gaveUp = false;   ///< still crashing when maxRestarts ran out
    int totalBackoffMs = 0;
};

/**
 * Run `body` in a forked child, restarting it after crashes.
 *
 * The body receives the attempt index (0 for the first run) and a
 * resume flag (true on every restart); its return value becomes the
 * child's exit code. A child that exits with crashExitCode or dies by
 * signal is restarted up to maxRestarts times; any other exit code is
 * final and returned to the caller.
 */
SuperviseResult runSupervised(const std::function<int(int, bool)> &body,
                              const SuperviseConfig &config = {});

} // namespace util
} // namespace geo

#endif // GEO_UTIL_SUPERVISE_HH
