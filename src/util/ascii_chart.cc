#include "util/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace geo {

namespace {

const char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

/** Resample a series to `width` points by bucket averaging. */
std::vector<double>
resample(const std::vector<double> &series, size_t width)
{
    if (series.empty() || width == 0)
        return {};
    if (series.size() <= width)
        return series;
    std::vector<double> out(width, 0.0);
    std::vector<size_t> counts(width, 0);
    for (size_t i = 0; i < series.size(); ++i) {
        size_t bucket = i * width / series.size();
        out[bucket] += series[i];
        ++counts[bucket];
    }
    for (size_t b = 0; b < width; ++b)
        if (counts[b])
            out[b] /= static_cast<double>(counts[b]);
    return out;
}

struct Canvas
{
    size_t width;
    size_t height;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::string> rows;

    Canvas(size_t w, size_t h) : width(w), height(h)
    {
        rows.assign(height, std::string(width, ' '));
    }

    void
    plot(const std::vector<double> &sampled, char glyph)
    {
        for (size_t x = 0; x < sampled.size() && x < width; ++x) {
            double v = sampled[x];
            if (!std::isfinite(v))
                continue;
            double frac = hi > lo ? (v - lo) / (hi - lo) : 0.5;
            frac = std::clamp(frac, 0.0, 1.0);
            size_t y = height - 1 -
                       static_cast<size_t>(std::llround(
                           frac * static_cast<double>(height - 1)));
            rows[y][x] = glyph;
        }
    }
};

std::string
render(Canvas &canvas, const AsciiChartOptions &options,
       size_t series_length)
{
    std::ostringstream os;
    if (!options.yLabel.empty())
        os << options.yLabel << '\n';
    char label[32];
    for (size_t y = 0; y < canvas.height; ++y) {
        double frac = static_cast<double>(canvas.height - 1 - y) /
                      static_cast<double>(canvas.height - 1);
        double value = canvas.lo + frac * (canvas.hi - canvas.lo);
        std::snprintf(label, sizeof(label), "%9.3g |", value);
        os << label << canvas.rows[y] << '\n';
    }
    os << std::string(11, ' ') << std::string(canvas.width, '-') << '\n';
    if (!options.marks.empty() && series_length > 0) {
        std::string marks(canvas.width, ' ');
        for (size_t mark : options.marks) {
            size_t x = mark * canvas.width / series_length;
            if (x < canvas.width)
                marks[x] = '^';
        }
        os << std::string(11, ' ') << marks << '\n';
    }
    return os.str();
}

} // namespace

std::string
asciiChart(const std::vector<double> &series,
           const AsciiChartOptions &options)
{
    return asciiChartMulti({{"", series}}, options);
}

std::string
asciiChartMulti(
    const std::vector<std::pair<std::string, std::vector<double>>> &series,
    const AsciiChartOptions &options)
{
    if (series.empty())
        return "(no data)\n";
    if (options.width < 2 || options.height < 2)
        panic("asciiChart: width/height must be >= 2");

    size_t longest = 0;
    double lo = 0.0, hi = 0.0;
    bool first = true;
    std::vector<std::vector<double>> sampled;
    for (const auto &[name, data] : series) {
        longest = std::max(longest, data.size());
        sampled.push_back(resample(data, options.width));
        for (double v : sampled.back()) {
            if (!std::isfinite(v))
                continue;
            if (first) {
                lo = hi = v;
                first = false;
            } else {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
    }
    if (first)
        return "(no finite data)\n";
    if (hi <= lo)
        hi = lo + 1.0;

    Canvas canvas(options.width, options.height);
    canvas.lo = lo;
    canvas.hi = hi;
    for (size_t s = 0; s < sampled.size(); ++s)
        canvas.plot(sampled[s], kGlyphs[s % sizeof(kGlyphs)]);

    std::string out = render(canvas, options, longest);
    bool any_label = false;
    for (const auto &[name, data] : series)
        any_label = any_label || !name.empty();
    if (any_label) {
        for (size_t s = 0; s < series.size(); ++s) {
            out += strprintf("  %c %s\n", kGlyphs[s % sizeof(kGlyphs)],
                             series[s].first.c_str());
        }
    }
    return out;
}

} // namespace geo
