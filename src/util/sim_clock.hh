/**
 * @file
 * Simulated wall clock shared by the storage system and the agents.
 *
 * Time is tracked in seconds (double). The paper timestamps accesses with
 * separate second and millisecond fields (ots/otms, cts/ctms); the
 * splitSeconds helper produces that representation.
 */

#ifndef GEO_UTIL_SIM_CLOCK_HH
#define GEO_UTIL_SIM_CLOCK_HH

#include <cmath>
#include <cstdint>

namespace geo {

/** A (seconds, milliseconds) pair matching the EOS log timestamp format. */
struct SplitTime
{
    int64_t seconds = 0;
    int64_t millis = 0; ///< in [0, 999]

    /** Back to a fractional-seconds double. */
    double
    toSeconds() const
    {
        return static_cast<double>(seconds) +
               static_cast<double>(millis) / 1000.0;
    }
};

/** Split a fractional-seconds timestamp into (s, ms) EOS-style fields. */
inline SplitTime
splitSeconds(double t)
{
    SplitTime st;
    st.seconds = static_cast<int64_t>(std::floor(t));
    st.millis = static_cast<int64_t>(
        std::llround((t - std::floor(t)) * 1000.0));
    if (st.millis >= 1000) { // rounding overflow, e.g. t = 1.9996
        st.millis -= 1000;
        st.seconds += 1;
    }
    return st;
}

/**
 * Monotonic simulated clock.
 */
class SimClock
{
  public:
    /** Current simulated time in seconds. */
    double now() const { return now_; }

    /** Advance by a non-negative delta (seconds). */
    void
    advance(double delta)
    {
        if (delta > 0.0)
            now_ += delta;
    }

    /** Jump to an absolute time not before the current one. */
    void
    advanceTo(double t)
    {
        if (t > now_)
            now_ = t;
    }

    void reset() { now_ = 0.0; }

  private:
    double now_ = 0.0;
};

} // namespace geo

#endif // GEO_UTIL_SIM_CLOCK_HH
