#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace geo {

void
StatAccumulator::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
StatAccumulator::merge(const StatAccumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
StatAccumulator::reset()
{
    *this = StatAccumulator();
}

double
StatAccumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
StatAccumulator::sampleVariance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

double
StatAccumulator::sampleStddev() const
{
    return std::sqrt(sampleVariance());
}

double
StatAccumulator::min() const
{
    return count_ ? min_ : 0.0;
}

double
StatAccumulator::max() const
{
    return count_ ? max_ : 0.0;
}

void
PercentileTracker::add(double value)
{
    samples_.push_back(value);
    sorted_ = false;
}

double
PercentileTracker::percentile(double p) const
{
    if (samples_.empty())
        panic("percentile of empty tracker");
    if (p < 0.0 || p > 100.0)
        panic("percentile %f out of [0, 100]", p);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (samples_.size() == 1)
        return samples_.front();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("pearson: size mismatch %zu vs %zu", xs.size(), ys.size());
    size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    StatAccumulator acc;
    for (double x : xs)
        acc.add(x);
    return acc.stddev();
}

namespace {

/** Collect per-sample absolute relative errors (%) above the floor. */
std::vector<double>
relativeErrors(const std::vector<double> &predictions,
               const std::vector<double> &targets, double floor,
               bool keep_sign)
{
    if (predictions.size() != targets.size())
        panic("relative error: size mismatch %zu vs %zu",
              predictions.size(), targets.size());
    std::vector<double> errors;
    errors.reserve(predictions.size());
    for (size_t i = 0; i < predictions.size(); ++i) {
        double target = targets[i];
        if (std::fabs(target) < floor)
            continue;
        double err = (predictions[i] - target) / std::fabs(target) * 100.0;
        errors.push_back(keep_sign ? err : std::fabs(err));
    }
    return errors;
}

} // namespace

double
meanAbsoluteRelativeError(const std::vector<double> &predictions,
                          const std::vector<double> &targets, double floor)
{
    return mean(relativeErrors(predictions, targets, floor, false));
}

double
stddevAbsoluteRelativeError(const std::vector<double> &predictions,
                            const std::vector<double> &targets, double floor)
{
    return stddev(relativeErrors(predictions, targets, floor, false));
}

double
meanSignedRelativeError(const std::vector<double> &predictions,
                        const std::vector<double> &targets, double floor)
{
    return mean(relativeErrors(predictions, targets, floor, true));
}

} // namespace geo
