# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_geomancy "/root/repo/build/tools/geomancy_sim" "--policy" "geomancy" "--runs" "3" "--warmup" "1" "--epochs" "4" "--quiet")
set_tests_properties(cli_smoke_geomancy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_lfu "/root/repo/build/tools/geomancy_sim" "--policy" "lfu" "--runs" "2" "--warmup" "1" "--quiet")
set_tests_properties(cli_smoke_lfu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_mount "/root/repo/build/tools/geomancy_sim" "--policy" "mount:file0" "--runs" "2" "--warmup" "1" "--quiet")
set_tests_properties(cli_smoke_mount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "sh" "-c" "./trace_tool generate --records 500 --out tt.csv &&           ./trace_tool analyze --in tt.csv &&           ./trace_tool replay --in tt.csv && rm -f tt.csv")
set_tests_properties(cli_trace_roundtrip PROPERTIES  WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
