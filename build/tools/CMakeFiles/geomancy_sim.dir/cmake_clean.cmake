file(REMOVE_RECURSE
  "CMakeFiles/geomancy_sim.dir/geomancy_sim.cc.o"
  "CMakeFiles/geomancy_sim.dir/geomancy_sim.cc.o.d"
  "geomancy_sim"
  "geomancy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomancy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
