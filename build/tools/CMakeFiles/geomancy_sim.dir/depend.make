# Empty dependencies file for geomancy_sim.
# This may be replaced when dependencies are built.
