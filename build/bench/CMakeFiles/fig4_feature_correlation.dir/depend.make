# Empty dependencies file for fig4_feature_correlation.
# This may be replaced when dependencies are built.
