file(REMOVE_RECURSE
  "CMakeFiles/eos_model_search.dir/eos_model_search.cc.o"
  "CMakeFiles/eos_model_search.dir/eos_model_search.cc.o.d"
  "eos_model_search"
  "eos_model_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_model_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
