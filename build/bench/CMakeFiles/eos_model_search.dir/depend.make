# Empty dependencies file for eos_model_search.
# This may be replaced when dependencies are built.
