
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_studies.cc" "bench/CMakeFiles/ablation_studies.dir/ablation_studies.cc.o" "gcc" "bench/CMakeFiles/ablation_studies.dir/ablation_studies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/geo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/geo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
