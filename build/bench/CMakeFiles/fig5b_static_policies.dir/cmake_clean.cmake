file(REMOVE_RECURSE
  "CMakeFiles/fig5b_static_policies.dir/fig5b_static_policies.cc.o"
  "CMakeFiles/fig5b_static_policies.dir/fig5b_static_policies.cc.o.d"
  "fig5b_static_policies"
  "fig5b_static_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_static_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
