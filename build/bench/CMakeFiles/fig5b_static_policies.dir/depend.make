# Empty dependencies file for fig5b_static_policies.
# This may be replaced when dependencies are built.
