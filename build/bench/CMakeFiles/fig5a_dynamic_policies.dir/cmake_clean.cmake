file(REMOVE_RECURSE
  "CMakeFiles/fig5a_dynamic_policies.dir/fig5a_dynamic_policies.cc.o"
  "CMakeFiles/fig5a_dynamic_policies.dir/fig5a_dynamic_policies.cc.o.d"
  "fig5a_dynamic_policies"
  "fig5a_dynamic_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_dynamic_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
