# Empty compiler generated dependencies file for fig5a_dynamic_policies.
# This may be replaced when dependencies are built.
