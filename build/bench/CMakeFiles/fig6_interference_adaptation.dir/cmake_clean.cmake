file(REMOVE_RECURSE
  "CMakeFiles/fig6_interference_adaptation.dir/fig6_interference_adaptation.cc.o"
  "CMakeFiles/fig6_interference_adaptation.dir/fig6_interference_adaptation.cc.o.d"
  "fig6_interference_adaptation"
  "fig6_interference_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_interference_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
