# Empty compiler generated dependencies file for fig6_interference_adaptation.
# This may be replaced when dependencies are built.
