file(REMOVE_RECURSE
  "CMakeFiles/table3_per_mount_error.dir/table3_per_mount_error.cc.o"
  "CMakeFiles/table3_per_mount_error.dir/table3_per_mount_error.cc.o.d"
  "table3_per_mount_error"
  "table3_per_mount_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_per_mount_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
