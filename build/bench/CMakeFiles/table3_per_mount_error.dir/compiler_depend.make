# Empty compiler generated dependencies file for table3_per_mount_error.
# This may be replaced when dependencies are built.
