# Empty compiler generated dependencies file for table1_2_model_search.
# This may be replaced when dependencies are built.
