file(REMOVE_RECURSE
  "CMakeFiles/table1_2_model_search.dir/table1_2_model_search.cc.o"
  "CMakeFiles/table1_2_model_search.dir/table1_2_model_search.cc.o.d"
  "table1_2_model_search"
  "table1_2_model_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_model_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
