file(REMOVE_RECURSE
  "CMakeFiles/table4_overhead_study.dir/table4_overhead_study.cc.o"
  "CMakeFiles/table4_overhead_study.dir/table4_overhead_study.cc.o.d"
  "table4_overhead_study"
  "table4_overhead_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overhead_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
