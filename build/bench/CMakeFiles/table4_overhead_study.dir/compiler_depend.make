# Empty compiler generated dependencies file for table4_overhead_study.
# This may be replaced when dependencies are built.
