
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/geo_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/dataset.cc" "src/nn/CMakeFiles/geo_nn.dir/dataset.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/dataset.cc.o.d"
  "/root/repo/src/nn/dense_layer.cc" "src/nn/CMakeFiles/geo_nn.dir/dense_layer.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/dense_layer.cc.o.d"
  "/root/repo/src/nn/gru_layer.cc" "src/nn/CMakeFiles/geo_nn.dir/gru_layer.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/gru_layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/geo_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lstm_layer.cc" "src/nn/CMakeFiles/geo_nn.dir/lstm_layer.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/lstm_layer.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/geo_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/geo_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/geo_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/nn/CMakeFiles/geo_nn.dir/sequential.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/sequential.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/geo_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/simple_rnn_layer.cc" "src/nn/CMakeFiles/geo_nn.dir/simple_rnn_layer.cc.o" "gcc" "src/nn/CMakeFiles/geo_nn.dir/simple_rnn_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
