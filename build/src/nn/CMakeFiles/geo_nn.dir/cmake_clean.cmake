file(REMOVE_RECURSE
  "CMakeFiles/geo_nn.dir/activation.cc.o"
  "CMakeFiles/geo_nn.dir/activation.cc.o.d"
  "CMakeFiles/geo_nn.dir/dataset.cc.o"
  "CMakeFiles/geo_nn.dir/dataset.cc.o.d"
  "CMakeFiles/geo_nn.dir/dense_layer.cc.o"
  "CMakeFiles/geo_nn.dir/dense_layer.cc.o.d"
  "CMakeFiles/geo_nn.dir/gru_layer.cc.o"
  "CMakeFiles/geo_nn.dir/gru_layer.cc.o.d"
  "CMakeFiles/geo_nn.dir/loss.cc.o"
  "CMakeFiles/geo_nn.dir/loss.cc.o.d"
  "CMakeFiles/geo_nn.dir/lstm_layer.cc.o"
  "CMakeFiles/geo_nn.dir/lstm_layer.cc.o.d"
  "CMakeFiles/geo_nn.dir/matrix.cc.o"
  "CMakeFiles/geo_nn.dir/matrix.cc.o.d"
  "CMakeFiles/geo_nn.dir/model_zoo.cc.o"
  "CMakeFiles/geo_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/geo_nn.dir/optimizer.cc.o"
  "CMakeFiles/geo_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/geo_nn.dir/sequential.cc.o"
  "CMakeFiles/geo_nn.dir/sequential.cc.o.d"
  "CMakeFiles/geo_nn.dir/serialize.cc.o"
  "CMakeFiles/geo_nn.dir/serialize.cc.o.d"
  "CMakeFiles/geo_nn.dir/simple_rnn_layer.cc.o"
  "CMakeFiles/geo_nn.dir/simple_rnn_layer.cc.o.d"
  "libgeo_nn.a"
  "libgeo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
