
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/access_record.cc" "src/trace/CMakeFiles/geo_trace.dir/access_record.cc.o" "gcc" "src/trace/CMakeFiles/geo_trace.dir/access_record.cc.o.d"
  "/root/repo/src/trace/eos_trace_gen.cc" "src/trace/CMakeFiles/geo_trace.dir/eos_trace_gen.cc.o" "gcc" "src/trace/CMakeFiles/geo_trace.dir/eos_trace_gen.cc.o.d"
  "/root/repo/src/trace/feature_matrix.cc" "src/trace/CMakeFiles/geo_trace.dir/feature_matrix.cc.o" "gcc" "src/trace/CMakeFiles/geo_trace.dir/feature_matrix.cc.o.d"
  "/root/repo/src/trace/feature_select.cc" "src/trace/CMakeFiles/geo_trace.dir/feature_select.cc.o" "gcc" "src/trace/CMakeFiles/geo_trace.dir/feature_select.cc.o.d"
  "/root/repo/src/trace/normalizer.cc" "src/trace/CMakeFiles/geo_trace.dir/normalizer.cc.o" "gcc" "src/trace/CMakeFiles/geo_trace.dir/normalizer.cc.o.d"
  "/root/repo/src/trace/path_encoder.cc" "src/trace/CMakeFiles/geo_trace.dir/path_encoder.cc.o" "gcc" "src/trace/CMakeFiles/geo_trace.dir/path_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
