# Empty dependencies file for geo_trace.
# This may be replaced when dependencies are built.
