file(REMOVE_RECURSE
  "CMakeFiles/geo_trace.dir/access_record.cc.o"
  "CMakeFiles/geo_trace.dir/access_record.cc.o.d"
  "CMakeFiles/geo_trace.dir/eos_trace_gen.cc.o"
  "CMakeFiles/geo_trace.dir/eos_trace_gen.cc.o.d"
  "CMakeFiles/geo_trace.dir/feature_matrix.cc.o"
  "CMakeFiles/geo_trace.dir/feature_matrix.cc.o.d"
  "CMakeFiles/geo_trace.dir/feature_select.cc.o"
  "CMakeFiles/geo_trace.dir/feature_select.cc.o.d"
  "CMakeFiles/geo_trace.dir/normalizer.cc.o"
  "CMakeFiles/geo_trace.dir/normalizer.cc.o.d"
  "CMakeFiles/geo_trace.dir/path_encoder.cc.o"
  "CMakeFiles/geo_trace.dir/path_encoder.cc.o.d"
  "libgeo_trace.a"
  "libgeo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
