file(REMOVE_RECURSE
  "libgeo_trace.a"
)
