file(REMOVE_RECURSE
  "libgeo_workload.a"
)
