# Empty dependencies file for geo_workload.
# This may be replaced when dependencies are built.
