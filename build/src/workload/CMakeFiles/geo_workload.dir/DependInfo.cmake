
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/belle2.cc" "src/workload/CMakeFiles/geo_workload.dir/belle2.cc.o" "gcc" "src/workload/CMakeFiles/geo_workload.dir/belle2.cc.o.d"
  "/root/repo/src/workload/interference.cc" "src/workload/CMakeFiles/geo_workload.dir/interference.cc.o" "gcc" "src/workload/CMakeFiles/geo_workload.dir/interference.cc.o.d"
  "/root/repo/src/workload/trace_replay.cc" "src/workload/CMakeFiles/geo_workload.dir/trace_replay.cc.o" "gcc" "src/workload/CMakeFiles/geo_workload.dir/trace_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/geo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
