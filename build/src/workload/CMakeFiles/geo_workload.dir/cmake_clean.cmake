file(REMOVE_RECURSE
  "CMakeFiles/geo_workload.dir/belle2.cc.o"
  "CMakeFiles/geo_workload.dir/belle2.cc.o.d"
  "CMakeFiles/geo_workload.dir/interference.cc.o"
  "CMakeFiles/geo_workload.dir/interference.cc.o.d"
  "CMakeFiles/geo_workload.dir/trace_replay.cc.o"
  "CMakeFiles/geo_workload.dir/trace_replay.cc.o.d"
  "libgeo_workload.a"
  "libgeo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
