file(REMOVE_RECURSE
  "libgeo_util.a"
)
