# Empty compiler generated dependencies file for geo_util.
# This may be replaced when dependencies are built.
