file(REMOVE_RECURSE
  "CMakeFiles/geo_util.dir/ascii_chart.cc.o"
  "CMakeFiles/geo_util.dir/ascii_chart.cc.o.d"
  "CMakeFiles/geo_util.dir/csv.cc.o"
  "CMakeFiles/geo_util.dir/csv.cc.o.d"
  "CMakeFiles/geo_util.dir/logging.cc.o"
  "CMakeFiles/geo_util.dir/logging.cc.o.d"
  "CMakeFiles/geo_util.dir/random.cc.o"
  "CMakeFiles/geo_util.dir/random.cc.o.d"
  "CMakeFiles/geo_util.dir/smoothing.cc.o"
  "CMakeFiles/geo_util.dir/smoothing.cc.o.d"
  "CMakeFiles/geo_util.dir/stats.cc.o"
  "CMakeFiles/geo_util.dir/stats.cc.o.d"
  "CMakeFiles/geo_util.dir/table.cc.o"
  "CMakeFiles/geo_util.dir/table.cc.o.d"
  "libgeo_util.a"
  "libgeo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
