
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bluesky.cc" "src/storage/CMakeFiles/geo_storage.dir/bluesky.cc.o" "gcc" "src/storage/CMakeFiles/geo_storage.dir/bluesky.cc.o.d"
  "/root/repo/src/storage/device.cc" "src/storage/CMakeFiles/geo_storage.dir/device.cc.o" "gcc" "src/storage/CMakeFiles/geo_storage.dir/device.cc.o.d"
  "/root/repo/src/storage/external_traffic.cc" "src/storage/CMakeFiles/geo_storage.dir/external_traffic.cc.o" "gcc" "src/storage/CMakeFiles/geo_storage.dir/external_traffic.cc.o.d"
  "/root/repo/src/storage/system.cc" "src/storage/CMakeFiles/geo_storage.dir/system.cc.o" "gcc" "src/storage/CMakeFiles/geo_storage.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
