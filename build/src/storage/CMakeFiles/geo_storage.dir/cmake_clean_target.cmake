file(REMOVE_RECURSE
  "libgeo_storage.a"
)
