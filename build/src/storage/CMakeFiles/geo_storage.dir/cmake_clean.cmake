file(REMOVE_RECURSE
  "CMakeFiles/geo_storage.dir/bluesky.cc.o"
  "CMakeFiles/geo_storage.dir/bluesky.cc.o.d"
  "CMakeFiles/geo_storage.dir/device.cc.o"
  "CMakeFiles/geo_storage.dir/device.cc.o.d"
  "CMakeFiles/geo_storage.dir/external_traffic.cc.o"
  "CMakeFiles/geo_storage.dir/external_traffic.cc.o.d"
  "CMakeFiles/geo_storage.dir/system.cc.o"
  "CMakeFiles/geo_storage.dir/system.cc.o.d"
  "libgeo_storage.a"
  "libgeo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
