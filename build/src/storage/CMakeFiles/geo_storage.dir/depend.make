# Empty dependencies file for geo_storage.
# This may be replaced when dependencies are built.
