file(REMOVE_RECURSE
  "CMakeFiles/geo_core.dir/action_checker.cc.o"
  "CMakeFiles/geo_core.dir/action_checker.cc.o.d"
  "CMakeFiles/geo_core.dir/control_agent.cc.o"
  "CMakeFiles/geo_core.dir/control_agent.cc.o.d"
  "CMakeFiles/geo_core.dir/drl_engine.cc.o"
  "CMakeFiles/geo_core.dir/drl_engine.cc.o.d"
  "CMakeFiles/geo_core.dir/experiment.cc.o"
  "CMakeFiles/geo_core.dir/experiment.cc.o.d"
  "CMakeFiles/geo_core.dir/gap_predictor.cc.o"
  "CMakeFiles/geo_core.dir/gap_predictor.cc.o.d"
  "CMakeFiles/geo_core.dir/geomancy.cc.o"
  "CMakeFiles/geo_core.dir/geomancy.cc.o.d"
  "CMakeFiles/geo_core.dir/interface_daemon.cc.o"
  "CMakeFiles/geo_core.dir/interface_daemon.cc.o.d"
  "CMakeFiles/geo_core.dir/layout_config.cc.o"
  "CMakeFiles/geo_core.dir/layout_config.cc.o.d"
  "CMakeFiles/geo_core.dir/monitoring_agent.cc.o"
  "CMakeFiles/geo_core.dir/monitoring_agent.cc.o.d"
  "CMakeFiles/geo_core.dir/movement_scheduler.cc.o"
  "CMakeFiles/geo_core.dir/movement_scheduler.cc.o.d"
  "CMakeFiles/geo_core.dir/perf_record.cc.o"
  "CMakeFiles/geo_core.dir/perf_record.cc.o.d"
  "CMakeFiles/geo_core.dir/policies.cc.o"
  "CMakeFiles/geo_core.dir/policies.cc.o.d"
  "CMakeFiles/geo_core.dir/replay_db.cc.o"
  "CMakeFiles/geo_core.dir/replay_db.cc.o.d"
  "libgeo_core.a"
  "libgeo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
