
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action_checker.cc" "src/core/CMakeFiles/geo_core.dir/action_checker.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/action_checker.cc.o.d"
  "/root/repo/src/core/control_agent.cc" "src/core/CMakeFiles/geo_core.dir/control_agent.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/control_agent.cc.o.d"
  "/root/repo/src/core/drl_engine.cc" "src/core/CMakeFiles/geo_core.dir/drl_engine.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/drl_engine.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/geo_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/gap_predictor.cc" "src/core/CMakeFiles/geo_core.dir/gap_predictor.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/gap_predictor.cc.o.d"
  "/root/repo/src/core/geomancy.cc" "src/core/CMakeFiles/geo_core.dir/geomancy.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/geomancy.cc.o.d"
  "/root/repo/src/core/interface_daemon.cc" "src/core/CMakeFiles/geo_core.dir/interface_daemon.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/interface_daemon.cc.o.d"
  "/root/repo/src/core/layout_config.cc" "src/core/CMakeFiles/geo_core.dir/layout_config.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/layout_config.cc.o.d"
  "/root/repo/src/core/monitoring_agent.cc" "src/core/CMakeFiles/geo_core.dir/monitoring_agent.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/monitoring_agent.cc.o.d"
  "/root/repo/src/core/movement_scheduler.cc" "src/core/CMakeFiles/geo_core.dir/movement_scheduler.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/movement_scheduler.cc.o.d"
  "/root/repo/src/core/perf_record.cc" "src/core/CMakeFiles/geo_core.dir/perf_record.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/perf_record.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/geo_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/policies.cc.o.d"
  "/root/repo/src/core/replay_db.cc" "src/core/CMakeFiles/geo_core.dir/replay_db.cc.o" "gcc" "src/core/CMakeFiles/geo_core.dir/replay_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/geo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/geo_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
