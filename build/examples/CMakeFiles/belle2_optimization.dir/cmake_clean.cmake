file(REMOVE_RECURSE
  "CMakeFiles/belle2_optimization.dir/belle2_optimization.cpp.o"
  "CMakeFiles/belle2_optimization.dir/belle2_optimization.cpp.o.d"
  "belle2_optimization"
  "belle2_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/belle2_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
