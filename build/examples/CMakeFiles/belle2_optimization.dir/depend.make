# Empty dependencies file for belle2_optimization.
# This may be replaced when dependencies are built.
