# Empty dependencies file for gap_scheduling.
# This may be replaced when dependencies are built.
