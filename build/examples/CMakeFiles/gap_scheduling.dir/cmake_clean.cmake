file(REMOVE_RECURSE
  "CMakeFiles/gap_scheduling.dir/gap_scheduling.cpp.o"
  "CMakeFiles/gap_scheduling.dir/gap_scheduling.cpp.o.d"
  "gap_scheduling"
  "gap_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
