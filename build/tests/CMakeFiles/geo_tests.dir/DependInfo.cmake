
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_action_checker.cc" "tests/CMakeFiles/geo_tests.dir/core/test_action_checker.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_action_checker.cc.o.d"
  "/root/repo/tests/core/test_capacity_weighted.cc" "tests/CMakeFiles/geo_tests.dir/core/test_capacity_weighted.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_capacity_weighted.cc.o.d"
  "/root/repo/tests/core/test_control_agent.cc" "tests/CMakeFiles/geo_tests.dir/core/test_control_agent.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_control_agent.cc.o.d"
  "/root/repo/tests/core/test_determinism.cc" "tests/CMakeFiles/geo_tests.dir/core/test_determinism.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_determinism.cc.o.d"
  "/root/repo/tests/core/test_drl_engine.cc" "tests/CMakeFiles/geo_tests.dir/core/test_drl_engine.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_drl_engine.cc.o.d"
  "/root/repo/tests/core/test_engine_edge_cases.cc" "tests/CMakeFiles/geo_tests.dir/core/test_engine_edge_cases.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_engine_edge_cases.cc.o.d"
  "/root/repo/tests/core/test_experiment.cc" "tests/CMakeFiles/geo_tests.dir/core/test_experiment.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_experiment.cc.o.d"
  "/root/repo/tests/core/test_failure_injection.cc" "tests/CMakeFiles/geo_tests.dir/core/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_failure_injection.cc.o.d"
  "/root/repo/tests/core/test_gap_predictor.cc" "tests/CMakeFiles/geo_tests.dir/core/test_gap_predictor.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_gap_predictor.cc.o.d"
  "/root/repo/tests/core/test_geomancy.cc" "tests/CMakeFiles/geo_tests.dir/core/test_geomancy.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_geomancy.cc.o.d"
  "/root/repo/tests/core/test_geomancy_policies.cc" "tests/CMakeFiles/geo_tests.dir/core/test_geomancy_policies.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_geomancy_policies.cc.o.d"
  "/root/repo/tests/core/test_interface_daemon.cc" "tests/CMakeFiles/geo_tests.dir/core/test_interface_daemon.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_interface_daemon.cc.o.d"
  "/root/repo/tests/core/test_latency_target.cc" "tests/CMakeFiles/geo_tests.dir/core/test_latency_target.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_latency_target.cc.o.d"
  "/root/repo/tests/core/test_layout_config.cc" "tests/CMakeFiles/geo_tests.dir/core/test_layout_config.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_layout_config.cc.o.d"
  "/root/repo/tests/core/test_monitoring_agent.cc" "tests/CMakeFiles/geo_tests.dir/core/test_monitoring_agent.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_monitoring_agent.cc.o.d"
  "/root/repo/tests/core/test_movement_scheduler.cc" "tests/CMakeFiles/geo_tests.dir/core/test_movement_scheduler.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_movement_scheduler.cc.o.d"
  "/root/repo/tests/core/test_multi_workload.cc" "tests/CMakeFiles/geo_tests.dir/core/test_multi_workload.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_multi_workload.cc.o.d"
  "/root/repo/tests/core/test_perf_record.cc" "tests/CMakeFiles/geo_tests.dir/core/test_perf_record.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_perf_record.cc.o.d"
  "/root/repo/tests/core/test_policies.cc" "tests/CMakeFiles/geo_tests.dir/core/test_policies.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_policies.cc.o.d"
  "/root/repo/tests/core/test_replay_db.cc" "tests/CMakeFiles/geo_tests.dir/core/test_replay_db.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_replay_db.cc.o.d"
  "/root/repo/tests/core/test_replay_db_csv.cc" "tests/CMakeFiles/geo_tests.dir/core/test_replay_db_csv.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/core/test_replay_db_csv.cc.o.d"
  "/root/repo/tests/nn/test_activation.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_activation.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_activation.cc.o.d"
  "/root/repo/tests/nn/test_dataset.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_dataset.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_dataset.cc.o.d"
  "/root/repo/tests/nn/test_dense_layer.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_dense_layer.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_dense_layer.cc.o.d"
  "/root/repo/tests/nn/test_gradcheck.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_gradcheck.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_gradcheck.cc.o.d"
  "/root/repo/tests/nn/test_loss.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_loss.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_loss.cc.o.d"
  "/root/repo/tests/nn/test_matrix.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_matrix.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_matrix.cc.o.d"
  "/root/repo/tests/nn/test_model_zoo.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_model_zoo.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_model_zoo.cc.o.d"
  "/root/repo/tests/nn/test_numerical_stability.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_numerical_stability.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_numerical_stability.cc.o.d"
  "/root/repo/tests/nn/test_optimizer.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_optimizer.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_optimizer.cc.o.d"
  "/root/repo/tests/nn/test_recurrent_layers.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_recurrent_layers.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_recurrent_layers.cc.o.d"
  "/root/repo/tests/nn/test_sequential.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_sequential.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_sequential.cc.o.d"
  "/root/repo/tests/nn/test_serialize.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_serialize.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_serialize.cc.o.d"
  "/root/repo/tests/nn/test_training_properties.cc" "tests/CMakeFiles/geo_tests.dir/nn/test_training_properties.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/nn/test_training_properties.cc.o.d"
  "/root/repo/tests/storage/test_bluesky.cc" "tests/CMakeFiles/geo_tests.dir/storage/test_bluesky.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/storage/test_bluesky.cc.o.d"
  "/root/repo/tests/storage/test_chunked_migration.cc" "tests/CMakeFiles/geo_tests.dir/storage/test_chunked_migration.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/storage/test_chunked_migration.cc.o.d"
  "/root/repo/tests/storage/test_contention_properties.cc" "tests/CMakeFiles/geo_tests.dir/storage/test_contention_properties.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/storage/test_contention_properties.cc.o.d"
  "/root/repo/tests/storage/test_device.cc" "tests/CMakeFiles/geo_tests.dir/storage/test_device.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/storage/test_device.cc.o.d"
  "/root/repo/tests/storage/test_external_traffic.cc" "tests/CMakeFiles/geo_tests.dir/storage/test_external_traffic.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/storage/test_external_traffic.cc.o.d"
  "/root/repo/tests/storage/test_system.cc" "tests/CMakeFiles/geo_tests.dir/storage/test_system.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/storage/test_system.cc.o.d"
  "/root/repo/tests/trace/test_access_record.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_access_record.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_access_record.cc.o.d"
  "/root/repo/tests/trace/test_cern_config.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_cern_config.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_cern_config.cc.o.d"
  "/root/repo/tests/trace/test_eos_trace.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_eos_trace.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_eos_trace.cc.o.d"
  "/root/repo/tests/trace/test_feature_matrix.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_feature_matrix.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_feature_matrix.cc.o.d"
  "/root/repo/tests/trace/test_feature_select.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_feature_select.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_feature_select.cc.o.d"
  "/root/repo/tests/trace/test_normalizer.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_normalizer.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_normalizer.cc.o.d"
  "/root/repo/tests/trace/test_path_encoder.cc" "tests/CMakeFiles/geo_tests.dir/trace/test_path_encoder.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/trace/test_path_encoder.cc.o.d"
  "/root/repo/tests/util/test_ascii_chart.cc" "tests/CMakeFiles/geo_tests.dir/util/test_ascii_chart.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_ascii_chart.cc.o.d"
  "/root/repo/tests/util/test_csv.cc" "tests/CMakeFiles/geo_tests.dir/util/test_csv.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_csv.cc.o.d"
  "/root/repo/tests/util/test_logging.cc" "tests/CMakeFiles/geo_tests.dir/util/test_logging.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_logging.cc.o.d"
  "/root/repo/tests/util/test_random.cc" "tests/CMakeFiles/geo_tests.dir/util/test_random.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_random.cc.o.d"
  "/root/repo/tests/util/test_sim_clock.cc" "tests/CMakeFiles/geo_tests.dir/util/test_sim_clock.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_sim_clock.cc.o.d"
  "/root/repo/tests/util/test_smoothing.cc" "tests/CMakeFiles/geo_tests.dir/util/test_smoothing.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_smoothing.cc.o.d"
  "/root/repo/tests/util/test_stats.cc" "tests/CMakeFiles/geo_tests.dir/util/test_stats.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_stats.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/geo_tests.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/util/test_table.cc.o.d"
  "/root/repo/tests/workload/test_belle2.cc" "tests/CMakeFiles/geo_tests.dir/workload/test_belle2.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/workload/test_belle2.cc.o.d"
  "/root/repo/tests/workload/test_interference.cc" "tests/CMakeFiles/geo_tests.dir/workload/test_interference.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/workload/test_interference.cc.o.d"
  "/root/repo/tests/workload/test_trace_replay.cc" "tests/CMakeFiles/geo_tests.dir/workload/test_trace_replay.cc.o" "gcc" "tests/CMakeFiles/geo_tests.dir/workload/test_trace_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/geo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/geo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/geo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
