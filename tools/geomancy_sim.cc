/**
 * @file
 * geomancy_sim — command-line driver for the simulated testbed.
 *
 * Runs the BELLE II workload on the Bluesky preset under a chosen
 * placement policy and prints a summary, optionally dumping the
 * per-access throughput series and move events as CSV for plotting.
 *
 * Usage:
 *   geomancy_sim [--policy NAME] [--runs N] [--warmup N] [--cadence N]
 *                [--seed N] [--epochs N] [--csv FILE] [--series FILE]
 *                [--scheduler] [--quiet]
 *
 * Policies: geomancy, geomancy-static, lru, mru, lfu, random,
 *           random-static, noop, mount:<name> (e.g. mount:file0)
 */

#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/belle2.hh"

namespace {

using namespace geo;

struct Options
{
    std::string policy = "geomancy";
    size_t runs = 60;
    size_t warmup = 6;
    size_t cadence = 5;
    uint64_t seed = 7;
    size_t epochs = 20;
    std::string csvPath;    ///< summary CSV
    std::string seriesPath; ///< per-bucket series CSV
    bool scheduler = false;
    bool quiet = false;
};

void
usage()
{
    std::cout <<
        "geomancy_sim - run a placement policy on the simulated "
        "Bluesky testbed\n\n"
        "  --policy NAME   geomancy | geomancy-static | lru | mru | lfu\n"
        "                  | random | random-static | noop | mount:<name>\n"
        "  --runs N        measured workload runs (default 60)\n"
        "  --warmup N      warmup runs before the policy acts (default 6)\n"
        "  --cadence N     runs between rebalances (default 5)\n"
        "  --seed N        master seed (default 7)\n"
        "  --epochs N      DRL retraining epochs (default 20)\n"
        "  --scheduler     enable the movement scheduler (gap + cooldown)\n"
        "  --csv FILE      append a one-line summary as CSV\n"
        "  --series FILE   write the bucketed throughput series as CSV\n"
        "  --quiet         suppress warnings\n";
}

bool
parse(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--policy")
            options.policy = next("--policy");
        else if (arg == "--runs")
            options.runs = std::stoull(next("--runs"));
        else if (arg == "--warmup")
            options.warmup = std::stoull(next("--warmup"));
        else if (arg == "--cadence")
            options.cadence = std::stoull(next("--cadence"));
        else if (arg == "--seed")
            options.seed = std::stoull(next("--seed"));
        else if (arg == "--epochs")
            options.epochs = std::stoull(next("--epochs"));
        else if (arg == "--csv")
            options.csvPath = next("--csv");
        else if (arg == "--series")
            options.seriesPath = next("--series");
        else if (arg == "--scheduler")
            options.scheduler = true;
        else if (arg == "--quiet")
            options.quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parse(argc, argv, options))
        return 0;
    if (options.quiet)
        setLogLevel(LogLevel::Quiet);

    auto system = storage::makeBlueskySystem(options.seed);
    workload::Belle2Workload workload(*system);

    // Geomancy is constructed eagerly so its agents observe warmup
    // accesses even for the static variant.
    core::GeomancyConfig gconfig;
    gconfig.drl.epochs = options.epochs;
    gconfig.useScheduler = options.scheduler;
    std::unique_ptr<core::Geomancy> geomancy;
    std::unique_ptr<core::PlacementPolicy> policy;

    const std::string &name = options.policy;
    if (name == "geomancy" || name == "geomancy-static") {
        geomancy = std::make_unique<core::Geomancy>(
            *system, workload.files(), gconfig);
        if (name == "geomancy")
            policy = std::make_unique<core::GeomancyDynamicPolicy>(
                *geomancy);
        else
            policy = std::make_unique<core::GeomancyStaticPolicy>(
                *geomancy);
    } else if (name == "lru") {
        policy = std::make_unique<core::LruPolicy>();
    } else if (name == "mru") {
        policy = std::make_unique<core::MruPolicy>();
    } else if (name == "lfu") {
        policy = std::make_unique<core::LfuPolicy>();
    } else if (name == "random") {
        policy = std::make_unique<core::RandomPolicy>(true);
    } else if (name == "random-static") {
        policy = std::make_unique<core::RandomPolicy>(false);
    } else if (name == "noop") {
        policy = std::make_unique<core::NoOpPolicy>();
    } else if (name.rfind("mount:", 0) == 0) {
        policy = std::make_unique<core::SingleMountPolicy>(
            system->deviceByName(name.substr(6)));
    } else {
        fatal("unknown policy '%s' (try --help)", name.c_str());
    }

    core::ExperimentConfig config;
    config.warmupRuns = options.warmup;
    config.measuredRuns = options.runs;
    config.cadence = options.cadence;
    config.seed = options.seed * 31 + 1;

    core::ExperimentRunner runner(*system, workload, *policy, config);
    core::ExperimentResult result = runner.run();

    TextTable table("geomancy_sim results");
    table.setHeader({"metric", "value"});
    table.addRow({"policy", result.policyName});
    table.addRow({"accesses", std::to_string(result.totalAccesses)});
    table.addRow({"avg throughput (GB/s)",
                  TextTable::num(result.averageThroughput / 1e9, 3)});
    table.addRow({"files moved", std::to_string(result.filesMoved)});
    table.addRow({"GB moved",
                  TextTable::num(
                      static_cast<double>(result.bytesMoved) / 1e9, 2)});
    table.addRow({"sim time (s)",
                  TextTable::num(system->clock().now(), 1)});
    auto names = storage::blueskyMountNames();
    for (size_t d = 0; d < names.size(); ++d) {
        double share = result.totalAccesses
                           ? 100.0 *
                                 static_cast<double>(
                                     result.accessesPerDevice[d]) /
                                 static_cast<double>(result.totalAccesses)
                           : 0.0;
        table.addRow({"usage % " + names[d], TextTable::num(share, 1)});
    }
    table.print(std::cout);

    if (!options.csvPath.empty()) {
        std::ofstream os(options.csvPath, std::ios::app);
        CsvWriter writer(os);
        writer.writeRow({result.policyName,
                         std::to_string(options.seed),
                         std::to_string(result.totalAccesses),
                         strprintf("%.6g", result.averageThroughput),
                         std::to_string(result.filesMoved),
                         std::to_string(result.bytesMoved)});
        std::cout << "summary appended to " << options.csvPath << "\n";
    }
    if (!options.seriesPath.empty()) {
        std::ofstream os(options.seriesPath);
        CsvWriter writer(os);
        writer.writeRow({"bucket", "mean_throughput_bytes_per_s"});
        std::vector<double> buckets = result.bucketedSeries(500);
        for (size_t i = 0; i < buckets.size(); ++i)
            writer.writeRow({std::to_string(i),
                             strprintf("%.6g", buckets[i])});
        std::cout << "series written to " << options.seriesPath << "\n";
    }
    return 0;
}
