/**
 * @file
 * geomancy_sim — command-line driver for the simulated testbed.
 *
 * Runs the BELLE II workload on the Bluesky preset under a chosen
 * placement policy and prints a summary, optionally dumping the
 * per-access throughput series and move events as CSV for plotting.
 *
 * Usage:
 *   geomancy_sim [--policy NAME] [--runs N] [--warmup N] [--cadence N]
 *                [--seed N] [--epochs N] [--csv FILE] [--series FILE]
 *                [--scheduler] [--faults] [--metrics-json FILE]
 *                [--metrics-prom FILE] [--trace-out FILE] [--quiet]
 *
 * --faults degrades the "var" mount from t=0 (fig7-style rebuild:
 * bandwidth loss + transient I/O errors), so evacuation migrations
 * abort and the retry/backoff machinery becomes observable.
 *
 * Policies: geomancy, geomancy-static, lru, mru, lfu, random,
 *           random-static, noop, mount:<name> (e.g. mount:file0)
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/table.hh"
#include "util/trace_event.hh"
#include "workload/belle2.hh"

namespace {

using namespace geo;

struct Options
{
    std::string policy = "geomancy";
    size_t runs = 60;
    size_t warmup = 6;
    size_t cadence = 5;
    uint64_t seed = 7;
    size_t epochs = 20;
    std::string csvPath;    ///< summary CSV
    std::string seriesPath; ///< per-bucket series CSV
    std::string metricsJsonPath; ///< metric registry snapshot (JSON)
    std::string metricsPromPath; ///< same, Prometheus text format
    std::string tracePath;  ///< Chrome trace JSON (Perfetto-viewable)
    bool scheduler = false;
    bool faults = false;    ///< degrade the "var" mount mid-run
    bool quiet = false;
};

void
usage()
{
    std::cout <<
        "geomancy_sim - run a placement policy on the simulated "
        "Bluesky testbed\n\n"
        "  --policy NAME   geomancy | geomancy-static | lru | mru | lfu\n"
        "                  | random | random-static | noop | mount:<name>\n"
        "  --runs N        measured workload runs (default 60)\n"
        "  --warmup N      warmup runs before the policy acts (default 6)\n"
        "  --cadence N     runs between rebalances (default 5)\n"
        "  --seed N        master seed (default 7)\n"
        "  --epochs N      DRL retraining epochs (default 20)\n"
        "  --scheduler     enable the movement scheduler (gap + cooldown)\n"
        "  --faults        degrade the 'var' mount (bandwidth +\n"
        "                  transient errors) to exercise retries\n"
        "  --csv FILE      append a one-line summary as CSV\n"
        "  --series FILE   write the bucketed throughput series as CSV\n"
        "  --metrics-json FILE   write the metric registry as JSON\n"
        "  --metrics-prom FILE   write the metrics in Prometheus text\n"
        "  --trace-out FILE      write a Chrome trace (view in Perfetto\n"
        "                        or chrome://tracing)\n"
        "  --quiet         suppress warnings\n";
}

bool
parse(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--policy")
            options.policy = next("--policy");
        else if (arg == "--runs")
            options.runs = std::stoull(next("--runs"));
        else if (arg == "--warmup")
            options.warmup = std::stoull(next("--warmup"));
        else if (arg == "--cadence")
            options.cadence = std::stoull(next("--cadence"));
        else if (arg == "--seed")
            options.seed = std::stoull(next("--seed"));
        else if (arg == "--epochs")
            options.epochs = std::stoull(next("--epochs"));
        else if (arg == "--csv")
            options.csvPath = next("--csv");
        else if (arg == "--series")
            options.seriesPath = next("--series");
        else if (arg == "--metrics-json")
            options.metricsJsonPath = next("--metrics-json");
        else if (arg == "--metrics-prom")
            options.metricsPromPath = next("--metrics-prom");
        else if (arg == "--trace-out")
            options.tracePath = next("--trace-out");
        else if (arg == "--scheduler")
            options.scheduler = true;
        else if (arg == "--faults")
            options.faults = true;
        else if (arg == "--quiet")
            options.quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parse(argc, argv, options))
        return 0;
    if (options.quiet)
        setLogLevel(LogLevel::Quiet);

    // Start from a clean registry so the exported snapshot describes
    // exactly this run; arm the tracer before any instrumented code.
    util::MetricRegistry::global().reset();
    if (!options.tracePath.empty())
        util::TraceCollector::global().enable();

    auto system = storage::makeBlueskySystem(options.seed);
    workload::Belle2Workload workload(*system);

    std::unique_ptr<storage::FaultInjector> injector;
    if (options.faults) {
        storage::FaultInjectorConfig fconfig;
        fconfig.seed = options.seed * 1000003 + 13;
        injector =
            std::make_unique<storage::FaultInjector>(*system, fconfig);
        system->attachFaultInjector(injector.get());

        // Mirror the fig7 scenario, live from t=0: the "var" mount is
        // in a rebuild (degraded bandwidth) and throws transient I/O
        // errors for the whole experiment.  It must be active before
        // the first rebalance — evacuating the degraded mount is
        // exactly the traffic that exercises the retry machinery.
        storage::DeviceId victim = system->deviceByName("var");
        storage::FaultEvent degrade;
        degrade.device = victim;
        degrade.kind = storage::FaultKind::Degradation;
        degrade.start = 0.0;
        degrade.duration = 0.0; // the rebuild never finishes
        degrade.magnitude = 0.45;
        injector->addEvent(degrade);
        storage::FaultEvent errors;
        errors.device = victim;
        errors.kind = storage::FaultKind::TransientErrors;
        errors.start = 0.0;
        errors.duration = 0.0;
        // Hotter than fig7's 0.35: short CLI runs see few moves
        // touch the victim, and the point of --faults is to make
        // the retry/backoff path observable, not marginal.
        errors.magnitude = 0.6;
        injector->addEvent(errors);
    }

    // Geomancy is constructed eagerly so its agents observe warmup
    // accesses even for the static variant.
    core::GeomancyConfig gconfig;
    gconfig.drl.epochs = options.epochs;
    gconfig.useScheduler = options.scheduler;
    std::unique_ptr<core::Geomancy> geomancy;
    std::unique_ptr<core::PlacementPolicy> policy;

    const std::string &name = options.policy;
    if (name == "geomancy" || name == "geomancy-static") {
        geomancy = std::make_unique<core::Geomancy>(
            *system, workload.files(), gconfig);
        if (name == "geomancy")
            policy = std::make_unique<core::GeomancyDynamicPolicy>(
                *geomancy);
        else
            policy = std::make_unique<core::GeomancyStaticPolicy>(
                *geomancy);
    } else if (name == "lru") {
        policy = std::make_unique<core::LruPolicy>();
    } else if (name == "mru") {
        policy = std::make_unique<core::MruPolicy>();
    } else if (name == "lfu") {
        policy = std::make_unique<core::LfuPolicy>();
    } else if (name == "random") {
        policy = std::make_unique<core::RandomPolicy>(true);
    } else if (name == "random-static") {
        policy = std::make_unique<core::RandomPolicy>(false);
    } else if (name == "noop") {
        policy = std::make_unique<core::NoOpPolicy>();
    } else if (name.rfind("mount:", 0) == 0) {
        policy = std::make_unique<core::SingleMountPolicy>(
            system->deviceByName(name.substr(6)));
    } else {
        fatal("unknown policy '%s' (try --help)", name.c_str());
    }

    core::ExperimentConfig config;
    config.warmupRuns = options.warmup;
    config.measuredRuns = options.runs;
    config.cadence = options.cadence;
    config.seed = options.seed * 31 + 1;

    core::ExperimentRunner runner(*system, workload, *policy, config);
    core::ExperimentResult result = runner.run();

    TextTable table("geomancy_sim results");
    table.setHeader({"metric", "value"});
    table.addRow({"policy", result.policyName});
    table.addRow({"accesses", std::to_string(result.totalAccesses)});
    table.addRow({"avg throughput (GB/s)",
                  TextTable::num(result.averageThroughput / 1e9, 3)});
    table.addRow({"files moved", std::to_string(result.filesMoved)});
    table.addRow({"GB moved",
                  TextTable::num(
                      static_cast<double>(result.bytesMoved) / 1e9, 2)});
    table.addRow({"sim time (s)",
                  TextTable::num(system->clock().now(), 1)});
    auto names = storage::blueskyMountNames();
    for (size_t d = 0; d < names.size(); ++d) {
        double share = result.totalAccesses
                           ? 100.0 *
                                 static_cast<double>(
                                     result.accessesPerDevice[d]) /
                                 static_cast<double>(result.totalAccesses)
                           : 0.0;
        table.addRow({"usage % " + names[d], TextTable::num(share, 1)});
    }
    table.print(std::cout);

    if (!options.csvPath.empty()) {
        std::ofstream os(options.csvPath, std::ios::app);
        CsvWriter writer(os);
        writer.writeRow({result.policyName,
                         std::to_string(options.seed),
                         std::to_string(result.totalAccesses),
                         strprintf("%.6g", result.averageThroughput),
                         std::to_string(result.filesMoved),
                         std::to_string(result.bytesMoved)});
        std::cout << "summary appended to " << options.csvPath << "\n";
    }
    if (!options.seriesPath.empty()) {
        std::ofstream os(options.seriesPath);
        CsvWriter writer(os);
        writer.writeRow({"bucket", "mean_throughput_bytes_per_s"});
        std::vector<double> buckets = result.bucketedSeries(500);
        for (size_t i = 0; i < buckets.size(); ++i)
            writer.writeRow({std::to_string(i),
                             strprintf("%.6g", buckets[i])});
        std::cout << "series written to " << options.seriesPath << "\n";
    }
    if (!options.metricsJsonPath.empty()) {
        if (util::MetricRegistry::global().writeJsonFile(
                options.metricsJsonPath))
            std::cout << "metrics written to " << options.metricsJsonPath
                      << "\n";
        else
            warn("could not write %s", options.metricsJsonPath.c_str());
    }
    if (!options.metricsPromPath.empty()) {
        std::ofstream os(options.metricsPromPath);
        if (os) {
            os << util::MetricRegistry::global().toPrometheus();
            std::cout << "metrics written to " << options.metricsPromPath
                      << "\n";
        } else {
            warn("could not write %s", options.metricsPromPath.c_str());
        }
    }
    if (!options.tracePath.empty()) {
        util::TraceCollector &collector = util::TraceCollector::global();
        collector.disable();
        if (collector.writeJsonFile(options.tracePath)) {
            std::cout << "trace written to " << options.tracePath << " ("
                      << collector.eventCount() << " events";
            if (collector.droppedCount() > 0)
                std::cout << ", " << collector.droppedCount()
                          << " dropped";
            std::cout << ")\n";
        } else {
            warn("could not write %s", options.tracePath.c_str());
        }
    }
    return 0;
}
