/**
 * @file
 * geomancy_sim — command-line driver for the simulated testbed.
 *
 * Runs the BELLE II workload on the Bluesky preset under a chosen
 * placement policy and prints a summary, optionally dumping the
 * per-access throughput series and move events as CSV for plotting.
 *
 * Usage:
 *   geomancy_sim [--policy NAME] [--runs N] [--warmup N] [--cadence N]
 *                [--seed N] [--epochs N] [--csv FILE] [--series FILE]
 *                [--scheduler] [--faults] [--chaos]
 *                [--force-safe-mode T] [--metrics-json FILE]
 *                [--metrics-prom FILE] [--trace-out FILE] [--quiet]
 *                [--checkpoint-dir DIR] [--checkpoint-every N]
 *                [--crash-at POINT] [--crash-cycle N] [--resume]
 *                [--max-restarts N] [--ledger-out FILE]
 *                [--flight-dump-dir DIR]
 *
 * --ledger-out attaches the decision audit ledger (geo-ledger-1
 * NDJSON; read it back with geomancy_explain). --flight-dump-dir
 * arms the flight recorder: fatal signals, kill points and safe-mode
 * entries leave a post-mortem event dump under DIR.
 *
 * --faults degrades the "var" mount from t=0 (fig7-style rebuild:
 * bandwidth loss + transient I/O errors), so evacuation migrations
 * abort and the retry/backoff machinery becomes observable.
 *
 * --chaos schedules a seeded random mix of every fault class (errors,
 * degradation, outages, corrupt/stale/skewed telemetry) across the
 * run; --force-safe-mode T floods the telemetry with corruption from
 * sim time T onward, tripping the guardrails into safe mode a couple
 * of cycles later. Both schedules are pure functions of the seed and
 * flags, so crash/resume runs rebuild them identically.
 *
 * --checkpoint-dir enables crash-safe snapshots (and a file-backed
 * ReplayDB in the same directory); --crash-at kills the process at a
 * pipeline kill point; --resume restarts from the newest valid
 * snapshot; --max-restarts supervises the run in forked children,
 * restarting crashed attempts with backoff. A crash+resume run is
 * byte-identical to the same run uninterrupted.
 *
 * Policies: geomancy, geomancy-static, lru, mru, lfu, random,
 *           random-static, noop, mount:<name> (e.g. mount:file0)
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/flight_recorder.hh"
#include "util/state_io.hh"
#include "util/supervise.hh"
#include "util/table.hh"
#include "util/trace_event.hh"
#include "workload/belle2.hh"

namespace {

using namespace geo;

struct Options
{
    std::string policy = "geomancy";
    size_t runs = 60;
    size_t warmup = 6;
    size_t cadence = 5;
    uint64_t seed = 7;
    size_t epochs = 20;
    std::string csvPath;    ///< summary CSV
    std::string seriesPath; ///< per-bucket series CSV
    std::string metricsJsonPath; ///< metric registry snapshot (JSON)
    std::string metricsPromPath; ///< same, Prometheus text format
    std::string tracePath;  ///< Chrome trace JSON (Perfetto-viewable)
    bool scheduler = false;
    bool faults = false;    ///< degrade the "var" mount mid-run
    bool chaos = false;     ///< seeded random schedule of all faults
    double forceSafeMode = -1.0; ///< >=0: telemetry flood from this t
    bool quiet = false;
    std::string checkpointDir;   ///< empty = checkpointing disabled
    size_t checkpointEvery = 1;  ///< snapshot every N measured runs
    storage::CrashPoint crashAt = storage::CrashPoint::None;
    uint64_t crashCycle = 2;     ///< decision cycle the crash arms at
    bool resume = false;         ///< restart from the newest snapshot
    int maxRestarts = 0;         ///< >0 runs under the supervisor
    std::string ledgerPath;      ///< decision audit ledger (NDJSON)
    std::string flightDumpDir;   ///< flight-recorder dump directory
    size_t shards = 0;           ///< >0: shard coordinator (geomancy)
    size_t tenants = 1;          ///< workload tenant multiplier
};

void
usage()
{
    std::cout <<
        "geomancy_sim - run a placement policy on the simulated "
        "Bluesky testbed\n\n"
        "  --policy NAME   geomancy | geomancy-static | lru | mru | lfu\n"
        "                  | random | random-static | noop | mount:<name>\n"
        "  --runs N        measured workload runs (default 60)\n"
        "  --warmup N      warmup runs before the policy acts (default 6)\n"
        "  --cadence N     runs between rebalances (default 5)\n"
        "  --seed N        master seed (default 7)\n"
        "  --epochs N      DRL retraining epochs (default 20)\n"
        "  --scheduler     enable the movement scheduler (gap + cooldown)\n"
        "  --faults        degrade the 'var' mount (bandwidth +\n"
        "                  transient errors) to exercise retries\n"
        "  --chaos         seeded random schedule composing every\n"
        "                  fault class (I/O errors, degradation,\n"
        "                  outages, corrupt/stale/skewed telemetry)\n"
        "  --force-safe-mode T   flood the telemetry with corruption\n"
        "                  from sim time T on; the guardrails trip\n"
        "                  into safe mode a couple of cycles later\n"
        "  --csv FILE      append a one-line summary as CSV\n"
        "  --series FILE   write the bucketed throughput series as CSV\n"
        "  --metrics-json FILE   write the metric registry as JSON\n"
        "  --metrics-prom FILE   write the metrics in Prometheus text\n"
        "  --trace-out FILE      write a Chrome trace (view in Perfetto\n"
        "                        or chrome://tracing)\n"
        "  --checkpoint-dir DIR  crash-safe snapshots + file-backed\n"
        "                        ReplayDB under DIR\n"
        "  --checkpoint-every N  snapshot every N measured runs (def. 1)\n"
        "  --crash-at POINT      kill the process at a pipeline kill\n"
        "                        point: after-train | after-propose |\n"
        "                        mid-migration | after-commit\n"
        "  --crash-cycle N       decision cycle the crash arms at (def. 2)\n"
        "  --resume        restart from the newest valid snapshot\n"
        "  --max-restarts N      supervise: fork attempts, restart\n"
        "                        crashed children with backoff\n"
        "  --ledger-out FILE     write the decision audit ledger\n"
        "                        (geo-ledger-1 NDJSON; see\n"
        "                        geomancy_explain)\n"
        "  --flight-dump-dir DIR dump the flight-recorder ring there\n"
        "                        on fatal signals, kill points and\n"
        "                        safe-mode entry\n"
        "  --shards N      run N Geomancy shards under the fleet\n"
        "                  coordinator (policy geomancy only); files\n"
        "                  partition by stable hash, per-device\n"
        "                  migration budgets apply across shards\n"
        "  --tenants N     multiply the workload: N co-tenant BELLE II\n"
        "                  suites with independent seeds (default 1)\n"
        "  --quiet         suppress warnings\n";
}

bool
parse(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--policy")
            options.policy = next("--policy");
        else if (arg == "--runs")
            options.runs = std::stoull(next("--runs"));
        else if (arg == "--warmup")
            options.warmup = std::stoull(next("--warmup"));
        else if (arg == "--cadence")
            options.cadence = std::stoull(next("--cadence"));
        else if (arg == "--seed")
            options.seed = std::stoull(next("--seed"));
        else if (arg == "--epochs")
            options.epochs = std::stoull(next("--epochs"));
        else if (arg == "--csv")
            options.csvPath = next("--csv");
        else if (arg == "--series")
            options.seriesPath = next("--series");
        else if (arg == "--metrics-json")
            options.metricsJsonPath = next("--metrics-json");
        else if (arg == "--metrics-prom")
            options.metricsPromPath = next("--metrics-prom");
        else if (arg == "--trace-out")
            options.tracePath = next("--trace-out");
        else if (arg == "--checkpoint-dir")
            options.checkpointDir = next("--checkpoint-dir");
        else if (arg == "--checkpoint-every")
            options.checkpointEvery =
                std::stoull(next("--checkpoint-every"));
        else if (arg == "--crash-at") {
            std::string point = next("--crash-at");
            if (!storage::parseCrashPoint(point, options.crashAt))
                fatal("unknown crash point '%s'", point.c_str());
        } else if (arg == "--crash-cycle")
            options.crashCycle = std::stoull(next("--crash-cycle"));
        else if (arg == "--resume")
            options.resume = true;
        else if (arg == "--max-restarts")
            options.maxRestarts = std::stoi(next("--max-restarts"));
        else if (arg == "--ledger-out")
            options.ledgerPath = next("--ledger-out");
        else if (arg == "--flight-dump-dir")
            options.flightDumpDir = next("--flight-dump-dir");
        else if (arg == "--shards")
            options.shards = std::stoull(next("--shards"));
        else if (arg == "--tenants")
            options.tenants = std::stoull(next("--tenants"));
        else if (arg == "--scheduler")
            options.scheduler = true;
        else if (arg == "--faults")
            options.faults = true;
        else if (arg == "--chaos")
            options.chaos = true;
        else if (arg == "--force-safe-mode")
            options.forceSafeMode =
                std::stod(next("--force-safe-mode"));
        else if (arg == "--quiet")
            options.quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    return true;
}

/**
 * One attempt of the simulation — the whole former main(). Under the
 * supervisor this is the forked child's body; `attempt` is the restart
 * count and `resume` asks it to continue from the newest snapshot.
 */
int
runOnce(const Options &options, int attempt, bool resume)
{
    if (options.quiet)
        setLogLevel(LogLevel::Quiet);

    // Start from a clean registry so the exported snapshot describes
    // exactly this run; arm the tracer before any instrumented code.
    util::MetricRegistry::global().reset();
    util::MetricRegistry::global().gauge("supervisor.restarts")
        .set(attempt);
    if (!options.tracePath.empty()) {
        util::TraceCollector::global().enable();
        // Crashes flush the buffered tail to the same path the clean
        // exit would have written (a truncated trace beats none).
        util::TraceCollector::global().setCrashFlushPath(
            options.tracePath);
    }
    util::FlightRecorder::global().clear();
    if (!options.flightDumpDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.flightDumpDir, ec);
        util::FlightRecorder::global().setDumpDir(options.flightDumpDir);
        util::FlightRecorder::installSignalHandlers();
    }

    bool checkpointing = !options.checkpointDir.empty();
    std::unique_ptr<core::CheckpointManager> manager;
    std::string db_path = ":memory:";
    if (checkpointing) {
        std::error_code ec;
        std::filesystem::create_directories(options.checkpointDir, ec);
        if (ec)
            fatal("cannot create %s: %s", options.checkpointDir.c_str(),
                  ec.message().c_str());
        core::CheckpointManagerConfig mconfig;
        mconfig.dir = options.checkpointDir;
        manager = std::make_unique<core::CheckpointManager>(mconfig);
        // The ReplayDB must survive the crash alongside the snapshots:
        // the snapshot only stores a watermark into it.
        db_path = options.checkpointDir + "/replay.db";
        if (!resume) {
            manager->clear();
            // The hot journal must go with the database: a stale
            // rollback journal next to a fresh file would be replayed
            // into it on open.
            for (const char *suffix : {"", "-journal", "-wal", "-shm"}) {
                std::filesystem::remove(db_path + suffix, ec);
                for (size_t s = 0; s < options.shards; ++s)
                    std::filesystem::remove(
                        core::ShardCoordinator::dbPath(db_path, s) +
                            suffix,
                        ec);
            }
        }
    }

    auto system = storage::makeBlueskySystem(options.seed);
    workload::Belle2Config wconfig;
    wconfig.tenantCount = std::max<size_t>(1, options.tenants);
    workload::Belle2Workload workload(*system, wconfig);

    std::unique_ptr<storage::FaultInjector> injector;
    // Checkpointing always constructs the injector (harmless with an
    // empty schedule) so the snapshot layout does not depend on which
    // of --faults/--crash-at/--resume this particular invocation got.
    if (options.faults || options.chaos ||
        options.forceSafeMode >= 0.0 || checkpointing ||
        options.crashAt != storage::CrashPoint::None) {
        storage::FaultInjectorConfig fconfig;
        fconfig.seed = options.seed * 1000003 + 13;
        injector =
            std::make_unique<storage::FaultInjector>(*system, fconfig);
        system->attachFaultInjector(injector.get());
    }
    if (options.faults) {
        // Mirror the fig7 scenario, live from t=0: the "var" mount is
        // in a rebuild (degraded bandwidth) and throws transient I/O
        // errors for the whole experiment.  It must be active before
        // the first rebalance — evacuating the degraded mount is
        // exactly the traffic that exercises the retry machinery.
        storage::DeviceId victim = system->deviceByName("var");
        storage::FaultEvent degrade;
        degrade.device = victim;
        degrade.kind = storage::FaultKind::Degradation;
        degrade.start = 0.0;
        degrade.duration = 0.0; // the rebuild never finishes
        degrade.magnitude = 0.45;
        injector->addEvent(degrade);
        storage::FaultEvent errors;
        errors.device = victim;
        errors.kind = storage::FaultKind::TransientErrors;
        errors.start = 0.0;
        errors.duration = 0.0;
        // Hotter than fig7's 0.35: short CLI runs see few moves
        // touch the victim, and the point of --faults is to make
        // the retry/backoff path observable, not marginal.
        errors.magnitude = 0.6;
        injector->addEvent(errors);
    }
    if (options.chaos) {
        // A static, seed-derived schedule (identical on every resume,
        // which keeps checkpoint restores valid): mixed-kind episodes
        // spread along the sim-time axis. Episodes scheduled past the
        // end of a short run simply never activate.
        Rng chaos(options.seed * 0x9E3779B9ULL + 0x51ED);
        double at = 5.0;
        size_t devices = system->deviceCount();
        for (int i = 0; i < 48; ++i) {
            storage::FaultEvent e;
            e.device = static_cast<storage::DeviceId>(
                chaos.uniformInt(0, static_cast<int64_t>(devices) - 1));
            e.start = at;
            e.duration = chaos.uniform(5.0, 60.0);
            switch (chaos.uniformInt(0, 5)) {
              case 0:
                e.kind = storage::FaultKind::TransientErrors;
                e.magnitude = chaos.uniform(0.05, 0.35);
                break;
              case 1:
                e.kind = storage::FaultKind::Degradation;
                e.magnitude = chaos.uniform(0.3, 0.9);
                break;
              case 2:
                e.kind = storage::FaultKind::Outage;
                e.duration = chaos.uniform(2.0, 15.0);
                break;
              case 3:
                e.kind = storage::FaultKind::CorruptTelemetry;
                e.magnitude = chaos.uniform(0.2, 0.9);
                break;
              case 4:
                // Beyond the default staleness window (one day), so
                // the Stale quarantine reason actually fires.
                e.kind = storage::FaultKind::StaleTelemetry;
                e.magnitude = chaos.uniform(90000.0, 250000.0);
                break;
              default:
                // Beyond the default future-skew slack (one hour).
                e.kind = storage::FaultKind::ClockSkew;
                e.magnitude = chaos.uniform(4000.0, 20000.0);
                break;
            }
            injector->addEvent(e);
            at += chaos.uniform(10.0, 80.0);
        }
    }
    if (options.forceSafeMode >= 0.0) {
        // Permanent corruption of nearly all telemetry on every mount:
        // consecutive quarantine floods trip safe mode within a couple
        // of decision cycles of `forceSafeMode`. Static schedule, so
        // crash/resume runs rebuild it identically.
        for (storage::DeviceId d = 0; d < system->deviceCount(); ++d) {
            storage::FaultEvent flood;
            flood.device = d;
            flood.kind = storage::FaultKind::CorruptTelemetry;
            flood.start = options.forceSafeMode;
            flood.duration = 0.0; // never lifts
            flood.magnitude = 0.97;
            injector->addEvent(flood);
        }
    }
    // The kill point arms only on the first, non-resuming attempt; a
    // restarted child runs disarmed so the supervised run terminates.
    if (injector && options.crashAt != storage::CrashPoint::None &&
        attempt == 0 && !resume)
        injector->armCrash(options.crashAt, options.crashCycle);

    // Geomancy is constructed eagerly so its agents observe warmup
    // accesses even for the static variant.
    core::GeomancyConfig gconfig;
    gconfig.drl.epochs = options.epochs;
    gconfig.useScheduler = options.scheduler;
    std::unique_ptr<core::Geomancy> geomancy;
    std::unique_ptr<core::ShardCoordinator> coordinator;
    std::unique_ptr<core::PlacementPolicy> policy;

    const std::string &name = options.policy;
    if (options.shards > 0 && name != "geomancy")
        fatal("--shards requires --policy geomancy");
    if (options.shards > 0) {
        core::ShardCoordinatorConfig ccfg;
        ccfg.shardCount = options.shards;
        ccfg.base = gconfig;
        coordinator = std::make_unique<core::ShardCoordinator>(
            *system, workload.files(), ccfg, db_path);
        if (!options.ledgerPath.empty()) {
            // Per-shard ledgers: <path>.shard<i>. Fresh runs drop the
            // previous run's files; resumes keep them — loadState
            // truncates each back to the checkpoint cut.
            if (!resume) {
                std::error_code ec;
                for (size_t s = 0; s < options.shards; ++s)
                    std::filesystem::remove(
                        core::ShardCoordinator::ledgerPath(
                            options.ledgerPath, s),
                        ec);
            }
            coordinator->attachLedgers(options.ledgerPath);
        }
        policy =
            std::make_unique<core::ShardedGeomancyPolicy>(*coordinator);
    } else if (name == "geomancy" || name == "geomancy-static") {
        geomancy = std::make_unique<core::Geomancy>(
            *system, workload.files(), gconfig, db_path);
        if (!options.ledgerPath.empty()) {
            // Fresh runs drop the previous run's ledger; resumes keep
            // it — loadState truncates it back to the checkpoint cut.
            if (!resume) {
                std::error_code ec;
                std::filesystem::remove(options.ledgerPath, ec);
            }
            geomancy->attachLedger(options.ledgerPath);
        }
        if (name == "geomancy")
            policy = std::make_unique<core::GeomancyDynamicPolicy>(
                *geomancy);
        else
            policy = std::make_unique<core::GeomancyStaticPolicy>(
                *geomancy);
    } else if (name == "lru") {
        policy = std::make_unique<core::LruPolicy>();
    } else if (name == "mru") {
        policy = std::make_unique<core::MruPolicy>();
    } else if (name == "lfu") {
        policy = std::make_unique<core::LfuPolicy>();
    } else if (name == "random") {
        policy = std::make_unique<core::RandomPolicy>(true);
    } else if (name == "random-static") {
        policy = std::make_unique<core::RandomPolicy>(false);
    } else if (name == "noop") {
        policy = std::make_unique<core::NoOpPolicy>();
    } else if (name.rfind("mount:", 0) == 0) {
        policy = std::make_unique<core::SingleMountPolicy>(
            system->deviceByName(name.substr(6)));
    } else {
        fatal("unknown policy '%s' (try --help)", name.c_str());
    }

    core::ExperimentConfig config;
    config.warmupRuns = options.warmup;
    config.measuredRuns = options.runs;
    config.cadence = options.cadence;
    config.seed = options.seed * 31 + 1;

    core::ExperimentRunner runner(*system, workload, *policy, config);

    // One consistent cut: the pipeline (or bare system), the injector,
    // the workload cursor and the runner's progress, in a fixed order.
    auto writeSnapshot = [&](util::StateWriter &w) {
        if (coordinator)
            coordinator->saveState(w);
        else if (geomancy)
            geomancy->saveState(w);
        else
            system->saveState(w);
        if (injector)
            injector->saveState(w);
        workload.saveState(w);
        runner.saveState(w);
    };

    if (checkpointing && resume) {
        auto started = std::chrono::steady_clock::now();
        core::CheckpointHeader header;
        std::string payload, path;
        if (manager->loadLatest(header, payload, &path)) {
            std::istringstream is(payload);
            util::StateReader r(is);
            if (coordinator)
                coordinator->loadState(r);
            else if (geomancy)
                geomancy->loadState(r);
            else
                system->loadState(r);
            if (injector)
                injector->loadState(r);
            workload.loadState(r);
            runner.loadState(r);
            if (!r.ok()) {
                // The file passed its CRC, so this is not corruption:
                // the snapshot was cut under different flags/topology.
                // Partial restores are not safe to run from.
                fatal("checkpoint %s does not match this "
                      "configuration: %s", path.c_str(),
                      r.error().c_str());
            }
            if (coordinator) {
                for (size_t s = 0; s < coordinator->shardCount(); ++s)
                    coordinator->shard(s)
                        .controlAgent()
                        .restorePending();
            } else if (geomancy) {
                geomancy->controlAgent().restorePending();
            }
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - started)
                            .count();
            auto &registry = util::MetricRegistry::global();
            registry.gauge("checkpoint.restore_ms").set(ms);
            registry.gauge("checkpoint.resume_cycle")
                .set(static_cast<double>(header.cycle));
            registry.gauge("checkpoint.runs_saved")
                .set(static_cast<double>(runner.measuredRunsDone()));
            inform("resumed from %s: %zu of %zu measured runs already "
                   "done (%.1f ms restore)", path.c_str(),
                   runner.measuredRunsDone(), options.runs, ms);
        } else {
            warn("no usable checkpoint under %s; starting fresh",
                 options.checkpointDir.c_str());
            manager->clear();
            if (coordinator) {
                for (size_t s = 0; s < coordinator->shardCount(); ++s)
                    coordinator->shard(s).replayDb().rewindTo({});
            } else if (geomancy) {
                geomancy->replayDb().rewindTo({});
            }
        }
    }

    if (checkpointing) {
        runner.setCheckpointHook([&](size_t done) {
            if (done % options.checkpointEvery != 0 &&
                done != options.runs)
                return;
            std::ostringstream os;
            util::StateWriter w(os);
            writeSnapshot(w);
            if (manager->write(done, os.str()) && injector)
                injector->maybeCrash(storage::CrashPoint::AfterCommit);
        });
    }

    core::ExperimentResult result = runner.run();

    TextTable table("geomancy_sim results");
    table.setHeader({"metric", "value"});
    table.addRow({"policy", result.policyName});
    table.addRow({"accesses", std::to_string(result.totalAccesses)});
    table.addRow({"avg throughput (GB/s)",
                  TextTable::num(result.averageThroughput / 1e9, 3)});
    table.addRow({"files moved", std::to_string(result.filesMoved)});
    table.addRow({"GB moved",
                  TextTable::num(
                      static_cast<double>(result.bytesMoved) / 1e9, 2)});
    table.addRow({"sim time (s)",
                  TextTable::num(system->clock().now(), 1)});
    auto names = storage::blueskyMountNames();
    for (size_t d = 0; d < names.size(); ++d) {
        double share = result.totalAccesses
                           ? 100.0 *
                                 static_cast<double>(
                                     result.accessesPerDevice[d]) /
                                 static_cast<double>(result.totalAccesses)
                           : 0.0;
        table.addRow({"usage % " + names[d], TextTable::num(share, 1)});
    }
    table.print(std::cout);

    if (!options.csvPath.empty()) {
        std::ofstream os(options.csvPath, std::ios::app);
        CsvWriter writer(os);
        writer.writeRow({result.policyName,
                         std::to_string(options.seed),
                         std::to_string(result.totalAccesses),
                         strprintf("%.6g", result.averageThroughput),
                         std::to_string(result.filesMoved),
                         std::to_string(result.bytesMoved)});
        std::cout << "summary appended to " << options.csvPath << "\n";
    }
    if (!options.seriesPath.empty()) {
        std::ofstream os(options.seriesPath);
        CsvWriter writer(os);
        writer.writeRow({"bucket", "mean_throughput_bytes_per_s"});
        std::vector<double> buckets = result.bucketedSeries(500);
        for (size_t i = 0; i < buckets.size(); ++i)
            writer.writeRow({std::to_string(i),
                             strprintf("%.6g", buckets[i])});
        std::cout << "series written to " << options.seriesPath << "\n";
    }
    if (!options.metricsJsonPath.empty()) {
        if (util::MetricRegistry::global().writeJsonFile(
                options.metricsJsonPath))
            std::cout << "metrics written to " << options.metricsJsonPath
                      << "\n";
        else
            warn("could not write %s", options.metricsJsonPath.c_str());
    }
    if (!options.metricsPromPath.empty()) {
        std::ofstream os(options.metricsPromPath);
        if (os) {
            os << util::MetricRegistry::global().toPrometheus();
            std::cout << "metrics written to " << options.metricsPromPath
                      << "\n";
        } else {
            warn("could not write %s", options.metricsPromPath.c_str());
        }
    }
    if (!options.tracePath.empty()) {
        util::TraceCollector &collector = util::TraceCollector::global();
        collector.disable();
        if (collector.writeJsonFile(options.tracePath)) {
            std::cout << "trace written to " << options.tracePath << " ("
                      << collector.eventCount() << " events";
            if (collector.droppedCount() > 0)
                std::cout << ", " << collector.droppedCount()
                          << " dropped";
            std::cout << ")\n";
        } else {
            warn("could not write %s", options.tracePath.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parse(argc, argv, options))
        return 0;

    if (options.maxRestarts > 0) {
        util::SuperviseConfig sconfig;
        sconfig.maxRestarts = options.maxRestarts;
        util::SuperviseResult sup = util::runSupervised(
            [&](int attempt, bool restarted) {
                return runOnce(options, attempt,
                               options.resume || restarted);
            },
            sconfig);
        return sup.exitCode;
    }
    return runOnce(options, 0, options.resume);
}
