#!/usr/bin/env python3
"""Compare two geo-perf-2 snapshots and fail on perf regressions.

Usage: perf_diff.py BASELINE CURRENT [--threshold FRAC]

A metric regresses when it worsens by more than the threshold
(default 0.15 = 15%; override with --threshold or the
GEO_PERF_DIFF_THRESHOLD environment variable).  Time-like metrics
(ms, ns, seconds) regress upward, speedups regress downward.

Only metrics that are comparable between the two snapshots are
diffed.  GEMM timings are keyed by (m, k, n) — a quick-mode run and a
full-mode run still share sizes — and the metric-primitive overheads
are per-op costs independent of the suite mode.  Timings whose work
depends on the mode (training epochs, decision cycles, model-search
scaling, ledger overhead) are compared only when both snapshots were
produced with the same `quick` flag; otherwise they are skipped with
a note rather than producing false alarms.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"perf_diff: cannot load {path}: {err}")
    if doc.get("schema") != "geo-perf-2":
        sys.exit(f"perf_diff: {path} is not a geo-perf-2 snapshot "
                 f"(schema {doc.get('schema')!r})")
    return doc


class Diff:
    def __init__(self, threshold, floor_ms):
        self.threshold = threshold
        self.floor_ms = floor_ms
        self.rows = []        # (name, base, cur, delta_frac, verdict)
        self.regressions = []
        self.skipped = []

    def compare(self, name, base, cur, lower_is_better=True,
                scale_to_ms=1.0):
        """Diff one metric.  `scale_to_ms` converts the metric's unit
        to milliseconds (ns -> 1e-6, s -> 1e3); a time-like metric
        whose baseline is below the floor is too small to measure
        reliably on a shared machine, so it is reported but cannot
        fail the diff.  Dimensionless metrics (speedups) pass
        scale_to_ms=None and are always gated."""
        if base is None or cur is None:
            self.skipped.append(name)
            return
        if not isinstance(base, (int, float)) or \
           not isinstance(cur, (int, float)) or base <= 0:
            self.skipped.append(name)
            return
        delta = (cur - base) / base
        worse = delta > self.threshold if lower_is_better \
            else delta < -self.threshold
        gated = scale_to_ms is None or base * scale_to_ms >= self.floor_ms
        if worse and gated:
            verdict = "REGRESSION"
        elif worse:
            verdict = "noisy (below floor)"
        else:
            verdict = "ok"
        self.rows.append((name, base, cur, delta, verdict))
        if worse and gated:
            self.regressions.append(name)

    def report(self):
        width = max((len(r[0]) for r in self.rows), default=10)
        print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}"
              f"  {'delta':>8}")
        for name, base, cur, delta, verdict in self.rows:
            mark = "  <-- " + verdict if verdict != "ok" else ""
            print(f"{name:<{width}}  {base:>12.4f}  {cur:>12.4f}"
                  f"  {delta:>+7.1%}{mark}")
        for name in self.skipped:
            print(f"{name:<{width}}  (not comparable, skipped)")


def section(doc, name):
    value = doc.get(name)
    return value if isinstance(value, dict) else {}


def main():
    parser = argparse.ArgumentParser(
        description="diff two geo-perf-2 snapshots")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("GEO_PERF_DIFF_THRESHOLD", "0.15")),
        help="regression threshold as a fraction (default 0.15)")
    parser.add_argument(
        "--floor", type=float,
        default=float(os.environ.get("GEO_PERF_DIFF_FLOOR_MS", "1.0")),
        help="time-like metrics with a baseline below this many "
             "milliseconds are advisory only (default 1.0)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    diff = Diff(args.threshold, args.floor)
    same_mode = base.get("quick") == cur.get("quick")

    # GEMM: keyed by shape, comparable across modes.
    base_gemm = {(g.get("m"), g.get("k"), g.get("n")): g
                 for g in base.get("gemm", [])}
    cur_gemm = {(g.get("m"), g.get("k"), g.get("n")): g
                for g in cur.get("gemm", [])}
    for key in sorted(set(base_gemm) & set(cur_gemm)):
        label = "gemm[%dx%dx%d]" % key
        diff.compare(label + ".fast_ms", base_gemm[key].get("fast_ms"),
                     cur_gemm[key].get("fast_ms"))
        diff.compare(label + ".speedup", base_gemm[key].get("speedup"),
                     cur_gemm[key].get("speedup"),
                     lower_is_better=False, scale_to_ms=None)

    # Metric primitives: per-op ns, comparable across modes.
    base_ovh = section(base, "metrics_overhead")
    cur_ovh = section(cur, "metrics_overhead")
    for key in ("counter_ns", "histogram_ns"):
        diff.compare("metrics_overhead." + key, base_ovh.get(key),
                     cur_ovh.get(key), scale_to_ms=1e-6)

    # Dimensionless speedups: comparable across modes.
    diff.compare("candidate_scoring.speedup",
                 section(base, "candidate_scoring").get("speedup"),
                 section(cur, "candidate_scoring").get("speedup"),
                 lower_is_better=False, scale_to_ms=None)

    # Mode-dependent wall times: only when the modes match.
    if same_mode:
        diff.compare("train.epoch_ms",
                     section(base, "train").get("epoch_ms"),
                     section(cur, "train").get("epoch_ms"))
        diff.compare("train.retrain_ms",
                     section(base, "train").get("retrain_ms"),
                     section(cur, "train").get("retrain_ms"))
        diff.compare("candidate_scoring.batched_ms",
                     section(base, "candidate_scoring").get("batched_ms"),
                     section(cur, "candidate_scoring").get("batched_ms"))
        diff.compare("full_cycle.cycle_ms",
                     section(base, "full_cycle").get("cycle_ms"),
                     section(cur, "full_cycle").get("cycle_ms"))
        diff.compare("ledger_overhead.with_ms",
                     section(base, "ledger_overhead").get("with_ms"),
                     section(cur, "ledger_overhead").get("with_ms"))
        # Worker-scaling deltas are pure scheduler noise on a single
        # hardware thread: every worker count serializes onto one core,
        # so "speedup" is a coin flip.  Skip them when either snapshot
        # reports hw_concurrency <= 1 (snapshots predating the field
        # are compared as before).
        cores = [doc.get("hw_concurrency") for doc in (base, cur)
                 if isinstance(doc.get("hw_concurrency"), (int, float))]
        if cores and min(cores) <= 1:
            diff.skipped.append(
                "model_search_scaling timings (single hardware thread: "
                f"hw_concurrency={min(cores):.0f})")
        else:
            base_scaling = {s.get("workers"): s
                            for s in base.get("model_search_scaling", [])}
            cur_scaling = {s.get("workers"): s
                           for s in cur.get("model_search_scaling", [])}
            for workers in sorted(set(base_scaling) & set(cur_scaling)):
                diff.compare(f"model_search_scaling[{workers}].seconds",
                             base_scaling[workers].get("seconds"),
                             cur_scaling[workers].get("seconds"),
                             scale_to_ms=1e3)
    else:
        diff.skipped.append(
            "train/full_cycle/scaling/ledger timings (quick flags "
            f"differ: baseline quick={base.get('quick')}, current "
            f"quick={cur.get('quick')})")

    diff.report()
    if diff.regressions:
        print(f"perf_diff: {len(diff.regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(diff.regressions)}",
              file=sys.stderr)
        return 1
    print(f"perf_diff: no regression beyond {args.threshold:.0%} "
          f"({len(diff.rows)} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
