#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated build tree with AddressSanitizer +
# UndefinedBehaviorSanitizer, build everything, and run the tier-1 test
# suite under it.  Intended as a pre-merge check; the regular build tree
# (build/) is left untouched.
#
# A second phase configures with -DGEO_TRACE=OFF and runs the suite
# again: the tracing macros must compile out cleanly (no code may
# depend on side effects inside GEO_SPAN and friends).
#
# With GEO_NATIVE=1 a third phase builds the shipping configuration
# (-O3 -march=native, Matrix bounds checks off) and runs the tests
# again: the fast build must pass the same suite it ships with.
#
# Usage: tools/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== configuring sanitizer build in ${build_dir} =="
cmake -S "${repo_root}" -B "${build_dir}" \
    -DGEO_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building (${jobs} jobs) =="
cmake --build "${build_dir}" -j "${jobs}"

echo "== running tier-1 tests under ASan/UBSan =="
# halt_on_error makes UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "== check.sh: all tests passed under address;undefined =="

# Perf-suite smoke under the sanitizers: the packed GEMM kernels,
# scratch arena and fused optimizer run their real (quick-size) shapes
# with bounds/UB checking on.  Timings are meaningless here; this is a
# memory-safety gate for the hot paths the plain suite exercises at
# full size.
echo "== perf suite (quick mode) under ASan/UBSan =="
perf_out="$(mktemp /tmp/geo_perf_asan.XXXXXX.json)"
GEO_PERF_QUICK=1 GEO_SKIP_MICRO=1 GEO_PERF_OUT="${perf_out}" \
    "${build_dir}/bench/micro_benchmarks"
rm -f "${perf_out}"

echo "== check.sh: perf suite clean under address;undefined =="

# Crash-recovery drill: kill the pipeline at a mid-migration kill point
# under the sanitizer build, let the supervisor restart it from the
# checkpoint, and require the resumed run to be byte-identical to an
# uninterrupted reference (series and summary CSV).
echo "== crash/restart recovery drill (sanitizer build) =="
sim="${build_dir}/tools/geomancy_sim"
drill="$(mktemp -d /tmp/geo_crash_drill.XXXXXX)"
sim_flags=(--policy geomancy --runs 12 --warmup 2 --cadence 3
    --epochs 4 --quiet)
"${sim}" "${sim_flags[@]}" --checkpoint-dir "${drill}/ref" \
    --series "${drill}/ref.csv" --csv "${drill}/ref_sum.csv"
"${sim}" "${sim_flags[@]}" --checkpoint-dir "${drill}/crash" \
    --crash-at mid-migration --crash-cycle 2 --max-restarts 2 \
    --series "${drill}/crash.csv" --csv "${drill}/crash_sum.csv"
cmp "${drill}/ref.csv" "${drill}/crash.csv"
cmp "${drill}/ref_sum.csv" "${drill}/crash_sum.csv"
rm -rf "${drill}"

echo "== check.sh: crash drill resumed byte-identical =="

# Audit-trail drill: run the sim under chaos with the decision ledger
# and flight recorder enabled (still the sanitizer build), validate
# the geo-ledger-1 stream structurally, and smoke the explain CLI
# against it.
echo "== decision ledger + chaos drill (sanitizer build) =="
audit="$(mktemp -d /tmp/geo_audit_drill.XXXXXX)"
"${sim}" "${sim_flags[@]}" --chaos \
    --ledger-out "${audit}/ledger.ndjson" \
    --flight-dump-dir "${audit}"
python3 - "${audit}/ledger.ndjson" <<'EOF'
import json
import sys

def fail(message):
    print(f"check.sh: {message}", file=sys.stderr)
    sys.exit(1)

known = {"cycle_start", "phase", "candidate", "prediction", "realized",
         "outcome", "transition", "cycle"}
rows = []
with open(sys.argv[1]) as fh:
    header = json.loads(fh.readline())
    if header.get("schema") != "geo-ledger-1":
        fail(f"bad ledger header: {header}")
    for line in fh:
        rows.append(json.loads(line))

if not rows:
    fail("ledger recorded no rows")
for i, row in enumerate(rows):
    if row.get("t") not in known:
        fail(f"unknown row type {row.get('t')!r}")
    if row.get("seq") != i + 1:
        fail(f"seq broke at row {i}: {row}")
    if row["t"] == "candidate" and row.get("verdict") != "exploration" \
            and len(row.get("features", [])) != 6:
        fail(f"candidate without 6 features: {row}")
if not any(r["t"] == "cycle" for r in rows):
    fail("no cycle summary rows")
print(f"check.sh: ledger OK ({len(rows)} rows, "
      f"{sum(1 for r in rows if r['t'] == 'cycle')} cycles)")
EOF
explain="${build_dir}/tools/geomancy_explain"
"${explain}" --ledger "${audit}/ledger.ndjson" --prediction-error \
    --per-mount
"${explain}" --ledger "${audit}/ledger.ndjson" --vetoes --json \
    > /dev/null
rm -rf "${audit}"

echo "== check.sh: ledger drill clean under address;undefined =="

# ThreadSanitizer phase: a dedicated build tree with TSan, running the
# concurrency-sensitive subset of the suite (thread pool, watchdog
# cancellation visibility, metric registry, logging, tracing, parallel
# GEMM/scoring and the guardrail integration tests). TSan cannot be
# combined with ASan, hence the separate tree and targeted -R filter.
tsan_dir="${repo_root}/build-tsan"
echo "== configuring ThreadSanitizer build in ${tsan_dir} =="
cmake -S "${repo_root}" -B "${tsan_dir}" \
    -DGEO_SANITIZE="thread" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building TSan (${jobs} jobs) =="
cmake --build "${tsan_dir}" -j "${jobs}"

echo "== running the concurrency subset under TSan =="
export TSAN_OPTIONS="halt_on_error=1"
ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
    -R 'ThreadPool|Watchdog|CancelToken|Metric|Trace|Logging|Parallel|Concurrent|Batched|Guardrails|Flight|ShardCoordinator'

echo "== check.sh: concurrency subset clean under thread sanitizer =="

notrace_dir="${repo_root}/build-notrace"
echo "== configuring GEO_TRACE=OFF build in ${notrace_dir} =="
cmake -S "${repo_root}" -B "${notrace_dir}" \
    -DGEO_TRACE=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building GEO_TRACE=OFF (${jobs} jobs) =="
cmake --build "${notrace_dir}" -j "${jobs}"

echo "== running tier-1 tests with tracing compiled out =="
ctest --test-dir "${notrace_dir}" --output-on-failure -j "${jobs}"

echo "== check.sh: GEO_TRACE=OFF build passed =="

if [[ "${GEO_NATIVE:-0}" == "1" ]]; then
    native_dir="${repo_root}/build-native"
    echo "== configuring native build in ${native_dir} =="
    cmake -S "${repo_root}" -B "${native_dir}" \
        -DGEO_NATIVE=ON \
        -DGEO_CHECK_BOUNDS=OFF \
        -DCMAKE_BUILD_TYPE=Release

    echo "== building native (${jobs} jobs) =="
    cmake --build "${native_dir}" -j "${jobs}"

    echo "== running tier-1 tests on the native build =="
    ctest --test-dir "${native_dir}" --output-on-failure -j "${jobs}"

    echo "== check.sh: native build passed =="
fi
