#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated build tree with AddressSanitizer +
# UndefinedBehaviorSanitizer, build everything, and run the tier-1 test
# suite under it.  Intended as a pre-merge check; the regular build tree
# (build/) is left untouched.
#
# Usage: tools/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== configuring sanitizer build in ${build_dir} =="
cmake -S "${repo_root}" -B "${build_dir}" \
    -DGEO_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building (${jobs} jobs) =="
cmake --build "${build_dir}" -j "${jobs}"

echo "== running tier-1 tests under ASan/UBSan =="
# halt_on_error makes UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "== check.sh: all tests passed under address;undefined =="
