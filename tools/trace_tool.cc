/**
 * @file
 * trace_tool — generate, inspect and analyze EOS-style access traces.
 *
 * Subcommands:
 *   generate --records N [--devices N] [--files N] [--seed N] --out F
 *       Write a synthetic EOS-style trace as CSV.
 *   analyze --in F [--top K]
 *       Print the Fig. 4 feature/throughput correlation table and
 *       basic statistics for a trace CSV.
 *   replay --in F [--seed N]
 *       Replay a trace against the simulated Bluesky testbed and
 *       report the observed throughput.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "storage/bluesky.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/feature_select.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workload/trace_replay.hh"

namespace {

using namespace geo;

void
usage()
{
    std::cout <<
        "trace_tool <generate|analyze|replay> [options]\n\n"
        "  generate --records N [--devices N] [--files N] [--seed N]\n"
        "           --out FILE\n"
        "  analyze  --in FILE [--top K]\n"
        "  replay   --in FILE [--seed N]\n";
}

std::map<std::string, std::string>
parseFlags(int argc, char **argv, int first)
{
    std::map<std::string, std::string> flags;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '%s'", arg.c_str());
        if (i + 1 >= argc)
            fatal("%s needs a value", arg.c_str());
        flags[arg.substr(2)] = argv[++i];
    }
    return flags;
}

uint64_t
flagInt(const std::map<std::string, std::string> &flags,
        const std::string &name, uint64_t fallback)
{
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stoull(it->second);
}

std::vector<trace::AccessRecord>
loadTrace(const std::map<std::string, std::string> &flags)
{
    auto it = flags.find("in");
    if (it == flags.end())
        fatal("--in FILE is required");
    std::ifstream in(it->second);
    if (!in)
        fatal("cannot open '%s'", it->second.c_str());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<trace::AccessRecord> records =
        trace::recordsFromCsv(buffer.str());
    if (records.empty())
        fatal("no records in '%s'", it->second.c_str());
    return records;
}

int
cmdGenerate(const std::map<std::string, std::string> &flags)
{
    trace::EosTraceConfig config;
    config.deviceCount = flagInt(flags, "devices", config.deviceCount);
    config.fileCount = flagInt(flags, "files", config.fileCount);
    config.seed = flagInt(flags, "seed", config.seed);
    size_t records = flagInt(flags, "records", 10000);
    auto it = flags.find("out");
    if (it == flags.end())
        fatal("--out FILE is required");

    trace::EosTraceGenerator generator(config);
    std::ofstream out(it->second);
    if (!out)
        fatal("cannot write '%s'", it->second.c_str());
    out << trace::recordsToCsv(generator.generate(records));
    std::cout << records << " records written to " << it->second << "\n";
    return 0;
}

int
cmdAnalyze(const std::map<std::string, std::string> &flags)
{
    std::vector<trace::AccessRecord> records = loadTrace(flags);
    StatAccumulator tp;
    for (const trace::AccessRecord &rec : records)
        tp.add(rec.throughput());
    std::cout << records.size() << " records; throughput "
              << TextTable::num(tp.mean() / 1e6, 2) << " +/- "
              << TextTable::num(tp.stddev() / 1e6, 2) << " MB/s\n\n";

    TextTable table("Feature correlation with throughput (Fig. 4)");
    table.setHeader({"feature", "pearson r", "chosen (paper)"});
    for (const trace::FeatureCorrelation &fc :
         trace::correlateFeatures(records)) {
        table.addRow({fc.name, TextTable::num(fc.correlation, 4),
                      fc.chosen ? "YES" : ""});
    }
    table.print(std::cout);

    size_t top = flagInt(flags, "top", 6);
    std::cout << "\nTop " << top << " by |correlation|:";
    for (const std::string &name :
         trace::selectTopFeatures(records, top))
        std::cout << ' ' << name;
    std::cout << "\n";
    return 0;
}

int
cmdReplay(const std::map<std::string, std::string> &flags)
{
    std::vector<trace::AccessRecord> records = loadTrace(flags);
    auto system =
        storage::makeBlueskySystem(flagInt(flags, "seed", 7));
    workload::TraceReplayWorkload replay(*system, records);
    StatAccumulator tp;
    for (const storage::AccessObservation &obs : replay.replayAll())
        tp.add(obs.throughput);
    TextTable table("Replay results on the Bluesky testbed");
    table.setHeader({"metric", "value"});
    table.addRow({"records replayed", std::to_string(tp.count())});
    table.addRow({"files created", std::to_string(replay.files().size())});
    table.addRow({"avg throughput (GB/s)",
                  TextTable::num(tp.mean() / 1e9, 3)});
    table.addRow({"sim time (s)",
                  TextTable::num(system->clock().now(), 1)});
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage();
        return 0;
    }
    std::map<std::string, std::string> flags =
        parseFlags(argc, argv, 2);
    if (command == "generate")
        return cmdGenerate(flags);
    if (command == "analyze")
        return cmdAnalyze(flags);
    if (command == "replay")
        return cmdReplay(flags);
    fatal("unknown command '%s' (try --help)", command.c_str());
}
